//! # polygpu — evaluating polynomials in several variables and their
//! derivatives on a (simulated) GPU computing processor
//!
//! A comprehensive Rust reproduction of Verschelde & Yoffe,
//! *"Evaluating polynomials in several variables and their derivatives
//! on a GPU computing processor"* (2012): massively parallel evaluation
//! and algorithmic differentiation of sparse polynomial systems — the
//! inner loop of Newton's method in polynomial homotopy continuation —
//! on a functionally-exact, performance-modeled SIMT simulator of the
//! paper's NVIDIA Tesla C2050.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | role |
//! |-------|------|
//! | [`qd`] | double-double / quad-double arithmetic (the QD library) |
//! | [`complex`] | generic complex numbers and matrices |
//! | [`polysys`] | sparse polynomial systems, generators, CPU evaluators |
//! | [`gpusim`] | the trace-based SIMT GPU simulator |
//! | [`core`] | **the paper's contribution**: the three kernels + pipeline |
//! | [`cluster`] | multi-device sharding with stream-overlapped transfers |
//! | [`polyhedral`] | mixed-cell (polyhedral) start systems for sparse targets |
//! | [`homotopy`] | Newton's method and path tracking on top |
//! | [`obs`] | deterministic tracing and metrics over the modeled timeline |
//! | [`serve`] | multi-tenant solve service: fair queuing, admission control, encoded-system cache |
//!
//! The public surface is the unified solving API: a
//! [`SolveRequest`](polygpu_homotopy::solve::SolveRequest) (target,
//! start points, tolerances, precision policy, scheduler) submitted to
//! a [`Solver`] that owns an engine spec and provisions backends per
//! precision, returning one
//! [`SolveReport`](polygpu_homotopy::solve::SolveReport) whatever the
//! scheduler × backend × precision combination. Underneath sits the
//! [`engine`] API: one [`engine::Engine::builder`] selects the backend
//! (CPU reference, single-point GPU, batched GPU, or a device
//! cluster), the precision, and the tuning; every backend implements
//! the object-safe [`engine::AnyEvaluator`] trait and produces
//! **bit-identical** results; an [`engine::Session`] keeps several
//! encoded systems resident in one device's constant memory so
//! successive homotopy stages switch systems without re-paying setup.
//!
//! Every solve can be observed without perturbing it: install a
//! [`Tracer`](obs::Tracer) via
//! [`SolveRequest::with_tracer`](polygpu_homotopy::solve::SolveRequest::with_tracer)
//! to record spans timestamped by the *simulated* clock (same seed ⇒
//! byte-identical [`chrome_trace_json`](obs::chrome_trace_json)
//! export), and read the unified
//! [`TelemetrySnapshot`](obs::TelemetrySnapshot) on every
//! [`SolveReport`](polygpu_homotopy::solve::SolveReport).
//!
//! To share one fleet between workloads, front it with a
//! [`SolveService`](serve::SolveService): tenants submit
//! `SolveRequest`s with a priority, a weighted fair queue apportions
//! service, admission control sizes every request against the
//! constant-memory budget before touching device state, and repeat
//! targets are served from an encoded-system cache — all on the
//! modeled clock, so the service trace is byte-identical across runs.
//!
//! ## Quickstart
//!
//! ```
//! use polygpu::prelude::*;
//!
//! // A random benchmark system in the paper's regular shape.
//! let params = BenchmarkParams { n: 16, m: 4, k: 3, d: 2, seed: 1 };
//! let system = random_system::<f64>(&params);
//!
//! // One builder, every backend. Pick the batched engine…
//! let mut engine = Engine::builder()
//!     .backend(Backend::GpuBatch { capacity: 32 })
//!     .build(&system)
//!     .unwrap();
//!
//! // …evaluate the system and its Jacobian at many points in one
//! // modeled round trip…
//! let points = random_points::<f64>(16, 8, 2);
//! let evals = engine.try_evaluate_batch(&points).unwrap();
//!
//! // …and check it against the CPU reference from the same spec:
//! // bit-identical, like every backend reachable from the builder.
//! let mut cpu = Engine::builder()
//!     .backend(Backend::CpuReference)
//!     .build(&system)
//!     .unwrap();
//! assert_eq!(evals[0].values, cpu.evaluate(&points[0]).values);
//!
//! // The device cost model behind the paper's tables:
//! println!("modeled time/eval: {:.1} us",
//!          engine.engine_stats().seconds_per_eval() * 1e6);
//! ```

pub use polygpu_cluster as cluster;
pub use polygpu_complex as complex;
pub use polygpu_core as core;
pub use polygpu_gpusim as gpusim;
pub use polygpu_homotopy as homotopy;
pub use polygpu_obs as obs;
pub use polygpu_polyhedral as polyhedral;
pub use polygpu_polysys as polysys;
pub use polygpu_qd as qd;
pub use polygpu_serve as serve;

/// The unified engine API with **every** backend available:
/// [`Engine::builder`](engine::Engine::builder) here (unlike the
/// core-layer builder) has the cluster backend wired to
/// [`polygpu_cluster::Sharded`].
pub mod engine {
    pub use polygpu_cluster::{ClusterSession, Sharded};
    pub use polygpu_core::engine::{
        AnyEvaluator, Backend, BuildError, ClusterPolicy, ClusterProvider, ClusterSpec,
        CpuReferenceEngine, EngineBuilder, EngineCaps, NoCluster, ResidencyRow, Session,
        SessionAmortization, ShardMode, SystemId, SystemShardPolicy,
    };

    /// The facade's unified entry point: every backend, one builder.
    ///
    /// ```
    /// use polygpu::engine::{Backend, ClusterPolicy, Engine};
    /// use polygpu::gpusim::prelude::DeviceSpec;
    /// use polygpu::polysys::{random_system, BenchmarkParams};
    ///
    /// let sys = random_system::<f64>(&BenchmarkParams { n: 8, m: 3, k: 2, d: 2, seed: 7 });
    /// let cluster = Engine::builder()
    ///     .backend(Backend::Cluster {
    ///         devices: vec![DeviceSpec::tesla_c2050(); 2],
    ///         shard: ClusterPolicy::default().into(),
    ///     })
    ///     .per_device_capacity(16)
    ///     .build(&sys)
    ///     .unwrap();
    /// assert_eq!(cluster.caps().devices, 2);
    /// ```
    ///
    /// **Row sharding** (`ShardMode::Rows`) splits the *system* instead
    /// of the points, so encodings too large for any single device's
    /// constant memory still build — the paper's 2,048-monomial wall,
    /// lifted `D`-fold:
    ///
    /// ```
    /// use polygpu::engine::{Backend, Engine, SystemShardPolicy};
    /// use polygpu::gpusim::prelude::DeviceSpec;
    /// use polygpu::polysys::{random_system, BenchmarkParams};
    ///
    /// // 2,048 monomials at k = 16: over one device's 65,536-byte
    /// // constant memory — no single-device backend accepts it.
    /// let big = random_system::<f64>(&BenchmarkParams { n: 32, m: 64, k: 16, d: 10, seed: 3 });
    /// assert!(Engine::builder().build(&big).is_err());
    ///
    /// // Row-sharded over two devices, each encodes half the rows.
    /// let cluster = Engine::builder()
    ///     .backend(Backend::Cluster {
    ///         devices: vec![DeviceSpec::tesla_c2050(); 2],
    ///         shard: SystemShardPolicy::Contiguous.into(),
    ///     })
    ///     .per_device_capacity(4)
    ///     .build(&big)
    ///     .unwrap();
    /// assert_eq!(cluster.caps().backend, "cluster-rows");
    /// assert_eq!(cluster.caps().constant_bytes, 65_536);
    /// ```
    pub struct Engine;

    impl Engine {
        /// A validated, fluent builder over every backend
        /// ([`Backend::CpuReference`] | [`Backend::Gpu`] |
        /// [`Backend::GpuBatch`] | [`Backend::Cluster`]), precision
        /// chosen per [`EngineBuilder::build`] call.
        pub fn builder() -> EngineBuilder<Sharded> {
            polygpu_cluster::engine_builder()
        }
    }
}

/// The unified solving API: one [`Solver::solve`] call covers every
/// scheduler (per-path / lockstep / queue), backend and precision
/// policy. This alias fixes the solver's cluster provider to
/// [`polygpu_cluster::Sharded`], so a solver built from this facade's
/// [`engine::Engine::builder`] reaches the cluster backend too:
///
/// ```
/// use polygpu::prelude::*;
///
/// let sys = random_system::<f64>(&BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed: 7 });
/// let solver = Solver::from_builder(
///     Engine::builder().backend(Backend::Cluster {
///         devices: vec![DeviceSpec::tesla_c2050(); 2],
///         shard: ClusterPolicy::default().into(),
///     }),
/// );
/// let report = solver
///     .solve(&SolveRequest::new(sys).with_start(StartSystem::uniform(2, 2)))
///     .unwrap();
/// assert_eq!(report.backend, "cluster");
/// assert_eq!(report.caps.devices, 2);
/// ```
pub type Solver = polygpu_homotopy::solve::Solver<polygpu_cluster::Sharded>;

/// Everything a typical user needs in one import.
pub mod prelude {
    pub use crate::engine::{
        AnyEvaluator, Backend, BuildError, ClusterPolicy, Engine, EngineCaps, Session, ShardMode,
        SystemShardPolicy,
    };
    pub use crate::Solver;
    pub use polygpu_cluster::{
        ClusterOptions, ClusterSession, ClusterStats, RowClusterOptions, RowClusterStats,
        RowShardedEvaluator, ShardPolicy, ShardedBatchEvaluator, TransferPath,
    };
    pub use polygpu_complex::{CDd, CMat, CQd, Complex, C64};
    pub use polygpu_core::pipeline::{GpuEvaluator, GpuOptions, PipelineStats};
    pub use polygpu_core::{
        drive_correct, BatchError, BatchGpuEvaluator, BatchLayout, CombineMap, CorrectOps,
        CorrectParams, CorrectStatus, CorrectStop, CorrectorMode, EncodeError, EncodingKind,
        IdentityCombine, OffsetCombine, SetupError, FLAG_BYTES,
    };
    pub use polygpu_gpusim::prelude::{
        Bound, Counters, DeviceSpec, FaultError, FaultKind, FaultPlan, FaultStats, LaunchConfig,
        LaunchOptions, LaunchReport, RecoveryPolicy,
    };
    pub use polygpu_homotopy::prelude::*;
    pub use polygpu_obs::{
        chrome_trace_json, phase_rollup, CollectingTracer, MetricDelta, MetricValue,
        MetricsRegistry, NoopTracer, Span, SpanKind, TelemetrySnapshot, TraceSink, Tracer,
    };
    pub use polygpu_polyhedral::{mixed_cell_starts, BinomialStart, CellError, MixedCellStarts};
    pub use polygpu_polysys::{
        cost, random_point, random_points, random_sparse_system, random_system, AdEvaluator,
        BatchSystemEvaluator, BenchmarkParams, Monomial, NaiveEvaluator, OpCounts, Polynomial,
        SparseBenchmarkParams, System, SystemEval, SystemEvaluator, Term, UniformShape,
    };
    pub use polygpu_qd::{Dd, Qd, Real};
    pub use polygpu_serve::{
        CacheStats, Priority, ServeError, ServeReport, SolveService, TenantId, TenantSpec,
    };
}
