//! # polygpu — evaluating polynomials in several variables and their
//! derivatives on a (simulated) GPU computing processor
//!
//! A comprehensive Rust reproduction of Verschelde & Yoffe,
//! *"Evaluating polynomials in several variables and their derivatives
//! on a GPU computing processor"* (2012): massively parallel evaluation
//! and algorithmic differentiation of sparse polynomial systems — the
//! inner loop of Newton's method in polynomial homotopy continuation —
//! on a functionally-exact, performance-modeled SIMT simulator of the
//! paper's NVIDIA Tesla C2050.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | role |
//! |-------|------|
//! | [`qd`] | double-double / quad-double arithmetic (the QD library) |
//! | [`complex`] | generic complex numbers and matrices |
//! | [`polysys`] | sparse polynomial systems, generators, CPU evaluators |
//! | [`gpusim`] | the trace-based SIMT GPU simulator |
//! | [`core`] | **the paper's contribution**: the three kernels + pipeline |
//! | [`cluster`] | multi-device sharding with stream-overlapped transfers |
//! | [`homotopy`] | Newton's method and path tracking on top |
//!
//! ## Quickstart
//!
//! ```
//! use polygpu::prelude::*;
//!
//! // A random benchmark system in the paper's regular shape:
//! // dimension 16, 4 monomials per polynomial, 3 variables per
//! // monomial, exponents up to 2.
//! let params = BenchmarkParams { n: 16, m: 4, k: 3, d: 2, seed: 1 };
//! let system = random_system::<f64>(&params);
//!
//! // Evaluate the system and its Jacobian on the simulated Tesla C2050…
//! let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
//! let x = random_point(16, 2);
//! let on_gpu = gpu.evaluate(&x);
//!
//! // …and with the same algorithm sequentially: bit-identical.
//! let mut cpu = AdEvaluator::new(system).unwrap();
//! assert_eq!(on_gpu.values, cpu.evaluate(&x).values);
//!
//! // The device cost model behind the paper's tables:
//! println!("modeled GPU time/eval: {:.1} us",
//!          gpu.stats().seconds_per_eval() * 1e6);
//! ```

pub use polygpu_cluster as cluster;
pub use polygpu_complex as complex;
pub use polygpu_core as core;
pub use polygpu_gpusim as gpusim;
pub use polygpu_homotopy as homotopy;
pub use polygpu_polysys as polysys;
pub use polygpu_qd as qd;

/// Everything a typical user needs in one import.
pub mod prelude {
    pub use polygpu_cluster::{ClusterOptions, ClusterStats, ShardPolicy, ShardedBatchEvaluator};
    pub use polygpu_complex::{CDd, CMat, CQd, Complex, C64};
    pub use polygpu_core::pipeline::{GpuEvaluator, GpuOptions, PipelineStats};
    pub use polygpu_core::{
        BatchError, BatchGpuEvaluator, BatchLayout, EncodeError, EncodingKind, SetupError,
    };
    pub use polygpu_gpusim::prelude::{
        Bound, Counters, DeviceSpec, LaunchConfig, LaunchOptions, LaunchReport,
    };
    pub use polygpu_homotopy::prelude::*;
    pub use polygpu_polysys::{
        cost, random_point, random_points, random_system, AdEvaluator, BatchSystemEvaluator,
        BenchmarkParams, Monomial, NaiveEvaluator, OpCounts, Polynomial, SingleBatch, System,
        SystemEval, SystemEvaluator, Term, UniformShape,
    };
    pub use polygpu_qd::{Dd, Qd, Real};
}
