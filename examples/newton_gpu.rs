//! Newton's method with the simulated-GPU evaluator in the inner loop —
//! the paper's motivating use ("the evaluation of a polynomial system
//! and its Jacobian matrix is a computationally intensive stage in
//! Newton's method").
//!
//! Builds a system with a known root, runs Newton from a perturbed
//! start on both the GPU pipeline and the CPU reference, and reports
//! the modeled device cost of the correction. Then the second act:
//! the same corrector arithmetic with `CorrectorMode::DeviceResident`,
//! where the Newton loop runs fused on the engine — iterates stay
//! device-resident and each iteration downloads only the O(P)
//! convergence-flag vector instead of every value and Jacobian —
//! with bit-identical endpoints and the telemetry delta to prove both.
//!
//! ```text
//! cargo run --release --example newton_gpu
//! ```

use polygpu::prelude::*;

fn main() {
    let params = BenchmarkParams {
        n: 32,
        m: 22,
        k: 9,
        d: 2,
        seed: 99,
    };
    let system = random_system::<f64>(&params);

    // Plant an exact root at a random point by shifting:
    // F(x) := system(x) − system(root).
    let root = random_point::<f64>(32, 4);
    let gpu = GpuEvaluator::new(&system, GpuOptions::default()).expect("fits the device");
    let mut f_gpu = ShiftedEvaluator::with_root(gpu, &root);

    // Start 1e-2 away from the root.
    let x0: Vec<C64> = root
        .iter()
        .enumerate()
        .map(|(i, z)| *z + C64::from_f64(1e-2 * (1.0 + i as f64 * 0.1), -1e-2))
        .collect();

    let result = newton(&mut f_gpu, &x0, NewtonParams::default());
    println!("Newton on the simulated GPU evaluator:");
    println!(
        "  converged: {} in {} iterations",
        result.converged, result.iterations
    );
    println!("  residual history:");
    for (i, r) in result.residuals.iter().enumerate() {
        println!("    iter {i}: {r:.3e}");
    }
    let dist: f64 = result
        .x
        .iter()
        .zip(&root)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0, f64::max);
    println!("  distance to planted root: {dist:.3e}");
    assert!(result.converged, "Newton must converge from 1e-2 away");

    // Same run on the CPU reference: identical arithmetic, identical
    // iterates.
    let cpu = AdEvaluator::new(system).unwrap();
    let mut f_cpu = ShiftedEvaluator::with_root(cpu, &root);
    let result_cpu = newton(&mut f_cpu, &x0, NewtonParams::default());
    assert_eq!(
        result.x, result_cpu.x,
        "GPU and CPU Newton iterates are bit-identical"
    );
    println!("\nGPU and CPU Newton runs produced bit-identical iterates.");

    // The device-side bill for this correction.
    let stats = f_gpu.inner.stats();
    println!("\nmodeled device cost of the whole Newton run:");
    println!(
        "  {} evaluations of the system + Jacobian",
        stats.evaluations
    );
    println!(
        "  {:.1} us modeled GPU time total",
        stats.total_seconds() * 1e6
    );
    println!(
        "  {:.2} us per evaluation ({} kernel launches)",
        stats.seconds_per_eval() * 1e6,
        3 * stats.evaluations
    );

    // ------------------------------------------------------------------
    // Act two: the device-resident corrector. Same Newton arithmetic,
    // but the whole iterate → factor → solve → update loop runs fused
    // on the engine: one upload, one endpoint download, and per
    // iteration only the O(P) convergence-flag vector crosses the bus.
    // ------------------------------------------------------------------
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    };
    let target = random_system::<f64>(&params);
    let req = SolveRequest::new(target)
        .with_start(StartSystem::uniform(2, 3)) // 9 paths
        .with_gamma_seed(7);
    let solver =
        || Solver::from_builder(Engine::builder().backend(Backend::GpuBatch { capacity: 8 }));

    let host = solver()
        .solve(&req.clone().with_corrector(CorrectorMode::Host))
        .expect("host-corrector solve");
    let resident = solver()
        .solve(&req.with_corrector(CorrectorMode::DeviceResident))
        .expect("device-resident solve");

    // Switching corrector modes changes the modeled traffic, never the
    // numbers: every path endpoint is bit-identical.
    let host_endpoints: Vec<_> = host.paths.iter().map(|p| p.endpoint.clone()).collect();
    let resident_endpoints: Vec<_> = resident.paths.iter().map(|p| p.endpoint.clone()).collect();
    assert_eq!(
        host_endpoints, resident_endpoints,
        "corrector modes must agree bit for bit"
    );

    println!("\ndevice-resident corrector vs host loop (9 paths, dim-2 target):");
    println!("  endpoints: bit-identical ({} tracked)", host.paths.len());
    for (label, report) in [("host", &host), ("resident", &resident)] {
        let e = &report.engine;
        println!(
            "  {label:>8}: {:>8} B up, {:>8} B down, {} fused Newton iters, \
             {:.1} us factor+backsub",
            e.h2d_bytes,
            e.d2h_bytes,
            e.corrector_iterations,
            (e.factor_seconds + e.backsub_seconds) * 1e6
        );
    }
    let saved = host.engine.d2h_bytes - resident.engine.d2h_bytes;
    assert!(
        resident.engine.d2h_bytes < host.engine.d2h_bytes,
        "the fused loop must download less"
    );
    println!(
        "  the fused loop kept {saved} B of per-iteration value/Jacobian \
         downloads on the device\n  (each iteration downloads one 16-byte \
         convergence flag per live point instead)."
    );
}
