//! Newton's method with the simulated-GPU evaluator in the inner loop —
//! the paper's motivating use ("the evaluation of a polynomial system
//! and its Jacobian matrix is a computationally intensive stage in
//! Newton's method").
//!
//! Builds a system with a known root, runs Newton from a perturbed
//! start on both the GPU pipeline and the CPU reference, and reports
//! the modeled device cost of the correction.
//!
//! ```text
//! cargo run --release --example newton_gpu
//! ```

use polygpu::prelude::*;

fn main() {
    let params = BenchmarkParams {
        n: 32,
        m: 22,
        k: 9,
        d: 2,
        seed: 99,
    };
    let system = random_system::<f64>(&params);

    // Plant an exact root at a random point by shifting:
    // F(x) := system(x) − system(root).
    let root = random_point::<f64>(32, 4);
    let gpu = GpuEvaluator::new(&system, GpuOptions::default()).expect("fits the device");
    let mut f_gpu = ShiftedEvaluator::with_root(gpu, &root);

    // Start 1e-2 away from the root.
    let x0: Vec<C64> = root
        .iter()
        .enumerate()
        .map(|(i, z)| *z + C64::from_f64(1e-2 * (1.0 + i as f64 * 0.1), -1e-2))
        .collect();

    let result = newton(&mut f_gpu, &x0, NewtonParams::default());
    println!("Newton on the simulated GPU evaluator:");
    println!(
        "  converged: {} in {} iterations",
        result.converged, result.iterations
    );
    println!("  residual history:");
    for (i, r) in result.residuals.iter().enumerate() {
        println!("    iter {i}: {r:.3e}");
    }
    let dist: f64 = result
        .x
        .iter()
        .zip(&root)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0, f64::max);
    println!("  distance to planted root: {dist:.3e}");
    assert!(result.converged, "Newton must converge from 1e-2 away");

    // Same run on the CPU reference: identical arithmetic, identical
    // iterates.
    let cpu = AdEvaluator::new(system).unwrap();
    let mut f_cpu = ShiftedEvaluator::with_root(cpu, &root);
    let result_cpu = newton(&mut f_cpu, &x0, NewtonParams::default());
    assert_eq!(
        result.x, result_cpu.x,
        "GPU and CPU Newton iterates are bit-identical"
    );
    println!("\nGPU and CPU Newton runs produced bit-identical iterates.");

    // The device-side bill for this correction.
    let stats = f_gpu.inner.stats();
    println!("\nmodeled device cost of the whole Newton run:");
    println!(
        "  {} evaluations of the system + Jacobian",
        stats.evaluations
    );
    println!(
        "  {:.1} us modeled GPU time total",
        stats.total_seconds() * 1e6
    );
    println!(
        "  {:.2} us per evaluation ({} kernel launches)",
        stats.seconds_per_eval() * 1e6,
        3 * stats.evaluations
    );
}
