//! The Speelpenning product, step by step.
//!
//! Demonstrates the paper's central algorithmic idea (§3.2): all `k`
//! partial derivatives of `x_{i1}·x_{i2}···x_{ik}` in `3k − 6`
//! multiplications via forward and backward products, and the common
//! factor trick that extends it to arbitrary monomials `x^a` in
//! `5k − 4` multiplications per monomial (including coefficients).
//!
//! ```text
//! cargo run --release --example speelpenning
//! ```

use polygpu::prelude::*;

fn main() {
    // The paper's running example (§3.1): the monomial x1^3 x2^7 x3^2.
    let monomial = Monomial::new(vec![(0, 3), (1, 7), (2, 2)]).unwrap();
    println!("monomial: {monomial}");
    println!("common factor: {}", monomial.common_factor_support());
    println!("Speelpenning product: {}", monomial.speelpenning_support());

    // Derivative counting: the closed forms of §3.2.
    println!("\nmultiplication counts per monomial (complex multiplications):");
    println!("| k | Speelpenning derivs (3k-6) | kernel-2 total (5k-4) |");
    for k in [3usize, 5, 9, 16, 32] {
        println!(
            "| {k:2} | {:26} | {:21} |",
            cost::speelpenning_muls(k),
            cost::kernel2_muls(k)
        );
    }

    // Now watch the algorithm do it: a k = 4 Speelpenning product with
    // hand-checkable values x = (2, 3, 5, 7).
    let x = [
        C64::from_f64(2.0, 0.0),
        C64::from_f64(3.0, 0.0),
        C64::from_f64(5.0, 0.0),
        C64::from_f64(7.0, 0.0),
    ];
    // Build the system f = x0*x1*x2*x3 (a single Speelpenning monomial)
    // in a 4-dimensional system. Pad with copies to stay square and
    // uniform.
    let term = |coeff: f64| Term {
        coeff: C64::from_f64(coeff, 0.0),
        monomial: Monomial::new(vec![(0, 1), (1, 1), (2, 1), (3, 1)]).unwrap(),
    };
    let polys = (0..4)
        .map(|i| Polynomial::new(vec![term(1.0 + i as f64)]))
        .collect();
    let system = System::new(4, polys).unwrap();
    let mut eval = AdEvaluator::new(system).unwrap();
    let result = eval.evaluate(&x);
    println!("\nf0 = x0*x1*x2*x3 at (2, 3, 5, 7):");
    println!("  value      = {} (expect 210)", result.values[0]);
    println!(
        "  df0/dx0    = {} (expect 105 = 3*5*7)",
        result.jacobian[(0, 0)]
    );
    println!(
        "  df0/dx1    = {} (expect  70 = 2*5*7)",
        result.jacobian[(0, 1)]
    );
    println!(
        "  df0/dx2    = {} (expect  42 = 2*3*7)",
        result.jacobian[(0, 2)]
    );
    println!(
        "  df0/dx3    = {} (expect  30 = 2*3*5)",
        result.jacobian[(0, 3)]
    );
    assert_eq!(result.values[0], C64::from_f64(210.0, 0.0));
    assert_eq!(result.jacobian[(0, 0)], C64::from_f64(105.0, 0.0));
    assert_eq!(result.jacobian[(0, 3)], C64::from_f64(30.0, 0.0));

    // The instrumented counters confirm the closed forms.
    let counts = eval.counts();
    println!("\ninstrumented complex multiplications for 4 monomials (k = 4):");
    println!(
        "  Speelpenning: {} (formula: 4 x {})",
        counts.speelpenning,
        cost::speelpenning_muls(4)
    );
    println!(
        "  kernel-2 total: {} (formula: 4 x {})",
        counts.kernel2_muls(),
        cost::kernel2_muls(4)
    );
    assert_eq!(counts.kernel2_muls(), 4 * cost::kernel2_muls(4));
    println!("\ncounts match the paper's formulas.");
}
