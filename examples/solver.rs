//! The unified solver: one `SolveRequest`, every scheduler, every
//! backend, every precision policy — replacing the per-driver snippets
//! (`track` / `track_lockstep` / `track_queue` /
//! `track_escalating_engine`) with one entry point.
//!
//! ```text
//! cargo run --release --example solver
//! ```

use polygpu::prelude::*;

fn main() {
    // A dim-2 benchmark system, tracked from a degree-4 start system
    // (16 paths).
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let sys = random_system::<f64>(&params);
    let req = SolveRequest::new(sys.clone())
        .with_start(StartSystem::uniform(2, 4))
        .with_gamma_seed(11);

    // 1. Same request, three schedulers, one backend: scheduling is a
    //    performance decision, not a numerical one.
    println!("## scheduler comparison (batched GPU backend)\n");
    let gpu = Solver::from_builder(Engine::builder().backend(Backend::GpuBatch { capacity: 8 }));
    for scheduler in [
        SchedulerKind::PerPath,
        SchedulerKind::Lockstep,
        SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        },
    ] {
        let report = gpu
            .solve(&req.clone().with_scheduler(scheduler))
            .expect("uniform system fits the device");
        println!(
            "{:>8}: {:2}/{} paths to t = 1, {:4} device round trips, \
             occupancy {:.2}, modeled wall {:.1} ms",
            scheduler.name(),
            report.successes(),
            report.paths.len(),
            report.stats.batch_rounds,
            report.occupancy(),
            report.engine.wall_clock_seconds() * 1e3,
        );
    }

    // 2. Same request on a 4-device cluster: SlotPolicy::Auto reads
    //    the front size off EngineCaps (D x per-device capacity).
    println!("\n## cluster backend (D = 4, auto-sized queue front)\n");
    let cluster = Solver::from_builder(
        Engine::builder()
            .backend(Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 4],
                shard: ClusterPolicy::default().into(),
            })
            .per_device_capacity(2),
    );
    let report = cluster.solve(&req).expect("cluster provisions");
    println!(
        "backend {} over {} devices: auto front = {} slots, occupancy {:.2}, \
         {} paths/s (modeled)",
        report.backend,
        report.caps.devices,
        report.stats.slots,
        report.occupancy(),
        report.paths_per_second() as u64,
    );

    // 3. Precision escalation as a policy: an f64-unreachable
    //    tolerance sends every failed path back through the same
    //    scheduler in double-double, provisioned from the same spec.
    println!("\n## escalation (residual tolerance 1e-19, below f64 round-off)\n");
    let brutal = TrackParams {
        corrector: NewtonParams {
            residual_tol: 1e-19,
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let esc_req = SolveRequest::new(sys)
        .with_start(StartSystem::uniform(2, 2))
        .with_gamma_seed(33)
        .with_params(brutal)
        .with_precision(PrecisionPolicy::Escalating { dd_params: brutal });
    let report = gpu.solve(&esc_req).expect("escalation provisions dd");
    let esc = report.escalation.as_ref().expect("every path escalates");
    println!(
        "{} of {} paths escalated ({}% rate), {} rescued in double-double",
        esc.retried,
        report.paths.len(),
        (report.escalation_rate() * 100.0) as u32,
        esc.rescued,
    );
    for (i, p) in report.paths.iter().enumerate() {
        println!(
            "  path {i}: {:?} in {}, residual {:.1e}",
            p.outcome,
            p.precision().name(),
            p.residual
        );
    }
    assert!(esc.rescued > 0, "double-double must rescue paths");
}
