//! The unified engine API end to end: a multi-system residency
//! `Session` that keeps three homotopy-stage systems resident in one
//! device's constant memory (switching between them for a modeled
//! command-queue round trip instead of full setup), and precision
//! escalation that re-requests a double-double engine from the *same*
//! builder spec when a path refuses to track in hardware doubles.
//!
//! ```text
//! cargo run --release --example engine_session
//! ```

use polygpu::prelude::*;

fn main() {
    // --- Multi-system residency -------------------------------------
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
    let mut session = builder.session::<f64>().unwrap();

    // Three stages of a (mock) homotopy run: growing monomial counts.
    let stages: Vec<System<f64>> = [(11usize, 1u64), (22, 2), (32, 3)]
        .iter()
        .map(|&(m, seed)| {
            random_system::<f64>(&BenchmarkParams {
                n: 32,
                m,
                k: 9,
                d: 2,
                seed,
            })
        })
        .collect();
    let ids: Vec<_> = stages
        .iter()
        .enumerate()
        .map(|(i, sys)| session.load(&format!("stage-{i}"), sys).unwrap())
        .collect();
    println!(
        "session: {} systems resident, {} of {} constant-memory bytes in use",
        session.resident_count(),
        session.constant_bytes_used(),
        session.constant_budget()
    );

    // Cycle the stages: each switch costs one modeled round trip.
    let points = random_points::<f64>(32, 8, 9);
    for round in 0..3 {
        for (i, &id) in ids.iter().enumerate() {
            let engine = session.activate(id);
            let evals = engine.try_evaluate_batch(&points).unwrap();
            if round == 0 {
                println!(
                    "  stage {i}: evaluated {} points through `{}`",
                    evals.len(),
                    engine.caps().backend
                );
            }
        }
    }
    let am = session.amortization();
    println!(
        "after {} stages: session paid {:.1} us of setup+switching; \
         re-encoding every stage would cost {:.1} us ({:.1}x per resident stage)\n",
        am.stages,
        am.session_seconds * 1e6,
        am.reencode_seconds * 1e6,
        am.steady_state_ratio
    );

    // --- Precision escalation from one spec -------------------------
    // A corrector tolerance below f64 round-off: the double attempt
    // must fail, and the escalator re-requests the same backend from
    // the same builder in double-double.
    let sys = random_system::<f64>(&BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 7,
    });
    let start = StartSystem::uniform(2, 2);
    let x0 = start.solution_by_index(1);
    let brutal = TrackParams {
        corrector: NewtonParams {
            residual_tol: 1e-19,
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = track_escalating_engine(&builder, &sys, &start, 33, &x0, brutal, brutal).unwrap();
    println!(
        "escalating track: finished in {:?} (success: {})",
        r.precision(),
        r.success()
    );
    assert_eq!(r.precision(), UsedPrecision::DoubleDouble);
}
