//! Multi-device sharding: evaluate one batch on 1 vs 4 simulated
//! C2050s with stream-overlapped transfers, then track a path set at
//! full occupancy through the path-queue scheduler — demonstrating the
//! scale-out invariant: results are bit-identical at every `D`.
//!
//! ```bash
//! cargo run --release --example cluster_sharding
//! ```

use polygpu::homotopy::lockstep::BatchHomotopy;
use polygpu::homotopy::queue::track_queue;
use polygpu::prelude::*;

fn main() {
    let params = BenchmarkParams {
        n: 32,
        m: 4,
        k: 9,
        d: 2,
        seed: 42,
    };
    let system = random_system::<f64>(&params);
    let points = random_points::<f64>(32, 256, 7);

    println!("cluster scaling (P = 256, stream overlap on):\n");
    let mut d1_endpoint = None;
    for d in [1usize, 2, 4] {
        let specs = vec![DeviceSpec::tesla_c2050(); d];
        let mut cluster = ShardedBatchEvaluator::new(
            &system,
            &specs,
            256usize.div_ceil(d),
            ClusterOptions::default(),
        )
        .unwrap();
        let evals = cluster.evaluate_batch(&points);
        let stats = cluster.cluster_stats();
        println!(
            "  D = {d}: wall {:7.1} us, {:>7.0} evals/s, overlap saved {:6.1} us, imbalance {:.2}",
            stats.wall_seconds * 1e6,
            stats.throughput_evals_per_sec(),
            cluster.overlap_savings() * 1e6,
            stats.imbalance(),
        );
        match &d1_endpoint {
            None => d1_endpoint = Some(evals),
            Some(want) => {
                for (a, b) in want.iter().zip(&evals) {
                    assert_eq!(a.values, b.values, "sharding must be invisible");
                }
            }
        }
    }

    // Path-queue tracking over a 4-device cluster: slots refill from
    // the queue, so every batched round trip stays near full occupancy.
    let small = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    };
    let sys = random_system::<f64>(&small);
    let start = StartSystem::uniform(2, 2);
    let starts: Vec<Vec<C64>> = (0..16u128).map(|i| start.solution_by_index(i)).collect();
    let cluster = ShardedBatchEvaluator::new(
        &sys,
        &vec![DeviceSpec::tesla_c2050(); 4],
        2,
        ClusterOptions::default(),
    )
    .unwrap();
    let mut h = BatchHomotopy::with_random_gamma(SingleBatch(start), cluster, 7);
    let r = track_queue(&mut h, &starts, TrackParams::default(), 4);
    println!(
        "\npath queue over 4 devices: {}/{} paths to t = 1, {} refills, \
         occupancy {:.2}, {} batched round trips",
        r.successes(),
        r.paths.len(),
        r.refills,
        r.occupancy(),
        r.batch_rounds,
    );
}
