//! Multi-device sharding through the unified builder: evaluate one
//! batch on 1 vs 4 simulated C2050s with stream-overlapped transfers,
//! then track a path set at full occupancy through the path-queue
//! scheduler over a cluster engine — demonstrating the scale-out
//! invariant: results are bit-identical at every `D`.
//!
//! ```text
//! cargo run --release --example cluster_sharding
//! ```

use polygpu::homotopy::lockstep::BatchHomotopy;
use polygpu::homotopy::queue::track_queue;
use polygpu::prelude::*;

fn main() {
    let params = BenchmarkParams {
        n: 32,
        m: 4,
        k: 9,
        d: 2,
        seed: 42,
    };
    let system = random_system::<f64>(&params);
    let points = random_points::<f64>(32, 256, 7);

    println!("cluster scaling (P = 256, stream overlap on):\n");
    let mut d1_endpoint = None;
    for d in [1usize, 2, 4] {
        // The same builder spec at every device count.
        let mut cluster = Engine::builder()
            .backend(Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); d],
                shard: ClusterPolicy::default().into(),
            })
            .per_device_capacity(256usize.div_ceil(d))
            .overlap_chunks(4)
            .build(&system)
            .unwrap();
        let evals = cluster.try_evaluate_batch(&points).unwrap();
        let stats = cluster.engine_stats();
        println!(
            "  D = {d}: wall {:7.1} us, {:>7.0} evals/s over {} device(s)",
            stats.wall_clock_seconds() * 1e6,
            stats.throughput_evals_per_sec(),
            cluster.caps().devices,
        );
        match &d1_endpoint {
            None => d1_endpoint = Some(evals),
            Some(want) => {
                for (a, b) in want.iter().zip(&evals) {
                    assert_eq!(a.values, b.values, "sharding must be invisible");
                }
            }
        }
    }

    // Path-queue tracking over a 4-device cluster engine: slots refill
    // from the queue, so every batched round trip stays near full
    // occupancy — through the same trait object any backend implements.
    let small = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    };
    let sys = random_system::<f64>(&small);
    let start = StartSystem::uniform(2, 2);
    let starts: Vec<Vec<C64>> = (0..16u128).map(|i| start.solution_by_index(i)).collect();
    let cluster = Engine::builder()
        .backend(Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 4],
            shard: ClusterPolicy::default().into(),
        })
        .per_device_capacity(2)
        .build(&sys)
        .unwrap();
    let mut h = BatchHomotopy::with_random_gamma(start, cluster, 7);
    let r = track_queue(&mut h, &starts, TrackParams::default(), 4);
    println!(
        "\npath queue over 4 devices: {}/{} paths to t = 1, {} refills, \
         occupancy {:.2}, {} batched round trips",
        r.successes(),
        r.paths.len(),
        r.stats.refills,
        r.occupancy(),
        r.stats.batch_rounds,
    );
}
