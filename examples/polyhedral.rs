//! Sparse systems end to end: packed exponent-key encoding for ragged
//! supports, and polyhedral (mixed-cell) start systems that track
//! mixed-volume many paths instead of Bézout many.
//!
//! ```text
//! cargo run --release --example polyhedral
//! ```

use polygpu::polysys::parse_system;
use polygpu::prelude::*;

fn main() {
    // ----------------------------------------------------------------
    // 1. Packed encoding: ragged supports on the device.
    // ----------------------------------------------------------------
    // A ragged sparse family: every monomial its own variable count,
    // constants included — the paper's Direct layout cannot express it.
    let sparse = random_sparse_system::<f64>(&SparseBenchmarkParams {
        n: 8,
        m_min: 2,
        m_max: 5,
        k_min: 0,
        k_max: 4,
        d: 3,
        seed: 29,
    });
    let spec = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
    let direct_err = match spec.clone().build(&sparse) {
        Err(e) => e,
        Ok(_) => panic!("ragged never fits Direct"),
    };
    println!("## packed encoding\n");
    println!("direct build: {direct_err}");
    let mut packed = spec
        .clone()
        .encoding(EncodingKind::Packed)
        .build(&sparse)
        .expect("packed encodes ragged supports");
    println!(
        "packed build: ok ({} constant bytes, backend {})",
        packed.caps().constant_bytes,
        packed.caps().backend
    );

    // Bit-identical to the CPU reference, like every backend.
    let points = random_points::<f64>(8, 4, 31);
    let got = packed.try_evaluate_batch(&points).unwrap();
    let mut cpu = Engine::builder()
        .backend(Backend::CpuReference)
        .build(&sparse)
        .unwrap();
    assert_eq!(got[0].values, cpu.evaluate(&points[0]).values);
    println!("packed GPU == CPU reference: bit-identical\n");

    // ----------------------------------------------------------------
    // 2. Mixed-cell starts: fewer paths for the same roots.
    // ----------------------------------------------------------------
    // Two sparse quadratics (no pure x² or y² terms): Bézout bounds
    // the path count at 4, the mixed volume at 2.
    let target = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
    let mc = mixed_cell_starts(&target, 7).unwrap();
    println!("## mixed-cell starts\n");
    println!(
        "bezout {} vs mixed volume {} ({} cells)",
        mc.bezout,
        mc.mixed_volume,
        mc.cells.len()
    );

    let solver = Solver::from_builder(
        Engine::builder()
            .backend(Backend::GpuBatch { capacity: 4 })
            .encoding(EncodingKind::Packed),
    );
    let dense = solver.solve(&SolveRequest::new(target.clone())).unwrap();
    let sparse_report = solver
        .solve(&SolveRequest::new(target).with_start_kind(StartKind::MixedCells { lift_seed: 7 }))
        .unwrap();
    println!(
        "total-degree: {} paths, {} successes",
        dense.paths.len(),
        dense.successes()
    );
    println!(
        "mixed-cells:  {} paths, {} successes (max residual {:.2e})",
        sparse_report.paths.len(),
        sparse_report.successes(),
        sparse_report
            .paths
            .iter()
            .map(|p| p.residual)
            .fold(0.0f64, f64::max),
    );
    assert!(sparse_report.paths.len() < dense.paths.len());
    assert_eq!(sparse_report.successes(), sparse_report.paths.len());
}
