//! The multi-tenant solve service: three tenants share one batched
//! fleet through a weighted fair queue, admission control sizes every
//! request against the constant-memory budget before it touches the
//! device, and a repeat target is served from the encoded-system
//! cache — no second encode, no second upload.
//!
//! ```text
//! cargo run --release --example solve_service
//! ```

use polygpu::prelude::*;
use polygpu_homotopy::solve::StartSelection;

fn target(seed: u64) -> System<f64> {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed,
    };
    random_system::<f64>(&params)
}

fn main() {
    // One fleet: a single batched device behind the unified builder.
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
    let mut svc = SolveService::new(&builder).expect("batched backend serves");

    // Three tenants with different service weights. `gold` is entitled
    // to 4x the service of `bronze` when both have work queued.
    let bronze = svc.register(
        TenantSpec::new("bronze")
            .with_weight(1)
            .with_max_in_flight(4),
    );
    let silver = svc.register(
        TenantSpec::new("silver")
            .with_weight(2)
            .with_max_in_flight(4),
    );
    let gold = svc.register(TenantSpec::new("gold").with_weight(4).with_max_in_flight(4));

    let request =
        |seed: u64| SolveRequest::new(target(seed)).with_starts(StartSelection::FirstN(4));

    // Everyone submits before anything runs — a contended backlog. The
    // fair queue decides service order, not submission order: `gold`
    // is served first despite submitting last. Note `bronze` reuses
    // `gold`'s target — by the time the queue reaches it, the encoding
    // is already resident and the admission is a cache hit.
    svc.submit(
        bronze,
        Priority::Normal,
        request(1).with_label("bronze-repeat"),
    )
    .expect("admitted");
    svc.submit(bronze, Priority::Low, request(2).with_label("bronze-b"))
        .expect("admitted");
    svc.submit(silver, Priority::Normal, request(3).with_label("silver-a"))
        .expect("admitted");
    svc.submit(silver, Priority::High, request(4).with_label("silver-b"))
        .expect("admitted");
    svc.submit(gold, Priority::Normal, request(1).with_label("gold-a"))
        .expect("admitted");
    svc.submit(gold, Priority::High, request(5).with_label("gold-rush"))
        .expect("admitted");

    // A request that can never fit the device's constant memory is
    // rejected typed, before any queue slot or device state is spent.
    let huge = BenchmarkParams {
        n: 8,
        m: 520,
        k: 8,
        d: 2,
        seed: 9,
    };
    match svc.submit(
        bronze,
        Priority::Normal,
        SolveRequest::new(random_system::<f64>(&huge)),
    ) {
        Err(ServeError::NeverFits { needed, budget }) => {
            println!("over-budget request bounced: needs {needed} bytes, budget {budget}\n")
        }
        other => panic!("expected NeverFits, got {other:?}"),
    }

    // Drain the queue on the modeled clock and print the service log.
    let report = svc.run();
    println!("service order (fair-queue drain):");
    println!("| job | tenant | priority | cache | wait (s) | admission (s) | solve (s) |");
    println!("|-----|--------|----------|-------|---------:|--------------:|----------:|");
    for j in &report.jobs {
        println!(
            "| {} | {} | {:?} | {} | {:.3e} | {:.3e} | {:.3e} |",
            j.label,
            j.tenant,
            j.priority,
            if j.cache_hit { "hit" } else { "miss" },
            j.wait_seconds,
            j.admission_seconds,
            j.solve_seconds,
        );
    }
    println!();
    println!(
        "cache: {} misses, {} hits ({} systems resident at the end)",
        report.cache.misses,
        report.cache.hits,
        svc.resident_systems(),
    );
    let hit = report
        .jobs
        .iter()
        .find(|j| j.label == "bronze-repeat")
        .expect("bronze's repeat job was served");
    assert!(hit.cache_hit, "the repeated target must be a cache hit");
    println!(
        "bronze-repeat reused gold-a's encoding: admission {:.3e} s instead of a full setup",
        hit.admission_seconds,
    );
    println!(
        "\n{} jobs solved, mean wait {:.3e} s, modeled service span {:.3e} s",
        report.solved(),
        report.mean_wait_seconds(),
        report.finished_at - report.started_at,
    );
}
