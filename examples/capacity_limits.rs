//! E3 and the compact-encoding extension: the constant-memory wall.
//!
//! "Increasing the number of monomials to 2,048 in Table 1 and 2 would
//! have yielded a speedup of more than 20, but the capacity of the
//! constant memory was not sufficient to hold the exponents and
//! positions of all 2,048 monomials." (§4)
//!
//! This example sweeps the monomial count at `k = 16`, shows exactly
//! where the direct `u8 + u8` encoding stops fitting, and then lifts
//! the wall with the paper's proposed compact encoding (nibble-packed
//! exponents).
//!
//! ```text
//! cargo run --release --example capacity_limits
//! ```

use polygpu::prelude::*;

fn try_setup(total: usize, encoding: EncodingKind) -> Result<usize, String> {
    let params = BenchmarkParams {
        n: 32,
        m: total / 32,
        k: 16,
        d: 10,
        seed: 3,
    };
    let system = random_system::<f64>(&params);
    match GpuEvaluator::new(
        &system,
        GpuOptions {
            encoding,
            ..Default::default()
        },
    ) {
        Ok(gpu) => Ok(gpu.constant_bytes_used()),
        Err(e) => Err(e.to_string()),
    }
}

fn main() {
    let device = DeviceSpec::tesla_c2050();
    println!(
        "device constant memory: {} bytes ({} reserved for launch metadata)",
        device.constant_mem,
        device.constant_mem - device.constant_budget()
    );
    println!("\nk = 16 monomials cost 2 x 16 bytes each in the direct encoding.\n");
    println!("| monomials | direct encoding | compact encoding |");
    println!("|----------:|-----------------|------------------|");
    let mut wall = None;
    for total in [704usize, 1024, 1536, 2048, 2560, 2720] {
        let direct = try_setup(total, EncodingKind::Direct);
        let compact = try_setup(total, EncodingKind::Compact);
        let fmt = |r: &Result<usize, String>| match r {
            Ok(bytes) => format!("fits ({bytes} B)"),
            Err(_) => "REFUSED".to_string(),
        };
        println!("| {total} | {} | {} |", fmt(&direct), fmt(&compact));
        if direct.is_err() && wall.is_none() {
            wall = Some(total);
        }
    }
    let wall = wall.expect("the wall exists on a C2050");
    println!("\ndirect-encoding wall first hit at {wall} monomials — the paper's E3.");
    assert_eq!(wall, 2048, "must match the paper's observed limit");

    // The extension the paper proposed: verify the compact encoding
    // not only fits but computes the same values.
    let params = BenchmarkParams {
        n: 32,
        m: 2048 / 32,
        k: 16,
        d: 10,
        seed: 3,
    };
    let system = random_system::<f64>(&params);
    let mut compact_gpu = GpuEvaluator::new(
        &system,
        GpuOptions {
            encoding: EncodingKind::Compact,
            ..Default::default()
        },
    )
    .expect("compact encoding lifts the wall");
    let x = random_point::<f64>(32, 11);
    let gpu_result = compact_gpu.evaluate(&x);
    let mut cpu = AdEvaluator::new(system).unwrap();
    let cpu_result = cpu.evaluate(&x);
    assert_eq!(gpu_result.values, cpu_result.values);
    println!(
        "compact encoding runs the 2,048-monomial system ({} constant bytes) — \
         values bit-identical to the CPU reference.",
        compact_gpu.constant_bytes_used()
    );
    println!(
        "decode overhead: {} extra integer ops charged by the simulator, hidden \
         behind the multiplications exactly as the paper predicted.",
        2 * 2048 * 16 * 2 // 2 iops per factor read, 2 reads per eval (kernels 1 and 2)
    );
}
