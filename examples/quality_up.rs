//! Quality up: how much extra precision does the GPU speedup buy?
//!
//! The paper's framing (§1): "given p processors (or cores) how much
//! extra precision can we afford in roughly the same time as a
//! sequential run?" The companion work measured a double-double cost
//! factor around 8; a parallel evaluator with speedup >= 8 therefore
//! tracks double-double paths in sequential-double time.
//!
//! This example (1) measures the cost factors on this host, (2) takes
//! the modeled GPU speedup for the Table-2 configuration, (3) answers
//! the quality-up question, and (4) demonstrates *why* extra precision
//! matters by running Newton in f64 vs double-double on the same
//! system and comparing achievable residuals.
//!
//! ```text
//! cargo run --release --example quality_up
//! ```

use polygpu::prelude::*;
use std::time::Instant;

fn measure_factor<R: Real>(iters: usize) -> f64 {
    let mut z = Complex::<R>::from_f64(0.999_999, 1.3e-3);
    let w = Complex::<R>::from_f64(1.000_001, -1.1e-3);
    let t0 = Instant::now();
    for _ in 0..iters {
        z = std::hint::black_box(z * w);
    }
    std::hint::black_box(z);
    t0.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    // (1) Arithmetic cost ladder on this host.
    let iters = 2_000_000;
    let t_f64 = measure_factor::<f64>(iters);
    let t_dd = measure_factor::<Dd>(iters);
    let t_qd = measure_factor::<Qd>(iters / 16);
    let dd_factor = t_dd / t_f64;
    let qd_factor = t_qd / t_f64;
    println!("complex multiplication cost factors on this host:");
    println!("  double        1.00");
    println!("  double-double {dd_factor:.2}   (paper's companion work: ~8)");
    println!("  quad-double   {qd_factor:.2}");

    // (2) Modeled GPU speedup for the Table-2 configuration against
    // the paper's own CPU column (era-consistent).
    let params = BenchmarkParams {
        n: 32,
        m: 48,
        k: 16,
        d: 10,
        seed: 5,
    };
    let system = random_system::<f64>(&params);
    let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let x = random_point::<f64>(32, 1);
    let _ = gpu.evaluate(&x);
    let gpu_per_eval = gpu.stats().seconds_per_eval();
    let paper_cpu_per_eval = 425.8 / 100_000.0; // Table 2, 1,536 monomials
    let speedup = paper_cpu_per_eval / gpu_per_eval;
    println!("\nmodeled GPU speedup (Table 2, 1,536 monomials): {speedup:.1}x");

    // (3) The quality-up ladder.
    println!("\nquality-up: parallel extended-precision vs sequential double:");
    for q in quality_up_ladder(speedup, dd_factor, qd_factor) {
        println!(
            "  {:14} ({} bits): relative time {:.2} -> {}",
            q.precision.name(),
            q.precision.bits(),
            q.relative_time,
            if q.achieved(1.0) {
                "QUALITY UP (free or better)"
            } else {
                "costs extra"
            }
        );
    }

    // (4) Why it matters: Newton can only push the residual to the
    // evaluation precision. Same system, same root, two precisions.
    let root = random_point::<f64>(32, 77);
    let mut f64_eval =
        ShiftedEvaluator::with_root(AdEvaluator::new(system.clone()).unwrap(), &root);
    let x0: Vec<C64> = root
        .iter()
        .map(|z| *z + C64::from_f64(1e-3, 1e-3))
        .collect();
    let r64 = newton(
        &mut f64_eval,
        &x0,
        NewtonParams {
            residual_tol: 1e-30, // unreachable in f64: run to stagnation
            step_tol: 1e-16,
            max_iters: 12,
            ..Default::default()
        },
    );
    let best64 = r64.residuals.iter().copied().fold(f64::INFINITY, f64::min);

    let system_dd = system.convert::<Dd>();
    let root_dd: Vec<CDd> = root.iter().map(|z| z.convert()).collect();
    let mut dd_eval = ShiftedEvaluator::with_root(AdEvaluator::new(system_dd).unwrap(), &root_dd);
    let x0_dd: Vec<CDd> = x0.iter().map(|z| z.convert()).collect();
    let rdd = newton(
        &mut dd_eval,
        &x0_dd,
        NewtonParams {
            residual_tol: 1e-30,
            step_tol: 1e-31,
            max_iters: 16,
            ..Default::default()
        },
    );
    let best_dd = rdd.residuals.iter().copied().fold(f64::INFINITY, f64::min);
    println!("\nNewton residual floors on the same system (dimension 32):");
    println!("  double        {best64:.2e}");
    println!("  double-double {best_dd:.2e}");
    assert!(
        best_dd < best64 * 1e-6,
        "double-double must reach a much lower floor"
    );
    println!(
        "\ndouble-double buys ~{:.0} extra decimal digits of residual;",
        (best64 / best_dd).log10()
    );
    println!("with the modeled GPU speedup it costs less than sequential double.");
}
