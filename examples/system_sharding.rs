//! System (row) sharding: solve systems whose support encoding exceeds
//! one device's constant memory by splitting the *equations* — not the
//! points — across a device fleet.
//!
//! ```text
//! cargo run --release --example system_sharding
//! ```

use polygpu::engine::ClusterSession;
use polygpu::prelude::*;

fn main() {
    // The paper's constant-memory wall: 2,048 monomials at k = 16 need
    // 65,536 support bytes; one C2050 has 65,280 usable.
    let params = BenchmarkParams {
        n: 32,
        m: 64,
        k: 16,
        d: 10,
        seed: 3,
    };
    let big = random_system::<f64>(&params);

    println!("== the wall ==");
    match Engine::builder().build(&big) {
        Err(e) => println!("single device: {e}"),
        Ok(_) => unreachable!("2,048 monomials at k = 16 cannot fit one device"),
    }

    // Row-sharded over D devices, each encodes only its rows.
    let points = random_points::<f64>(32, 4, 21);
    let mut cpu = Engine::builder()
        .backend(Backend::CpuReference)
        .build(&big)
        .unwrap();
    let want = cpu.try_evaluate_batch(&points).unwrap();

    println!("\n== row sharding lifts it ==");
    for d in [2usize, 4] {
        let mut cluster = Engine::builder()
            .backend(Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); d],
                shard: SystemShardPolicy::Contiguous.into(),
            })
            .per_device_capacity(4)
            .build(&big)
            .unwrap();
        let got = cluster.try_evaluate_batch(&points).unwrap();
        let identical = got
            .iter()
            .zip(&want)
            .all(|(g, w)| g.values == w.values && g.jacobian.as_slice() == w.jacobian.as_slice());
        let caps = cluster.caps();
        let stats = cluster.engine_stats();
        println!(
            "D = {d}: {} resident bytes across the fleet, modeled wall {:.1} us, \
             bit-identical to CPU: {identical}",
            caps.constant_bytes,
            stats.wall_clock_seconds() * 1e6,
        );
        assert!(identical);
    }

    // Cluster-level residency: two systems co-reside row-sharded in the
    // fleet's arenas; switching between homotopy stages costs one
    // parallel command-queue round trip instead of D re-encodes.
    println!("\n== cluster session (per-device residency) ==");
    let spec = polygpu::cluster::engine_builder()
        .backend(Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 2],
            shard: SystemShardPolicy::Contiguous.into(),
        })
        .per_device_capacity(4)
        .cluster_spec()
        .unwrap();
    let mut session = ClusterSession::<f64>::from_spec(&spec).unwrap();
    let medium = random_system::<f64>(&BenchmarkParams {
        n: 32,
        m: 32,
        k: 16,
        d: 10,
        seed: 4,
    });
    let a = session.load("target", &big).unwrap();
    let b = session.load("auxiliary", &medium).unwrap();
    for _ in 0..3 {
        for id in [a, b] {
            let evals = session.activate(id).try_evaluate_batch(&points).unwrap();
            assert_eq!(evals.len(), points.len());
        }
    }
    let am = session.amortization();
    println!(
        "2 systems resident on 2 devices ({:?} bytes/device), {} stages, \
         switch {:.1} us vs re-encode {:.1} us — {:.1}x steady-state amortization",
        session.constant_bytes_per_device(),
        am.stages,
        session.switch_seconds() * 1e6,
        session.residency()[0].setup_seconds * 1e6,
        am.steady_state_ratio,
    );
}
