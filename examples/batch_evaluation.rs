//! The batched multi-point engine: evaluate a Table-1-shaped system
//! and its Jacobian at 64 points with one three-launch round trip,
//! then track four homotopy paths in lockstep through it.
//!
//! ```bash
//! cargo run --release --example batch_evaluation
//! ```

use polygpu::prelude::*;

fn main() {
    // A Table-1-shaped system: n = 32, 704 monomials, k = 9, d <= 2.
    let params = BenchmarkParams {
        n: 32,
        m: 22,
        k: 9,
        d: 2,
        seed: 1,
    };
    let system = random_system::<f64>(&params);
    let points = random_points::<f64>(32, 64, 7);

    // Single-point pipeline: 64 round trips.
    let mut single = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    for x in &points {
        let _ = single.evaluate(x);
    }

    // Batched engine: one round trip for all 64 points.
    let mut batch = BatchGpuEvaluator::new(&system, 64, GpuOptions::default()).unwrap();
    let results = batch.evaluate_batch(&points);

    let (ss, bs) = (single.stats(), batch.stats());
    println!(
        "single-point pipeline: {} evaluations in {} round trips",
        ss.evaluations, ss.batches
    );
    println!(
        "batched engine:        {} evaluations in {} round trip(s)",
        bs.evaluations, bs.batches
    );

    // Same math, bit for bit.
    let check = single.evaluate(&points[0]);
    assert_eq!(
        results[0].values, check.values,
        "batching never changes results"
    );
    println!();
    println!("modeled cost per evaluation   single      batch P=64");
    println!(
        "  launch overhead + PCIe      {:>8.2} us {:>8.2} us",
        ss.overhead_transfer_per_eval() * 1e6,
        bs.overhead_transfer_per_eval() * 1e6
    );
    println!(
        "  total                       {:>8.2} us {:>8.2} us",
        ss.seconds_per_eval() * 1e6,
        bs.seconds_per_eval() * 1e6
    );
    println!(
        "  throughput                  {:>8.0} /s {:>8.0} /s",
        ss.throughput_evals_per_sec(),
        bs.throughput_evals_per_sec()
    );

    // Lockstep path tracking: every corrector iteration of all four
    // paths rides one batch.
    let small = random_system::<f64>(&BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    });
    let start = StartSystem::uniform(2, 2);
    let starts: Vec<Vec<C64>> = (0..4u128).map(|i| start.solution_by_index(i)).collect();
    let gpu = BatchGpuEvaluator::new(&small, starts.len(), GpuOptions::default()).unwrap();
    let mut h = BatchHomotopy::with_random_gamma(start, gpu, 7);
    let r = track_lockstep(&mut h, &starts, TrackParams::default());
    println!();
    println!(
        "lockstep tracking: {}/{} paths reached t = 1 in {} shared steps, {} batched round trips",
        r.successes(),
        r.paths.len(),
        r.steps_accepted,
        r.batch_rounds
    );
}
