//! Homotopy continuation end to end: solve a small polynomial system
//! by tracking all total-degree paths through the unified `Solver` —
//! the evaluation engine (the paper's contribution) sits in every
//! predictor and corrector evaluation.
//!
//! ```text
//! cargo run --release --example path_tracking
//! ```

use polygpu::prelude::*;

fn main() {
    // A small random target: 3 polynomials in 3 variables, 3 monomials
    // each, 2 variables per monomial, degree <= 2.
    let params = BenchmarkParams {
        n: 3,
        m: 3,
        k: 2,
        d: 2,
        seed: 31_415,
    };
    let target_system = random_system::<f64>(&params);
    println!("target system:\n{target_system}");

    // One request: all total-degree paths (the start system is derived
    // from the target's degrees), tracked by the queue scheduler on
    // the batched GPU backend.
    let req = SolveRequest::new(target_system).with_gamma_seed(2012);
    println!(
        "start system degrees {:?}: {} paths to track",
        req.start.degrees(),
        req.start.solution_count()
    );
    let solver =
        Solver::from_builder(Engine::builder().backend(Backend::GpuBatch { capacity: 16 }));
    let report = solver.solve(&req).expect("uniform system fits the device");

    for (idx, p) in report.paths.iter().enumerate() {
        if p.success() {
            println!("path {idx}: t = 1 reached, residual {:.2e}", p.residual);
        } else {
            println!("path {idx}: {:?}", p.outcome);
        }
    }
    println!(
        "\n{} paths finished, {} failed/diverged",
        report.successes(),
        report.paths.len() - report.successes()
    );
    println!(
        "scheduler: {} over {} slots, occupancy {:.2}, {} batched round trips",
        report.scheduler.name(),
        report.stats.slots,
        report.occupancy(),
        report.stats.batch_rounds
    );
    println!(
        "engine: {} on {} device(s), {} evaluations, modeled wall {:.1} ms",
        report.backend,
        report.caps.devices,
        report.engine.evaluations,
        report.engine.wall_clock_seconds() * 1e3
    );

    // Deduplicate endpoints to count distinct roots found.
    let mut distinct: Vec<Vec<C64>> = Vec::new();
    'outer: for p in report.paths.iter().filter(|p| p.success()) {
        let r = p.endpoint.to_f64();
        for d in &distinct {
            let dist: f64 = r
                .iter()
                .zip(d)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            if dist < 1e-6 {
                continue 'outer;
            }
        }
        distinct.push(r);
    }
    println!("distinct roots found: {}", distinct.len());
    for (i, root) in distinct.iter().take(4).enumerate() {
        println!("  root {i}: ({}, {}, ...)", root[0], root[1]);
    }
    assert!(report.successes() > 0, "at least one path must finish");
}
