//! Homotopy continuation end to end: solve a small polynomial system
//! by tracking all paths from a total-degree start system, with the
//! evaluation engine (the paper's contribution) in the corrector.
//!
//! ```text
//! cargo run --release --example path_tracking
//! ```

use polygpu::prelude::*;

fn main() {
    // A small random target: 3 polynomials in 3 variables, 3 monomials
    // each, 2 variables per monomial, degree <= 2.
    let params = BenchmarkParams {
        n: 3,
        m: 3,
        k: 2,
        d: 2,
        seed: 31_415,
    };
    let target_system = random_system::<f64>(&params);
    println!("target system:\n{target_system}");

    // Total-degree start system x_i^{d_i} - 1 = 0.
    let degrees: Vec<u32> = target_system
        .polys()
        .iter()
        .map(|p| p.total_degree())
        .collect();
    let start = StartSystem::new(degrees.clone());
    println!(
        "start system degrees {degrees:?}: {} paths to track",
        start.solution_count()
    );

    let mut finished = 0usize;
    let mut diverged = 0usize;
    let mut evals_total = 0usize;
    let mut roots: Vec<Vec<C64>> = Vec::new();
    for idx in 0..start.solution_count() {
        let x0: Vec<C64> = start.solution_by_index(idx);
        let target = AdEvaluator::new(target_system.clone()).unwrap();
        let mut h = Homotopy::with_random_gamma(start.clone(), target, 2012);
        let r = track(&mut h, &x0, TrackParams::default());
        evals_total += r.corrector_iterations + r.steps_accepted + r.steps_rejected;
        if r.success() {
            finished += 1;
            // Verify the endpoint against the target.
            let mut check = AdEvaluator::new(target_system.clone()).unwrap();
            let resid = check.evaluate(&r.end().x).residual_norm();
            println!(
                "path {idx}: t = 1 reached in {} steps ({} rejected), residual {resid:.2e}",
                r.steps_accepted, r.steps_rejected
            );
            roots.push(r.end().x.clone());
        } else {
            diverged += 1;
            println!("path {idx}: {:?}", r.outcome);
        }
    }
    println!("\n{finished} paths finished, {diverged} failed/diverged");
    println!("total evaluator calls across all paths: ~{evals_total}");

    // Deduplicate endpoints to count distinct roots found.
    let mut distinct: Vec<Vec<C64>> = Vec::new();
    'outer: for r in &roots {
        for d in &distinct {
            let dist: f64 = r
                .iter()
                .zip(d)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            if dist < 1e-6 {
                continue 'outer;
            }
        }
        distinct.push(r.clone());
    }
    println!("distinct roots found: {}", distinct.len());
    for (i, root) in distinct.iter().take(4).enumerate() {
        println!("  root {i}: ({}, {}, ...)", root[0], root[1]);
    }
    assert!(finished > 0, "at least one path must finish");
}
