//! Quickstart: build an engine with the unified builder, evaluate a
//! benchmark system and its Jacobian on the simulated GPU, compare
//! against the CPU reference built from the *same spec*, and read the
//! modeled device cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use polygpu::prelude::*;

fn main() {
    // The paper's Table 1 shape: dimension 32, 32 monomials per
    // polynomial (1,024 total), 9 variables per monomial, degree <= 2.
    let params = BenchmarkParams {
        n: 32,
        m: 32,
        k: 9,
        d: 2,
        seed: 2012,
    };
    let system = random_system::<f64>(&params);
    let shape = system.uniform_shape().expect("generator is uniform");
    println!(
        "system: n = {}, m = {} per polynomial ({} monomials), k = {}, d = {}",
        shape.n,
        shape.m,
        shape.total_monomials(),
        shape.k,
        shape.d
    );

    // One builder, every backend. The paper's single-point pipeline:
    let mut gpu = Engine::builder()
        .backend(Backend::Gpu)
        .build(&system)
        .expect("fits the C2050");
    println!(
        "backend `{}`: {} bytes of 65,536 constant memory (positions + exponents)",
        gpu.caps().backend,
        gpu.caps().constant_bytes
    );

    // Evaluate at a random point on the unit torus.
    let x = random_point::<f64>(32, 7);
    let on_gpu = gpu.evaluate(&x);

    // The CPU reference from the same builder spec: bit-identical.
    let mut cpu = Engine::builder()
        .backend(Backend::CpuReference)
        .build(&system)
        .unwrap();
    let on_cpu = cpu.evaluate(&x);
    assert_eq!(on_gpu.values, on_cpu.values, "values must match bitwise");
    assert_eq!(
        on_gpu.jacobian.as_slice(),
        on_cpu.jacobian.as_slice(),
        "Jacobians must match bitwise"
    );
    println!("GPU pipeline result is bit-identical to the sequential algorithm");
    println!("f_0(x)        = {}", on_gpu.values[0]);
    println!("df_0/dx_0 (x) = {}", on_gpu.jacobian[(0, 0)]);

    // An independent oracle (naive powering + analytic derivatives).
    let mut oracle = NaiveEvaluator::new(system.clone());
    let diff = on_gpu.max_difference(&oracle.evaluate(&x));
    println!("max difference vs naive oracle: {diff:.2e} (rounding only)");

    // The modeled device cost behind the paper's tables.
    let stats = gpu.engine_stats();
    println!("\nmodeled device cost per evaluation:");
    println!(
        "  kernels   {:>8.2} us",
        stats.kernel_seconds / stats.evaluations as f64 * 1e6
    );
    println!(
        "  overhead  {:>8.2} us",
        stats.overhead_seconds / stats.evaluations as f64 * 1e6
    );
    println!(
        "  transfers {:>8.2} us",
        stats.transfer_seconds / stats.evaluations as f64 * 1e6
    );
    println!("  total     {:>8.2} us", stats.seconds_per_eval() * 1e6);
    println!(
        "  -> {:.2} s for the paper's 100,000 evaluations (paper measured 15.265 s)",
        stats.seconds_per_eval() * 1e5
    );

    // The batched engine from the same spec amortizes the fixed costs
    // (launch overhead + PCIe latency) across the whole batch.
    let mut batch = Engine::builder()
        .backend(Backend::GpuBatch { capacity: 64 })
        .build(&system)
        .unwrap();
    let points = random_points::<f64>(32, 64, 7);
    let evals = batch.try_evaluate_batch(&points).expect("within capacity");
    assert_eq!(evals.len(), 64);
    println!(
        "\nbatched backend at P = 64: fixed cost/eval {:.2} us (single-point: {:.2} us)",
        batch.engine_stats().overhead_transfer_per_eval() * 1e6,
        stats.overhead_transfer_per_eval() * 1e6
    );
}
