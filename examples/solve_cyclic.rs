//! Solve the cyclic 3-roots system end to end with the blackbox
//! total-degree driver — the kind of workload (PHCpack-style solving)
//! the paper's evaluation engine exists to accelerate.
//!
//! cyclic-3:  x0 + x1 + x2 = 0
//!            x0·x1 + x1·x2 + x2·x0 = 0
//!            x0·x1·x2 − 1 = 0
//!
//! has exactly 6 isolated solutions (the permutations of
//! `(1, w, w²)` and `(1, w², w)` scaled by cube roots of unity).
//!
//! ```text
//! cargo run --release --example solve_cyclic
//! ```

use polygpu::polysys::classic::cyclic;
use polygpu::prelude::*;

fn main() {
    let system = cyclic::<f64>(3);
    println!("cyclic 3-roots:\n{system}");
    let degrees: Vec<u32> = system.polys().iter().map(|p| p.total_degree()).collect();
    println!(
        "total degrees {degrees:?} -> Bezout number {}",
        degrees.iter().product::<u32>()
    );

    let result = solve_total_degree(
        degrees,
        || NaiveEvaluator::new(system.clone()),
        SolveParams::default(),
    );
    println!(
        "\ntracked {} paths: {} finished, {} failed; {} corrector iterations",
        result.paths_tracked,
        result.paths_finished,
        result.paths_failed,
        result.corrector_iterations
    );
    println!("distinct roots found: {}", result.roots.len());
    for (i, root) in result.roots.iter().enumerate() {
        print!("  root {i}: (");
        for (j, z) in root.x.iter().enumerate() {
            if j > 0 {
                print!(", ");
            }
            print!("{:.4}{:+.4}i", z.re, z.im);
        }
        println!(")  residual {:.1e}", root.residual);
    }

    // Verify every root on the original system.
    let mut check = NaiveEvaluator::new(system);
    for root in &result.roots {
        let resid = check.evaluate(&root.x).residual_norm();
        assert!(resid < 1e-8, "root fails verification: {resid:e}");
    }
    println!("\nall roots verified against the system (residual < 1e-8).");
    assert!(
        result.roots.len() == 6,
        "cyclic-3 has 6 isolated solutions, found {}",
        result.roots.len()
    );
    println!("found the full solution set (6 isolated roots) — matching theory.");
}
