//! Property-based tests for the extended-precision arithmetic.
//!
//! The oracle for `Dd` is the exact-expansion machinery (`expansion`),
//! and the oracle for `Qd` is exactness of small-integer arithmetic plus
//! algebraic identities with tight error bounds.

use polygpu_qd::dd::Dd;
use polygpu_qd::eft::{two_prod, two_sum};
use polygpu_qd::expansion::distill;
use polygpu_qd::qd4::Qd;
use proptest::prelude::*;

/// Finite, not-too-extreme doubles so products/sums do not overflow and
/// Dekker's split stays exact.
fn sane_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e120f64..1e120,
        -1e3f64..1e3,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(-1.0),
    ]
    .prop_filter("finite", |x| x.is_finite())
}

fn dd() -> impl Strategy<Value = Dd> {
    (sane_f64(), -1e-3f64..1e-3).prop_map(|(hi, rel)| {
        let lo = hi * rel * f64::EPSILON;
        Dd::renorm(hi, lo)
    })
}

fn ulp(x: f64) -> f64 {
    if x == 0.0 {
        return f64::MIN_POSITIVE;
    }
    f64::from_bits(x.abs().to_bits() + 1) - x.abs()
}

proptest! {
    #[test]
    fn two_sum_is_error_free(a in sane_f64(), b in sane_f64()) {
        let (s, e) = two_sum(a, b);
        // s is the rounded sum
        prop_assert_eq!(s, a + b);
        // s + e reproduces the pair exactly: check via the exact expansion
        let d = distill::<2>(&[a, b]);
        prop_assert_eq!(d[0], s);
        prop_assert_eq!(d[1], e);
    }

    #[test]
    fn two_prod_is_error_free(a in -1e100f64..1e100, b in -1e100f64..1e100) {
        let (p, e) = two_prod(a, b);
        prop_assert_eq!(p, a * b);
        // Dekker split variant must agree with the FMA variant.
        let (p2, e2) = polygpu_qd::eft::two_prod_split(a, b);
        prop_assert_eq!(p, p2);
        prop_assert_eq!(e, e2);
    }

    #[test]
    fn dd_is_normalized_after_every_op(a in dd(), b in dd()) {
        for v in [a + b, a - b, a * b] {
            if v.is_finite() && v.hi() != 0.0 {
                prop_assert!(v.lo().abs() <= ulp(v.hi()),
                    "unnormalized result {:?}", v);
            }
        }
    }

    #[test]
    fn dd_add_matches_exact_expansion(a in dd(), b in dd()) {
        let s = a + b;
        let exact = distill::<4>(&[a.hi(), a.lo(), b.hi(), b.lo()]);
        // accurate dd addition is within 2 ulp of the dd rounding of the
        // exact sum
        let expect = Dd::renorm(exact[0], exact[1]);
        let diff = (s - expect).abs();
        let scale = expect.abs().to_f64().max(f64::MIN_POSITIVE);
        prop_assert!(diff.to_f64() <= 4.0 * Dd::EPSILON * scale,
            "dd add off: got {:?} want {:?}", s, expect);
    }

    #[test]
    fn dd_mul_matches_exact_expansion(a in dd(), b in dd()) {
        let p = a * b;
        if !p.is_finite() { return Ok(()); }
        let mut terms = Vec::new();
        for (x, y) in [(a.hi(), b.hi()), (a.hi(), b.lo()), (a.lo(), b.hi()), (a.lo(), b.lo())] {
            let (v, e) = two_prod(x, y);
            terms.push(v);
            terms.push(e);
        }
        let exact = distill::<4>(&terms);
        let expect = Dd::renorm(exact[0], exact[1]);
        let diff = (p - expect).abs();
        let scale = expect.abs().to_f64().max(f64::MIN_POSITIVE);
        prop_assert!(diff.to_f64() <= 8.0 * Dd::EPSILON * scale,
            "dd mul off: got {:?} want {:?}", p, expect);
    }

    #[test]
    fn dd_div_times_divisor_round_trips(a in dd(), b in dd()) {
        prop_assume!(b.abs().to_f64() > 1e-100);
        prop_assume!(a.abs().to_f64() < 1e100);
        let q = a / b;
        if !q.is_finite() { return Ok(()); }
        let back = q * b;
        let diff = (back - a).abs().to_f64();
        let scale = a.abs().to_f64().max(1e-300);
        prop_assert!(diff <= 16.0 * Dd::EPSILON * scale,
            "a/b*b != a: {:?} vs {:?}", back, a);
    }

    #[test]
    fn dd_sqrt_squares_back(a in 1e-100f64..1e100) {
        let s = Dd::from_f64(a).sqrt();
        let diff = (s.sqr() - Dd::from_f64(a)).abs().to_f64();
        prop_assert!(diff <= 16.0 * Dd::EPSILON * a);
    }

    #[test]
    fn dd_parse_print_round_trip(a in dd()) {
        prop_assume!(a.is_finite());
        prop_assume!(a.abs().to_f64() < 1e100 && (a.is_zero() || a.abs().to_f64() > 1e-100));
        let s = format!("{a}");
        let back: Dd = s.parse().unwrap();
        let diff = (back - a).abs().to_f64();
        let scale = a.abs().to_f64().max(f64::MIN_POSITIVE);
        prop_assert!(diff <= 1e-30 * scale, "{a:?} -> {s} -> {back:?}");
    }

    #[test]
    fn qd_add_sub_cancels(a in sane_f64(), b in sane_f64()) {
        let qa = Qd::from_f64(a);
        let qb = Qd::from_f64(b);
        let r = qa + qb - qb;
        // adding and subtracting a double is exact in qd for sane ranges
        prop_assert_eq!(r.to_f64(), a);
    }

    #[test]
    fn qd_mul_small_integers_exact(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let p = Qd::from_f64(a as f64) * Qd::from_f64(b as f64);
        prop_assert_eq!(p.to_f64(), (a * b) as f64);
        prop_assert_eq!(p.components()[1], 0.0);
    }

    #[test]
    fn qd_div_round_trips(a in 1e-50f64..1e50, b in 1e-50f64..1e50) {
        let q = Qd::from_f64(a) / Qd::from_f64(b);
        let back = q * Qd::from_f64(b);
        let diff = (back - Qd::from_f64(a)).abs().to_f64();
        prop_assert!(diff <= 16.0 * Qd::EPSILON * a.abs());
    }

    #[test]
    fn distill_is_order_insensitive(xs in prop::collection::vec(sane_f64(), 0..12), seed in 0u64..1000) {
        let a = distill::<4>(&xs);
        // deterministic shuffle
        let mut ys = xs.clone();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..ys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ys.swap(i, j);
        }
        let b = distill::<4>(&ys);
        // The represented values may differ only by the rounding of the
        // folded tail, i.e. below one ulp of the fourth component
        // (~2^-212 relative). Compare values via an exact expansion of
        // the difference.
        let diff = distill::<4>(&[a[0], a[1], a[2], a[3], -b[0], -b[1], -b[2], -b[3]]);
        let tol = (a[0].abs() * 2f64.powi(-200)).max(1e-300);
        prop_assert!(diff[0].abs() <= tol,
            "distill order-dependent beyond tail rounding: {:?} vs {:?} (diff {:e})",
            a, b, diff[0]);
    }

    #[test]
    fn real_trait_powi_agrees_across_types(x in -4.0f64..4.0, n in 0i32..8) {
        let f = x.powi(n);
        let d = Dd::from_f64(x).powi(n).to_f64();
        let q = Qd::from_f64(x).powi(n).to_f64();
        if f.abs() < 1e300 {
            prop_assert!((f - d).abs() <= f.abs() * 1e-13 + 1e-300);
            prop_assert!((f - q).abs() <= f.abs() * 1e-13 + 1e-300);
        }
    }
}
