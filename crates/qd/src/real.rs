//! The [`Real`] abstraction: the scalar field every layer of the library
//! (complex arithmetic, polynomial evaluation, GPU kernels, path
//! tracking) is generic over.
//!
//! Implementations are provided for hardware `f64`, double-double
//! ([`crate::dd::Dd`]) and quad-double ([`crate::qd4::Qd`]), mirroring
//! the precision ladder of the reproduced paper (double on the device
//! today, double-double/quad-double as the motivating extension).

use crate::dd::Dd;
use crate::qd4::Qd;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable throughout the evaluation stack.
///
/// The associated constants feed the GPU cost model: `FLOP_WEIGHT` is the
/// approximate number of hardware double operations one basic operation
/// of this type costs. The value for `Dd` reflects the ~8x overhead the
/// authors measured for double-double in their multicore companion work
/// (Verschelde & Yoffe, PASCO 2010); `Qd` uses the conventional ~60x.
/// Benchmarks (`dd_overhead`) measure the true factor on the host.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Short human-readable name ("f64", "dd", "qd") used in reports.
    const NAME: &'static str;
    /// Cost of one basic operation in units of hardware double flops.
    const FLOP_WEIGHT: u32;
    /// Size in bytes of one value in device memory. Matches the paper's
    /// accounting: a complex double is 16 bytes, complex double-double 32.
    const DEVICE_BYTES: usize;

    fn zero() -> Self;
    fn one() -> Self;
    fn from_f64(x: f64) -> Self;
    fn from_u32(x: u32) -> Self {
        Self::from_f64(x as f64)
    }
    /// Nearest double.
    fn to_f64(self) -> f64;
    /// Unit roundoff of the format (as the format itself).
    fn epsilon() -> Self;
    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn floor(self) -> Self;
    fn is_finite(self) -> bool;
    fn is_nan(self) -> bool;
    fn recip(self) -> Self {
        Self::one() / self
    }
    /// Integer power; `powi(0) == 1`.
    fn powi(self, n: i32) -> Self;
    fn max_val(self, other: Self) -> Self {
        if other > self {
            other
        } else {
            self
        }
    }
    fn min_val(self, other: Self) -> Self {
        if other < self {
            other
        } else {
            self
        }
    }
}

impl Real for f64 {
    const NAME: &'static str = "f64";
    const FLOP_WEIGHT: u32 = 1;
    const DEVICE_BYTES: usize = 8;

    #[inline]
    fn zero() -> f64 {
        0.0
    }
    #[inline]
    fn one() -> f64 {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn epsilon() -> f64 {
        f64::EPSILON / 2.0
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    #[inline]
    fn floor(self) -> f64 {
        f64::floor(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn powi(self, n: i32) -> f64 {
        f64::powi(self, n)
    }
}

impl Real for Dd {
    const NAME: &'static str = "dd";
    const FLOP_WEIGHT: u32 = 8;
    const DEVICE_BYTES: usize = 16;

    #[inline]
    fn zero() -> Dd {
        Dd::ZERO
    }
    #[inline]
    fn one() -> Dd {
        Dd::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Dd {
        Dd::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Dd::to_f64(self)
    }
    #[inline]
    fn epsilon() -> Dd {
        Dd::from_f64(Dd::EPSILON)
    }
    #[inline]
    fn abs(self) -> Dd {
        Dd::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Dd {
        Dd::sqrt(self)
    }
    #[inline]
    fn floor(self) -> Dd {
        Dd::floor(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Dd::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Dd::is_nan(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Dd {
        Dd::powi(self, n)
    }
}

impl Real for Qd {
    const NAME: &'static str = "qd";
    const FLOP_WEIGHT: u32 = 60;
    const DEVICE_BYTES: usize = 32;

    #[inline]
    fn zero() -> Qd {
        Qd::ZERO
    }
    #[inline]
    fn one() -> Qd {
        Qd::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Qd {
        Qd::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Qd::to_f64(self)
    }
    #[inline]
    fn epsilon() -> Qd {
        Qd::from_f64(Qd::EPSILON)
    }
    #[inline]
    fn abs(self) -> Qd {
        Qd::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Qd {
        Qd::sqrt(self)
    }
    #[inline]
    fn floor(self) -> Qd {
        Qd::floor(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Qd::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Qd::is_nan(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Qd {
        Qd::powi(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<R: Real>() {
        let two = R::from_f64(2.0);
        let three = R::from_f64(3.0);
        assert_eq!((two * three).to_f64(), 6.0);
        assert_eq!((three - two).to_f64(), 1.0);
        assert!((two / three).to_f64() - 2.0 / 3.0 < 1e-15);
        assert_eq!(two.powi(10).to_f64(), 1024.0);
        assert_eq!(R::zero() + R::one(), R::one());
        assert!(two.sqrt() * two.sqrt() - two < R::from_f64(1e-14));
        assert!(R::epsilon() > R::zero());
        assert!(R::from_f64(-5.5).abs().to_f64() == 5.5);
        assert_eq!(R::from_f64(2.7).floor().to_f64(), 2.0);
        assert!(two.is_finite());
        assert!(!two.is_nan());
        assert_eq!(two.max_val(three), three);
        assert_eq!(two.min_val(three), two);
        assert_eq!(two.recip() * two, R::one());
    }

    #[test]
    fn all_reals_satisfy_basic_algebra() {
        exercise::<f64>();
        exercise::<Dd>();
        exercise::<Qd>();
    }

    #[test]
    fn precision_ladder_epsilons_decrease() {
        let (f, dd, qd) = (f64::EPSILON, Dd::EPSILON, Qd::EPSILON);
        assert!(dd < f);
        assert!(qd < dd);
    }

    #[test]
    fn device_bytes_match_paper_accounting() {
        // Paper section 3.2: complex double double = 2 * 16 bytes.
        assert_eq!(2 * Dd::DEVICE_BYTES, 32);
        assert_eq!(2 * f64::DEVICE_BYTES, 16);
    }
}
