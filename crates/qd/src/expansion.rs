//! Exact floating-point expansions (Shewchuk 1997) used as the verified
//! backbone of quad-double arithmetic.
//!
//! An *expansion* is a list of doubles whose exact sum is the represented
//! value. [`grow_expansion`] inserts one double exactly; [`distill`]
//! extracts the `N` most significant components of an arbitrary list of
//! doubles, losing only what lies below the `N`-th component — for
//! `N = 4` that is a relative error around `2^-212`, matching quad-double.
//!
//! This module trades speed for verifiability: quad-double products are
//! formed by summing all `two_prod` partial products exactly rather than
//! by the hand-scheduled QD kernels, so every `Qd` operation is an exact
//! computation followed by one well-understood truncation. The
//! double-double type (`Dd`), which *is* on the hot path of the paper's
//! experiments, uses the fast hand-scheduled kernels instead, and its
//! tests use this module as the oracle.

use crate::eft::{quick_two_sum, two_sum};

/// Add the scalar `b` exactly to the expansion `e` (components in
/// increasing order of magnitude), writing the result into `out`.
///
/// This is Shewchuk's GROW-EXPANSION: the output has `e.len() + 1`
/// components and the identical exact sum.
pub fn grow_expansion(e: &[f64], b: f64, out: &mut Vec<f64>) {
    out.clear();
    let mut q = b;
    for &comp in e {
        let (s, err) = two_sum(q, comp);
        out.push(err);
        q = s;
    }
    out.push(q);
}

/// Exact sum of `xs` truncated to its `N` most significant components.
///
/// Builds the *exact* nonoverlapping expansion of `Σ xs` by repeated
/// [`grow_expansion`] (Shewchuk, Theorem 10: growing a nonoverlapping
/// expansion preserves nonoverlap and magnitude ordering), then keeps the
/// `N` most significant components, folding everything below them into
/// the last kept component before canonicalizing with
/// [`renorm_in_place`]. The discarded tail is below one ulp of the `N`-th
/// component, so for `N = 4` the relative truncation error is ~`2^-212`.
pub fn distill<const N: usize>(xs: &[f64]) -> [f64; N] {
    let mut e: Vec<f64> = Vec::with_capacity(xs.len() + 1);
    let mut tmp: Vec<f64> = Vec::with_capacity(xs.len() + 1);
    for &x in xs {
        if x == 0.0 {
            continue;
        }
        grow_expansion(&e, x, &mut tmp);
        std::mem::swap(&mut e, &mut tmp);
    }
    // e: exact expansion, increasing magnitude, possibly with zeros.
    let mut out = [0.0; N];
    let mut kept = 0;
    let mut tail = 0.0f64; // float sum of everything below the kept components
    let mut idx = e.len();
    while idx > 0 && kept < N {
        idx -= 1;
        if e[idx] != 0.0 {
            out[kept] = e[idx];
            kept += 1;
        }
    }
    // Remaining (less significant) components: fold their float sum into
    // the last kept slot. |tail| < ulp(out[N-1]) by nonoverlap, so this
    // only affects the rounding of the final component.
    for &c in e[..idx].iter() {
        tail += c;
    }
    if kept > 0 {
        out[kept - 1] += tail;
    }
    renorm_in_place(&mut out);
    out
}

/// Renormalize `a` (components in decreasing order of magnitude, roughly
/// non-overlapping) into the canonical form where `a[i+1]` is at most
/// half an ulp of `a[i]`. This is the QD library's `renorm`, generalized
/// to any component count.
// The component cascade reads most clearly with explicit indices.
#[allow(clippy::needless_range_loop)]
pub fn renorm_in_place<const N: usize>(a: &mut [f64; N]) {
    if N < 2 {
        return;
    }
    if !a[0].is_finite() {
        return;
    }
    // Bottom-up pass: compress trailing components upward.
    let mut s = a[N - 1];
    for i in (0..N - 1).rev() {
        let (sum, err) = quick_two_sum(a[i], s);
        s = sum;
        a[i + 1] = err;
    }
    a[0] = s;
    // Top-down pass: re-accumulate, skipping zeros.
    let mut out = [0.0; N];
    let mut k = 0;
    let mut s = a[0];
    for i in 1..N {
        let (sum, err) = quick_two_sum(s, a[i]);
        s = sum;
        if err != 0.0 {
            out[k] = s;
            s = err;
            k += 1;
            if k == N - 1 {
                break;
            }
        }
    }
    if k < N {
        out[k] = s;
    }
    *a = out;
}

/// Exact sum of two doubles as a two-component expansion, convenience
/// re-export for oracle tests.
pub fn two_sum_expansion(a: f64, b: f64) -> [f64; 2] {
    let (s, e) = two_sum(a, b);
    [s, e]
}

/// Total value of an expansion as the nearest double (for diagnostics
/// only; loses the low components by construction).
pub fn approx_value(e: &[f64]) -> f64 {
    // Sum from smallest magnitude for best accuracy.
    let mut v: Vec<f64> = e.to_vec();
    v.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_expansion_preserves_exact_sum() {
        let e = [1e-30, 1.0];
        let mut out = Vec::new();
        grow_expansion(&e, 1e30, &mut out);
        assert_eq!(out.len(), 3);
        // The exact sum is preserved: distilling recovers all three scales.
        let comps = distill::<4>(&out);
        assert_eq!(comps[0], 1e30);
        assert_eq!(comps[1], 1.0);
        assert_eq!(comps[2], 1e-30);
    }

    #[test]
    fn distill_collapses_representable_sums() {
        let comps = distill::<4>(&[1.5, 2.25, -0.75]);
        assert_eq!(comps, [3.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn distill_orders_widely_separated_terms() {
        let xs = [2f64.powi(-200), 1.0, 2f64.powi(-100), 2f64.powi(100)];
        let comps = distill::<4>(&xs);
        assert_eq!(comps[0], 2f64.powi(100));
        assert_eq!(comps[1], 1.0);
        assert_eq!(comps[2], 2f64.powi(-100));
        assert_eq!(comps[3], 2f64.powi(-200));
    }

    #[test]
    fn distill_handles_massive_cancellation() {
        let xs = [1e20, 1.0, -1e20, 2f64.powi(-60)];
        let comps = distill::<4>(&xs);
        assert_eq!(comps[0], 1.0);
        assert_eq!(comps[1], 2f64.powi(-60));
        assert_eq!(comps[2], 0.0);
    }

    #[test]
    fn renorm_canonical_invariant() {
        fn ulp(x: f64) -> f64 {
            f64::from_bits(x.abs().to_bits() + 1) - x.abs()
        }
        let mut a = [1.0, 2f64.powi(-53), 2f64.powi(-54), 2f64.powi(-108)];
        renorm_in_place(&mut a);
        for i in 0..3 {
            if a[i] != 0.0 && a[i + 1] != 0.0 {
                assert!(
                    a[i + 1].abs() <= ulp(a[i]),
                    "component {} overlaps: {:?}",
                    i,
                    a
                );
            }
        }
    }

    #[test]
    fn distill_empty_and_zero_inputs() {
        assert_eq!(distill::<4>(&[]), [0.0; 4]);
        assert_eq!(distill::<4>(&[0.0, -0.0, 0.0]), [0.0; 4]);
    }
}
