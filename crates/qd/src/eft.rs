//! Error-free transforms (EFT): the floating-point building blocks of
//! double-double and quad-double arithmetic.
//!
//! Every function in this module returns a pair `(s, e)` such that
//! `s + e == a ∘ b` *exactly* (as a real number), with `s = fl(a ∘ b)` the
//! correctly rounded result and `e` the rounding error. These identities
//! go back to Dekker (1971) and Knuth; see also Hida, Li & Bailey,
//! "Algorithms for quad-double precision floating point arithmetic"
//! (Arith-15, 2001), whose QD 2.3.9 library the paper under reproduction
//! uses on the host.
//!
//! All functions assume round-to-nearest-even and no overflow/underflow in
//! intermediates; `two_prod_split` additionally requires `|a|, |b| <
//! 2^996` so Dekker's splitting does not overflow.

/// Knuth's TwoSum: `(s, e)` with `s + e == a + b` exactly, for any `a, b`.
///
/// 6 flops. Use [`quick_two_sum`] when `|a| >= |b|` is known.
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Dekker's FastTwoSum: `(s, e)` with `s + e == a + b` exactly,
/// **requires** `|a| >= |b|` (or `a == 0`).
///
/// 3 flops.
#[inline(always)]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// TwoDiff: `(s, e)` with `s + e == a - b` exactly, for any `a, b`.
#[inline(always)]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let s = a - b;
    let bb = s - a;
    let e = (a - (s - bb)) - (b + bb);
    (s, e)
}

/// Dekker's splitting constant: `2^27 + 1`.
const SPLIT: f64 = 134_217_729.0;

/// Split `a` into `hi + lo` where both halves have at most 26 significant
/// bits, so products of halves are exact in double precision.
#[inline(always)]
pub fn split(a: f64) -> (f64, f64) {
    let t = SPLIT * a;
    let hi = t - (t - a);
    let lo = a - hi;
    (hi, lo)
}

/// TwoProd via fused multiply-add: `(p, e)` with `p + e == a * b` exactly.
///
/// `f64::mul_add` guarantees a single rounding, so `e` is the exact
/// product error even when the platform lacks an FMA unit (libm fallback).
#[inline(always)]
pub fn two_prod_fma(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// Dekker's TwoProd via splitting: `(p, e)` with `p + e == a * b` exactly.
///
/// Portable and branch-free; 17 flops. Preferred over [`two_prod_fma`] on
/// targets without hardware FMA, where `mul_add` falls back to a slow
/// correctly-rounded libm routine.
#[inline(always)]
pub fn two_prod_split(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

/// TwoProd: exact product transform, dispatching to the FMA version when
/// the target was compiled with hardware FMA and to Dekker's split
/// otherwise.
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    if cfg!(target_feature = "fma") {
        two_prod_fma(a, b)
    } else {
        two_prod_split(a, b)
    }
}

/// TwoSqr: `(p, e)` with `p + e == a * a` exactly; cheaper than
/// `two_prod(a, a)` in the split formulation.
#[inline(always)]
pub fn two_sqr(a: f64) -> (f64, f64) {
    if cfg!(target_feature = "fma") {
        let p = a * a;
        (p, f64::mul_add(a, a, -p))
    } else {
        let p = a * a;
        let (hi, lo) = split(a);
        let e = ((hi * hi - p) + 2.0 * hi * lo) + lo * lo;
        (p, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact_on_representable_cases() {
        // 1 + 2^-60: the error term must recover the lost bits.
        let a = 1.0;
        let b = (2.0f64).powi(-60);
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, b);
    }

    #[test]
    fn two_sum_commutes_in_value() {
        let a = 1e16;
        let b = 1.2345;
        let (s1, e1) = two_sum(a, b);
        let (s2, e2) = two_sum(b, a);
        assert_eq!(s1, s2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn quick_two_sum_matches_two_sum_when_ordered() {
        let a = 3.5e10;
        let b = -1.25e-3;
        let (s1, e1) = two_sum(a, b);
        let (s2, e2) = quick_two_sum(a, b);
        assert_eq!(s1, s2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn two_diff_exact() {
        let a = 1.0;
        let b = (2.0f64).powi(-55);
        let (s, e) = two_diff(a, b);
        // s + e == a - b exactly: reconstruct via exact arithmetic on powers of two
        assert_eq!(s, 1.0);
        assert_eq!(e, -b);
    }

    #[test]
    fn split_halves_reconstruct() {
        fn significant_bits(x: f64) -> u32 {
            if x == 0.0 {
                return 0;
            }
            let mantissa = (x.to_bits() & ((1u64 << 52) - 1)) | (1u64 << 52);
            53 - mantissa.trailing_zeros()
        }
        for &a in &[1.0, std::f64::consts::PI, -1.5e300 / 1e4, 3.3333e-7] {
            let (hi, lo) = split(a);
            assert_eq!(hi + lo, a, "halves must reconstruct exactly");
            // Dekker's split: hi carries at most 27 significant bits,
            // lo at most 26, so the two_prod error formula is exact.
            assert!(significant_bits(hi) <= 27, "hi too wide for {a}");
            assert!(significant_bits(lo) <= 26, "lo too wide for {a}");
            assert!(lo.abs() <= hi.abs());
        }
    }

    #[test]
    fn two_prod_variants_agree() {
        let cases = [
            (std::f64::consts::PI, std::f64::consts::E),
            (1.0 + 2f64.powi(-30), 1.0 - 2f64.powi(-30)),
            (1e150, 1e-150),
            (-7.25, 0.1),
        ];
        for &(a, b) in &cases {
            let (p1, e1) = two_prod_fma(a, b);
            let (p2, e2) = two_prod_split(a, b);
            assert_eq!(p1, p2, "products differ for {a} * {b}");
            assert_eq!(e1, e2, "errors differ for {a} * {b}");
        }
    }

    #[test]
    fn two_prod_error_is_nonzero_for_inexact_product() {
        // pi * e is not representable: the error term must be nonzero.
        let (_, e) = two_prod(std::f64::consts::PI, std::f64::consts::E);
        assert_ne!(e, 0.0);
    }

    #[test]
    fn two_sqr_matches_two_prod() {
        for &a in &[std::f64::consts::PI, 1.0 + 2f64.powi(-40), -3.7e8] {
            let (p1, e1) = two_sqr(a);
            let (p2, e2) = two_prod(a, a);
            assert_eq!(p1, p2);
            assert_eq!(e1, e2);
        }
    }
}
