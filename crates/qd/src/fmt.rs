//! Decimal conversion for extended-precision reals.
//!
//! Digit extraction and accumulation are performed *in the target
//! format*, so printing a `Dd` yields its true ~32 significant digits
//! and parsing recovers the nearest `Dd` (up to one round-off in the
//! final scaling), and likewise for `Qd`.

use crate::real::Real;
use std::fmt;

/// Error returned when parsing a decimal string into a [`Real`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRealError {
    message: String,
}

impl ParseRealError {
    fn new(msg: impl Into<String>) -> Self {
        ParseRealError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for ParseRealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid real literal: {}", self.message)
    }
}

impl std::error::Error for ParseRealError {}

/// Render `x` with `digits` significant decimal digits in scientific
/// notation (`d.ddd...e±EE`).
pub fn to_decimal_string<R: Real>(x: R, digits: usize) -> String {
    let digits = digits.max(1);
    if x.is_nan() {
        return "NaN".to_string();
    }
    if !x.is_finite() {
        return if x > R::zero() { "inf" } else { "-inf" }.to_string();
    }
    if x == R::zero() {
        let mut s = String::from("0.");
        s.push_str(&"0".repeat(digits.saturating_sub(1)));
        s.push_str("e0");
        return s;
    }
    let neg = x < R::zero();
    let mut v = x.abs();
    let ten = R::from_f64(10.0);

    // Decimal exponent via the double estimate, then correct by scaling.
    let mut exp = v.to_f64().abs().log10().floor() as i32;
    v = scale_pow10(v, -exp);
    // Correct drift so that 1 <= v < 10.
    while v >= ten {
        v /= ten;
        exp += 1;
    }
    while v < R::one() {
        v *= ten;
        exp -= 1;
    }

    // Extract digits; one extra for rounding.
    let mut raw = Vec::with_capacity(digits + 1);
    for _ in 0..=digits {
        let d = v.floor().to_f64() as i32;
        // Clamp against tiny negative drift in the last places.
        let d = d.clamp(0, 9);
        raw.push(d as u8);
        v = (v - R::from_f64(d as f64)) * ten;
    }
    // Round using the extra digit.
    if raw[digits] >= 5 {
        let mut i = digits;
        loop {
            if i == 0 {
                // 9.99..9 rounded up: shift exponent.
                raw.insert(0, 1);
                exp += 1;
                break;
            }
            i -= 1;
            if raw[i] == 9 {
                raw[i] = 0;
            } else {
                raw[i] += 1;
                break;
            }
        }
    }
    raw.truncate(digits);

    let mut s = String::with_capacity(digits + 8);
    if neg {
        s.push('-');
    }
    s.push((b'0' + raw[0]) as char);
    if digits > 1 {
        s.push('.');
        for &d in &raw[1..] {
            s.push((b'0' + d) as char);
        }
    }
    s.push('e');
    s.push_str(&exp.to_string());
    s
}

/// Multiply by `10^e` using exact binary exponentiation of the decimal
/// base in the target format.
fn scale_pow10<R: Real>(x: R, e: i32) -> R {
    if e == 0 {
        return x;
    }
    let p = R::from_f64(10.0).powi(e.abs());
    if e > 0 {
        x * p
    } else {
        x / p
    }
}

/// Parse a decimal literal (`[+-]?digits[.digits][eE[+-]?digits]`) into
/// any [`Real`], accumulating digit-by-digit in the target precision.
pub fn parse_decimal<R: Real>(s: &str) -> Result<R, ParseRealError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ParseRealError::new("empty string"));
    }
    match s {
        "inf" | "+inf" => return Ok(R::from_f64(f64::INFINITY)),
        "-inf" => return Ok(R::from_f64(f64::NEG_INFINITY)),
        "NaN" | "nan" => return Ok(R::from_f64(f64::NAN)),
        _ => {}
    }
    let bytes = s.as_bytes();
    let mut i = 0;
    let neg = match bytes[0] {
        b'-' => {
            i = 1;
            true
        }
        b'+' => {
            i = 1;
            false
        }
        _ => false,
    };
    let ten = R::from_f64(10.0);
    let mut acc = R::zero();
    let mut any_digit = false;
    let mut frac_digits: i32 = 0;
    let mut seen_dot = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => {
                acc = acc * ten + R::from_f64((bytes[i] - b'0') as f64);
                if seen_dot {
                    frac_digits += 1;
                }
                any_digit = true;
            }
            b'.' if !seen_dot => seen_dot = true,
            b'e' | b'E' => break,
            c => {
                return Err(ParseRealError::new(format!(
                    "unexpected byte {:?}",
                    c as char
                )))
            }
        }
        i += 1;
    }
    if !any_digit {
        return Err(ParseRealError::new("no digits"));
    }
    let mut exp: i32 = 0;
    if i < bytes.len() {
        // bytes[i] is 'e' or 'E'
        let e_str = &s[i + 1..];
        exp = e_str
            .parse::<i32>()
            .map_err(|e| ParseRealError::new(format!("bad exponent {e_str:?}: {e}")))?;
    }
    let total_exp = exp - frac_digits;
    let mut v = scale_pow10(acc, total_exp);
    if neg {
        v = -v;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd::Dd;
    use crate::qd4::Qd;

    #[test]
    fn f64_print_parse_round_trip() {
        for &x in &[std::f64::consts::PI, -0.001953125, 12345.0, 1e-200] {
            let s = to_decimal_string(x, 17);
            let back: f64 = parse_decimal(&s).unwrap();
            assert!(
                (back - x).abs() <= x.abs() * 4.0 * f64::EPSILON,
                "{x} -> {s} -> {back}"
            );
        }
    }

    #[test]
    fn dd_prints_beyond_double_precision() {
        let third = Dd::ONE / Dd::from(3);
        let s = to_decimal_string(third, 32);
        assert!(s.starts_with("3.333333333333333333333333333333"), "{s}");
        assert!(s.ends_with("e-1"), "{s}");
    }

    #[test]
    fn dd_parse_recovers_low_word() {
        let x: Dd = "0.3333333333333333333333333333333333".parse().unwrap();
        let resid = (x * Dd::from(3) - Dd::ONE).abs();
        assert!(resid.to_f64() < 1e-31, "residual {resid:?}");
        assert_ne!(x.lo(), 0.0, "low word should carry extra precision");
    }

    #[test]
    fn qd_prints_64_digits_of_sqrt2() {
        let s2 = Qd::from(2).sqrt();
        let s = to_decimal_string(s2, 64);
        // sqrt(2) = 1.4142135623730950488016887242096980785696718753769480731766797380...
        assert!(
            s.starts_with("1.414213562373095048801688724209698078569671875376948073176679"),
            "{s}"
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_decimal::<f64>("").is_err());
        assert!(parse_decimal::<f64>("abc").is_err());
        assert!(parse_decimal::<f64>("1.2.3").is_err());
        assert!(parse_decimal::<f64>("1e").is_err());
        assert!(parse_decimal::<Dd>("--3").is_err());
    }

    #[test]
    fn zero_and_specials() {
        assert_eq!(to_decimal_string(0.0f64, 4), "0.000e0");
        assert_eq!(to_decimal_string(f64::NAN, 4), "NaN");
        assert_eq!(to_decimal_string(f64::INFINITY, 4), "inf");
        assert_eq!(to_decimal_string(f64::NEG_INFINITY, 4), "-inf");
        let z: Dd = "0".parse().unwrap();
        assert!(z.is_zero());
    }

    #[test]
    fn rounding_carries_through_nines() {
        let x = 0.9999999;
        let s = to_decimal_string(x, 3);
        assert_eq!(s, "1.00e0");
    }

    #[test]
    fn exponent_forms() {
        let a: Dd = "1.5e3".parse().unwrap();
        assert_eq!(a.to_f64(), 1500.0);
        let b: Dd = "-2.5E-2".parse().unwrap();
        assert_eq!(b.to_f64(), -0.025);
        let c: f64 = "+42".parse::<f64>().unwrap();
        assert_eq!(c, 42.0);
    }
}
