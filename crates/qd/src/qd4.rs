//! Quad-double arithmetic: an unevaluated sum of four `f64`s giving
//! roughly 212 bits (~64 decimal digits) of significand.
//!
//! Unlike [`crate::dd::Dd`] (which sits on the paper's hot path and uses
//! the hand-scheduled QD 2.3.9 kernels), `Qd` is built on verified exact
//! expansions ([`crate::expansion`]): every operation computes the exact
//! result as an expansion and truncates to the four most significant
//! components. This is slower than the hand-tuned library but easy to
//! audit, and the paper's experiments only need quad-double for the
//! "quality up" motivation, not for the benchmarked kernels.

use crate::eft::two_prod;
use crate::expansion::distill;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A quad-double number: the exact value is `c[0] + c[1] + c[2] + c[3]`,
/// with components in decreasing magnitude, each at most half an ulp of
/// its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Qd {
    c: [f64; 4],
}

impl Qd {
    pub const ZERO: Qd = Qd { c: [0.0; 4] };
    pub const ONE: Qd = Qd {
        c: [1.0, 0.0, 0.0, 0.0],
    };
    /// Unit roundoff of the quad-double format: `2^-212`.
    pub const EPSILON: f64 = 1.215_432_671_457_254e-64;

    #[inline]
    pub fn from_parts(c: [f64; 4]) -> Qd {
        Qd { c }
    }

    #[inline]
    pub fn components(self) -> [f64; 4] {
        self.c
    }

    #[inline]
    pub fn from_f64(x: f64) -> Qd {
        Qd {
            c: [x, 0.0, 0.0, 0.0],
        }
    }

    /// Exact promotion from double-double.
    #[inline]
    pub fn from_dd(x: crate::dd::Dd) -> Qd {
        Qd {
            c: [x.hi(), x.lo(), 0.0, 0.0],
        }
    }

    /// Nearest double-double to the represented value.
    #[inline]
    pub fn to_dd(self) -> crate::dd::Dd {
        crate::dd::Dd::renorm(self.c[0], self.c[1])
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.c[0]
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.c[0] == 0.0
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.c.iter().all(|x| x.is_finite())
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        self.c.iter().any(|x| x.is_nan())
    }

    pub fn abs(self) -> Qd {
        if self < Qd::ZERO {
            -self
        } else {
            self
        }
    }

    /// Square root by three Newton iterations on `1/sqrt(a)` starting from
    /// the double estimate; the final multiply-and-correct recovers full
    /// quad-double accuracy.
    pub fn sqrt(self) -> Qd {
        if self.is_zero() {
            return Qd::ZERO;
        }
        if self.c[0] < 0.0 {
            return Qd::from_f64(f64::NAN);
        }
        let half = Qd::from_f64(0.5);
        let mut x = Qd::from_f64(1.0 / self.c[0].sqrt());
        // y = 1/sqrt(a); iterate x += x*(1 - a*x^2)/2, doubling accuracy.
        for _ in 0..3 {
            let corr = Qd::ONE - self * x * x;
            x = x + x * corr * half;
        }
        let r = self * x; // ~ sqrt(a)
                          // One final correction in full precision.
        let resid = self - r * r;
        r + resid * x * half
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, n: i32) -> Qd {
        if n == 0 {
            return Qd::ONE;
        }
        let mut r = Qd::ONE;
        let mut base = self;
        let mut e = n.unsigned_abs();
        while e > 0 {
            if e & 1 == 1 {
                r *= base;
            }
            base = base * base;
            e >>= 1;
        }
        if n < 0 {
            Qd::ONE / r
        } else {
            r
        }
    }

    pub fn recip(self) -> Qd {
        Qd::ONE / self
    }

    #[allow(clippy::needless_range_loop)] // indexed truncation cascade
    pub fn floor(self) -> Qd {
        let mut out = [0.0; 4];
        for i in 0..4 {
            let f = self.c[i].floor();
            out[i] = f;
            if f != self.c[i] {
                // This component truncated: lower components are dropped.
                break;
            }
        }
        Qd {
            c: distill::<4>(&out),
        }
    }
}

impl Add for Qd {
    type Output = Qd;
    #[inline]
    fn add(self, b: Qd) -> Qd {
        let all = [
            self.c[0], self.c[1], self.c[2], self.c[3], b.c[0], b.c[1], b.c[2], b.c[3],
        ];
        Qd {
            c: distill::<4>(&all),
        }
    }
}

impl Sub for Qd {
    type Output = Qd;
    #[inline]
    fn sub(self, b: Qd) -> Qd {
        self + (-b)
    }
}

impl Mul for Qd {
    type Output = Qd;
    /// Product of all component pairs with `i + j <= 3` via exact
    /// `two_prod`, summed exactly; neglected terms are `O(2^-212)`
    /// relative.
    fn mul(self, b: Qd) -> Qd {
        let mut terms = [0.0f64; 20];
        let mut t = 0;
        for i in 0..4usize {
            for j in 0..4 - i {
                let (p, e) = two_prod(self.c[i], b.c[j]);
                terms[t] = p;
                terms[t + 1] = e;
                t += 2;
            }
        }
        Qd {
            c: distill::<4>(&terms),
        }
    }
}

impl Div for Qd {
    type Output = Qd;
    /// Long division: five quotient digits with exact residual updates,
    /// then truncation (QD's accurate division scheme).
    fn div(self, b: Qd) -> Qd {
        let mut q = [0.0f64; 5];
        let mut r = self;
        for qi in q.iter_mut() {
            *qi = r.c[0] / b.c[0];
            r -= b.mul_f64(*qi);
        }
        Qd {
            c: distill::<4>(&q),
        }
    }
}

impl Qd {
    /// Multiply by a double (used by division's residual updates).
    fn mul_f64(self, b: f64) -> Qd {
        let mut terms = [0.0f64; 8];
        for i in 0..4 {
            let (p, e) = two_prod(self.c[i], b);
            terms[2 * i] = p;
            terms[2 * i + 1] = e;
        }
        Qd {
            c: distill::<4>(&terms),
        }
    }
}

impl Neg for Qd {
    type Output = Qd;
    #[inline]
    fn neg(self) -> Qd {
        Qd {
            c: [-self.c[0], -self.c[1], -self.c[2], -self.c[3]],
        }
    }
}

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Qd {
            #[inline]
            fn $method(&mut self, rhs: Qd) {
                *self = *self $op rhs;
            }
        }
    };
}
impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

impl PartialOrd for Qd {
    fn partial_cmp(&self, other: &Qd) -> Option<Ordering> {
        for i in 0..4 {
            match self.c[i].partial_cmp(&other.c[i]) {
                Some(Ordering::Equal) => continue,
                ord => return ord,
            }
        }
        Some(Ordering::Equal)
    }
}

impl From<f64> for Qd {
    fn from(x: f64) -> Qd {
        Qd::from_f64(x)
    }
}

impl From<i32> for Qd {
    fn from(x: i32) -> Qd {
        Qd::from_f64(x as f64)
    }
}

impl fmt::Display for Qd {
    /// Renders 64 significant decimal digits by default.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = f.precision().unwrap_or(64);
        f.write_str(&crate::fmt::to_decimal_string(*self, digits))
    }
}

impl std::str::FromStr for Qd {
    type Err = crate::fmt::ParseRealError;
    fn from_str(s: &str) -> Result<Qd, Self::Err> {
        crate::fmt::parse_decimal(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tiny(x: Qd, scale: f64, msg: &str) {
        assert!(
            x.abs().to_f64() <= scale * 64.0 * Qd::EPSILON,
            "{msg}: residual {:?}",
            x
        );
    }

    #[test]
    fn one_third_times_three() {
        let third = Qd::ONE / Qd::from(3);
        assert_tiny(third * Qd::from(3) - Qd::ONE, 1.0, "1/3*3");
    }

    #[test]
    fn sqrt_two_squared() {
        let s = Qd::from(2).sqrt();
        assert_tiny(s * s - Qd::from(2), 2.0, "sqrt(2)^2");
    }

    #[test]
    fn add_keeps_four_scales() {
        let x = Qd::from_parts([2f64.powi(100), 1.0, 2f64.powi(-100), 2f64.powi(-200)]);
        let y = x + Qd::ZERO;
        assert_eq!(x, y);
        let z = x - Qd::from_f64(2f64.powi(100));
        assert_eq!(z.c[0], 1.0);
        assert_eq!(z.c[1], 2f64.powi(-100));
        assert_eq!(z.c[2], 2f64.powi(-200));
    }

    #[test]
    fn mul_exact_for_small_integers() {
        let p = Qd::from(1234567) * Qd::from(7654321);
        assert_eq!(p.to_f64(), 1234567.0 * 7654321.0);
        assert_eq!(p.c[1], 0.0);
    }

    #[test]
    fn mul_beats_dd_precision() {
        // (1 + 2^-150)^2 = 1 + 2^-149 + 2^-300; Qd captures the middle term.
        let x = Qd::from_parts([1.0, 2f64.powi(-150), 0.0, 0.0]);
        let sq = x * x;
        assert_eq!(sq.c[0], 1.0);
        assert_eq!(sq.c[1], 2f64.powi(-149));
    }

    #[test]
    fn div_round_trips() {
        let a = Qd::from_f64(std::f64::consts::PI);
        let b = Qd::from_f64(std::f64::consts::E);
        let q = a / b;
        assert_tiny(q * b - a, 4.0, "pi/e*e");
    }

    #[test]
    fn powi_consistency() {
        let x = Qd::from_f64(1.1);
        let mut acc = Qd::ONE;
        for _ in 0..10 {
            acc *= x;
        }
        assert_tiny(x.powi(10) - acc, 3.0, "x^10");
        assert_tiny(x.powi(-4) * x.powi(4) - Qd::ONE, 1.0, "x^-4*x^4");
        assert_eq!(x.powi(0), Qd::ONE);
    }

    #[test]
    fn dd_round_trip() {
        let d = crate::dd::Dd::from_f64(std::f64::consts::PI) / crate::dd::Dd::from(7);
        let q = Qd::from_dd(d);
        assert_eq!(q.to_dd(), d);
    }

    #[test]
    fn ordering() {
        let a = Qd::from_parts([1.0, 1e-40, 0.0, 0.0]);
        let b = Qd::from_parts([1.0, 1e-40, 1e-80, 0.0]);
        assert!(a < b);
        assert!(Qd::ZERO < Qd::ONE);
        assert!(-Qd::ONE < Qd::ZERO);
    }

    #[test]
    fn floor_cases() {
        assert_eq!(Qd::from_f64(2.5).floor(), Qd::from(2));
        assert_eq!(Qd::from_f64(-2.5).floor(), Qd::from(-3));
        let x = Qd::from_parts([5.0, -0.25, 0.0, 0.0]);
        // renorm: that is 4.75
        let f = (Qd::from(5) + Qd::from_f64(-0.25)).floor();
        assert_eq!(f, Qd::from(4));
        let _ = x;
    }

    #[test]
    fn sqrt_negative_is_nan_zero_is_zero() {
        assert!(Qd::from(-2).sqrt().is_nan());
        assert_eq!(Qd::ZERO.sqrt(), Qd::ZERO);
    }
}
