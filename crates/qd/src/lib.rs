//! # polygpu-qd — extended-precision real arithmetic
//!
//! Double-double and quad-double arithmetic in the style of the QD 2.3.9
//! library of Hida, Li & Bailey, which the reproduced paper (Verschelde &
//! Yoffe, *Evaluating polynomials in several variables and their
//! derivatives on a GPU computing processor*, 2012) uses to offset the
//! insufficiency of hardware doubles in polynomial homotopy continuation.
//!
//! The crate provides:
//!
//! * [`eft`] — error-free transforms (TwoSum, TwoProd, …), the exact
//!   building blocks;
//! * [`Dd`] — double-double (~32 decimal digits), hand-scheduled kernels,
//!   fast enough for the evaluation hot path;
//! * [`Qd`] — quad-double (~64 decimal digits), built on verified exact
//!   expansions ([`expansion`]);
//! * [`Real`] — the scalar-field trait the whole `polygpu` stack is
//!   generic over, implemented for `f64`, `Dd` and `Qd`.
//!
//! ```
//! use polygpu_qd::{Dd, Real};
//! let third = Dd::ONE / Dd::from(3);
//! // ~32 correct digits:
//! assert!(format!("{third}").starts_with("3.3333333333333333333333333333"));
//! // Promote hardware doubles through the generic Real interface:
//! fn square<R: Real>(x: R) -> R { x * x }
//! assert_eq!(square(Dd::from(9)).to_f64(), 81.0);
//! ```

pub mod dd;
pub mod eft;
pub mod expansion;
pub mod fmt;
pub mod qd4;
pub mod real;

pub use dd::Dd;
pub use qd4::Qd;
pub use real::Real;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn readme_precision_ladder() {
        // The motivating observation of the paper: doubles run out of
        // precision; DD and QD extend it at a cost.
        let x = 1.0f64 + 2f64.powi(-60);
        assert_eq!(x, 1.0, "f64 cannot see 2^-60");
        let xd = Dd::from_parts(1.0, 2f64.powi(-60));
        assert!(xd > Dd::ONE, "Dd can");
    }
}
