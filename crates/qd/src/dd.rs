//! Double-double arithmetic: an unevaluated sum of two `f64`s giving
//! roughly 106 bits (~32 decimal digits) of significand.
//!
//! The algorithms follow the QD 2.3.9 library of Hida, Li & Bailey (the
//! "accurate"/IEEE variants), which the reproduced paper uses on the host
//! to motivate offsetting multiprecision cost with GPU parallelism.
//! A normalized `Dd` satisfies `|lo| <= ulp(hi) / 2`, i.e. `hi` is the
//! double nearest the represented value.

use crate::eft::{quick_two_sum, two_diff, two_prod, two_sqr, two_sum};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-double number: the exact value is `hi + lo`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// Unit roundoff of the double-double format: `2^-106`.
    pub const EPSILON: f64 = 1.232_595_164_407_831e-32;
    /// π to double-double precision.
    pub const PI: Dd = Dd {
        hi: std::f64::consts::PI,
        lo: 1.224_646_799_147_353_2e-16,
    };

    /// Construct from already-normalized components (`|lo| <= ulp(hi)/2`).
    /// Debug builds assert the invariant.
    #[inline]
    pub fn from_parts(hi: f64, lo: f64) -> Dd {
        debug_assert!(
            hi == 0.0 || !hi.is_finite() || (hi + lo == hi && lo.abs() <= hi.abs()) || {
                let (s, e) = quick_two_sum(hi, lo);
                s == hi && e == lo
            },
            "Dd::from_parts called with unnormalized parts ({hi}, {lo})"
        );
        Dd { hi, lo }
    }

    /// Construct from an arbitrary pair by normalizing.
    #[inline]
    pub fn renorm(hi: f64, lo: f64) -> Dd {
        let (s, e) = two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    #[inline]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Nearest double to the represented value.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi
    }

    /// Exact sum of two doubles as a `Dd`.
    #[inline]
    pub fn add_f64_f64(a: f64, b: f64) -> Dd {
        let (s, e) = two_sum(a, b);
        Dd { hi: s, lo: e }
    }

    /// Exact product of two doubles as a `Dd`.
    #[inline]
    pub fn mul_f64_f64(a: f64, b: f64) -> Dd {
        let (p, e) = two_prod(a, b);
        Dd { hi: p, lo: e }
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.hi == 0.0
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.hi.is_finite() && self.lo.is_finite()
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        self.hi.is_nan() || self.lo.is_nan()
    }

    #[inline]
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Add a double. Cheaper than promoting `b` to `Dd` first.
    #[inline]
    pub fn add_f64(self, b: f64) -> Dd {
        let (s1, s2) = two_sum(self.hi, b);
        let (hi, lo) = quick_two_sum(s1, s2 + self.lo);
        Dd { hi, lo }
    }

    /// Multiply by a double. Cheaper than promoting `b` to `Dd` first.
    #[inline]
    pub fn mul_f64(self, b: f64) -> Dd {
        let (p1, p2) = two_prod(self.hi, b);
        let (hi, lo) = quick_two_sum(p1, p2 + self.lo * b);
        Dd { hi, lo }
    }

    /// Square; saves two multiplications over `self * self`.
    #[inline]
    pub fn sqr(self) -> Dd {
        let (p1, p2) = two_sqr(self.hi);
        let p2 = p2 + 2.0 * self.hi * self.lo + self.lo * self.lo;
        let (hi, lo) = quick_two_sum(p1, p2);
        Dd { hi, lo }
    }

    /// Reciprocal via the accurate long-division scheme.
    #[inline]
    pub fn recip(self) -> Dd {
        Dd::ONE / self
    }

    /// Square root by Karp's method (one Newton step on the double
    /// estimate, with the residual computed in double-double).
    ///
    /// Returns NaN for negative input, 0 for 0.
    pub fn sqrt(self) -> Dd {
        if self.is_zero() {
            return Dd::ZERO;
        }
        if self.hi < 0.0 {
            return Dd::from_parts(f64::NAN, f64::NAN);
        }
        let x = 1.0 / self.hi.sqrt();
        let ax = self.hi * x;
        let ax_dd = Dd::from_f64(ax);
        let residual = self - ax_dd.sqr();
        ax_dd.add_f64(residual.hi * (x * 0.5))
    }

    /// Integer power by binary exponentiation; `powi(0)` is 1 (including
    /// for zero base, matching `f64::powi`).
    pub fn powi(self, n: i32) -> Dd {
        if n == 0 {
            return Dd::ONE;
        }
        let mut r = Dd::ONE;
        let mut base = self;
        let mut e = n.unsigned_abs();
        while e > 0 {
            if e & 1 == 1 {
                r *= base;
            }
            base = base.sqr();
            e >>= 1;
        }
        if n < 0 {
            r.recip()
        } else {
            r
        }
    }

    /// Truncate towards negative infinity.
    pub fn floor(self) -> Dd {
        let fhi = self.hi.floor();
        if fhi == self.hi {
            // hi already integral: floor the low word and renormalize.
            Dd::renorm(fhi, self.lo.floor())
        } else {
            Dd { hi: fhi, lo: 0.0 }
        }
    }
}

impl Add for Dd {
    type Output = Dd;
    /// Accurate (IEEE-style) double-double addition; error bounded by
    /// 2 ulps of the result (Hida-Li-Bailey, Alg. 6).
    #[inline]
    fn add(self, b: Dd) -> Dd {
        let (s1, s2) = two_sum(self.hi, b.hi);
        let (t1, t2) = two_sum(self.lo, b.lo);
        let s2 = s2 + t1;
        let (s1, s2) = quick_two_sum(s1, s2);
        let s2 = s2 + t2;
        let (hi, lo) = quick_two_sum(s1, s2);
        Dd { hi, lo }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, b: Dd) -> Dd {
        let (s1, s2) = two_diff(self.hi, b.hi);
        let (t1, t2) = two_diff(self.lo, b.lo);
        let s2 = s2 + t1;
        let (s1, s2) = quick_two_sum(s1, s2);
        let s2 = s2 + t2;
        let (hi, lo) = quick_two_sum(s1, s2);
        Dd { hi, lo }
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, b: Dd) -> Dd {
        let (p1, p2) = two_prod(self.hi, b.hi);
        let p2 = p2 + (self.hi * b.lo + self.lo * b.hi);
        let (hi, lo) = quick_two_sum(p1, p2);
        Dd { hi, lo }
    }
}

impl Div for Dd {
    type Output = Dd;
    /// Accurate division: three rounds of long division with exact
    /// residual updates (QD's `ieee_div`).
    fn div(self, b: Dd) -> Dd {
        let q1 = self.hi / b.hi;
        let mut r = self - b.mul_f64(q1);
        let q2 = r.hi / b.hi;
        r -= b.mul_f64(q2);
        let q3 = r.hi / b.hi;
        let (s, e) = quick_two_sum(q1, q2);
        Dd { hi: s, lo: e }.add_f64(q3)
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Dd {
            #[inline]
            fn $method(&mut self, rhs: Dd) {
                *self = *self $op rhs;
            }
        }
    };
}
impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

impl PartialOrd for Dd {
    #[inline]
    fn partial_cmp(&self, other: &Dd) -> Option<Ordering> {
        match self.hi.partial_cmp(&other.hi) {
            Some(Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl From<f64> for Dd {
    #[inline]
    fn from(x: f64) -> Dd {
        Dd::from_f64(x)
    }
}

impl From<i32> for Dd {
    #[inline]
    fn from(x: i32) -> Dd {
        Dd::from_f64(x as f64)
    }
}

impl fmt::Display for Dd {
    /// Renders 32 significant decimal digits (the full double-double
    /// precision) in scientific notation, or fewer with `{:.N}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = f.precision().unwrap_or(32);
        f.write_str(&crate::fmt::to_decimal_string(*self, digits))
    }
}

impl std::str::FromStr for Dd {
    type Err = crate::fmt::ParseRealError;
    fn from_str(s: &str) -> Result<Dd, Self::Err> {
        crate::fmt::parse_decimal(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp(x: f64) -> f64 {
        let next = f64::from_bits(x.abs().to_bits() + 1);
        next - x.abs()
    }

    #[test]
    fn normalization_invariant_after_ops() {
        let a = Dd::from_f64(std::f64::consts::PI);
        let b = Dd::from_f64(std::f64::consts::E);
        for v in [a + b, a - b, a * b, a / b, a.sqr(), a.sqrt()] {
            assert!(v.lo.abs() <= ulp(v.hi), "unnormalized: {v:?}");
        }
    }

    #[test]
    fn one_third_round_trips_through_mul() {
        let third = Dd::ONE / Dd::from(3);
        let one = third * Dd::from(3);
        let err = (one - Dd::ONE).abs();
        assert!(err.hi <= 4.0 * Dd::EPSILON, "1/3*3 error {err:?}");
    }

    #[test]
    fn add_carries_low_parts() {
        // (1 + 2^-80) + (1 - 2^-80) == 2 exactly in DD.
        let t = Dd::from_parts(1.0, 2f64.powi(-80));
        let u = Dd::from_parts(1.0, -(2f64.powi(-80)));
        let s = t + u;
        assert_eq!(s.hi, 2.0);
        assert_eq!(s.lo, 0.0);
    }

    #[test]
    fn sub_cancellation_keeps_low_bits() {
        // (1 + 2^-70) - 1 == 2^-70 exactly.
        let a = Dd::from_parts(1.0, 2f64.powi(-70));
        let d = a - Dd::ONE;
        assert_eq!(d.hi, 2f64.powi(-70));
        assert_eq!(d.lo, 0.0);
    }

    #[test]
    fn mul_exact_small_integers() {
        let a = Dd::from(12345);
        let b = Dd::from(67891);
        let p = a * b;
        assert_eq!(p.hi, 12345.0 * 67891.0);
        assert_eq!(p.lo, 0.0);
    }

    #[test]
    fn sqrt_squares_back() {
        for &x in &[2.0, 3.0, 1e10, 0.017] {
            let s = Dd::from_f64(x).sqrt();
            let back = s.sqr() - Dd::from_f64(x);
            assert!(
                back.abs().hi <= 8.0 * Dd::EPSILON * x,
                "sqrt({x}) round trip error {back:?}"
            );
        }
        assert!(Dd::from_f64(-1.0).sqrt().is_nan());
        assert_eq!(Dd::ZERO.sqrt(), Dd::ZERO);
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let x = Dd::from_f64(1.5) + Dd::from_parts(0.0, 1e-20);
        let mut acc = Dd::ONE;
        for _ in 0..7 {
            acc *= x;
        }
        let p = x.powi(7);
        let err = (p - acc).abs();
        assert!(err.hi <= 1e-15 * acc.hi.abs() * Dd::EPSILON / f64::EPSILON);
    }

    #[test]
    fn powi_negative_is_reciprocal() {
        let x = Dd::from_f64(std::f64::consts::PI);
        let p = x.powi(-3) * x.powi(3);
        assert!((p - Dd::ONE).abs().hi < 10.0 * Dd::EPSILON);
    }

    #[test]
    fn division_accuracy_known_value() {
        // 355/113 approximates pi; DD division must be exact to ~1e-32.
        let q = Dd::from(355) / Dd::from(113);
        let back = q * Dd::from(113);
        assert!((back - Dd::from(355)).abs().hi < 355.0 * 4.0 * Dd::EPSILON);
    }

    #[test]
    fn comparisons_use_low_word() {
        let a = Dd::from_parts(1.0, 1e-20);
        let b = Dd::from_parts(1.0, 2e-20);
        assert!(a < b);
        assert!(b > a);
        assert!(a != b);
        assert!(a == a);
    }

    #[test]
    fn floor_integral_and_fractional() {
        assert_eq!(Dd::from_f64(2.7).floor(), Dd::from(2));
        assert_eq!(Dd::from_f64(-2.7).floor(), Dd::from(-3));
        // hi integral, lo fractional negative: floor must borrow.
        let x = Dd::renorm(5.0, -0.25);
        assert_eq!(x.floor(), Dd::from(4));
        let y = Dd::renorm(5.0, 0.25);
        assert_eq!(y.floor(), Dd::from(5));
    }

    #[test]
    fn pi_constant_is_normalized_and_accurate() {
        let (s, e) = two_sum(Dd::PI.hi(), Dd::PI.lo());
        assert_eq!(s, Dd::PI.hi());
        assert_eq!(e, Dd::PI.lo());
        // sin-free sanity: PI.hi is the nearest double to pi.
        assert_eq!(Dd::PI.hi(), std::f64::consts::PI);
        assert_ne!(Dd::PI.lo(), 0.0);
    }

    #[test]
    fn abs_negates_negative_low_only_values() {
        let x = Dd::renorm(0.0, -1e-300);
        assert!(x.abs() >= Dd::ZERO);
        assert_eq!(Dd::from_f64(-3.0).abs(), Dd::from(3));
    }
}
