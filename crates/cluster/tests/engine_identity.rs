//! Cross-backend bit-identity through the unified builder: for
//! arbitrary uniform systems and batch shapes, **one** engine spec
//! built as CPU reference, single-point GPU, batched GPU and cluster
//! produces bit-for-bit identical values and Jacobians — backends are
//! placement decisions, never numerical ones.

use polygpu_cluster::engine_builder;
use polygpu_core::engine::{Backend, ClusterPolicy, SystemShardPolicy};
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_polysys::{random_points, random_system, BenchmarkParams};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = BenchmarkParams> {
    (2usize..10, 1usize..4, 1u16..4, 0u64..1_000_000).prop_flat_map(|(n, m, d, seed)| {
        (1usize..=n.min(4)).prop_map(move |k| BenchmarkParams { n, m, k, d, seed })
    })
}

fn policies() -> impl Strategy<Value = ClusterPolicy> {
    prop_oneof![
        Just(ClusterPolicy::RoundRobin),
        Just(ClusterPolicy::CapacityProportional),
        (1usize..5).prop_map(|chunk| ClusterPolicy::WorkStealing { chunk }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn all_builder_backends_bit_identical(
        params in shapes(),
        policy in policies(),
        devices in 1usize..4,
        p in 1usize..10,
    ) {
        let sys = random_system::<f64>(&params);
        let points = random_points::<f64>(params.n, p, params.seed ^ 0xE1u64);
        let builder = engine_builder().per_device_capacity(4);
        // Per-backend capacity: the point-sharded cluster absorbs
        // `4 x devices` points (and must keep being tested with
        // batches that span several devices); the row-sharded cluster
        // replicates every point, so its capacity stays per-device.
        let backends = [
            (Backend::CpuReference, usize::MAX),
            (Backend::Gpu, usize::MAX),
            (Backend::GpuBatch { capacity: p.max(1) }, usize::MAX),
            (
                Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050(); devices],
                    shard: policy.into(),
                },
                4 * devices,
            ),
            (
                Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050(); devices],
                    shard: SystemShardPolicy::Contiguous.into(),
                },
                4,
            ),
            (
                Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050(); devices],
                    shard: SystemShardPolicy::RoundRobin.into(),
                },
                4,
            ),
        ];
        prop_assume!(p <= 4 * devices); // within the point-sharded capacity
        let mut want: Option<Vec<polygpu_polysys::SystemEval<f64>>> = None;
        for (backend, capacity) in backends {
            if p > capacity {
                continue; // over this backend's batch contract
            }
            let mut engine = builder.clone().backend(backend.clone()).build(&sys).unwrap();
            let got = engine.try_evaluate_batch(&points).unwrap();
            let name = engine.caps().backend;
            match &want {
                None => want = Some(got),
                Some(w) => {
                    for (i, (g, x)) in got.iter().zip(w).enumerate() {
                        prop_assert_eq!(&g.values, &x.values,
                            "values, backend {}, point {} of {:?}", name, i, params);
                        prop_assert_eq!(g.jacobian.as_slice(), x.jacobian.as_slice(),
                            "jacobian, backend {}, point {} of {:?}", name, i, params);
                    }
                }
            }
        }
    }
}
