//! Property test: sharding over heterogeneous devices is invisible in
//! the results. For arbitrary uniform systems, shard policies, device
//! fleets and batch sizes (including sizes that divide nothing), the
//! cluster's output is **bit-for-bit** the output of the looping
//! CPU reference — which the single-device GPU engine is already proven
//! bitwise-equal to — in double and in double-double.

use polygpu_cluster::{ClusterOptions, ShardPolicy, ShardedBatchEvaluator};
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_polysys::{
    random_points, random_system, AdEvaluator, BatchSystemEvaluator, BenchmarkParams,
};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = BenchmarkParams> {
    (2usize..10, 1usize..4, 1u16..4, 0u64..1_000_000).prop_flat_map(|(n, m, d, seed)| {
        (1usize..=n.min(4)).prop_map(move |k| BenchmarkParams { n, m, k, d, seed })
    })
}

fn policies() -> impl Strategy<Value = ShardPolicy> {
    prop_oneof![
        Just(ShardPolicy::RoundRobin),
        Just(ShardPolicy::CapacityProportional),
        (1usize..5).prop_map(|chunk| ShardPolicy::WorkStealing { chunk }),
    ]
}

/// 1–4 devices with deterministic heterogeneity: every other device is
/// derated in clock and PCIe bandwidth (timing-model-only differences).
fn fleets() -> impl Strategy<Value = Vec<DeviceSpec>> {
    (1usize..=4).prop_map(|d| {
        (0..d)
            .map(|i| {
                let mut s = DeviceSpec::tesla_c2050();
                if i % 2 == 1 {
                    s.clock_hz *= 0.5 + 0.1 * i as f64;
                    s.pcie_bandwidth *= 0.7;
                    s.launch_overhead *= 1.5;
                }
                s
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cluster_bitwise_equals_single_batch_in_double(
        params in shapes(),
        policy in policies(),
        specs in fleets(),
        p in 1usize..23,
        cap in 2usize..9,
    ) {
        prop_assume!(p <= cap * specs.len()); // within cluster capacity
        let sys = random_system::<f64>(&params);
        let points = random_points::<f64>(params.n, p, params.seed ^ 0xC1u64);
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &specs,
            cap,
            ClusterOptions { policy, ..Default::default() },
        )
        .unwrap();
        let mut reference = AdEvaluator::new(sys).unwrap();
        let got = cluster.evaluate_batch(&points);
        let want = reference.evaluate_batch(&points);
        for i in 0..p {
            prop_assert_eq!(&got[i].values, &want[i].values,
                "values, point {} of {:?} on {} devices ({:?})",
                i, params, specs.len(), policy);
            prop_assert_eq!(got[i].jacobian.as_slice(), want[i].jacobian.as_slice(),
                "jacobian, point {} of {:?} on {} devices ({:?})",
                i, params, specs.len(), policy);
        }
    }

    #[test]
    fn cluster_bitwise_equals_single_batch_in_double_double(
        params in shapes(),
        policy in policies(),
        specs in fleets(),
        p in 1usize..13,
    ) {
        use polygpu_qd::Dd;
        use polygpu_complex::Complex;
        prop_assume!(p <= 4 * specs.len());
        let sys = random_system::<f64>(&params).convert::<Dd>();
        let points: Vec<Vec<Complex<Dd>>> =
            random_points::<f64>(params.n, p, params.seed ^ 0xDDu64)
                .into_iter()
                .map(|x| x.into_iter().map(|z| z.convert()).collect())
                .collect();
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &specs,
            4,
            ClusterOptions { policy, ..Default::default() },
        )
        .unwrap();
        let mut reference = AdEvaluator::new(sys).unwrap();
        let got = cluster.evaluate_batch(&points);
        let want = reference.evaluate_batch(&points);
        for i in 0..p {
            prop_assert_eq!(&got[i].values, &want[i].values,
                "dd values, point {} of {:?}", i, params);
            prop_assert_eq!(got[i].jacobian.as_slice(), want[i].jacobian.as_slice(),
                "dd jacobian, point {} of {:?}", i, params);
        }
    }
}
