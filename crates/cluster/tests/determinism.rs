//! Property test: sharding over heterogeneous devices is invisible in
//! the results. For arbitrary uniform systems, shard policies, device
//! fleets and batch sizes (including sizes that divide nothing), the
//! cluster's output is **bit-for-bit** the output of the looping
//! CPU reference — which the single-device GPU engine is already proven
//! bitwise-equal to — in double and in double-double. The same holds
//! for **row sharding**: partitioning the system's equations across
//! the fleet (any `SystemShardPolicy`, any `D`) never changes a bit.

use polygpu_cluster::{
    ClusterOptions, RowClusterOptions, RowShardedEvaluator, ShardPolicy, ShardedBatchEvaluator,
    SystemShardPolicy, TransferPath,
};
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_polysys::{
    random_points, random_system, AdEvaluator, BatchSystemEvaluator, BenchmarkParams,
};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = BenchmarkParams> {
    (2usize..10, 1usize..4, 1u16..4, 0u64..1_000_000).prop_flat_map(|(n, m, d, seed)| {
        (1usize..=n.min(4)).prop_map(move |k| BenchmarkParams { n, m, k, d, seed })
    })
}

fn policies() -> impl Strategy<Value = ShardPolicy> {
    prop_oneof![
        Just(ShardPolicy::RoundRobin),
        Just(ShardPolicy::CapacityProportional),
        (1usize..5).prop_map(|chunk| ShardPolicy::WorkStealing { chunk }),
    ]
}

/// 1–4 devices with deterministic heterogeneity: every other device is
/// derated in clock and PCIe bandwidth (timing-model-only differences).
fn fleets() -> impl Strategy<Value = Vec<DeviceSpec>> {
    (1usize..=4).prop_map(|d| {
        (0..d)
            .map(|i| {
                let mut s = DeviceSpec::tesla_c2050();
                if i % 2 == 1 {
                    s.clock_hz *= 0.5 + 0.1 * i as f64;
                    s.pcie_bandwidth *= 0.7;
                    s.launch_overhead *= 1.5;
                }
                s
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cluster_bitwise_equals_single_batch_in_double(
        params in shapes(),
        policy in policies(),
        specs in fleets(),
        p in 1usize..23,
        cap in 2usize..9,
    ) {
        prop_assume!(p <= cap * specs.len()); // within cluster capacity
        let sys = random_system::<f64>(&params);
        let points = random_points::<f64>(params.n, p, params.seed ^ 0xC1u64);
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &specs,
            cap,
            ClusterOptions { policy, ..Default::default() },
        )
        .unwrap();
        let mut reference = AdEvaluator::new(sys).unwrap();
        let got = cluster.evaluate_batch(&points);
        let want = reference.evaluate_batch(&points);
        for i in 0..p {
            prop_assert_eq!(&got[i].values, &want[i].values,
                "values, point {} of {:?} on {} devices ({:?})",
                i, params, specs.len(), policy);
            prop_assert_eq!(got[i].jacobian.as_slice(), want[i].jacobian.as_slice(),
                "jacobian, point {} of {:?} on {} devices ({:?})",
                i, params, specs.len(), policy);
        }
    }

    #[test]
    fn cluster_bitwise_equals_single_batch_in_double_double(
        params in shapes(),
        policy in policies(),
        specs in fleets(),
        p in 1usize..13,
    ) {
        use polygpu_qd::Dd;
        use polygpu_complex::Complex;
        prop_assume!(p <= 4 * specs.len());
        let sys = random_system::<f64>(&params).convert::<Dd>();
        let points: Vec<Vec<Complex<Dd>>> =
            random_points::<f64>(params.n, p, params.seed ^ 0xDDu64)
                .into_iter()
                .map(|x| x.into_iter().map(|z| z.convert()).collect())
                .collect();
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &specs,
            4,
            ClusterOptions { policy, ..Default::default() },
        )
        .unwrap();
        let mut reference = AdEvaluator::new(sys).unwrap();
        let got = cluster.evaluate_batch(&points);
        let want = reference.evaluate_batch(&points);
        for i in 0..p {
            prop_assert_eq!(&got[i].values, &want[i].values,
                "dd values, point {} of {:?}", i, params);
            prop_assert_eq!(got[i].jacobian.as_slice(), want[i].jacobian.as_slice(),
                "dd jacobian, point {} of {:?}", i, params);
        }
    }

    /// Row-shard determinism: endpoints and Jacobians are bit-identical
    /// to the CPU reference across shard policies, heterogeneous
    /// fleets, gather paths and D ∈ {1, 2, 4} — splitting the *system*
    /// is as invisible numerically as splitting the points.
    #[test]
    fn row_sharding_bitwise_equals_cpu_reference_in_double(
        params in shapes(),
        row_policy in prop_oneof![
            Just(SystemShardPolicy::Contiguous),
            Just(SystemShardPolicy::RoundRobin),
        ],
        gather in prop_oneof![
            Just(TransferPath::HostStaged),
            Just(TransferPath::PeerToPeer),
        ],
        hetero in prop_oneof![Just(true), Just(false)],
        p in 1usize..8,
    ) {
        let sys = random_system::<f64>(&params);
        let points = random_points::<f64>(params.n, p, params.seed ^ 0x50u64);
        let mut reference = AdEvaluator::new(sys.clone()).unwrap();
        let want = reference.evaluate_batch(&points);
        for d in [1usize, 2, 4] {
            let specs: Vec<DeviceSpec> = if hetero {
                (0..d).map(|i| {
                    let mut s = DeviceSpec::tesla_c2050();
                    if i % 2 == 1 {
                        s.clock_hz *= 0.5 + 0.1 * i as f64;
                        s.pcie_bandwidth *= 0.7;
                    }
                    s
                }).collect()
            } else {
                vec![DeviceSpec::tesla_c2050(); d]
            };
            let mut cluster = RowShardedEvaluator::new(
                &sys,
                &specs,
                8,
                RowClusterOptions { policy: row_policy, gather, ..Default::default() },
            )
            .unwrap();
            let got = cluster.evaluate_batch(&points);
            for i in 0..p {
                prop_assert_eq!(&got[i].values, &want[i].values,
                    "values, point {} of {:?}, D = {} ({:?}, {:?})",
                    i, params, d, row_policy, gather);
                prop_assert_eq!(got[i].jacobian.as_slice(), want[i].jacobian.as_slice(),
                    "jacobian, point {} of {:?}, D = {} ({:?}, {:?})",
                    i, params, d, row_policy, gather);
            }
        }
    }

    /// Row-shard determinism in double-double: the widened arithmetic
    /// partitions just as invisibly.
    #[test]
    fn row_sharding_bitwise_equals_cpu_reference_in_double_double(
        params in shapes(),
        row_policy in prop_oneof![
            Just(SystemShardPolicy::Contiguous),
            Just(SystemShardPolicy::RoundRobin),
        ],
        d in 1usize..5,
        p in 1usize..6,
    ) {
        use polygpu_qd::Dd;
        use polygpu_complex::Complex;
        let sys = random_system::<f64>(&params).convert::<Dd>();
        let points: Vec<Vec<Complex<Dd>>> =
            random_points::<f64>(params.n, p, params.seed ^ 0x51u64)
                .into_iter()
                .map(|x| x.into_iter().map(|z| z.convert()).collect())
                .collect();
        let mut cluster = RowShardedEvaluator::new(
            &sys,
            &vec![DeviceSpec::tesla_c2050(); d],
            8,
            RowClusterOptions { policy: row_policy, ..Default::default() },
        )
        .unwrap();
        let mut reference = AdEvaluator::new(sys).unwrap();
        let got = cluster.evaluate_batch(&points);
        let want = reference.evaluate_batch(&points);
        for i in 0..p {
            prop_assert_eq!(&got[i].values, &want[i].values,
                "dd values, point {} of {:?}, D = {}", i, params, d);
            prop_assert_eq!(got[i].jacobian.as_slice(), want[i].jacobian.as_slice(),
                "dd jacobian, point {} of {:?}, D = {}", i, params, d);
        }
    }
}
