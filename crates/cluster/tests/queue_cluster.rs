//! The scale-out acceptance: tracking a path set through the
//! path-queue scheduler over a `ShardedBatchEvaluator` produces
//! **bit-identical endpoints for D ∈ {1, 2, 4}** — and identical to the
//! CPU reference — because sharding, batching and queue scheduling are
//! all performance transformations over the same per-path arithmetic.

use polygpu_cluster::{ClusterOptions, ShardPolicy, ShardedBatchEvaluator};
use polygpu_complex::C64;
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_homotopy::lockstep::BatchHomotopy;
use polygpu_homotopy::queue::track_queue;
use polygpu_homotopy::start::StartSystem;
use polygpu_homotopy::tracker::TrackParams;
use polygpu_polysys::{random_system, AdEvaluator, BenchmarkParams};

#[test]
fn queue_endpoints_bit_identical_across_device_counts() {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    };
    let sys = random_system::<f64>(&params);
    let start = StartSystem::uniform(2, 2);
    let starts: Vec<Vec<C64>> = (0..8u128).map(|i| start.solution_by_index(i)).collect();
    let tp = TrackParams::default();

    // CPU reference run.
    let mut h_cpu =
        BatchHomotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys.clone()).unwrap(), 7);
    let want = track_queue(&mut h_cpu, &starts, tp, 4);

    for d in [1usize, 2, 4] {
        let specs = vec![DeviceSpec::tesla_c2050(); d];
        let cluster = ShardedBatchEvaluator::new(
            &sys,
            &specs,
            4,
            ClusterOptions {
                policy: ShardPolicy::RoundRobin,
                ..Default::default()
            },
        )
        .unwrap();
        let mut h = BatchHomotopy::with_random_gamma(start.clone(), cluster, 7);
        let got = track_queue(&mut h, &starts, tp, 4);
        assert_eq!(got.paths.len(), want.paths.len());
        for (i, (g, w)) in got.paths.iter().zip(&want.paths).enumerate() {
            assert_eq!(g.outcome, w.outcome, "D = {d}, path {i}");
            assert_eq!(g.t, w.t, "D = {d}, path {i}");
            assert_eq!(
                g.x, w.x,
                "endpoint must be bit-identical, D = {d}, path {i}"
            );
        }
        assert_eq!(got.stats.rounds, want.stats.rounds, "D = {d}");
        assert_eq!(
            got.stats.steps_accepted, want.stats.steps_accepted,
            "D = {d}"
        );
        assert_eq!(
            got.stats.steps_rejected, want.stats.steps_rejected,
            "D = {d}"
        );
        assert_eq!(
            got.stats.corrector_iterations, want.stats.corrector_iterations,
            "D = {d}"
        );
        // The cluster really did the evaluations (all devices on D > 1
        // round-robin shards see work).
        let stats = h.f.cluster_stats();
        assert!(stats.evaluations > 0);
        assert_eq!(stats.device_evals.len(), d);
        if d > 1 {
            assert!(
                stats.device_evals.iter().all(|&e| e > 0),
                "D = {d}: every device shares the front: {:?}",
                stats.device_evals
            );
        }
    }
}
