//! Shard planning: which device evaluates which points of a batch.
//!
//! A plan is a pure function of the batch size, the per-device
//! capacities, and the per-device modeled throughput weights — never of
//! the point values — so the same inputs always shard the same way, and
//! results can be merged back **in input order** regardless of which
//! device computed them.

/// How a `P`-point batch is split across `D` devices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ShardPolicy {
    /// Point `i` goes to device `i mod D`. Ignores heterogeneity; the
    /// baseline policy.
    RoundRobin,
    /// Contiguous shards sized proportionally to each device's batch
    /// capacity (a stand-in for memory-proportional provisioning).
    #[default]
    CapacityProportional,
    /// Deterministic work-stealing simulation: points are dealt in
    /// fixed-size chunks; each chunk goes to the device whose modeled
    /// finish time is earliest (using the per-device modeled
    /// seconds-per-point weight), ties to the lowest device index.
    /// Adapts to heterogeneous device speeds without randomness.
    WorkStealing {
        /// Points handed out per steal; clamped to at least 1.
        chunk: usize,
    },
}

/// Per-device inputs to the planner.
#[derive(Debug, Clone, Copy)]
pub struct DeviceWeight {
    /// Largest batch the device accepts in one call.
    pub capacity: usize,
    /// Modeled seconds per point (from the construction-time probe);
    /// used by [`ShardPolicy::WorkStealing`] to balance heterogeneous
    /// devices.
    pub seconds_per_point: f64,
}

/// The planned shard of one device: original point indices, in
/// ascending order within each device.
pub type Shard = Vec<usize>;

/// Split `p` points over the devices. Every index in `0..p` appears in
/// exactly one shard; shards may be empty (tiny batches on many
/// devices).
pub fn plan(policy: ShardPolicy, p: usize, devices: &[DeviceWeight]) -> Vec<Shard> {
    let d = devices.len();
    assert!(d >= 1, "cluster needs at least one device");
    let mut shards: Vec<Shard> = vec![Vec::new(); d];
    match policy {
        ShardPolicy::RoundRobin => {
            for i in 0..p {
                shards[i % d].push(i);
            }
        }
        ShardPolicy::CapacityProportional => {
            // Largest-remainder apportionment of p over the capacities,
            // then contiguous ranges in device order.
            let total: usize = devices.iter().map(|w| w.capacity).sum();
            let total = total.max(1);
            let mut counts: Vec<usize> = devices.iter().map(|w| p * w.capacity / total).collect();
            let mut assigned: usize = counts.iter().sum();
            // Distribute the remainder by largest fractional part
            // (ties to the lowest index, for determinism).
            let mut order: Vec<usize> = (0..d).collect();
            order.sort_by_key(|&i| {
                let rem = p * devices[i].capacity % total;
                (std::cmp::Reverse(rem), i)
            });
            let mut oi = 0;
            while assigned < p {
                counts[order[oi % d]] += 1;
                assigned += 1;
                oi += 1;
            }
            let mut next = 0usize;
            for (dev, &c) in counts.iter().enumerate() {
                shards[dev].extend(next..next + c);
                next += c;
            }
        }
        ShardPolicy::WorkStealing { chunk } => {
            let chunk = chunk.max(1);
            let mut finish: Vec<f64> = vec![0.0; d];
            let mut next = 0usize;
            while next < p {
                let take = chunk.min(p - next);
                // Earliest-finishing device steals the next chunk.
                let mut best = 0usize;
                for i in 1..d {
                    if finish[i] < finish[best] {
                        best = i;
                    }
                }
                shards[best].extend(next..next + take);
                finish[best] += take as f64 * devices[best].seconds_per_point.max(1e-30);
                next += take;
            }
        }
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(caps: &[usize], spp: &[f64]) -> Vec<DeviceWeight> {
        caps.iter()
            .zip(spp)
            .map(|(&capacity, &seconds_per_point)| DeviceWeight {
                capacity,
                seconds_per_point,
            })
            .collect()
    }

    fn assert_partition(shards: &[Shard], p: usize) {
        let mut seen = vec![false; p];
        for s in shards {
            for &i in s {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index unassigned");
    }

    #[test]
    fn round_robin_deals_cyclically() {
        let w = weights(&[4, 4, 4], &[1.0, 1.0, 1.0]);
        let s = plan(ShardPolicy::RoundRobin, 7, &w);
        assert_eq!(s[0], vec![0, 3, 6]);
        assert_eq!(s[1], vec![1, 4]);
        assert_eq!(s[2], vec![2, 5]);
        assert_partition(&s, 7);
    }

    #[test]
    fn capacity_proportional_follows_capacities() {
        let w = weights(&[64, 32, 32], &[1.0, 1.0, 1.0]);
        let s = plan(ShardPolicy::CapacityProportional, 128, &w);
        assert_eq!(s[0].len(), 64);
        assert_eq!(s[1].len(), 32);
        assert_eq!(s[2].len(), 32);
        assert_partition(&s, 128);
        // Shards are contiguous ranges in device order.
        assert_eq!(s[0], (0..64).collect::<Vec<_>>());
        assert_eq!(s[1], (64..96).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_proportional_handles_indivisible_batches() {
        let w = weights(&[3, 3], &[1.0, 1.0]);
        for p in [1usize, 2, 5, 7, 11] {
            let s = plan(ShardPolicy::CapacityProportional, p, &w);
            assert_partition(&s, p);
            let diff = s[0].len().abs_diff(s[1].len());
            assert!(diff <= 1, "p = {p}: {:?}", s);
        }
    }

    #[test]
    fn work_stealing_favors_fast_devices() {
        // Device 0 is 3x faster: it should take ~3x the points.
        let w = weights(&[256, 256], &[1.0, 3.0]);
        let s = plan(ShardPolicy::WorkStealing { chunk: 4 }, 96, &w);
        assert_partition(&s, 96);
        assert!(
            s[0].len() >= 2 * s[1].len(),
            "fast device got {} vs {}",
            s[0].len(),
            s[1].len()
        );
    }

    #[test]
    fn plans_are_deterministic() {
        let w = weights(&[8, 16, 4], &[2.0, 1.0, 4.0]);
        for policy in [
            ShardPolicy::RoundRobin,
            ShardPolicy::CapacityProportional,
            ShardPolicy::WorkStealing { chunk: 2 },
        ] {
            assert_eq!(plan(policy, 37, &w), plan(policy, 37, &w));
            assert_partition(&plan(policy, 37, &w), 37);
        }
    }
}
