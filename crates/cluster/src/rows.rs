//! **System sharding**: partition the target system's equations (rows
//! of the Jacobian) across devices, so systems whose support encoding
//! exceeds one device's constant memory become solvable at all.
//!
//! Point sharding ([`crate::ShardedBatchEvaluator`]) scales *throughput*
//! but every device must hold the **whole** encoding — the paper's
//! 2,048-monomial constant-memory wall caps the system size no matter
//! how many devices join. Row sharding attacks the wall itself:
//!
//! * a [`SystemShardPolicy`] splits the `rows` equations over `D`
//!   devices (pure function of `(rows, D)` — deterministic);
//! * each device encodes **only its rows'** supports and coefficients
//!   into its own constant arena (`~1/D` of the bytes) and runs the
//!   unchanged three-kernel pipeline on its rectangular row block;
//! * every device sees **every point** of a batch (the point upload is
//!   replicated — the price of the mode), and per-point values and
//!   Jacobian rows are gathered to the root device through a modeled
//!   inter-device transfer ([`gather_timeline`]: concurrent per-source
//!   egress, serialized root ingress; D2D peer hops or D2H + H2D host
//!   staging per [`TransferPath`]);
//! * merged results are **bit-for-bit** the single-device (and CPU
//!   reference) results: each row's arithmetic touches only its own
//!   supports, so partitioning rows changes nothing numerically.
//!
//! [`ClusterSession`] adds multi-system **residency** on top: several
//! row-sharded systems co-reside in the fleet's constant arenas (joint
//! per-device budgets), and switching the active system costs one
//! parallel command-queue round trip instead of `D` re-encodes.

use crate::device::{CpuFallback, DeviceEngine};
use polygpu_complex::{Complex, Real};
use polygpu_core::engine::{
    AnyEvaluator, BuildError, ClusterSpec, EngineCaps, ResidencyRow, SessionAmortization,
    ShardMode, SystemId, SystemShardPolicy,
};
use polygpu_core::layout::encoding::EncodedSupports;
use polygpu_core::layout::packed::sparse_packed_bytes;
use polygpu_core::pipeline::{FaultConfig, GpuOptions, PipelineStats, SetupError};
use polygpu_core::{BatchError, BatchGpuEvaluator};
use polygpu_gpusim::obs::emit_gather_timeline;
use polygpu_gpusim::prelude::*;
use polygpu_gpusim::stream::{gather_timeline, transfer_legs, Timeline, TransferPath};
use polygpu_obs::{MetaValue, MetricsRegistry, SpanKind, TraceSink, Track};
use polygpu_polysys::{BatchSystemEvaluator, System, SystemEval, SystemEvaluator, UniformShape};
use rayon::prelude::*;
use std::fmt;

/// Split `rows` equation indices over `d` devices. Every row appears in
/// exactly one shard; shards may be empty when `d > rows`.
pub fn plan_rows(policy: SystemShardPolicy, rows: usize, d: usize) -> Vec<Vec<usize>> {
    assert!(d >= 1, "row sharding needs at least one device");
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); d];
    match policy {
        SystemShardPolicy::Contiguous => {
            // Largest-remainder apportionment: the first `rows % d`
            // devices carry one extra row, blocks stay contiguous.
            let base = rows / d;
            let extra = rows % d;
            let mut next = 0usize;
            for (dev, shard) in shards.iter_mut().enumerate() {
                let count = base + usize::from(dev < extra);
                shard.extend(next..next + count);
                next += count;
            }
        }
        SystemShardPolicy::RoundRobin => {
            for r in 0..rows {
                shards[r % d].push(r);
            }
        }
    }
    shards
}

/// Configuration of a [`RowShardedEvaluator`].
#[derive(Debug, Clone, Default)]
pub struct RowClusterOptions {
    /// How equations are split across devices.
    pub policy: SystemShardPolicy,
    /// How gathered rows travel between devices (host-staged by
    /// default — the honest model for the paper's PCIe 2.0 fleet).
    pub gather: TransferPath,
    /// Per-device stream-overlap chunking (see
    /// [`GpuOptions::overlap_chunks`]); `None` picks adaptively.
    pub overlap_chunks: Option<usize>,
    /// Base options for every device (`device` replaced per spec, any
    /// [`FaultConfig::device_index`] by the device's own fleet index).
    pub base: GpuOptions,
    /// How the fleet reacts to injected faults: per-shard retries with
    /// backoff, then re-encoding the lost rows onto survivors when
    /// their constant budgets allow.
    pub recovery: RecoveryPolicy,
}

/// Aggregate modeled cost of a row-sharded cluster.
///
/// Per batch the devices compute concurrently (max over device walls),
/// then the non-root shards' results cross to the root — so the batch
/// wall clock is `max(device walls) + gather makespan`, and the gather
/// is charged **honestly** as its own term, visible in
/// [`RowClusterStats::gather_seconds`].
#[derive(Debug, Clone, Default)]
pub struct RowClusterStats {
    /// Points evaluated (a batch of `P` counts `P`).
    pub evaluations: u64,
    /// Cluster-level batches (one per `evaluate_batch` call).
    pub batches: u64,
    /// Modeled wall clock: per batch `max(device walls) + gather`,
    /// summed over batches.
    pub wall_seconds: f64,
    /// The compute share of the wall clock (max over devices per
    /// batch, summed).
    pub compute_seconds: f64,
    /// The inter-device gather share of the wall clock (timeline
    /// makespan per batch, summed).
    pub gather_seconds: f64,
    /// Cumulative modeled wall seconds per participating device.
    /// Re-aligned (and zeroed) when a failover re-plan changes the
    /// fleet topology.
    pub device_wall: Vec<f64>,
    /// Rows each participating device owns.
    pub device_rows: Vec<usize>,
    /// Injected-fault accounting: device strikes and detection latency
    /// plus cluster-level retries, failovers, backoff, and re-encode
    /// seconds.
    pub fault: FaultStats,
    /// Devices dropped from the fleet by faults so far.
    pub devices_lost: usize,
}

impl RowClusterStats {
    fn new(device_rows: Vec<usize>) -> Self {
        RowClusterStats {
            device_wall: vec![0.0; device_rows.len()],
            device_rows,
            ..Default::default()
        }
    }

    /// Modeled cluster throughput in evaluations per second.
    pub fn throughput_evals_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.evaluations as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of the wall clock spent gathering rows across devices
    /// — the overhead row sharding pays for lifting the memory wall.
    pub fn gather_fraction(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.gather_seconds / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fold this struct into a [`MetricsRegistry`] under `prefix`.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.evaluations"), self.evaluations);
        reg.counter(&format!("{prefix}.batches"), self.batches);
        reg.counter(&format!("{prefix}.devices_lost"), self.devices_lost as u64);
        reg.gauge(&format!("{prefix}.wall_seconds"), self.wall_seconds);
        reg.gauge(&format!("{prefix}.compute_seconds"), self.compute_seconds);
        reg.gauge(&format!("{prefix}.gather_seconds"), self.gather_seconds);
        reg.gauge(&format!("{prefix}.gather_fraction"), self.gather_fraction());
        self.fault.record_metrics(reg, &format!("{prefix}.fault"));
    }
}

impl fmt::Display for RowClusterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  evaluations           {:>12}", self.evaluations)?;
        writeln!(f, "  batches               {:>12}", self.batches)?;
        writeln!(f, "  devices               {:>12}", self.device_rows.len())?;
        writeln!(f, "  devices lost          {:>12}", self.devices_lost)?;
        writeln!(f, "  wall seconds          {:>12.3e}", self.wall_seconds)?;
        writeln!(f, "  compute seconds       {:>12.3e}", self.compute_seconds)?;
        writeln!(f, "  gather seconds        {:>12.3e}", self.gather_seconds)?;
        writeln!(
            f,
            "  gather fraction       {:>12.3}",
            self.gather_fraction()
        )?;
        write!(
            f,
            "  throughput (evals/s)  {:>12.3e}",
            self.throughput_evals_per_sec()
        )
    }
}

/// One participating device of a [`RowShardedEvaluator`]: its engine
/// over its rectangular row block, plus the global row indices the
/// block covers.
struct RowShard<R: Real> {
    engine: DeviceEngine<R>,
    /// Global row index of each local row, in local order.
    rows: Vec<usize>,
    /// The device's index in the original fleet — kept stable across
    /// failover re-plans so each physical device retains its own fault
    /// schedule.
    device_index: usize,
}

/// [`BatchSystemEvaluator`] over `D` devices, each evaluating its own
/// **row block** of the system at every point of the batch.
///
/// The cluster's batch capacity is the *per-device* capacity (points
/// are replicated, not sharded); what scales with `D` is the
/// constant-memory budget — and, on compute-bound shapes, the wall
/// clock, because each device's kernels cover only `rows/D` equations.
pub struct RowShardedEvaluator<R: Real> {
    shards: Vec<RowShard<R>>,
    policy: SystemShardPolicy,
    gather: TransferPath,
    stats: RowClusterStats,
    /// Variables (the dimension points live in).
    n: usize,
    /// Total rows across all shards.
    rows: usize,
    recovery: RecoveryPolicy,
    /// Retained for failover re-encoding and the CPU-reference
    /// fallback (both bit-identical to the fault-free run).
    system: System<R>,
    /// Base options for rebuilding engines after a failover.
    base: GpuOptions,
    capacity: usize,
    /// Devices the fleet was configured with.
    fleet: usize,
    /// Devices dropped by faults (sticky for the evaluator's life).
    lost_devices: usize,
    /// Cluster-level span sink ([`Track::Cluster`]); each shard engine
    /// carries its own sink on its device's track.
    trace: TraceSink,
}

impl<R: Real> RowShardedEvaluator<R> {
    /// Shard `system`'s equations over `specs` by `opts.policy` and
    /// build one rectangular-block [`BatchGpuEvaluator`] of `capacity`
    /// points per participating device (devices left without rows when
    /// `D > rows` sit the computation out). Each device encodes only
    /// its rows' supports — the whole point: a system whose full
    /// encoding overflows one device's constant memory builds here as
    /// long as every *shard* fits.
    pub fn new(
        system: &System<R>,
        specs: &[DeviceSpec],
        capacity: usize,
        opts: RowClusterOptions,
    ) -> Result<Self, SetupError> {
        assert!(!specs.is_empty(), "cluster needs at least one device");
        let plan = plan_rows(opts.policy, system.rows(), specs.len());
        let mut shards = Vec::new();
        for (device_index, (spec, rows)) in specs.iter().zip(plan).enumerate() {
            if rows.is_empty() {
                continue;
            }
            let block = system.row_block(&rows);
            let gopts = GpuOptions {
                device: spec.clone(),
                overlap_chunks: opts.overlap_chunks,
                fault: opts.base.fault.map(|f| FaultConfig {
                    plan: f.plan,
                    device_index,
                }),
                trace: opts.base.trace.on(Track::Device(device_index as u32)),
                ..opts.base.clone()
            };
            let engine = DeviceEngine::build(&block, capacity, gopts)?;
            shards.push(RowShard {
                engine,
                rows,
                device_index,
            });
        }
        Ok(RowShardedEvaluator {
            stats: RowClusterStats::new(shards.iter().map(|s| s.rows.len()).collect()),
            policy: opts.policy,
            gather: opts.gather,
            n: system.dim(),
            rows: system.rows(),
            recovery: opts.recovery,
            system: system.clone(),
            trace: opts.base.trace.on(Track::Cluster),
            base: GpuOptions {
                overlap_chunks: opts.overlap_chunks,
                ..opts.base.clone()
            },
            capacity,
            fleet: specs.len(),
            lost_devices: 0,
            shards,
        })
    }

    /// Assemble from pre-built per-device engines (the residency path:
    /// [`ClusterSession::load`] encodes each shard into a shared
    /// per-device arena first). `row_map[i]` holds the global row
    /// indices of `engines[i]`'s block, matching its construction.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        engines: Vec<BatchGpuEvaluator<R>>,
        row_map: Vec<Vec<usize>>,
        device_indices: Vec<usize>,
        system: &System<R>,
        base: GpuOptions,
        capacity: usize,
        recovery: RecoveryPolicy,
        fleet: usize,
        policy: SystemShardPolicy,
        gather: TransferPath,
    ) -> Self {
        let shards: Vec<RowShard<R>> = engines
            .into_iter()
            .zip(row_map)
            .zip(device_indices)
            .map(|((engine, rows), device_index)| RowShard {
                engine: DeviceEngine::Dense(engine),
                rows,
                device_index,
            })
            .collect();
        RowShardedEvaluator {
            stats: RowClusterStats::new(shards.iter().map(|s| s.rows.len()).collect()),
            policy,
            gather,
            n: system.dim(),
            rows: system.rows(),
            recovery,
            system: system.clone(),
            trace: base.trace.on(Track::Cluster),
            base,
            capacity,
            fleet,
            lost_devices: 0,
            shards,
        }
    }

    /// Participating devices (those that own at least one row).
    pub fn device_count(&self) -> usize {
        self.shards.len()
    }

    /// The row plan in effect: global row indices per participating
    /// device.
    pub fn row_plan(&self) -> Vec<Vec<usize>> {
        self.shards.iter().map(|s| s.rows.clone()).collect()
    }

    /// The shard policy the plan was produced by.
    pub fn policy(&self) -> SystemShardPolicy {
        self.policy
    }

    /// Per-device modeled statistics.
    pub fn device_stats(&self) -> Vec<PipelineStats> {
        self.shards.iter().map(|s| s.engine.stats()).collect()
    }

    /// Aggregate cluster statistics (compute + gather decomposition).
    /// Fault accounting merges the devices' strike/detection counters
    /// with the cluster-level retry/failover/re-encode bookkeeping.
    pub fn cluster_stats(&self) -> RowClusterStats {
        let mut s = self.stats.clone();
        for shard in &self.shards {
            s.fault.merge(&shard.engine.stats().fault);
        }
        s.devices_lost = self.lost_devices;
        s
    }

    pub fn reset_stats(&mut self) {
        for s in self.shards.iter_mut() {
            s.engine.reset_stats();
        }
        self.stats = RowClusterStats::new(self.shards.iter().map(|s| s.rows.len()).collect());
    }

    /// Modeled seconds of gathering one batch's non-root rows into the
    /// root device: the [`gather_timeline`] makespan over one transfer
    /// leg pair per non-root shard (`p · rows_d · (n + 1)` result
    /// elements each).
    fn gather_schedule(&self, p: usize) -> Option<Timeline> {
        if self.shards.len() <= 1 {
            return None;
        }
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let root = self.shards[0].engine.device().clone();
        let legs: Vec<(f64, f64)> = self.shards[1..]
            .iter()
            .map(|s| {
                let bytes = p * s.rows.len() * (self.n + 1) * elem;
                transfer_legs(s.engine.device(), &root, bytes, self.gather)
            })
            .collect();
        Some(gather_timeline(&legs))
    }

    /// Re-plan every row over the surviving devices (`keep[d]` per
    /// current shard) and rebuild their engines with the grown row
    /// blocks. Returns the modeled re-encode seconds (supports +
    /// coefficient re-upload and the validation launches, concurrent
    /// across survivors), or `None` when any survivor's constant-memory
    /// budget cannot hold its grown shard.
    fn rebuild_over_survivors(&mut self, keep: &[bool]) -> Option<f64> {
        let survivors: Vec<(usize, DeviceSpec)> = self
            .shards
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(s, _)| (s.device_index, s.engine.device().clone()))
            .collect();
        if survivors.is_empty() {
            return None;
        }
        let plan = plan_rows(self.policy, self.rows, survivors.len());
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let mut shards = Vec::new();
        let mut setup = 0.0f64;
        for ((device_index, spec), rows) in survivors.into_iter().zip(plan) {
            if rows.is_empty() {
                continue;
            }
            let block = self.system.row_block(&rows);
            let gopts = GpuOptions {
                device: spec.clone(),
                fault: self.base.fault.map(|f| FaultConfig {
                    plan: f.plan,
                    device_index,
                }),
                trace: self.base.trace.on(Track::Device(device_index as u32)),
                ..self.base.clone()
            };
            let engine = DeviceEngine::build(&block, self.capacity, gopts).ok()?;
            // Modeled re-encode bytes: a ragged block sizes by its
            // packed footprint, a uniform one by its dense encoding.
            let (supports, coeffs) = match block.uniform_shape() {
                Ok(shape) => (
                    EncodedSupports::bytes_needed(&shape, self.base.encoding),
                    shape.total_monomials() * (shape.k + 1) * elem,
                ),
                Err(_) => {
                    let shape = block.sparse_shape();
                    (
                        sparse_packed_bytes(&shape),
                        shape.total_monomials * (shape.max_k + 1) * elem,
                    )
                }
            };
            setup = setup.max(
                transfer_seconds(&spec, supports)
                    + transfer_seconds(&spec, coeffs)
                    + 3.0 * spec.launch_overhead,
            );
            shards.push(RowShard {
                engine,
                rows,
                device_index,
            });
        }
        // The rebuild replaces every engine (and drops the failed
        // devices'), so fold their strike counters into the
        // cluster-level stats before they disappear.
        for s in &self.shards {
            self.stats.fault.merge(&s.engine.stats().fault);
        }
        self.shards = shards;
        self.stats.device_wall = vec![0.0; self.shards.len()];
        self.stats.device_rows = self.shards.iter().map(|s| s.rows.len()).collect();
        Some(setup)
    }

    /// Evaluate a batch: every participating device evaluates **all**
    /// points of its row block in parallel; rows merge back into full
    /// evaluations in global row order, bit-identical to a
    /// single-device run of the unsharded system.
    ///
    /// Injected faults are recovered per the [`RecoveryPolicy`]: a
    /// faulted shard retries on its own device with exponential
    /// backoff; a device that exhausts its retries (or is lost
    /// outright) drops out and the **whole system is re-planned and
    /// re-encoded over the survivors** — charged as modeled re-encode
    /// time — provided every survivor's constant budget holds its grown
    /// shard. Otherwise the batch falls back to the CPU reference when
    /// the policy allows, or fails typed with
    /// [`BatchError::DegradedFleet`]. Recovered batches are
    /// bit-identical to fault-free ones.
    pub fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let p = points.len();
        let capacity = self.max_batch();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != self.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: self.n,
                });
            }
        }

        let recovery = self.recovery;
        let mut merged: Vec<SystemEval<R>> = (0..p)
            .map(|_| SystemEval::zeros_rect(self.rows, self.n))
            .collect();
        let mut fault = FaultStats::default();
        let mut compute_wall = 0.0f64;
        // Cluster-track spans run on the cluster's own modeled clock
        // (rounds are sequential, so `wall0 + compute_wall` is the
        // current round's start).
        let wall0 = self.stats.wall_seconds;
        loop {
            // Every shard runs the full point batch concurrently on the
            // host pool (the rayon shim preserves input order, so
            // merging below is deterministic); a faulted shard retries
            // in place with exponential backoff before it is declared
            // failed.
            struct Outcome<R: Real> {
                result: Result<Vec<SystemEval<R>>, BatchError>,
                retries: u64,
                backoff: f64,
                wall: f64,
            }
            let work: Vec<&mut RowShard<R>> = self.shards.iter_mut().collect();
            let outcomes: Vec<Outcome<R>> = work
                .into_par_iter()
                .map(|s| {
                    let wall_before = s.engine.stats().wall_seconds;
                    let mut retries = 0u64;
                    let mut backoff = 0.0f64;
                    let mut attempt = 0u32;
                    let result = loop {
                        match s.engine.try_evaluate_batch(points) {
                            Ok(evals) => break Ok(evals),
                            Err(BatchError::Fault(fe)) => {
                                if fe.kind == FaultKind::DeviceLost
                                    || attempt >= recovery.max_retries
                                {
                                    break Err(BatchError::Fault(fe));
                                }
                                backoff += recovery.backoff_seconds(attempt);
                                attempt += 1;
                                retries += 1;
                            }
                            Err(e) => break Err(e),
                        }
                    };
                    let wall = s.engine.stats().wall_seconds - wall_before;
                    Outcome {
                        result,
                        retries,
                        backoff,
                        wall,
                    }
                })
                .collect();

            let mut round_wall = 0.0f64;
            let mut keep = vec![true; self.shards.len()];
            for (d, o) in outcomes.into_iter().enumerate() {
                fault.retries += o.retries;
                fault.recovery_seconds += o.backoff;
                let dev_wall = o.wall + o.backoff;
                self.trace.emit(
                    SpanKind::Shard,
                    wall0 + compute_wall,
                    dev_wall,
                    4,
                    &[
                        ("device", MetaValue::U64(self.shards[d].device_index as u64)),
                        ("rows", MetaValue::U64(self.shards[d].rows.len() as u64)),
                    ],
                );
                if o.retries > 0 {
                    self.trace.emit(
                        SpanKind::Retry,
                        wall0 + compute_wall + o.wall,
                        0.0,
                        5,
                        &[
                            ("device", MetaValue::U64(self.shards[d].device_index as u64)),
                            ("attempts", MetaValue::U64(o.retries)),
                        ],
                    );
                }
                if o.backoff > 0.0 {
                    self.trace.emit(
                        SpanKind::Backoff,
                        wall0 + compute_wall + o.wall,
                        o.backoff,
                        5,
                        &[("device", MetaValue::U64(self.shards[d].device_index as u64))],
                    );
                }
                round_wall = round_wall.max(dev_wall);
                self.stats.device_wall[d] += dev_wall;
                match o.result {
                    Ok(evals) => {
                        for (i, eval) in evals.into_iter().enumerate() {
                            for (local, &global) in self.shards[d].rows.iter().enumerate() {
                                merged[i].values[global] = eval.values[local];
                                for v in 0..self.n {
                                    merged[i].jacobian[(global, v)] = eval.jacobian[(local, v)];
                                }
                            }
                        }
                    }
                    Err(BatchError::Fault(_)) => {
                        keep[d] = false;
                        fault.failovers += 1;
                    }
                    // Non-fault errors are contract violations, not
                    // recoverable hardware events.
                    Err(other) => {
                        self.stats.fault.merge(&fault);
                        self.stats.compute_seconds += compute_wall + round_wall;
                        self.stats.wall_seconds += compute_wall + round_wall;
                        return Err(other);
                    }
                }
            }
            compute_wall += round_wall;
            if keep.iter().all(|&k| k) {
                break;
            }

            // Failover: drop the failed devices and re-encode every row
            // over the survivors; re-run the rebuilt fleet from scratch
            // (bit-identical — only the modeled clock pays).
            self.lost_devices += keep.iter().filter(|&&k| !k).count();
            match self.rebuild_over_survivors(&keep) {
                Some(reencode) => {
                    self.trace
                        .emit(SpanKind::Reencode, wall0 + compute_wall, reencode, 4, &[]);
                    fault.recovery_seconds += reencode;
                    compute_wall += reencode;
                }
                None => {
                    if recovery.cpu_fallback {
                        fault.failovers += 1;
                        self.trace.emit(
                            SpanKind::Fallback,
                            wall0 + compute_wall,
                            0.0,
                            4,
                            &[("points", MetaValue::U64(p as u64))],
                        );
                        let mut cpu = CpuFallback::new(&self.system);
                        for (i, x) in points.iter().enumerate() {
                            merged[i] = cpu.evaluate(x);
                        }
                        break;
                    }
                    self.stats.fault.merge(&fault);
                    self.stats.compute_seconds += compute_wall;
                    self.stats.wall_seconds += compute_wall;
                    return Err(BatchError::DegradedFleet {
                        devices: self.fleet,
                        lost: self.lost_devices,
                    });
                }
            }
        }

        let gather = match self.gather_schedule(p) {
            Some(tl) => {
                emit_gather_timeline(&self.trace, &tl, wall0 + compute_wall, 4);
                tl.elapsed_seconds()
            }
            None => 0.0,
        };
        self.trace.emit(
            SpanKind::Batch,
            wall0,
            compute_wall + gather,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        self.stats.fault.merge(&fault);
        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.stats.compute_seconds += compute_wall;
        self.stats.gather_seconds += gather;
        self.stats.wall_seconds += compute_wall + gather;
        Ok(merged)
    }
}

impl<R: Real> SystemEvaluator<R> for RowShardedEvaluator<R> {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        polygpu_core::expect_batch(AnyEvaluator::try_evaluate(self, x))
    }

    fn name(&self) -> &str {
        "gpu-sim-cluster-rows"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for RowShardedEvaluator<R> {
    /// The **per-device** point capacity: every device sees every
    /// point, so capacity does not scale with `D` (row sharding trades
    /// throughput scaling for memory scaling).
    fn max_batch(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.capacity())
            .min()
            .unwrap_or(0)
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        polygpu_core::expect_batch(self.try_evaluate_batch(points))
    }
}

impl<R: Real> AnyEvaluator<R> for RowShardedEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        RowShardedEvaluator::try_evaluate_batch(self, points)
    }

    // No `try_correct_batch` override: under row sharding every
    // device holds only a row-slice of each Jacobian, so a fused
    // on-device solve would have to gather the full matrix somewhere
    // per iteration anyway — exactly what the host corrector's
    // evaluate round trip already models. The trait default
    // (`drive_correct` over `try_evaluate_batch`) therefore *is* the
    // honest device-resident story for this topology, and it stays
    // bit-identical to every other backend.

    /// Cluster-level aggregate: wall clock from [`RowClusterStats`]
    /// (compute max + gather per batch); resource seconds and counters
    /// summed over devices, the gather charged into
    /// `transfer_seconds`; fault accounting merged exactly as
    /// [`RowShardedEvaluator::cluster_stats`] reports it.
    fn engine_stats(&self) -> PipelineStats {
        let mut agg = PipelineStats {
            evaluations: self.stats.evaluations,
            batches: self.stats.batches,
            wall_seconds: self.stats.wall_seconds,
            transfer_seconds: self.stats.gather_seconds,
            fault: self.stats.fault,
            ..Default::default()
        };
        for s in &self.shards {
            let d = s.engine.stats();
            agg.counters += d.counters;
            agg.kernel_seconds += d.kernel_seconds;
            agg.overhead_seconds += d.overhead_seconds;
            agg.transfer_seconds += d.transfer_seconds;
            agg.factor_seconds += d.factor_seconds;
            agg.backsub_seconds += d.backsub_seconds;
            agg.h2d_bytes += d.h2d_bytes;
            agg.d2h_bytes += d.d2h_bytes;
            agg.corrections += d.corrections;
            agg.corrector_iterations += d.corrector_iterations;
            agg.fault.merge(&d.fault);
        }
        agg
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        let capacity = self.max_batch();
        EngineCaps {
            backend: "cluster-rows",
            devices: self.shards.len(),
            capacity,
            // Identical to `capacity`: every device absorbs the whole
            // batch, so `auto_slots` resolves to `capacity`, not
            // `D × capacity` (the caps-aware clamp in `auto_slots`).
            per_device_capacity: capacity,
            batched: true,
            constant_bytes: self
                .shards
                .iter()
                .map(|s| s.engine.constant_bytes_used())
                .sum(),
        }
    }
}

// ---------------------------------------------------------------------
// Cluster-level residency
// ---------------------------------------------------------------------

struct ClusterResident<R: Real> {
    evaluator: RowShardedEvaluator<R>,
    label: String,
    monomials: usize,
    constant_bytes: usize,
    setup_seconds: f64,
    activations: u64,
    /// Constant-arena regions per participating device
    /// (`(device, (positions, exponents))`) — returned to the arenas on
    /// [`ClusterSession::unload`].
    regions: Vec<(usize, (ConstId, ConstId))>,
}

/// Multi-system residency across a device fleet: several row-sharded
/// systems co-reside in the devices' constant arenas under **joint
/// per-device budgets**, and switching the active system costs one
/// parallel command-queue round trip (the slowest device's
/// `pcie_latency` — every device rebinds its own offsets concurrently)
/// instead of `D` full re-encodes.
///
/// Built from the same validated [`ClusterSpec`] the [`ClusterProvider`]
/// receives — [`EngineBuilder::cluster_spec`] is the seam:
///
/// ```
/// use polygpu_cluster::ClusterSession;
/// use polygpu_core::engine::{Backend, SystemShardPolicy};
/// use polygpu_gpusim::prelude::DeviceSpec;
/// use polygpu_polysys::{random_points, random_system, BenchmarkParams};
///
/// let spec = polygpu_cluster::engine_builder()
///     .backend(Backend::Cluster {
///         devices: vec![DeviceSpec::tesla_c2050(); 2],
///         shard: SystemShardPolicy::Contiguous.into(),
///     })
///     .per_device_capacity(4)
///     .cluster_spec()
///     .unwrap();
/// let mut session = ClusterSession::<f64>::from_spec(&spec).unwrap();
/// let sys = random_system::<f64>(&BenchmarkParams { n: 8, m: 3, k: 2, d: 2, seed: 1 });
/// let id = session.load("stage-a", &sys).unwrap();
/// let points = random_points::<f64>(8, 3, 5);
/// let evals = session.activate(id).try_evaluate_batch(&points).unwrap();
/// assert_eq!(evals.len(), 3);
/// ```
///
/// [`ClusterProvider`]: polygpu_core::engine::ClusterProvider
/// [`EngineBuilder::cluster_spec`]: polygpu_core::engine::EngineBuilder::cluster_spec
pub struct ClusterSession<R: Real> {
    specs: Vec<DeviceSpec>,
    arenas: Vec<ConstantMemory>,
    capacity: usize,
    policy: SystemShardPolicy,
    gather: TransferPath,
    base: GpuOptions,
    recovery: RecoveryPolicy,
    /// Per-device injectors for the session's own staged uploads
    /// (loads); the residents' engines carry their own.
    injectors: Vec<Option<FaultInjector>>,
    /// Devices lost to upload faults — excluded from every later load.
    lost: Vec<bool>,
    fault: FaultStats,
    /// Residency slots, indexed by [`SystemId`]; `None` = unloaded.
    /// Slots are never reused, so a stale id can only name an evicted
    /// system (a panic), never silently alias a different one.
    residents: Vec<Option<ClusterResident<R>>>,
    active: Option<usize>,
    stages: u64,
    switches: u64,
    evictions: u64,
    session_seconds: f64,
    reencode_seconds: f64,
}

impl<R: Real> ClusterSession<R> {
    /// Open a session on the fleet a [`ClusterSpec`] describes.
    /// Requires [`ShardMode::Rows`] (point-sharded clusters replicate
    /// the encoding per device; their residency story is the
    /// single-device [`Session`] per device).
    ///
    /// [`Session`]: polygpu_core::engine::Session
    pub fn from_spec(spec: &ClusterSpec) -> Result<Self, BuildError> {
        let policy = match spec.shard {
            ShardMode::Rows { policy } => policy,
            ShardMode::Points { .. } => {
                return Err(BuildError::SessionBackend {
                    backend: "cluster-points",
                })
            }
        };
        if spec.devices.is_empty() {
            return Err(BuildError::NoDevices);
        }
        if spec.per_device_capacity == 0 {
            return Err(BuildError::ZeroCapacity);
        }
        Ok(ClusterSession {
            arenas: spec.devices.iter().map(ConstantMemory::new).collect(),
            injectors: (0..spec.devices.len())
                .map(|d| {
                    spec.base.fault.map(|f| {
                        let mut inj = FaultInjector::new(f.plan, d);
                        inj.arm();
                        inj
                    })
                })
                .collect(),
            lost: vec![false; spec.devices.len()],
            fault: FaultStats::default(),
            specs: spec.devices.clone(),
            capacity: spec.per_device_capacity,
            policy,
            gather: spec.gather,
            base: spec.base.clone(),
            recovery: spec.recovery,
            residents: Vec::new(),
            active: None,
            stages: 0,
            switches: 0,
            evictions: 0,
            session_seconds: 0.0,
            reencode_seconds: 0.0,
        })
    }

    /// Modeled one-time setup cost of making `shape` resident on one
    /// device: supports upload, coefficient upload, and the
    /// three-launch validation probe with its transfers — the same
    /// accounting as the single-device session, per shard.
    fn modeled_shard_setup(&self, device: &DeviceSpec, shape: &UniformShape) -> f64 {
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let supports = EncodedSupports::bytes_needed(shape, self.base.encoding);
        let coeffs = shape.total_monomials() * (shape.k + 1) * elem;
        transfer_seconds(device, supports)
            + transfer_seconds(device, coeffs)
            + 3.0 * device.launch_overhead
            + transfer_seconds(device, shape.n * elem)
            + transfer_seconds(device, shape.outputs() * elem)
    }

    /// Modeled cost of switching the active system: every device
    /// rebinds its kernels' constant offsets concurrently, so the
    /// fleet pays the **slowest** device's command-queue round trip.
    pub fn switch_seconds(&self) -> f64 {
        self.specs
            .iter()
            .map(|s| s.pcie_latency)
            .fold(0.0, f64::max)
    }

    /// Row-shard `system` across the fleet and make it resident:
    /// each device's shard encodes into that device's shared arena
    /// (joint budget — fails typed when a shard does not fit next to
    /// the residents, leaving no partial allocation on any device),
    /// charging the modeled parallel setup once.
    ///
    /// A device that faults during its staged upload is excluded —
    /// permanently when the fault is [`FaultKind::DeviceLost`] — and
    /// the load is **re-planned over the survivors**; only the fault's
    /// modeled detection latency is charged, because the staged-arena
    /// commit protocol already guarantees a failed upload strands no
    /// bytes on any device. When no device survives the load fails
    /// typed with [`BuildError::DegradedFleet`].
    pub fn load(&mut self, label: &str, system: &System<R>) -> Result<SystemId, BuildError> {
        let shape = system.uniform_shape()?;
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let mut excluded = self.lost.clone();
        'replan: loop {
            let survivors: Vec<usize> = (0..self.specs.len()).filter(|&d| !excluded[d]).collect();
            if survivors.is_empty() {
                return Err(BuildError::DegradedFleet {
                    devices: self.specs.len(),
                    lost: excluded.iter().filter(|&&l| l).count(),
                });
            }
            // Pair each surviving device with its row shard (empty
            // shards sit the load out, as at construction).
            let plan: Vec<(usize, Vec<usize>)> =
                plan_rows(self.policy, system.rows(), survivors.len())
                    .into_iter()
                    .zip(&survivors)
                    .filter(|(rows, _)| !rows.is_empty())
                    .map(|(rows, &d)| (d, rows))
                    .collect();
            // Budget check across the whole fleet *before* touching any
            // arena, so a rejected load is free on every device.
            for (d, rows) in &plan {
                let shard_shape = UniformShape {
                    rows: rows.len(),
                    ..shape
                };
                let needed = EncodedSupports::bytes_needed(&shard_shape, self.base.encoding);
                if self.arenas[*d].used() + needed > self.arenas[*d].budget() {
                    return Err(BuildError::Setup(SetupError::Encode(
                        polygpu_core::layout::encoding::EncodeError::Constant(ConstantOverflow {
                            requested_total: self.arenas[*d].used() + needed,
                            budget: self.arenas[*d].budget(),
                        }),
                    )));
                }
            }
            // Stage every device's upload into a *clone* of its arena
            // and commit the clones only after the whole fleet
            // succeeded: the byte pre-check above cannot rule out every
            // failure (e.g. an exponent outside the compact encoding's
            // nibble, present only in one device's rows — or an
            // injected upload fault), and a half-loaded system must not
            // strand bytes in the other devices' shared arenas.
            let mut staged: Vec<ConstantMemory> =
                plan.iter().map(|(d, _)| self.arenas[*d].clone()).collect();
            let mut engines = Vec::with_capacity(plan.len());
            let mut row_map = Vec::with_capacity(plan.len());
            let mut device_indices = Vec::with_capacity(plan.len());
            let mut regions = Vec::with_capacity(plan.len());
            let mut setup = 0.0f64;
            let mut constant_bytes = 0usize;
            for (j, (d, rows)) in plan.iter().enumerate() {
                let shard_shape = UniformShape {
                    rows: rows.len(),
                    ..shape
                };
                // The staged upload is where a fleet device can fault
                // mid-load: charge the detection latency, exclude the
                // device, and re-plan — the staged arenas simply drop.
                if let Some(inj) = self.injectors[*d].as_mut() {
                    let bytes = EncodedSupports::bytes_needed(&shard_shape, self.base.encoding)
                        + shard_shape.total_monomials() * (shard_shape.k + 1) * elem;
                    let upload = transfer_seconds(&self.specs[*d], bytes);
                    if let Some(fe) = inj.check(OpClass::HostToDevice, &self.specs[*d], upload) {
                        excluded[*d] = true;
                        if fe.kind == FaultKind::DeviceLost {
                            self.lost[*d] = true;
                        }
                        self.fault.faults += 1;
                        self.fault.failovers += 1;
                        self.fault.recovery_seconds += fe.detection_seconds;
                        self.session_seconds += fe.detection_seconds;
                        continue 'replan;
                    }
                }
                let block = system.row_block(rows);
                let gopts = GpuOptions {
                    device: self.specs[*d].clone(),
                    fault: self.base.fault.map(|f| FaultConfig {
                        plan: f.plan,
                        device_index: *d,
                    }),
                    trace: self.base.trace.on(Track::Device(*d as u32)),
                    ..self.base.clone()
                };
                let enc = EncodedSupports::upload(&block, &mut staged[j], self.base.encoding)
                    .map_err(|e| BuildError::Setup(SetupError::Encode(e)))?;
                constant_bytes += enc.constant_bytes();
                regions.push((*d, enc.regions()));
                let shard_shape = enc.shape;
                // Devices set up concurrently: the fleet's modeled
                // setup is the slowest shard's.
                setup = setup.max(self.modeled_shard_setup(&self.specs[*d], &shard_shape));
                engines.push(BatchGpuEvaluator::from_encoded(
                    &block,
                    enc,
                    staged[j].clone(),
                    self.capacity,
                    gopts,
                )?);
                row_map.push(rows.clone());
                device_indices.push(*d);
            }
            for ((d, _), arena) in plan.iter().zip(staged) {
                self.arenas[*d] = arena;
            }
            let evaluator = RowShardedEvaluator::from_parts(
                engines,
                row_map,
                device_indices,
                system,
                self.base.clone(),
                self.capacity,
                self.recovery,
                self.specs.len(),
                self.policy,
                self.gather,
            );
            self.session_seconds += setup;
            self.residents.push(Some(ClusterResident {
                evaluator,
                label: label.to_string(),
                monomials: shape.total_monomials(),
                constant_bytes,
                setup_seconds: setup,
                activations: 0,
                regions,
            }));
            return Ok(SystemId::new(self.residents.len() - 1));
        }
    }

    /// Unload `id`: every participating device's constant-arena
    /// regions return to that device's arena (reusable by later loads)
    /// and the slot is cleared. The active system is deactivated if it
    /// was `id`. Returns `false` when `id` was already unloaded.
    /// Panics on an id this session never issued.
    pub fn unload(&mut self, id: SystemId) -> bool {
        let idx = id.index();
        assert!(idx < self.residents.len(), "unknown SystemId");
        let Some(r) = self.residents[idx].take() else {
            return false;
        };
        for (d, (positions, exponents)) in r.regions {
            self.arenas[d].free(positions);
            self.arenas[d].free(exponents);
        }
        if self.active == Some(idx) {
            self.active = None;
        }
        self.evictions += 1;
        true
    }

    /// Whether `id` is still resident (not unloaded).
    pub fn is_resident(&self, id: SystemId) -> bool {
        self.residents.get(id.index()).is_some_and(|r| r.is_some())
    }

    /// Unloads performed over the session's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Residency pressure: the **most loaded** device's resident bytes
    /// over its budget, in `[0, 1]` — the fleet-level analogue of the
    /// single-device session's accessor (row shards must fit every
    /// participating device, so the tightest device gates admission).
    pub fn residency_pressure(&self) -> f64 {
        self.arenas
            .iter()
            .filter(|a| a.budget() > 0)
            .map(|a| a.used() as f64 / a.budget() as f64)
            .fold(0.0, f64::max)
    }

    /// Upload-fault accounting for this session's loads (the residents'
    /// evaluators tally their own evaluation-time faults).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
    }

    /// Devices permanently lost to upload faults.
    pub fn devices_lost(&self) -> usize {
        self.lost.iter().filter(|&&l| l).count()
    }

    /// Make `id` the active system (one modeled parallel command-queue
    /// round trip when it changes) and borrow its evaluator for the
    /// stage. Every call is one "stage" in the amortization
    /// accounting; ids come from **this** session's [`ClusterSession::load`].
    pub fn activate(&mut self, id: SystemId) -> &mut dyn AnyEvaluator<R> {
        let idx = id.index();
        assert!(idx < self.residents.len(), "unknown SystemId");
        assert!(
            self.residents[idx].is_some(),
            "SystemId was unloaded from this session"
        );
        self.stages += 1;
        self.reencode_seconds += self.residents[idx]
            .as_ref()
            .expect("resident")
            .setup_seconds;
        if self.active != Some(idx) {
            if self.active.is_some() {
                self.switches += 1;
                self.session_seconds += self.switch_seconds();
            }
            self.active = Some(idx);
        }
        let r = self.residents[idx].as_mut().expect("resident");
        r.activations += 1;
        &mut r.evaluator
    }

    /// Systems currently resident.
    pub fn resident_count(&self) -> usize {
        self.residents.iter().flatten().count()
    }

    /// Devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.specs.len()
    }

    /// Bytes in use per device arena (all residents' shards).
    pub fn constant_bytes_per_device(&self) -> Vec<usize> {
        self.arenas.iter().map(|a| a.used()).collect()
    }

    /// Per-device constant budgets.
    pub fn constant_budget_per_device(&self) -> Vec<usize> {
        self.arenas.iter().map(|a| a.budget()).collect()
    }

    /// The residency table (one row per resident system; constant
    /// bytes summed over the fleet).
    pub fn residency(&self) -> Vec<ResidencyRow> {
        self.residents
            .iter()
            .flatten()
            .map(|r| ResidencyRow {
                label: r.label.clone(),
                monomials: r.monomials,
                constant_bytes: r.constant_bytes,
                setup_seconds: r.setup_seconds,
                activations: r.activations,
            })
            .collect()
    }

    /// Modeled setup-cost accounting against the re-encoding baseline
    /// (same semantics as the single-device session's).
    pub fn amortization(&self) -> SessionAmortization {
        let min_setup = self
            .residents
            .iter()
            .flatten()
            .map(|r| r.setup_seconds)
            .fold(f64::INFINITY, f64::min);
        let switch = self.switch_seconds();
        SessionAmortization {
            stages: self.stages,
            session_seconds: self.session_seconds,
            reencode_seconds: self.reencode_seconds,
            steady_state_ratio: if self.resident_count() == 0 || switch <= 0.0 {
                1.0
            } else {
                min_setup / switch
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{random_points, random_system, AdEvaluator, BenchmarkParams};

    fn params(n: usize, m: usize, k: usize, d: u16, seed: u64) -> BenchmarkParams {
        BenchmarkParams { n, m, k, d, seed }
    }

    /// Deterministic heterogeneity: every other device derated in the
    /// timing model only.
    fn hetero_specs(d: usize) -> Vec<DeviceSpec> {
        (0..d)
            .map(|i| {
                let mut s = DeviceSpec::tesla_c2050();
                if i % 2 == 1 {
                    s.name = format!("slow-c2050 #{i}");
                    s.clock_hz *= 0.6;
                    s.pcie_bandwidth *= 0.8;
                }
                s
            })
            .collect()
    }

    #[test]
    fn row_plans_cover_every_row_exactly_once() {
        for policy in [SystemShardPolicy::Contiguous, SystemShardPolicy::RoundRobin] {
            for (rows, d) in [(8usize, 3usize), (5, 5), (2, 4), (32, 4), (7, 1)] {
                let plan = plan_rows(policy, rows, d);
                assert_eq!(plan.len(), d);
                let mut seen = vec![false; rows];
                for shard in &plan {
                    for &r in shard {
                        assert!(!seen[r], "{policy:?}: row {r} planned twice");
                        seen[r] = true;
                    }
                }
                assert!(seen.iter().all(|&b| b), "{policy:?}: rows dropped");
                // Balance: shard sizes differ by at most one.
                let sizes: Vec<usize> = plan.iter().map(|s| s.len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "{policy:?}: unbalanced {sizes:?}");
            }
        }
    }

    #[test]
    fn row_sharded_results_bitwise_equal_cpu_reference() {
        let prm = params(8, 3, 2, 2, 5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 7, 11);
        let mut cpu = AdEvaluator::new(sys.clone()).unwrap();
        let want = cpu.evaluate_batch(&points);
        for policy in [SystemShardPolicy::Contiguous, SystemShardPolicy::RoundRobin] {
            for d in [1usize, 2, 3, 4] {
                let mut cluster = RowShardedEvaluator::new(
                    &sys,
                    &hetero_specs(d),
                    8,
                    RowClusterOptions {
                        policy,
                        ..Default::default()
                    },
                )
                .unwrap();
                let got = cluster.evaluate_batch(&points);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g.values, w.values, "{policy:?} D={d}, point {i}");
                    assert_eq!(
                        g.jacobian.as_slice(),
                        w.jacobian.as_slice(),
                        "{policy:?} D={d}, point {i}"
                    );
                }
            }
        }
    }

    /// The headline: the paper's 2,048-monomial k = 16 system —
    /// rejected by every single-device engine for overflowing constant
    /// memory — **builds and evaluates** once its rows are sharded over
    /// D ∈ {2, 4} devices, bit-identical to the CPU reference.
    #[test]
    fn over_budget_system_builds_at_d2_and_d4() {
        let prm = params(32, 64, 16, 10, 3);
        let sys = random_system::<f64>(&prm);
        // Single device (and D = 1 row sharding): the wall stands.
        assert!(BatchGpuEvaluator::new(&sys, 4, GpuOptions::default()).is_err());
        assert!(
            RowShardedEvaluator::new(&sys, &hetero_specs(1), 4, RowClusterOptions::default())
                .is_err()
        );
        let points = random_points::<f64>(32, 4, 21);
        let mut cpu = AdEvaluator::new(sys.clone()).unwrap();
        let want = cpu.evaluate_batch(&points);
        for d in [2usize, 4] {
            let mut cluster = RowShardedEvaluator::new(
                &sys,
                &vec![DeviceSpec::tesla_c2050(); d],
                4,
                RowClusterOptions::default(),
            )
            .unwrap_or_else(|e| panic!("over-budget system must build at D = {d}: {e}"));
            // Each device holds ~1/D of the encoding, all under budget.
            let caps = AnyEvaluator::caps(&cluster);
            assert_eq!(caps.devices, d);
            assert_eq!(caps.backend, "cluster-rows");
            assert_eq!(caps.constant_bytes, 65_536, "full encoding, fleet-wide");
            let got = cluster.evaluate_batch(&points);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "D={d}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "D={d}, point {i}"
                );
            }
            let s = cluster.cluster_stats();
            assert!(s.gather_seconds > 0.0, "gather must be charged at D={d}");
            assert!(s.wall_seconds > s.gather_seconds);
        }
    }

    /// The perf half of the headline: on a compute-bound shape that
    /// *does* fit one device, sharding the rows over D = 4 beats D = 1
    /// despite the gather cost (each device's kernels cover a quarter
    /// of the equations).
    #[test]
    fn four_way_row_sharding_beats_one_device_on_compute_bound_shapes() {
        let prm = params(32, 48, 16, 10, 9); // 1,536 monomials: fits one device
        let sys = random_system::<f64>(&prm);
        let p = 32;
        let points = random_points::<f64>(32, p, 13);
        let mut walls = Vec::new();
        let mut endpoints = Vec::new();
        for d in [1usize, 4] {
            let mut cluster = RowShardedEvaluator::new(
                &sys,
                &vec![DeviceSpec::tesla_c2050(); d],
                p,
                RowClusterOptions::default(),
            )
            .unwrap();
            endpoints.push(cluster.evaluate_batch(&points));
            let s = cluster.cluster_stats();
            if d == 1 {
                assert_eq!(s.gather_seconds, 0.0, "nothing to gather at D = 1");
            } else {
                assert!(s.gather_fraction() > 0.0 && s.gather_fraction() < 0.5);
            }
            walls.push(s.wall_seconds);
        }
        for (a, b) in endpoints[0].iter().zip(&endpoints[1]) {
            assert_eq!(a.values, b.values);
        }
        assert!(
            walls[1] < walls[0],
            "D = 4 must beat D = 1 despite the gather: {:.3e} vs {:.3e} s",
            walls[1],
            walls[0]
        );
    }

    /// Satellite: ratio helpers must be total on empty runs.
    #[test]
    fn empty_row_cluster_stats_ratios_are_total() {
        let s = RowClusterStats::default();
        assert_eq!(s.throughput_evals_per_sec(), 0.0);
        assert_eq!(s.gather_fraction(), 0.0);
        assert!(!format!("{s}").is_empty());
    }

    /// Rows-mode spans: the cluster Batch span covers compute + gather,
    /// Gather spans cover the inter-device crossing, and the exported
    /// trace is byte-identical across identical runs.
    #[test]
    fn row_cluster_trace_reconciles_and_is_deterministic() {
        use polygpu_obs::{chrome_trace_json, CollectingTracer, SpanKind, TraceSink, Track};
        use std::sync::Arc;
        let prm = params(8, 4, 3, 2, 7);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 5, 3);
        let run = || {
            let tracer = Arc::new(CollectingTracer::new());
            let mut opts = RowClusterOptions::default();
            opts.base.trace = TraceSink::new(tracer.clone());
            let mut cluster = RowShardedEvaluator::new(&sys, &hetero_specs(3), 8, opts).unwrap();
            let _ = cluster.evaluate_batch(&points);
            (tracer.spans(), cluster.cluster_stats())
        };
        let (spans, stats) = run();
        let batch: Vec<_> = spans
            .iter()
            .filter(|s| s.track == Track::Cluster && s.kind == SpanKind::Batch)
            .collect();
        assert_eq!(batch.len(), 1);
        assert!((batch[0].dur - stats.wall_seconds).abs() < 1e-12);
        let gather_spans: f64 = spans
            .iter()
            .filter(|s| s.track == Track::Cluster && s.kind == SpanKind::Gather)
            .map(|s| s.start + s.dur)
            .fold(0.0, f64::max);
        // The last gather op ends exactly at the batch's wall clock.
        assert!(
            (gather_spans - (batch[0].start + batch[0].dur)).abs() < 1e-12,
            "gather tail {gather_spans} vs batch end {}",
            batch[0].start + batch[0].dur
        );
        let shards = spans
            .iter()
            .filter(|s| s.track == Track::Cluster && s.kind == SpanKind::Shard)
            .count();
        assert_eq!(shards, 3, "one Shard span per participating device");
        let (again, _) = run();
        assert_eq!(chrome_trace_json(&spans), chrome_trace_json(&again));
    }

    #[test]
    fn gather_path_and_stats_accounting() {
        let prm = params(8, 4, 3, 2, 7);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 5, 3);
        let mut staged = RowShardedEvaluator::new(
            &sys,
            &hetero_specs(3),
            8,
            RowClusterOptions {
                gather: TransferPath::HostStaged,
                ..Default::default()
            },
        )
        .unwrap();
        let mut peer = RowShardedEvaluator::new(
            &sys,
            &hetero_specs(3),
            8,
            RowClusterOptions {
                gather: TransferPath::PeerToPeer,
                ..Default::default()
            },
        )
        .unwrap();
        let a = staged.evaluate_batch(&points);
        let b = peer.evaluate_batch(&points);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values, y.values, "gather path is timing-model only");
        }
        let (ss, ps) = (staged.cluster_stats(), peer.cluster_stats());
        assert!(ss.gather_seconds > 0.0 && ps.gather_seconds > 0.0);
        assert!(
            ps.gather_seconds < ss.gather_seconds,
            "peer hops must be cheaper than host staging: {:.3e} vs {:.3e}",
            ps.gather_seconds,
            ss.gather_seconds
        );
        assert_eq!(ss.batches, 1);
        assert_eq!(ss.evaluations, 5);
        // Wall decomposes into compute + gather exactly.
        assert!((ss.wall_seconds - ss.compute_seconds - ss.gather_seconds).abs() < 1e-15);
        // Typed contract errors, costing nothing.
        assert!(matches!(
            staged.try_evaluate_batch(&[]),
            Err(BatchError::Empty)
        ));
        let too_many = random_points::<f64>(8, 9, 3);
        assert!(matches!(
            staged.try_evaluate_batch(&too_many),
            Err(BatchError::CapacityExceeded {
                points: 9,
                capacity: 8
            })
        ));
        assert_eq!(staged.cluster_stats().batches, 1, "rejected calls are free");
        staged.reset_stats();
        assert_eq!(staged.cluster_stats().evaluations, 0);
    }

    /// The gather path is selectable through the public builder
    /// (`EngineBuilder::gather_path`), not only by constructing the
    /// evaluator directly — and peer hops model cheaper than staging.
    #[test]
    fn gather_path_reaches_through_the_builder() {
        let prm = params(8, 4, 3, 2, 7);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 5, 3);
        let build = |gather: TransferPath| {
            crate::engine_builder()
                .backend(polygpu_core::Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050(); 3],
                    shard: SystemShardPolicy::Contiguous.into(),
                })
                .per_device_capacity(8)
                .gather_path(gather)
                .build(&sys)
                .unwrap()
        };
        let mut staged = build(TransferPath::HostStaged);
        let mut peer = build(TransferPath::PeerToPeer);
        let a = staged.try_evaluate_batch(&points).unwrap();
        let b = peer.try_evaluate_batch(&points).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values, y.values, "gather path is timing-model only");
        }
        assert!(
            peer.engine_stats().wall_seconds < staged.engine_stats().wall_seconds,
            "peer gather must model cheaper through the builder too"
        );
    }

    #[test]
    fn more_devices_than_rows_leaves_spares_idle() {
        let prm = params(3, 2, 2, 2, 1);
        let sys = random_system::<f64>(&prm);
        let mut cluster =
            RowShardedEvaluator::new(&sys, &hetero_specs(5), 4, RowClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.device_count(), 3, "only 3 rows to hand out");
        let points = random_points::<f64>(3, 2, 2);
        let mut cpu = AdEvaluator::new(sys).unwrap();
        let want = cpu.evaluate_batch(&points);
        let got = cluster.evaluate_batch(&points);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
        }
    }

    #[test]
    fn cluster_session_shares_per_device_budgets_and_amortizes() {
        let spec = crate::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 2],
                shard: SystemShardPolicy::Contiguous.into(),
            })
            .per_device_capacity(4)
            .cluster_spec()
            .unwrap();
        let mut session = ClusterSession::<f64>::from_spec(&spec).unwrap();
        assert_eq!(session.device_count(), 2);
        // The 2,048-monomial over-budget system loads row-sharded…
        let big = random_system::<f64>(&params(32, 64, 16, 10, 3));
        let a = session.load("big", &big).unwrap();
        // …and a second Table-2-sized system co-resides next to it.
        let medium = random_system::<f64>(&params(32, 32, 16, 10, 4));
        let b = session.load("medium", &medium).unwrap();
        assert_eq!(session.resident_count(), 2);
        for (used, budget) in session
            .constant_bytes_per_device()
            .iter()
            .zip(session.constant_budget_per_device())
        {
            assert!(*used <= budget);
            assert!(*used > 0);
        }
        // A third large system breaks the joint per-device budget with
        // the paper's typed constant-overflow error — and costs nothing.
        let err = match session.load("too-much", &big) {
            Ok(_) => panic!("three large systems cannot co-reside on two devices"),
            Err(e) => e,
        };
        assert!(
            matches!(err, BuildError::Setup(SetupError::Encode(_))),
            "{err}"
        );
        assert_eq!(session.resident_count(), 2);

        // Stages switch for one parallel round trip; the amortization
        // accounting matches the single-device session's semantics.
        let points = random_points::<f64>(32, 3, 17);
        for _ in 0..4 {
            for id in [a, b] {
                let evals = session.activate(id).try_evaluate_batch(&points).unwrap();
                assert_eq!(evals.len(), 3);
            }
        }
        let am = session.amortization();
        assert_eq!(am.stages, 8);
        assert!(
            am.steady_state_ratio >= 5.0,
            "cluster residency amortization too weak: {:.2}x",
            am.steady_state_ratio
        );
        assert!(am.reencode_seconds > am.session_seconds);

        // Residency is bit-identical to a fresh row-sharded build.
        let mut standalone = RowShardedEvaluator::new(
            &medium,
            &[DeviceSpec::tesla_c2050(), DeviceSpec::tesla_c2050()],
            4,
            RowClusterOptions::default(),
        )
        .unwrap();
        let want = standalone.try_evaluate_batch(&points).unwrap();
        let got = session.activate(b).try_evaluate_batch(&points).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice());
        }
    }

    /// A load that fails *after* the byte pre-check — here a compact
    /// encoding whose exponent limit only the second device's rows
    /// violate — must leave every arena untouched (no stranded bytes
    /// from the devices that had already uploaded their shards).
    #[test]
    fn failed_load_strands_no_bytes_on_any_device() {
        use polygpu_core::layout::encoding::EncodingKind;
        use polygpu_polysys::{Monomial, Polynomial, System, Term};
        let poly = |e: u16| {
            Polynomial::new(vec![Term {
                coeff: polygpu_complex::C64::one(),
                monomial: Monomial::new(vec![(0, e), (1, 1)]).unwrap(),
            }])
        };
        // Rows 0–1 fit the compact nibble (exp − 1 ≤ 15); rows 2–3
        // carry exponent 17, which only device 1's shard encodes.
        let sys = System::new(4, vec![poly(2), poly(2), poly(17), poly(17)]).unwrap();
        let spec = crate::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 2],
                shard: SystemShardPolicy::Contiguous.into(),
            })
            .encoding(EncodingKind::Compact)
            .per_device_capacity(2)
            .cluster_spec()
            .unwrap();
        let mut session = ClusterSession::<f64>::from_spec(&spec).unwrap();
        let before = session.constant_bytes_per_device();
        let err = match session.load("bad", &sys) {
            Ok(_) => panic!("exponent 17 cannot encode compactly"),
            Err(e) => e,
        };
        assert!(matches!(err, BuildError::Setup(_)), "{err}");
        assert_eq!(
            session.constant_bytes_per_device(),
            before,
            "device 0's staged shard must not commit"
        );
        assert_eq!(session.resident_count(), 0);
        // The session stays fully usable.
        let ok = System::new(4, vec![poly(2), poly(3), poly(2), poly(3)]).unwrap();
        let id = session.load("good", &ok).unwrap();
        let x = vec![polygpu_complex::C64::one(); 4];
        let eval = session.activate(id).try_evaluate(&x).unwrap();
        assert_eq!(eval.values.len(), 4);
    }

    /// Chaos, Rows mode: when one device dies, its rows re-encode onto
    /// the survivor (the budget allows it here) and the merged result
    /// is bit-identical to the CPU reference. Seeds are scanned for a
    /// schedule that kills device 1 early while leaving device 0 clean
    /// long enough to absorb the rows.
    #[test]
    fn lost_rows_reencode_on_survivors_bit_identical() {
        let prm = params(8, 3, 2, 2, 5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 4, 11);
        let mut cpu = AdEvaluator::new(sys.clone()).unwrap();
        let want = cpu.evaluate_batch(&points);
        let strict = RecoveryPolicy {
            max_retries: 0,
            backoff_base: 0.0,
            backoff_factor: 1.0,
            cpu_fallback: false,
        };
        let seed = (0..2_000u64)
            .find(|&seed| {
                let plan = FaultPlan::new(seed, 40_000);
                let d1_strikes = (0..5).any(|op| plan.fault_at(1, op, OpClass::Kernel).is_some());
                let d0_clean = (0..40).all(|op| plan.fault_at(0, op, OpClass::Kernel).is_none());
                d1_strikes && d0_clean
            })
            .expect("some seed kills device 1 first");
        let mut cluster = RowShardedEvaluator::new(
            &sys,
            &hetero_specs(2),
            8,
            RowClusterOptions {
                base: GpuOptions {
                    fault: Some(FaultConfig {
                        plan: FaultPlan::new(seed, 40_000),
                        device_index: 0,
                    }),
                    ..GpuOptions::default()
                },
                recovery: strict,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(cluster.device_count(), 2);
        let got = cluster
            .try_evaluate_batch(&points)
            .expect("rows must re-encode on the survivor");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.values, w.values, "point {i}");
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice(), "point {i}");
        }
        assert_eq!(cluster.device_count(), 1, "device 1 must be dropped");
        let s = cluster.cluster_stats();
        assert!(s.fault.faults > 0);
        assert!(s.fault.failovers >= 1);
        assert_eq!(s.devices_lost, 1);
        assert!(
            s.fault.recovery_seconds > 0.0,
            "detection + re-encode must be charged"
        );
    }

    /// Chaos, Rows mode, total loss: at a 100% fault rate both devices
    /// die and the re-encode can never run — the typed `DegradedFleet`
    /// error or (policy permitting) the bit-identical CPU fallback.
    #[test]
    fn rows_total_loss_is_typed_or_falls_back() {
        let prm = params(8, 3, 2, 2, 7);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 3, 3);
        let mut cpu = AdEvaluator::new(sys.clone()).unwrap();
        let want = cpu.evaluate_batch(&points);
        let make = |cpu_fallback: bool| {
            RowShardedEvaluator::new(
                &sys,
                &hetero_specs(2),
                8,
                RowClusterOptions {
                    base: GpuOptions {
                        fault: Some(FaultConfig {
                            plan: FaultPlan::new(11, 1_000_000),
                            device_index: 0,
                        }),
                        ..GpuOptions::default()
                    },
                    recovery: RecoveryPolicy {
                        cpu_fallback,
                        ..RecoveryPolicy::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut doomed = make(false);
        match doomed.try_evaluate_batch(&points) {
            Err(BatchError::DegradedFleet { devices: 2, lost }) => assert!(lost >= 1),
            Err(other) => panic!("expected DegradedFleet, got {other}"),
            Ok(_) => panic!("expected DegradedFleet, got a result"),
        }
        let mut saved = make(true);
        let got = saved.try_evaluate_batch(&points).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
        }
        assert!(saved.cluster_stats().fault.failovers > 0);
    }

    /// Chaos, residency: a device that faults during `load`'s staged
    /// upload is excluded and the load re-plans onto the survivor —
    /// committing no bytes to the faulted device's arena — and the
    /// resident evaluates bit-identically to the CPU reference.
    #[test]
    fn upload_fault_during_load_replans_on_survivors() {
        let rate = 60_000;
        let seed = (0..4_000u64)
            .find(|&seed| {
                let plan = FaultPlan::new(seed, rate);
                plan.fault_at(0, 0, OpClass::HostToDevice).is_some()
                    && (0..40).all(|op| plan.fault_at(1, op, OpClass::Kernel).is_none())
            })
            .expect("some seed faults device 0's first upload only");
        let spec = crate::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 2],
                shard: SystemShardPolicy::Contiguous.into(),
            })
            .per_device_capacity(4)
            .fault_plan(FaultPlan::new(seed, rate))
            .cluster_spec()
            .unwrap();
        let mut session = ClusterSession::<f64>::from_spec(&spec).unwrap();
        let sys = random_system::<f64>(&params(8, 3, 2, 2, 1));
        let id = session.load("replanned", &sys).unwrap();
        assert!(session.fault_stats().failovers >= 1, "load must fail over");
        assert_eq!(
            session.constant_bytes_per_device()[0],
            0,
            "the faulted device's arena must stay untouched"
        );
        assert!(session.constant_bytes_per_device()[1] > 0);
        let points = random_points::<f64>(8, 3, 9);
        let mut cpu = AdEvaluator::new(sys).unwrap();
        let want = cpu.evaluate_batch(&points);
        let got = session.activate(id).try_evaluate_batch(&points).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice());
        }
    }

    /// Ragged systems row-shard under the packed encoding: each device
    /// encodes only its own rows' packed supports, and the merged
    /// results are bit-identical to the CPU sparse reference at every
    /// fleet size.
    #[test]
    fn sparse_rows_sharding_is_bit_identical_to_reference() {
        use polygpu_core::layout::encoding::EncodingKind;
        use polygpu_polysys::{random_sparse_system, SparseAdEvaluator, SparseBenchmarkParams};
        let prm = SparseBenchmarkParams {
            n: 8,
            m_min: 1,
            m_max: 5,
            k_min: 0,
            k_max: 4,
            d: 3,
            seed: 11,
        };
        let sys = random_sparse_system::<f64>(&prm);
        assert!(sys.uniform_shape().is_err(), "the family must be ragged");
        let points = random_points::<f64>(8, 7, 9);
        let mut cpu = SparseAdEvaluator::new(sys.clone());
        let want = cpu.evaluate_batch(&points);
        for d in [1usize, 2, 3] {
            let mut cluster = RowShardedEvaluator::new(
                &sys,
                &hetero_specs(d),
                8,
                RowClusterOptions {
                    base: GpuOptions {
                        encoding: EncodingKind::Packed,
                        ..GpuOptions::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let got = cluster.evaluate_batch(&points);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "D={d}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "D={d}, point {i}"
                );
            }
        }
    }

    /// Chaos, Rows mode, sparse: at a 100% fault rate the whole fleet
    /// dies and the batch lands on the **sparse** CPU reference —
    /// bit-identical to the device kernels.
    #[test]
    fn sparse_rows_total_loss_falls_back_to_sparse_reference() {
        use polygpu_core::layout::encoding::EncodingKind;
        use polygpu_polysys::{random_sparse_system, SparseAdEvaluator, SparseBenchmarkParams};
        let prm = SparseBenchmarkParams {
            n: 8,
            m_min: 1,
            m_max: 4,
            k_min: 0,
            k_max: 3,
            d: 2,
            seed: 7,
        };
        let sys = random_sparse_system::<f64>(&prm);
        assert!(sys.uniform_shape().is_err(), "the family must be ragged");
        let points = random_points::<f64>(8, 3, 3);
        let mut cpu = SparseAdEvaluator::new(sys.clone());
        let want = cpu.evaluate_batch(&points);
        let mut saved = RowShardedEvaluator::new(
            &sys,
            &hetero_specs(2),
            8,
            RowClusterOptions {
                base: GpuOptions {
                    encoding: EncodingKind::Packed,
                    fault: Some(FaultConfig {
                        plan: FaultPlan::new(11, 1_000_000),
                        device_index: 0,
                    }),
                    ..GpuOptions::default()
                },
                recovery: RecoveryPolicy {
                    cpu_fallback: true,
                    ..RecoveryPolicy::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let got = saved.try_evaluate_batch(&points).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice());
        }
        assert!(saved.cluster_stats().fault.failovers > 0);
    }

    #[test]
    fn session_requires_row_sharding() {
        let spec = crate::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 2],
                shard: ShardMode::default(), // point sharding
            })
            .cluster_spec()
            .unwrap();
        assert!(matches!(
            ClusterSession::<f64>::from_spec(&spec),
            Err(BuildError::SessionBackend { .. })
        ));
    }
}
