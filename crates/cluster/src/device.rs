//! Per-device engine polymorphism: a fleet device runs either the
//! dense batched pipeline or the ragged (sparse) one, chosen exactly
//! as the single-device engine builder chooses — a non-uniform system
//! under the packed encoding routes to the sparse kernels, everything
//! else to the dense ones. Both pipelines are bit-identical to the CPU
//! reference, so sharding code never needs to know which pipeline a
//! device runs.

use polygpu_complex::{Complex, Real};
use polygpu_core::layout::encoding::EncodingKind;
use polygpu_core::pipeline::{GpuOptions, PipelineStats, SetupError};
use polygpu_core::{
    BatchError, BatchGpuEvaluator, CombineMap, CorrectParams, CorrectStatus,
    SparseBatchGpuEvaluator,
};
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_obs::TraceSink;
use polygpu_polysys::{
    AdEvaluator, BatchSystemEvaluator, SparseAdEvaluator, System, SystemError, SystemEval,
    SystemEvaluator,
};

/// Whether `system` routes to the ragged (sparse) pipeline under
/// `encoding` — the same dispatch the single-device builder applies.
pub(crate) fn is_ragged_packed<R: Real>(system: &System<R>, encoding: EncodingKind) -> bool {
    matches!(system.uniform_shape(), Err(SystemError::NotUniform(_)))
        && encoding == EncodingKind::Packed
}

/// One fleet device's batched engine, dense or ragged.
pub(crate) enum DeviceEngine<R: Real> {
    Dense(BatchGpuEvaluator<R>),
    Sparse(SparseBatchGpuEvaluator<R>),
}

impl<R: Real> DeviceEngine<R> {
    /// Build the engine the single-device dispatch would pick for
    /// `system` under `opts.encoding`. A ragged system under a dense
    /// encoding fails typed inside [`BatchGpuEvaluator::new`], exactly
    /// as it does off-cluster.
    pub(crate) fn build(
        system: &System<R>,
        capacity: usize,
        opts: GpuOptions,
    ) -> Result<Self, SetupError> {
        if is_ragged_packed(system, opts.encoding) {
            Ok(DeviceEngine::Sparse(SparseBatchGpuEvaluator::new(
                system, capacity, opts,
            )?))
        } else {
            Ok(DeviceEngine::Dense(BatchGpuEvaluator::new(
                system, capacity, opts,
            )?))
        }
    }

    pub(crate) fn device(&self) -> &DeviceSpec {
        match self {
            DeviceEngine::Dense(e) => e.device(),
            DeviceEngine::Sparse(e) => e.device(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            DeviceEngine::Dense(e) => e.capacity(),
            DeviceEngine::Sparse(e) => e.capacity(),
        }
    }

    pub(crate) fn stats(&self) -> PipelineStats {
        match self {
            DeviceEngine::Dense(e) => e.stats(),
            DeviceEngine::Sparse(e) => e.stats(),
        }
    }

    pub(crate) fn reset_stats(&mut self) {
        match self {
            DeviceEngine::Dense(e) => e.reset_stats(),
            DeviceEngine::Sparse(e) => e.reset_stats(),
        }
    }

    pub(crate) fn set_trace(&mut self, sink: TraceSink) {
        match self {
            DeviceEngine::Dense(e) => e.set_trace(sink),
            DeviceEngine::Sparse(e) => e.set_trace(sink),
        }
    }

    pub(crate) fn set_fault_armed(&mut self, armed: bool) {
        match self {
            DeviceEngine::Dense(e) => e.set_fault_armed(armed),
            DeviceEngine::Sparse(e) => e.set_fault_armed(armed),
        }
    }

    pub(crate) fn constant_bytes_used(&self) -> usize {
        match self {
            DeviceEngine::Dense(e) => e.constant_bytes_used(),
            DeviceEngine::Sparse(e) => e.constant_bytes_used(),
        }
    }

    pub(crate) fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        match self {
            DeviceEngine::Dense(e) => e.try_evaluate_batch(points),
            DeviceEngine::Sparse(e) => e.try_evaluate_batch(points),
        }
    }

    pub(crate) fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        match self {
            DeviceEngine::Dense(e) => e.evaluate_batch(points),
            DeviceEngine::Sparse(e) => e.evaluate_batch(points),
        }
    }

    /// Fused device-resident Newton correction of this device's
    /// sub-batch (see [`BatchGpuEvaluator::try_correct_batch`]). Both
    /// pipelines guarantee untouched inputs on `Err`.
    pub(crate) fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        match self {
            DeviceEngine::Dense(e) => e.try_correct_batch(points, combine, params),
            DeviceEngine::Sparse(e) => e.try_correct_batch(points, combine, params),
        }
    }
}

/// The fleet's CPU-reference fallback, dense or ragged — both
/// bit-identical to the device kernels in every precision.
pub(crate) enum CpuFallback<R: Real> {
    Dense(AdEvaluator<R>),
    Sparse(SparseAdEvaluator<R>),
}

impl<R: Real> CpuFallback<R> {
    pub(crate) fn new(system: &System<R>) -> Self {
        match AdEvaluator::new(system.clone()) {
            Ok(e) => CpuFallback::Dense(e),
            Err(_) => CpuFallback::Sparse(SparseAdEvaluator::new(system.clone())),
        }
    }

    pub(crate) fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        match self {
            CpuFallback::Dense(e) => e.evaluate(x),
            CpuFallback::Sparse(e) => e.evaluate(x),
        }
    }
}
