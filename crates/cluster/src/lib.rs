//! # polygpu-cluster — multi-device sharding over batched evaluators
//!
//! The scale-out layer of the reproduction: the paper evaluates on a
//! single Tesla C2050, and its successors (GPU Newton in
//! double-double/quad-double, polyhedral path tracking) scale the same
//! evaluation + differentiation core to many concurrent paths. This
//! crate runs one [`polygpu_core::BatchGpuEvaluator`] per simulated
//! device — heterogeneous [`DeviceSpec`]s allowed — and implements
//! [`BatchSystemEvaluator`] over the whole fleet:
//!
//! * each `P`-point batch is split into per-device shards by a
//!   pluggable, deterministic [`ShardPolicy`];
//! * shards execute **in parallel** on the host (one thread per device,
//!   via rayon), each device modeling stream-overlapped transfers
//!   ([`polygpu_core::GpuOptions::overlap_chunks`]);
//! * results merge back in input order, **bit-for-bit** identical to a
//!   single-device evaluation of the same batch — sharding, like
//!   batching, is a performance transformation, never a numerical one;
//! * [`ClusterStats`] models the cluster wall clock as the **max** over
//!   devices per batch (devices run concurrently), and reports the
//!   overlap savings and the load-imbalance ratio.
//!
//! ```
//! use polygpu_cluster::{ClusterOptions, ShardedBatchEvaluator};
//! use polygpu_gpusim::prelude::DeviceSpec;
//! use polygpu_polysys::{random_points, random_system, BatchSystemEvaluator, BenchmarkParams};
//!
//! let params = BenchmarkParams { n: 8, m: 3, k: 2, d: 2, seed: 7 };
//! let system = random_system::<f64>(&params);
//! let specs = vec![DeviceSpec::tesla_c2050(); 2];
//! let mut cluster =
//!     ShardedBatchEvaluator::new(&system, &specs, 32, ClusterOptions::default()).unwrap();
//! let points = random_points::<f64>(8, 48, 3);
//! let evals = cluster.evaluate_batch(&points);
//! assert_eq!(evals.len(), 48);
//! assert!(cluster.cluster_stats().wall_seconds > 0.0);
//! ```

pub mod rows;
pub mod shard;

pub use rows::{
    plan_rows, ClusterSession, RowClusterOptions, RowClusterStats, RowShardedEvaluator,
};
pub use shard::{plan, DeviceWeight, Shard, ShardPolicy};
// Re-exported so the row-sharding surface is importable from one
// place; the enum itself lives next to `Backend` in the core builder.
pub use polygpu_core::engine::SystemShardPolicy;
pub use polygpu_gpusim::stream::TransferPath;

use polygpu_complex::{Complex, Real};
use polygpu_core::engine::{
    AnyEvaluator, BuildError, ClusterPolicy, ClusterProvider, ClusterSpec, Engine, EngineBuilder,
    EngineCaps, ShardMode,
};
use polygpu_core::pipeline::{GpuOptions, PipelineStats, SetupError};
use polygpu_core::{BatchError, BatchGpuEvaluator};
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_polysys::{BatchSystemEvaluator, System, SystemEval, SystemEvaluator};
use rayon::prelude::*;

/// Configuration of a [`ShardedBatchEvaluator`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// How batches are split across devices.
    pub policy: ShardPolicy,
    /// Per-device stream-overlap chunking (see
    /// [`GpuOptions::overlap_chunks`]); `Some(1)` disables overlap,
    /// `None` lets every device pick its chunk count adaptively from
    /// the modeled kernel/transfer ratio.
    pub overlap_chunks: Option<usize>,
    /// Base options for every device (`device` is replaced per spec,
    /// `overlap_chunks` by the field above).
    pub base: GpuOptions,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            policy: ShardPolicy::default(),
            overlap_chunks: Some(4),
            base: GpuOptions::default(),
        }
    }
}

/// Aggregate modeled cost of the cluster.
///
/// Devices run concurrently, so the cluster-level wall clock of one
/// batch is the **maximum** of the participating devices' wall clocks,
/// not their sum; per-device resource seconds keep accumulating in each
/// device's own [`PipelineStats`].
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Points evaluated (a batch of `P` counts `P`).
    pub evaluations: u64,
    /// Cluster-level batches (one per `evaluate_batch` call).
    pub batches: u64,
    /// Modeled cluster wall clock: per batch the max over devices,
    /// summed over batches.
    pub wall_seconds: f64,
    /// Cumulative modeled wall seconds per device (aligned with the
    /// device list).
    pub device_wall: Vec<f64>,
    /// Points evaluated per device.
    pub device_evals: Vec<u64>,
}

impl ClusterStats {
    fn new(devices: usize) -> Self {
        ClusterStats {
            device_wall: vec![0.0; devices],
            device_evals: vec![0; devices],
            ..Default::default()
        }
    }

    /// Modeled cluster throughput in evaluations per second.
    pub fn throughput_evals_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.evaluations as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Load-imbalance ratio: the busiest device's cumulative wall
    /// seconds over the mean across all devices. `1.0` is perfect
    /// balance; `D` means one device did all the work.
    pub fn imbalance(&self) -> f64 {
        let max = self.device_wall.iter().copied().fold(0.0, f64::max);
        let mean = self.device_wall.iter().sum::<f64>() / self.device_wall.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// [`BatchSystemEvaluator`] over `D` per-device batched engines.
pub struct ShardedBatchEvaluator<R: Real> {
    devices: Vec<BatchGpuEvaluator<R>>,
    weights: Vec<DeviceWeight>,
    policy: ShardPolicy,
    stats: ClusterStats,
    n: usize,
}

impl<R: Real> ShardedBatchEvaluator<R> {
    /// Build one [`BatchGpuEvaluator`] of `per_device_capacity` points
    /// per spec (heterogeneous specs allowed; every device must fit the
    /// system). A one-point probe per device calibrates the modeled
    /// seconds-per-point weight used by [`ShardPolicy::WorkStealing`].
    pub fn new(
        system: &System<R>,
        specs: &[DeviceSpec],
        per_device_capacity: usize,
        opts: ClusterOptions,
    ) -> Result<Self, SetupError> {
        assert!(!specs.is_empty(), "cluster needs at least one device");
        let mut devices = Vec::with_capacity(specs.len());
        let mut weights = Vec::with_capacity(specs.len());
        let n = system.dim();
        for spec in specs {
            let gopts = GpuOptions {
                device: spec.clone(),
                overlap_chunks: opts.overlap_chunks,
                ..opts.base.clone()
            };
            let mut dev = BatchGpuEvaluator::new(system, per_device_capacity, gopts)?;
            // Calibration probe: modeled seconds for one point, used
            // only as a relative work-stealing weight.
            let probe = vec![vec![Complex::<R>::one(); n]];
            let _ = dev.evaluate_batch(&probe);
            let spp = dev.stats().wall_clock_seconds();
            dev.reset_stats();
            devices.push(dev);
            weights.push(DeviceWeight {
                capacity: per_device_capacity,
                seconds_per_point: spp,
            });
        }
        Ok(ShardedBatchEvaluator {
            stats: ClusterStats::new(devices.len()),
            devices,
            weights,
            policy: opts.policy,
            n,
        })
    }

    /// Number of devices in the cluster.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Per-device modeled statistics (resource seconds, counters,
    /// per-device wall clock with overlap).
    pub fn device_stats(&self) -> Vec<PipelineStats> {
        self.devices.iter().map(|d| d.stats()).collect()
    }

    /// Aggregate cluster statistics.
    pub fn cluster_stats(&self) -> ClusterStats {
        self.stats.clone()
    }

    /// Total seconds stream overlap shaved off the serialized model,
    /// summed over devices.
    pub fn overlap_savings(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.stats().overlap_savings())
            .sum()
    }

    pub fn reset_stats(&mut self) {
        for d in self.devices.iter_mut() {
            d.reset_stats();
        }
        self.stats = ClusterStats::new(self.devices.len());
    }

    /// The shard plan the current policy would produce for a `p`-point
    /// batch (for inspection and tests).
    pub fn plan_for(&self, p: usize) -> Vec<Shard> {
        plan(self.policy, p, &self.weights)
    }

    /// Evaluate a batch across the cluster, returning typed errors for
    /// contract violations (see [`BatchSystemEvaluator`]'s capacity
    /// contract; the cluster's capacity is the sum over devices).
    pub fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let p = points.len();
        let capacity = self.max_batch();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != self.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: self.n,
                });
            }
        }

        let shards = plan(self.policy, p, &self.weights);
        // One work item per participating device; shards execute in
        // parallel on the host pool (the rayon shim preserves input
        // order, so merging below is deterministic).
        let work: Vec<(usize, &mut BatchGpuEvaluator<R>, Shard)> = self
            .devices
            .iter_mut()
            .zip(shards)
            .enumerate()
            .filter(|(_, (_, s))| !s.is_empty())
            .map(|(d, (dev, s))| (d, dev, s))
            .collect();
        type DeviceOutcome<R> = (usize, Result<Vec<SystemEval<R>>, BatchError>, f64, Shard);
        let outcomes: Vec<DeviceOutcome<R>> = work
            .into_par_iter()
            .map(|(d, dev, shard)| {
                let wall_before = dev.stats().wall_seconds;
                let cap = dev.capacity().max(1);
                let mut out = Vec::with_capacity(shard.len());
                let mut err = None;
                // A shard larger than the device capacity evaluates in
                // capacity-sized chunks (several round trips).
                for chunk in shard.chunks(cap) {
                    let pts: Vec<Vec<Complex<R>>> =
                        chunk.iter().map(|&i| points[i].clone()).collect();
                    match dev.try_evaluate_batch(&pts) {
                        Ok(evals) => out.extend(evals),
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                let wall = dev.stats().wall_seconds - wall_before;
                let result = match err {
                    Some(e) => Err(e),
                    None => Ok(out),
                };
                (d, result, wall, shard)
            })
            .collect();

        // Merge device results back into input order (each outcome
        // carries its own shard, so merging cannot drift from the plan
        // the work ran under). Stats are staged locally and committed
        // only on full success, so a failed call costs nothing — the
        // same guarantee `BatchGpuEvaluator` documents.
        let mut merged: Vec<Option<SystemEval<R>>> = (0..p).map(|_| None).collect();
        let mut batch_wall = 0.0f64;
        let mut device_deltas: Vec<(usize, f64, u64)> = Vec::with_capacity(outcomes.len());
        for (d, result, wall, shard) in outcomes {
            let evals = result?;
            for (&i, e) in shard.iter().zip(evals) {
                merged[i] = Some(e);
            }
            batch_wall = batch_wall.max(wall);
            device_deltas.push((d, wall, shard.len() as u64));
        }
        for (d, wall, count) in device_deltas {
            self.stats.device_wall[d] += wall;
            self.stats.device_evals[d] += count;
        }
        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.stats.wall_seconds += batch_wall;
        Ok(merged
            .into_iter()
            .map(|e| e.expect("plan() covers every index"))
            .collect())
    }
}

impl<R: Real> SystemEvaluator<R> for ShardedBatchEvaluator<R> {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        polygpu_core::expect_batch(AnyEvaluator::try_evaluate(self, x))
    }

    fn name(&self) -> &str {
        "gpu-sim-cluster"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for ShardedBatchEvaluator<R> {
    /// Cluster capacity: the sum of the per-device capacities.
    fn max_batch(&self) -> usize {
        self.devices.iter().map(|d| d.capacity()).sum()
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        polygpu_core::expect_batch(self.try_evaluate_batch(points))
    }
}

impl<R: Real> AnyEvaluator<R> for ShardedBatchEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        ShardedBatchEvaluator::try_evaluate_batch(self, points)
    }

    /// Cluster-level aggregate: evaluations/batches and the cluster
    /// wall clock (max over devices per batch) from [`ClusterStats`],
    /// resource seconds and counters summed over the devices.
    fn engine_stats(&self) -> PipelineStats {
        let mut agg = PipelineStats {
            evaluations: self.stats.evaluations,
            batches: self.stats.batches,
            wall_seconds: self.stats.wall_seconds,
            ..Default::default()
        };
        for d in &self.devices {
            let s = d.stats();
            agg.counters += s.counters;
            agg.kernel_seconds += s.kernel_seconds;
            agg.overhead_seconds += s.overhead_seconds;
            agg.transfer_seconds += s.transfer_seconds;
        }
        agg
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "cluster",
            devices: self.devices.len(),
            capacity: self.max_batch(),
            // The tightest device's single-round-trip absorption: with
            // `devices ×` this front every device's batch stays full.
            per_device_capacity: self
                .devices
                .iter()
                .map(|d| d.capacity())
                .min()
                .unwrap_or(usize::MAX),
            batched: true,
            constant_bytes: self.devices.iter().map(|d| d.constant_bytes_used()).sum(),
        }
    }
}

/// The [`ClusterProvider`] of this crate: [`Backend::Cluster`] builds a
/// [`ShardedBatchEvaluator`] (point sharding) or a
/// [`RowShardedEvaluator`] (system/row sharding) over the spec's
/// device list, per its `ShardMode`.
///
/// [`Backend::Cluster`]: polygpu_core::engine::Backend::Cluster
#[derive(Debug, Clone, Copy, Default)]
pub struct Sharded;

impl ClusterProvider for Sharded {
    fn build<R: Real>(
        &self,
        system: &System<R>,
        spec: &ClusterSpec,
    ) -> Result<Box<dyn AnyEvaluator<R>>, BuildError> {
        match spec.shard {
            ShardMode::Points { policy } => {
                let policy = match policy {
                    ClusterPolicy::RoundRobin => ShardPolicy::RoundRobin,
                    ClusterPolicy::CapacityProportional => ShardPolicy::CapacityProportional,
                    ClusterPolicy::WorkStealing { chunk } => ShardPolicy::WorkStealing { chunk },
                };
                let opts = ClusterOptions {
                    policy,
                    overlap_chunks: spec.base.overlap_chunks,
                    base: spec.base.clone(),
                };
                let cluster = ShardedBatchEvaluator::new(
                    system,
                    &spec.devices,
                    spec.per_device_capacity,
                    opts,
                )?;
                Ok(Box::new(cluster))
            }
            ShardMode::Rows { policy } => {
                let opts = RowClusterOptions {
                    policy,
                    gather: spec.gather,
                    overlap_chunks: spec.base.overlap_chunks,
                    base: spec.base.clone(),
                };
                let cluster = RowShardedEvaluator::new(
                    system,
                    &spec.devices,
                    spec.per_device_capacity,
                    opts,
                )?;
                Ok(Box::new(cluster))
            }
        }
    }
}

/// An [`Engine`] builder with every backend available — the cluster
/// backend wired to [`Sharded`]. The `polygpu` facade re-exports this
/// as `Engine::builder()`.
pub fn engine_builder() -> EngineBuilder<Sharded> {
    Engine::builder_with(Sharded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{random_points, random_system, BenchmarkParams};

    // The parallel shard execution moves `&mut BatchGpuEvaluator`s
    // across threads; assert the bound explicitly so a regression fails
    // here and not in a confusing rayon-shim error.
    fn _assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn _cluster_types_are_send() {
        _assert_send::<BatchGpuEvaluator<f64>>();
        _assert_send::<ShardedBatchEvaluator<f64>>();
    }

    fn small_params(seed: u64) -> BenchmarkParams {
        BenchmarkParams {
            n: 8,
            m: 3,
            k: 2,
            d: 2,
            seed,
        }
    }

    /// A fleet with a slower clock on half the devices: heterogeneity
    /// without changing any functional behavior.
    fn hetero_specs(d: usize) -> Vec<DeviceSpec> {
        (0..d)
            .map(|i| {
                let mut s = DeviceSpec::tesla_c2050();
                if i % 2 == 1 {
                    s.name = format!("slow-c2050 #{i}");
                    s.clock_hz *= 0.6;
                    s.pcie_bandwidth *= 0.8;
                }
                s
            })
            .collect()
    }

    #[test]
    fn sharded_results_are_bit_identical_to_single_device() {
        let prm = small_params(5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 37, 11); // 37: divides nothing
        let mut single = BatchGpuEvaluator::new(&sys, 37, GpuOptions::default()).unwrap();
        let want = single.evaluate_batch(&points);
        for policy in [
            ShardPolicy::RoundRobin,
            ShardPolicy::CapacityProportional,
            ShardPolicy::WorkStealing { chunk: 3 },
        ] {
            let mut cluster = ShardedBatchEvaluator::new(
                &sys,
                &hetero_specs(3),
                16,
                ClusterOptions {
                    policy,
                    ..Default::default()
                },
            )
            .unwrap();
            let got = cluster.evaluate_batch(&points);
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "{policy:?}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "{policy:?}, point {i}"
                );
            }
        }
    }

    /// The acceptance criterion: modeled throughput at `D = 4`,
    /// `P = 256` is at least 3x the `D = 1` figure with stream overlap
    /// enabled, and the results agree bit-for-bit across `D`.
    ///
    /// Uses a Table-1-shaped system (n = 32, 128 monomials): scaling
    /// needs kernel work to dominate the per-batch fixed costs, which a
    /// toy system does not model (its launches are latency-bound and
    /// nearly flat in P — the paper's own effect).
    #[test]
    fn four_devices_scale_at_least_3x_over_one() {
        let prm = BenchmarkParams {
            n: 32,
            m: 4,
            k: 9,
            d: 2,
            seed: 9,
        };
        let sys = random_system::<f64>(&prm);
        let p = 256;
        let points = random_points::<f64>(32, p, 21);
        let mut throughputs = Vec::new();
        let mut endpoints: Vec<Vec<SystemEval<f64>>> = Vec::new();
        for d in [1usize, 2, 4] {
            let specs = vec![DeviceSpec::tesla_c2050(); d];
            let mut cluster =
                ShardedBatchEvaluator::new(&sys, &specs, p.div_ceil(d), ClusterOptions::default())
                    .unwrap();
            let evals = cluster.evaluate_batch(&points);
            let s = cluster.cluster_stats();
            assert_eq!(s.evaluations, p as u64);
            throughputs.push(s.throughput_evals_per_sec());
            endpoints.push(evals);
            assert!(cluster.overlap_savings() > 0.0, "D = {d} overlap modeled");
        }
        // Bit-identical across D in {1, 2, 4}.
        for d in 1..endpoints.len() {
            for (i, (a, b)) in endpoints[0].iter().zip(&endpoints[d]).enumerate() {
                assert_eq!(a.values, b.values, "D index {d}, point {i}");
                assert_eq!(
                    a.jacobian.as_slice(),
                    b.jacobian.as_slice(),
                    "D index {d}, point {i}"
                );
            }
        }
        let (d1, d2, d4) = (throughputs[0], throughputs[1], throughputs[2]);
        assert!(
            d4 >= 3.0 * d1,
            "D = 4 must be >= 3x D = 1: {d4:.0} vs {d1:.0} evals/s"
        );
        assert!(d2 > d1, "D = 2 must beat D = 1: {d2:.0} vs {d1:.0}");
    }

    #[test]
    fn cluster_stats_track_imbalance_and_wall_max() {
        let prm = small_params(3);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 24, 7);
        // Round-robin over heterogeneous devices: the slow devices hold
        // the same share, so imbalance rises above 1.
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &hetero_specs(2),
            16,
            ClusterOptions {
                policy: ShardPolicy::RoundRobin,
                ..Default::default()
            },
        )
        .unwrap();
        let _ = cluster.evaluate_batch(&points);
        let s = cluster.cluster_stats();
        assert_eq!(s.batches, 1);
        assert!(s.imbalance() > 1.0, "imbalance {}", s.imbalance());
        // Wall is the max device wall, which is less than the sum.
        let wall_sum: f64 = s.device_wall.iter().sum();
        assert!(s.wall_seconds < wall_sum);
        assert!(s.wall_seconds >= s.device_wall.iter().copied().fold(0.0, f64::max) - 1e-15);
        // Work stealing on the same fleet balances better.
        let mut stealing = ShardedBatchEvaluator::new(
            &sys,
            &hetero_specs(2),
            16,
            ClusterOptions {
                policy: ShardPolicy::WorkStealing { chunk: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        let _ = stealing.evaluate_batch(&points);
        let t = stealing.cluster_stats();
        assert!(
            t.imbalance() <= s.imbalance() + 1e-12,
            "stealing {} vs round-robin {}",
            t.imbalance(),
            s.imbalance()
        );
    }

    #[test]
    fn shards_larger_than_device_capacity_chunk_internally() {
        let prm = small_params(13);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 20, 5);
        // Capacity 4 per device, 2 devices: a 20-point batch needs
        // chunked shard execution (3 round trips on one device).
        let mut cluster =
            ShardedBatchEvaluator::new(&sys, &hetero_specs(2), 4, ClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.max_batch(), 8);
        // 20 > max_batch: typed error.
        assert!(matches!(
            cluster.try_evaluate_batch(&points),
            Err(BatchError::CapacityExceeded {
                points: 20,
                capacity: 8
            })
        ));
        let got = cluster.evaluate_batch(&points[..8]);
        let mut single = BatchGpuEvaluator::new(&sys, 8, GpuOptions::default()).unwrap();
        let want = single.evaluate_batch(&points[..8]);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
        }
        assert!(matches!(
            cluster.try_evaluate_batch(&[]),
            Err(BatchError::Empty)
        ));
    }

    #[test]
    fn double_double_cluster_matches_single_device_bitwise() {
        use polygpu_qd::Dd;
        let prm = small_params(17);
        let sys = random_system::<f64>(&prm).convert::<Dd>();
        let points: Vec<Vec<Complex<Dd>>> = random_points::<f64>(8, 11, 23)
            .into_iter()
            .map(|x| x.into_iter().map(|z| z.convert()).collect())
            .collect();
        let mut single = BatchGpuEvaluator::new(&sys, 11, GpuOptions::default()).unwrap();
        let want = single.evaluate_batch(&points);
        let mut cluster =
            ShardedBatchEvaluator::new(&sys, &hetero_specs(3), 8, ClusterOptions::default())
                .unwrap();
        let got = cluster.evaluate_batch(&points);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.values, w.values, "dd point {i}");
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice(), "dd point {i}");
        }
    }
}
