//! # polygpu-cluster — multi-device sharding over batched evaluators
//!
//! The scale-out layer of the reproduction: the paper evaluates on a
//! single Tesla C2050, and its successors (GPU Newton in
//! double-double/quad-double, polyhedral path tracking) scale the same
//! evaluation + differentiation core to many concurrent paths. This
//! crate runs one [`polygpu_core::BatchGpuEvaluator`] per simulated
//! device — heterogeneous [`DeviceSpec`]s allowed — and implements
//! [`BatchSystemEvaluator`] over the whole fleet:
//!
//! * each `P`-point batch is split into per-device shards by a
//!   pluggable, deterministic [`ShardPolicy`];
//! * shards execute **in parallel** on the host (one thread per device,
//!   via rayon), each device modeling stream-overlapped transfers
//!   ([`polygpu_core::GpuOptions::overlap_chunks`]);
//! * results merge back in input order, **bit-for-bit** identical to a
//!   single-device evaluation of the same batch — sharding, like
//!   batching, is a performance transformation, never a numerical one;
//! * [`ClusterStats`] models the cluster wall clock as the **max** over
//!   devices per batch (devices run concurrently), and reports the
//!   overlap savings and the load-imbalance ratio.
//!
//! ```
//! use polygpu_cluster::{ClusterOptions, ShardedBatchEvaluator};
//! use polygpu_gpusim::prelude::DeviceSpec;
//! use polygpu_polysys::{random_points, random_system, BatchSystemEvaluator, BenchmarkParams};
//!
//! let params = BenchmarkParams { n: 8, m: 3, k: 2, d: 2, seed: 7 };
//! let system = random_system::<f64>(&params);
//! let specs = vec![DeviceSpec::tesla_c2050(); 2];
//! let mut cluster =
//!     ShardedBatchEvaluator::new(&system, &specs, 32, ClusterOptions::default()).unwrap();
//! let points = random_points::<f64>(8, 48, 3);
//! let evals = cluster.evaluate_batch(&points);
//! assert_eq!(evals.len(), 48);
//! assert!(cluster.cluster_stats().wall_seconds > 0.0);
//! ```

mod device;
pub mod rows;
pub mod shard;

pub use rows::{
    plan_rows, ClusterSession, RowClusterOptions, RowClusterStats, RowShardedEvaluator,
};
pub use shard::{plan, DeviceWeight, Shard, ShardPolicy};
// Re-exported so the row-sharding surface is importable from one
// place; the enum itself lives next to `Backend` in the core builder.
pub use polygpu_core::engine::SystemShardPolicy;
pub use polygpu_gpusim::stream::TransferPath;

use crate::device::{CpuFallback, DeviceEngine};
use polygpu_complex::{Complex, Real};
use polygpu_core::engine::{
    AnyEvaluator, BuildError, ClusterPolicy, ClusterProvider, ClusterSpec, Engine, EngineBuilder,
    EngineCaps, ShardMode,
};
use polygpu_core::pipeline::{FaultConfig, GpuOptions, PipelineStats, SetupError};
use polygpu_core::{
    drive_correct, BatchError, CombineMap, CorrectOps, CorrectParams, CorrectStatus, OffsetCombine,
};
use polygpu_gpusim::prelude::{DeviceSpec, FaultKind, FaultStats, RecoveryPolicy};
use polygpu_obs::{MetaValue, MetricsRegistry, SpanKind, TraceSink, Track};
use polygpu_polysys::{BatchSystemEvaluator, System, SystemEval, SystemEvaluator};
use rayon::prelude::*;
use std::fmt;

/// Configuration of a [`ShardedBatchEvaluator`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// How batches are split across devices.
    pub policy: ShardPolicy,
    /// Per-device stream-overlap chunking (see
    /// [`GpuOptions::overlap_chunks`]); `Some(1)` disables overlap,
    /// `None` lets every device pick its chunk count adaptively from
    /// the modeled kernel/transfer ratio.
    pub overlap_chunks: Option<usize>,
    /// Base options for every device (`device` is replaced per spec,
    /// `overlap_chunks` by the field above, and any
    /// [`FaultConfig::device_index`] by the device's own index so every
    /// device draws an independent fault schedule from the shared plan).
    pub base: GpuOptions,
    /// How the fleet reacts to injected faults: per-shard retries with
    /// exponential backoff, then failover re-planning onto survivors,
    /// and optionally a CPU-reference fallback when no device survives.
    pub recovery: RecoveryPolicy,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            policy: ShardPolicy::default(),
            overlap_chunks: Some(4),
            base: GpuOptions::default(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Aggregate modeled cost of the cluster.
///
/// Devices run concurrently, so the cluster-level wall clock of one
/// batch is the **maximum** of the participating devices' wall clocks,
/// not their sum; per-device resource seconds keep accumulating in each
/// device's own [`PipelineStats`].
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Points evaluated (a batch of `P` counts `P`).
    pub evaluations: u64,
    /// Cluster-level batches (one per `evaluate_batch` call).
    pub batches: u64,
    /// Modeled cluster wall clock: per batch the max over devices,
    /// summed over batches.
    pub wall_seconds: f64,
    /// Cumulative modeled wall seconds per device (aligned with the
    /// device list).
    pub device_wall: Vec<f64>,
    /// Points evaluated per device.
    pub device_evals: Vec<u64>,
    /// Injected-fault accounting: strikes and detection latency from
    /// the devices, plus the cluster's own retries, failovers, and
    /// backoff seconds.
    pub fault: FaultStats,
    /// Devices currently marked lost (sticky for the life of the
    /// evaluator — a lost simulated device never comes back).
    pub devices_lost: usize,
}

impl ClusterStats {
    fn new(devices: usize) -> Self {
        ClusterStats {
            device_wall: vec![0.0; devices],
            device_evals: vec![0; devices],
            ..Default::default()
        }
    }

    /// Modeled cluster throughput in evaluations per second.
    pub fn throughput_evals_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.evaluations as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Load-imbalance ratio: the busiest device's cumulative wall
    /// seconds over the mean across all devices. `1.0` is perfect
    /// balance; `D` means one device did all the work.
    pub fn imbalance(&self) -> f64 {
        let max = self.device_wall.iter().copied().fold(0.0, f64::max);
        let mean = self.device_wall.iter().sum::<f64>() / self.device_wall.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Fold this struct into a [`MetricsRegistry`] under `prefix`.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.evaluations"), self.evaluations);
        reg.counter(&format!("{prefix}.batches"), self.batches);
        reg.counter(&format!("{prefix}.devices_lost"), self.devices_lost as u64);
        reg.gauge(&format!("{prefix}.wall_seconds"), self.wall_seconds);
        reg.gauge(&format!("{prefix}.imbalance"), self.imbalance());
        self.fault.record_metrics(reg, &format!("{prefix}.fault"));
    }
}

impl fmt::Display for ClusterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  evaluations           {:>12}", self.evaluations)?;
        writeln!(f, "  batches               {:>12}", self.batches)?;
        writeln!(f, "  devices               {:>12}", self.device_wall.len())?;
        writeln!(f, "  devices lost          {:>12}", self.devices_lost)?;
        writeln!(f, "  wall seconds          {:>12.3e}", self.wall_seconds)?;
        writeln!(f, "  imbalance             {:>12.3}", self.imbalance())?;
        write!(
            f,
            "  throughput (evals/s)  {:>12.3e}",
            self.throughput_evals_per_sec()
        )
    }
}

/// [`BatchSystemEvaluator`] over `D` per-device batched engines.
pub struct ShardedBatchEvaluator<R: Real> {
    devices: Vec<DeviceEngine<R>>,
    weights: Vec<DeviceWeight>,
    policy: ShardPolicy,
    stats: ClusterStats,
    n: usize,
    /// Sticky per-device loss flags: a device that reports
    /// [`FaultKind::DeviceLost`] is excluded from every later plan.
    lost: Vec<bool>,
    recovery: RecoveryPolicy,
    /// Retained for the CPU-reference fallback, which is bit-identical
    /// to the GPU path in double precision.
    system: System<R>,
    /// Cluster-level span sink ([`Track::Cluster`]); each device engine
    /// carries its own sink retargeted to its [`Track::Device`].
    trace: TraceSink,
}

/// What one device reported for its shard in one recovery round.
struct ShardOutcome<R: Real> {
    device: usize,
    /// Original point indices the device was asked to evaluate.
    indices: Shard,
    /// Evaluations for the leading `done.len()` indices; the rest (if
    /// any) were lost to the fault in `err`.
    done: Vec<SystemEval<R>>,
    err: Option<BatchError>,
    retries: u64,
    backoff: f64,
    /// Modeled device wall-clock delta for this round, detection
    /// latency included.
    wall: f64,
}

impl<R: Real> ShardedBatchEvaluator<R> {
    /// Build one batched engine of `per_device_capacity` points per
    /// spec (heterogeneous specs allowed; every device must fit the
    /// system). Ragged systems under the packed encoding route to the
    /// sparse pipeline per device, exactly as off-cluster. A one-point
    /// probe per device calibrates the modeled seconds-per-point weight
    /// used by [`ShardPolicy::WorkStealing`].
    pub fn new(
        system: &System<R>,
        specs: &[DeviceSpec],
        per_device_capacity: usize,
        opts: ClusterOptions,
    ) -> Result<Self, SetupError> {
        assert!(!specs.is_empty(), "cluster needs at least one device");
        let mut devices = Vec::with_capacity(specs.len());
        let mut weights = Vec::with_capacity(specs.len());
        let n = system.dim();
        for (d, spec) in specs.iter().enumerate() {
            let gopts = GpuOptions {
                device: spec.clone(),
                overlap_chunks: opts.overlap_chunks,
                // Each device draws its own schedule from the shared
                // fault plan; the base's device index is a placeholder.
                fault: opts.base.fault.map(|f| FaultConfig {
                    plan: f.plan,
                    device_index: d,
                }),
                // Silenced during calibration; retargeted to this
                // device's track below.
                trace: TraceSink::noop(),
                ..opts.base.clone()
            };
            let mut dev = DeviceEngine::build(system, per_device_capacity, gopts)?;
            // Calibration probe: modeled seconds for one point, used
            // only as a relative work-stealing weight. Runs with the
            // injector disarmed so calibration can neither fault nor
            // perturb the fault schedule of real work.
            dev.set_fault_armed(false);
            let probe = vec![vec![Complex::<R>::one(); n]];
            let _ = dev.evaluate_batch(&probe);
            dev.set_fault_armed(true);
            let spp = dev.stats().wall_clock_seconds();
            dev.reset_stats();
            dev.set_trace(opts.base.trace.on(Track::Device(d as u32)));
            devices.push(dev);
            weights.push(DeviceWeight {
                capacity: per_device_capacity,
                seconds_per_point: spp,
            });
        }
        Ok(ShardedBatchEvaluator {
            stats: ClusterStats::new(devices.len()),
            lost: vec![false; devices.len()],
            devices,
            weights,
            policy: opts.policy,
            n,
            recovery: opts.recovery,
            system: system.clone(),
            trace: opts.base.trace.on(Track::Cluster),
        })
    }

    /// Number of devices in the cluster.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Per-device modeled statistics (resource seconds, counters,
    /// per-device wall clock with overlap).
    pub fn device_stats(&self) -> Vec<PipelineStats> {
        self.devices.iter().map(|d| d.stats()).collect()
    }

    /// Aggregate cluster statistics. Fault accounting merges the
    /// devices' own strike/detection counters with the cluster-level
    /// retry/failover/backoff bookkeeping.
    pub fn cluster_stats(&self) -> ClusterStats {
        let mut s = self.stats.clone();
        for d in &self.devices {
            s.fault.merge(&d.stats().fault);
        }
        s.devices_lost = self.lost.iter().filter(|&&l| l).count();
        s
    }

    /// Total seconds stream overlap shaved off the serialized model,
    /// summed over devices.
    pub fn overlap_savings(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.stats().overlap_savings())
            .sum()
    }

    pub fn reset_stats(&mut self) {
        for d in self.devices.iter_mut() {
            d.reset_stats();
        }
        self.stats = ClusterStats::new(self.devices.len());
    }

    /// The shard plan the current policy would produce for a `p`-point
    /// batch (for inspection and tests).
    pub fn plan_for(&self, p: usize) -> Vec<Shard> {
        plan(self.policy, p, &self.weights)
    }

    /// Evaluate a batch across the cluster, returning typed errors for
    /// contract violations (see [`BatchSystemEvaluator`]'s capacity
    /// contract; the cluster's capacity is the sum over devices).
    ///
    /// Injected faults are recovered per the [`RecoveryPolicy`]: a
    /// faulted shard retries on its own device with exponential
    /// backoff, and a device that exhausts its retries (or is lost
    /// outright) has its unfinished points re-planned over the
    /// surviving devices. Because every engine in the fleet — and the
    /// CPU-reference fallback — computes bit-identical values, a
    /// recovered batch equals the fault-free batch exactly; recovery
    /// only costs modeled wall-clock time, tallied in
    /// [`ClusterStats::fault`]. When no device survives and CPU
    /// fallback is disabled, the call fails with
    /// [`BatchError::DegradedFleet`].
    pub fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let p = points.len();
        let capacity = self.max_batch();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != self.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: self.n,
                });
            }
        }

        // Recovery proceeds in rounds. Round 0 runs the normal plan
        // over every live device; if a device faults past its retry
        // budget, its unfinished points are re-planned over the
        // survivors in the next round. Devices that fail within a call
        // are excluded for the rest of that call; `DeviceLost` failures
        // are excluded permanently.
        let ndev = self.devices.len();
        let mut merged: Vec<Option<SystemEval<R>>> = (0..p).map(|_| None).collect();
        let mut excluded = self.lost.clone();
        let mut fault = FaultStats::default();
        let mut batch_wall = 0.0f64;
        let mut todo: Vec<usize> = (0..p).collect();
        let recovery = self.recovery;
        // Cluster-track spans run on the cluster's own modeled clock
        // (rounds are sequential, so `wall0 + batch_wall` is the current
        // round's start).
        let wall0 = self.stats.wall_seconds;

        while !todo.is_empty() {
            let live: Vec<usize> = (0..ndev).filter(|&d| !excluded[d]).collect();
            if live.is_empty() {
                // Whole fleet gone mid-call: finish on the CPU
                // reference (bit-identical to the device kernels in
                // double precision) when the policy allows, else
                // surface the degradation as a typed error.
                if recovery.cpu_fallback {
                    fault.failovers += 1;
                    self.trace.emit(
                        SpanKind::Fallback,
                        wall0 + batch_wall,
                        0.0,
                        4,
                        &[("points", MetaValue::U64(todo.len() as u64))],
                    );
                    let mut cpu = CpuFallback::new(&self.system);
                    for &i in &todo {
                        merged[i] = Some(cpu.evaluate(&points[i]));
                    }
                    todo.clear();
                    break;
                }
                let lost = excluded.iter().filter(|&&l| l).count();
                self.stats.fault.merge(&fault);
                self.stats.wall_seconds += batch_wall;
                return Err(BatchError::DegradedFleet {
                    devices: ndev,
                    lost,
                });
            }

            let live_weights: Vec<DeviceWeight> = live.iter().map(|&d| self.weights[d]).collect();
            let shards = plan(self.policy, todo.len(), &live_weights);
            // Translate planner output (indices into `todo`) back to
            // original point indices and hand each live device its
            // shard; shards execute in parallel on the host pool (the
            // rayon shim preserves input order, so merging below is
            // deterministic).
            let mut want: Vec<Option<Shard>> = (0..ndev).map(|_| None).collect();
            for (&d, s) in live.iter().zip(shards) {
                if !s.is_empty() {
                    want[d] = Some(s.iter().map(|&j| todo[j]).collect());
                }
            }
            let work: Vec<(usize, &mut DeviceEngine<R>, Shard)> = self
                .devices
                .iter_mut()
                .enumerate()
                .filter_map(|(d, dev)| want[d].take().map(|s| (d, dev, s)))
                .collect();
            let outcomes: Vec<ShardOutcome<R>> = work
                .into_par_iter()
                .map(|(d, dev, shard)| {
                    let wall_before = dev.stats().wall_seconds;
                    let cap = dev.capacity().max(1);
                    let mut out = Vec::with_capacity(shard.len());
                    let mut err = None;
                    let mut retries = 0u64;
                    let mut backoff = 0.0f64;
                    // A shard larger than the device capacity evaluates
                    // in capacity-sized chunks (several round trips);
                    // a faulted chunk retries in place with exponential
                    // backoff, so completed chunks never re-run.
                    'chunks: for chunk in shard.chunks(cap) {
                        let pts: Vec<Vec<Complex<R>>> =
                            chunk.iter().map(|&i| points[i].clone()).collect();
                        let mut attempt = 0u32;
                        loop {
                            match dev.try_evaluate_batch(&pts) {
                                Ok(evals) => {
                                    out.extend(evals);
                                    break;
                                }
                                Err(BatchError::Fault(fe)) => {
                                    // A lost device stays lost: retries
                                    // would only burn modeled time.
                                    if fe.kind == FaultKind::DeviceLost
                                        || attempt >= recovery.max_retries
                                    {
                                        err = Some(BatchError::Fault(fe));
                                        break 'chunks;
                                    }
                                    backoff += recovery.backoff_seconds(attempt);
                                    attempt += 1;
                                    retries += 1;
                                }
                                Err(e) => {
                                    err = Some(e);
                                    break 'chunks;
                                }
                            }
                        }
                    }
                    let wall = dev.stats().wall_seconds - wall_before;
                    ShardOutcome {
                        device: d,
                        indices: shard,
                        done: out,
                        err,
                        retries,
                        backoff,
                        wall,
                    }
                })
                .collect();

            // Merge device results back into input order (each outcome
            // carries its own shard, so merging cannot drift from the
            // plan the work ran under) and collect the points stranded
            // by terminal faults for the next round.
            todo.clear();
            let mut round_wall = 0.0f64;
            for o in outcomes {
                let completed = o.done.len();
                let shard_points = o.indices.len();
                for (&i, e) in o.indices.iter().zip(o.done) {
                    merged[i] = Some(e);
                }
                fault.retries += o.retries;
                fault.recovery_seconds += o.backoff;
                let dev_wall = o.wall + o.backoff;
                self.trace.emit(
                    SpanKind::Shard,
                    wall0 + batch_wall,
                    dev_wall,
                    4,
                    &[
                        ("device", MetaValue::U64(o.device as u64)),
                        ("points", MetaValue::U64(shard_points as u64)),
                    ],
                );
                if o.retries > 0 {
                    self.trace.emit(
                        SpanKind::Retry,
                        wall0 + batch_wall + o.wall,
                        0.0,
                        5,
                        &[
                            ("device", MetaValue::U64(o.device as u64)),
                            ("attempts", MetaValue::U64(o.retries)),
                        ],
                    );
                }
                if o.backoff > 0.0 {
                    self.trace.emit(
                        SpanKind::Backoff,
                        wall0 + batch_wall + o.wall,
                        o.backoff,
                        5,
                        &[("device", MetaValue::U64(o.device as u64))],
                    );
                }
                round_wall = round_wall.max(dev_wall);
                self.stats.device_wall[o.device] += dev_wall;
                self.stats.device_evals[o.device] += completed as u64;
                if let Some(e) = o.err {
                    match e {
                        BatchError::Fault(fe) => {
                            excluded[o.device] = true;
                            if fe.kind == FaultKind::DeviceLost {
                                self.lost[o.device] = true;
                            }
                            fault.failovers += 1;
                            todo.extend(&o.indices[completed..]);
                        }
                        // Non-fault errors are contract violations, not
                        // recoverable hardware events.
                        other => {
                            self.stats.fault.merge(&fault);
                            self.stats.wall_seconds += batch_wall + round_wall;
                            return Err(other);
                        }
                    }
                }
            }
            // Rounds are sequential on the modeled clock: survivors
            // only learn of stranded points after the round completes.
            batch_wall += round_wall;
        }

        self.trace.emit(
            SpanKind::Batch,
            wall0,
            batch_wall,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        self.stats.fault.merge(&fault);
        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.stats.wall_seconds += batch_wall;
        Ok(merged
            .into_iter()
            .map(|e| e.expect("every index is evaluated or re-planned"))
            .collect())
    }

    /// Fused device-resident Newton correction across the fleet.
    ///
    /// The batch shards exactly like [`Self::try_evaluate_batch`], but
    /// each device runs the whole evaluate → factor → solve → update
    /// loop on its own shard — per-iteration traffic is each device's
    /// `O(P_d)` flag download, never the values/Jacobians. Devices are
    /// driven sequentially on the host (the [`CombineMap`] is a single
    /// host-side object), yet the modeled cluster wall clock per round
    /// is still the **max** over participating devices: the devices
    /// would run concurrently, only the simulation is serialized.
    ///
    /// Recovery mirrors the evaluate path: a faulted shard retries on
    /// its own device with backoff, a device that exhausts retries (or
    /// is lost) strands its unfinished points for re-planning over the
    /// survivors, and with [`RecoveryPolicy::cpu_fallback`] a dead
    /// fleet finishes on the bit-identical CPU reference. Corrections
    /// commit into `points` only when every index has a status, so on
    /// `Err` the inputs are untouched and a caller-level retry replays
    /// bit for bit.
    pub fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        /// Remaps a device-local index to the point's position in the
        /// original batch — the sparse sibling of [`OffsetCombine`]
        /// for shards whose indices are not contiguous.
        struct GatherCombine<'a, R: Real> {
            inner: &'a mut dyn CombineMap<R>,
            indices: &'a [usize],
        }
        impl<R: Real> CombineMap<R> for GatherCombine<'_, R> {
            fn apply(&mut self, index: usize, x: &[Complex<R>], eval: &mut SystemEval<R>) {
                self.inner.apply(self.indices[index], x, eval);
            }
        }
        /// Host corrector over the CPU-reference fallback: bit-identical
        /// values, no modeled device costs.
        struct CpuCorrectOps<'a, R: Real>(&'a mut CpuFallback<R>);
        impl<R: Real> CorrectOps<R> for CpuCorrectOps<'_, R> {
            fn eval(
                &mut self,
                points: &[Vec<Complex<R>>],
                _indices: &[usize],
            ) -> Result<Vec<SystemEval<R>>, BatchError> {
                Ok(points.iter().map(|x| self.0.evaluate(x)).collect())
            }
        }

        let p = points.len();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        let capacity = self.max_batch();
        if p > capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != self.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: self.n,
                });
            }
        }

        let ndev = self.devices.len();
        let mut scratch: Vec<Vec<Complex<R>>> = points.to_vec();
        let mut statuses: Vec<Option<CorrectStatus>> = (0..p).map(|_| None).collect();
        let mut excluded = self.lost.clone();
        let mut fault = FaultStats::default();
        let mut batch_wall = 0.0f64;
        let mut todo: Vec<usize> = (0..p).collect();
        let recovery = self.recovery;
        let wall0 = self.stats.wall_seconds;

        while !todo.is_empty() {
            let live: Vec<usize> = (0..ndev).filter(|&d| !excluded[d]).collect();
            if live.is_empty() {
                if recovery.cpu_fallback {
                    fault.failovers += 1;
                    self.trace.emit(
                        SpanKind::Fallback,
                        wall0 + batch_wall,
                        0.0,
                        4,
                        &[("points", MetaValue::U64(todo.len() as u64))],
                    );
                    let mut cpu = CpuFallback::new(&self.system);
                    for &i in &todo {
                        let one = std::slice::from_mut(&mut scratch[i]);
                        let st = drive_correct(
                            &mut CpuCorrectOps(&mut cpu),
                            &mut OffsetCombine {
                                inner: combine,
                                offset: i,
                            },
                            one,
                            params,
                        )?;
                        statuses[i] = st.into_iter().next();
                    }
                    todo.clear();
                    break;
                }
                let lost = excluded.iter().filter(|&&l| l).count();
                self.stats.fault.merge(&fault);
                self.stats.wall_seconds += batch_wall;
                return Err(BatchError::DegradedFleet {
                    devices: ndev,
                    lost,
                });
            }

            let live_weights: Vec<DeviceWeight> = live.iter().map(|&d| self.weights[d]).collect();
            let shards: Vec<Shard> = plan(self.policy, todo.len(), &live_weights)
                .into_iter()
                .map(|s| s.iter().map(|&j| todo[j]).collect())
                .collect();
            todo.clear();
            let mut round_wall = 0.0f64;
            for (&d, shard) in live.iter().zip(&shards) {
                if shard.is_empty() {
                    continue;
                }
                let dev = &mut self.devices[d];
                let wall_before = dev.stats().wall_seconds;
                let cap = dev.capacity().max(1);
                let mut retries = 0u64;
                let mut backoff = 0.0f64;
                let mut err = None;
                let mut done = 0usize;
                'chunks: for chunk in shard.chunks(cap) {
                    // The fused loop never commits on `Err`, so the
                    // gathered iterates stay valid across retries and
                    // the eventual success is bit-identical to a
                    // fault-free run.
                    let mut pts: Vec<Vec<Complex<R>>> =
                        chunk.iter().map(|&i| scratch[i].clone()).collect();
                    let mut attempt = 0u32;
                    loop {
                        let mut gather = GatherCombine {
                            inner: combine,
                            indices: chunk,
                        };
                        match dev.try_correct_batch(&mut pts, &mut gather, params) {
                            Ok(st) => {
                                for ((&i, x), s) in chunk.iter().zip(pts).zip(st) {
                                    scratch[i] = x;
                                    statuses[i] = Some(s);
                                }
                                done += chunk.len();
                                break;
                            }
                            Err(BatchError::Fault(fe)) => {
                                if fe.kind == FaultKind::DeviceLost
                                    || attempt >= recovery.max_retries
                                {
                                    err = Some(fe);
                                    break 'chunks;
                                }
                                backoff += recovery.backoff_seconds(attempt);
                                attempt += 1;
                                retries += 1;
                            }
                            Err(e) => {
                                self.stats.fault.merge(&fault);
                                self.stats.wall_seconds += batch_wall;
                                return Err(e);
                            }
                        }
                    }
                }
                let dev_wall = dev.stats().wall_seconds - wall_before + backoff;
                fault.retries += retries;
                fault.recovery_seconds += backoff;
                self.trace.emit(
                    SpanKind::Shard,
                    wall0 + batch_wall,
                    dev_wall,
                    4,
                    &[
                        ("device", MetaValue::U64(d as u64)),
                        ("points", MetaValue::U64(shard.len() as u64)),
                    ],
                );
                round_wall = round_wall.max(dev_wall);
                self.stats.device_wall[d] += dev_wall;
                if let Some(fe) = err {
                    excluded[d] = true;
                    if fe.kind == FaultKind::DeviceLost {
                        self.lost[d] = true;
                    }
                    fault.failovers += 1;
                    todo.extend(&shard[done..]);
                }
            }
            batch_wall += round_wall;
        }

        self.trace.emit(
            SpanKind::Correct,
            wall0,
            batch_wall,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        self.stats.fault.merge(&fault);
        self.stats.wall_seconds += batch_wall;
        for (dst, src) in points.iter_mut().zip(scratch) {
            *dst = src;
        }
        Ok(statuses
            .into_iter()
            .map(|s| s.expect("every index is corrected or re-planned"))
            .collect())
    }
}

impl<R: Real> SystemEvaluator<R> for ShardedBatchEvaluator<R> {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        polygpu_core::expect_batch(AnyEvaluator::try_evaluate(self, x))
    }

    fn name(&self) -> &str {
        "gpu-sim-cluster"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for ShardedBatchEvaluator<R> {
    /// Cluster capacity: the sum of the per-device capacities.
    fn max_batch(&self) -> usize {
        self.devices.iter().map(|d| d.capacity()).sum()
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        polygpu_core::expect_batch(self.try_evaluate_batch(points))
    }
}

impl<R: Real> AnyEvaluator<R> for ShardedBatchEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        ShardedBatchEvaluator::try_evaluate_batch(self, points)
    }

    fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        ShardedBatchEvaluator::try_correct_batch(self, points, combine, params)
    }

    /// Cluster-level aggregate: evaluations/batches and the cluster
    /// wall clock (max over devices per batch) from [`ClusterStats`],
    /// resource seconds, transfer bytes and counters summed over the
    /// devices.
    fn engine_stats(&self) -> PipelineStats {
        let mut agg = PipelineStats {
            evaluations: self.stats.evaluations,
            batches: self.stats.batches,
            wall_seconds: self.stats.wall_seconds,
            ..Default::default()
        };
        agg.fault = self.stats.fault;
        for d in &self.devices {
            let s = d.stats();
            agg.counters += s.counters;
            agg.kernel_seconds += s.kernel_seconds;
            agg.overhead_seconds += s.overhead_seconds;
            agg.transfer_seconds += s.transfer_seconds;
            agg.factor_seconds += s.factor_seconds;
            agg.backsub_seconds += s.backsub_seconds;
            agg.h2d_bytes += s.h2d_bytes;
            agg.d2h_bytes += s.d2h_bytes;
            agg.corrections += s.corrections;
            agg.corrector_iterations += s.corrector_iterations;
            agg.fault.merge(&s.fault);
        }
        agg
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "cluster",
            devices: self.devices.len(),
            capacity: self.max_batch(),
            // The tightest device's single-round-trip absorption: with
            // `devices ×` this front every device's batch stays full.
            per_device_capacity: self
                .devices
                .iter()
                .map(|d| d.capacity())
                .min()
                .unwrap_or(usize::MAX),
            batched: true,
            constant_bytes: self.devices.iter().map(|d| d.constant_bytes_used()).sum(),
        }
    }
}

/// The [`ClusterProvider`] of this crate: [`Backend::Cluster`] builds a
/// [`ShardedBatchEvaluator`] (point sharding) or a
/// [`RowShardedEvaluator`] (system/row sharding) over the spec's
/// device list, per its `ShardMode`.
///
/// [`Backend::Cluster`]: polygpu_core::engine::Backend::Cluster
#[derive(Debug, Clone, Copy, Default)]
pub struct Sharded;

impl ClusterProvider for Sharded {
    fn build<R: Real>(
        &self,
        system: &System<R>,
        spec: &ClusterSpec,
    ) -> Result<Box<dyn AnyEvaluator<R>>, BuildError> {
        match spec.shard {
            ShardMode::Points { policy } => {
                let policy = match policy {
                    ClusterPolicy::RoundRobin => ShardPolicy::RoundRobin,
                    ClusterPolicy::CapacityProportional => ShardPolicy::CapacityProportional,
                    ClusterPolicy::WorkStealing { chunk } => ShardPolicy::WorkStealing { chunk },
                };
                let opts = ClusterOptions {
                    policy,
                    overlap_chunks: spec.base.overlap_chunks,
                    base: spec.base.clone(),
                    recovery: spec.recovery,
                };
                let cluster = ShardedBatchEvaluator::new(
                    system,
                    &spec.devices,
                    spec.per_device_capacity,
                    opts,
                )?;
                Ok(Box::new(cluster))
            }
            ShardMode::Rows { policy } => {
                let opts = RowClusterOptions {
                    policy,
                    gather: spec.gather,
                    overlap_chunks: spec.base.overlap_chunks,
                    base: spec.base.clone(),
                    recovery: spec.recovery,
                };
                let cluster = RowShardedEvaluator::new(
                    system,
                    &spec.devices,
                    spec.per_device_capacity,
                    opts,
                )?;
                Ok(Box::new(cluster))
            }
        }
    }
}

/// An [`Engine`] builder with every backend available — the cluster
/// backend wired to [`Sharded`]. The `polygpu` facade re-exports this
/// as `Engine::builder()`.
pub fn engine_builder() -> EngineBuilder<Sharded> {
    Engine::builder_with(Sharded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_core::BatchGpuEvaluator;
    use polygpu_polysys::{random_points, random_system, BenchmarkParams};

    // The parallel shard execution moves `&mut` device engines across
    // threads; assert the bound explicitly so a regression fails here
    // and not in a confusing rayon-shim error.
    fn _assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn _cluster_types_are_send() {
        _assert_send::<polygpu_core::BatchGpuEvaluator<f64>>();
        _assert_send::<polygpu_core::SparseBatchGpuEvaluator<f64>>();
        _assert_send::<ShardedBatchEvaluator<f64>>();
    }

    fn small_params(seed: u64) -> BenchmarkParams {
        BenchmarkParams {
            n: 8,
            m: 3,
            k: 2,
            d: 2,
            seed,
        }
    }

    /// A fleet with a slower clock on half the devices: heterogeneity
    /// without changing any functional behavior.
    fn hetero_specs(d: usize) -> Vec<DeviceSpec> {
        (0..d)
            .map(|i| {
                let mut s = DeviceSpec::tesla_c2050();
                if i % 2 == 1 {
                    s.name = format!("slow-c2050 #{i}");
                    s.clock_hz *= 0.6;
                    s.pcie_bandwidth *= 0.8;
                }
                s
            })
            .collect()
    }

    #[test]
    fn sharded_results_are_bit_identical_to_single_device() {
        let prm = small_params(5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 37, 11); // 37: divides nothing
        let mut single = BatchGpuEvaluator::new(&sys, 37, GpuOptions::default()).unwrap();
        let want = single.evaluate_batch(&points);
        for policy in [
            ShardPolicy::RoundRobin,
            ShardPolicy::CapacityProportional,
            ShardPolicy::WorkStealing { chunk: 3 },
        ] {
            let mut cluster = ShardedBatchEvaluator::new(
                &sys,
                &hetero_specs(3),
                16,
                ClusterOptions {
                    policy,
                    ..Default::default()
                },
            )
            .unwrap();
            let got = cluster.evaluate_batch(&points);
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "{policy:?}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "{policy:?}, point {i}"
                );
            }
        }
    }

    /// The acceptance criterion: modeled throughput at `D = 4`,
    /// `P = 256` is at least 3x the `D = 1` figure with stream overlap
    /// enabled, and the results agree bit-for-bit across `D`.
    ///
    /// Uses a Table-1-shaped system (n = 32, 128 monomials): scaling
    /// needs kernel work to dominate the per-batch fixed costs, which a
    /// toy system does not model (its launches are latency-bound and
    /// nearly flat in P — the paper's own effect).
    #[test]
    fn four_devices_scale_at_least_3x_over_one() {
        let prm = BenchmarkParams {
            n: 32,
            m: 4,
            k: 9,
            d: 2,
            seed: 9,
        };
        let sys = random_system::<f64>(&prm);
        let p = 256;
        let points = random_points::<f64>(32, p, 21);
        let mut throughputs = Vec::new();
        let mut endpoints: Vec<Vec<SystemEval<f64>>> = Vec::new();
        for d in [1usize, 2, 4] {
            let specs = vec![DeviceSpec::tesla_c2050(); d];
            let mut cluster =
                ShardedBatchEvaluator::new(&sys, &specs, p.div_ceil(d), ClusterOptions::default())
                    .unwrap();
            let evals = cluster.evaluate_batch(&points);
            let s = cluster.cluster_stats();
            assert_eq!(s.evaluations, p as u64);
            throughputs.push(s.throughput_evals_per_sec());
            endpoints.push(evals);
            assert!(cluster.overlap_savings() > 0.0, "D = {d} overlap modeled");
        }
        // Bit-identical across D in {1, 2, 4}.
        for d in 1..endpoints.len() {
            for (i, (a, b)) in endpoints[0].iter().zip(&endpoints[d]).enumerate() {
                assert_eq!(a.values, b.values, "D index {d}, point {i}");
                assert_eq!(
                    a.jacobian.as_slice(),
                    b.jacobian.as_slice(),
                    "D index {d}, point {i}"
                );
            }
        }
        let (d1, d2, d4) = (throughputs[0], throughputs[1], throughputs[2]);
        assert!(
            d4 >= 3.0 * d1,
            "D = 4 must be >= 3x D = 1: {d4:.0} vs {d1:.0} evals/s"
        );
        assert!(d2 > d1, "D = 2 must beat D = 1: {d2:.0} vs {d1:.0}");
    }

    #[test]
    fn cluster_stats_track_imbalance_and_wall_max() {
        let prm = small_params(3);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 24, 7);
        // Round-robin over heterogeneous devices: the slow devices hold
        // the same share, so imbalance rises above 1.
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &hetero_specs(2),
            16,
            ClusterOptions {
                policy: ShardPolicy::RoundRobin,
                ..Default::default()
            },
        )
        .unwrap();
        let _ = cluster.evaluate_batch(&points);
        let s = cluster.cluster_stats();
        assert_eq!(s.batches, 1);
        assert!(s.imbalance() > 1.0, "imbalance {}", s.imbalance());
        // Wall is the max device wall, which is less than the sum.
        let wall_sum: f64 = s.device_wall.iter().sum();
        assert!(s.wall_seconds < wall_sum);
        assert!(s.wall_seconds >= s.device_wall.iter().copied().fold(0.0, f64::max) - 1e-15);
        // Work stealing on the same fleet balances better.
        let mut stealing = ShardedBatchEvaluator::new(
            &sys,
            &hetero_specs(2),
            16,
            ClusterOptions {
                policy: ShardPolicy::WorkStealing { chunk: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        let _ = stealing.evaluate_batch(&points);
        let t = stealing.cluster_stats();
        assert!(
            t.imbalance() <= s.imbalance() + 1e-12,
            "stealing {} vs round-robin {}",
            t.imbalance(),
            s.imbalance()
        );
    }

    #[test]
    fn shards_larger_than_device_capacity_chunk_internally() {
        let prm = small_params(13);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 20, 5);
        // Capacity 4 per device, 2 devices: a 20-point batch needs
        // chunked shard execution (3 round trips on one device).
        let mut cluster =
            ShardedBatchEvaluator::new(&sys, &hetero_specs(2), 4, ClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.max_batch(), 8);
        // 20 > max_batch: typed error.
        assert!(matches!(
            cluster.try_evaluate_batch(&points),
            Err(BatchError::CapacityExceeded {
                points: 20,
                capacity: 8
            })
        ));
        let got = cluster.evaluate_batch(&points[..8]);
        let mut single = BatchGpuEvaluator::new(&sys, 8, GpuOptions::default()).unwrap();
        let want = single.evaluate_batch(&points[..8]);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
        }
        assert!(matches!(
            cluster.try_evaluate_batch(&[]),
            Err(BatchError::Empty)
        ));
    }

    /// Chaos, Points mode: under a seeded fault plan the fleet retries,
    /// fails over, and (with CPU fallback on) always completes — and
    /// every recovered batch is **bit-identical** to the fault-free
    /// run. Sweeping seeds guarantees the schedule actually strikes.
    #[test]
    fn fleet_recovery_is_bit_identical_under_faults() {
        use polygpu_gpusim::prelude::FaultPlan;
        let prm = small_params(5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 24, 11);
        let mut clean =
            ShardedBatchEvaluator::new(&sys, &hetero_specs(3), 8, ClusterOptions::default())
                .unwrap();
        let want = clean.evaluate_batch(&points);
        let mut strikes = 0u64;
        let mut failovers = 0u64;
        for seed in 0..24u64 {
            let mut opts = ClusterOptions {
                recovery: RecoveryPolicy {
                    cpu_fallback: true,
                    ..RecoveryPolicy::default()
                },
                ..Default::default()
            };
            opts.base.fault = Some(FaultConfig {
                plan: FaultPlan::new(seed, 40_000),
                device_index: 0,
            });
            let mut chaos = ShardedBatchEvaluator::new(&sys, &hetero_specs(3), 8, opts).unwrap();
            let got = chaos
                .try_evaluate_batch(&points)
                .expect("cpu_fallback makes every schedule recoverable");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "seed {seed}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "seed {seed}, point {i}"
                );
            }
            let s = chaos.cluster_stats();
            if s.fault.faults > 0 {
                strikes += 1;
                assert!(
                    s.fault.recovery_seconds > 0.0,
                    "seed {seed}: faults without charged recovery time"
                );
            }
            failovers += s.fault.failovers;
        }
        assert!(strikes > 0, "40000 ppm over 24 seeds must strike");
        assert!(failovers > 0, "some schedule must exhaust retries");
    }

    /// Chaos, Points mode: at a 100% fault rate every device dies; the
    /// outcome is the typed `DegradedFleet` error — or, with the CPU
    /// fallback enabled, a bit-identical result. Never a panic.
    #[test]
    fn total_fleet_loss_is_typed_or_falls_back_to_cpu() {
        use polygpu_gpusim::prelude::FaultPlan;
        let prm = small_params(3);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 6, 7);
        let mut clean =
            ShardedBatchEvaluator::new(&sys, &hetero_specs(2), 8, ClusterOptions::default())
                .unwrap();
        let want = clean.evaluate_batch(&points);
        let make = |cpu_fallback: bool| {
            let mut opts = ClusterOptions {
                recovery: RecoveryPolicy {
                    cpu_fallback,
                    ..RecoveryPolicy::default()
                },
                ..Default::default()
            };
            opts.base.fault = Some(FaultConfig {
                plan: FaultPlan::new(7, 1_000_000),
                device_index: 0,
            });
            ShardedBatchEvaluator::new(&sys, &hetero_specs(2), 8, opts).unwrap()
        };
        let mut doomed = make(false);
        match doomed.try_evaluate_batch(&points) {
            Err(BatchError::DegradedFleet { devices: 2, lost }) => {
                assert!(lost >= 1, "lost {lost}")
            }
            Err(other) => panic!("expected DegradedFleet, got {other}"),
            Ok(_) => panic!("expected DegradedFleet, got a result"),
        }
        assert!(doomed.cluster_stats().fault.faults > 0);
        let mut saved = make(true);
        let got = saved.try_evaluate_batch(&points).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice());
        }
        assert!(saved.cluster_stats().fault.failovers > 0);
    }

    /// Satellite: ratio helpers must be total on empty runs.
    #[test]
    fn empty_cluster_stats_ratios_are_total() {
        let s = ClusterStats::default();
        assert_eq!(s.throughput_evals_per_sec(), 0.0);
        assert_eq!(s.imbalance(), 1.0);
        assert!(!format!("{s}").is_empty());
    }

    /// Cluster spans: the Batch span on `Track::Cluster` covers the
    /// batch wall clock, Shard spans cover each device's share, and the
    /// exported trace is byte-identical across identical runs.
    #[test]
    fn cluster_trace_reconciles_and_is_deterministic() {
        use polygpu_obs::{chrome_trace_json, CollectingTracer, SpanKind, TraceSink, Track};
        use std::sync::Arc;
        let prm = small_params(5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 24, 7);
        let run = || {
            let tracer = Arc::new(CollectingTracer::new());
            let mut opts = ClusterOptions::default();
            opts.base.trace = TraceSink::new(tracer.clone());
            let mut cluster = ShardedBatchEvaluator::new(&sys, &hetero_specs(2), 16, opts).unwrap();
            let _ = cluster.evaluate_batch(&points);
            (tracer.spans(), cluster.cluster_stats())
        };
        let (spans, stats) = run();
        let batch: Vec<_> = spans
            .iter()
            .filter(|s| s.track == Track::Cluster && s.kind == SpanKind::Batch)
            .collect();
        assert_eq!(batch.len(), 1);
        assert!((batch[0].dur - stats.wall_seconds).abs() < 1e-12);
        let shards = spans
            .iter()
            .filter(|s| s.track == Track::Cluster && s.kind == SpanKind::Shard)
            .count();
        assert_eq!(shards, 2, "one Shard span per participating device");
        // Calibration probes are silenced: device tracks carry exactly
        // the real batch's ops, so each device Batch span reconciles
        // with that device's wall clock.
        for (d, dev) in stats.device_wall.iter().enumerate() {
            let dev_spans: f64 = spans
                .iter()
                .filter(|s| s.track == Track::Device(d as u32) && s.kind == SpanKind::Batch)
                .map(|s| s.dur)
                .sum();
            assert!(
                (dev_spans - dev).abs() < 1e-12,
                "device {d}: spans {dev_spans} vs wall {dev}"
            );
        }
        let (again, _) = run();
        assert_eq!(chrome_trace_json(&spans), chrome_trace_json(&again));
    }

    /// Sparse (ragged) systems shard across the fleet under the packed
    /// encoding, bit-identical to the single-device sparse engine — and
    /// seeded chaos schedules recover bit-identically, the sparse CPU
    /// fallback included.
    #[test]
    fn sparse_points_sharding_is_bit_identical_and_recovers() {
        use polygpu_core::layout::encoding::EncodingKind;
        use polygpu_core::SparseBatchGpuEvaluator;
        use polygpu_gpusim::prelude::FaultPlan;
        use polygpu_polysys::{random_sparse_system, SparseBenchmarkParams};
        let prm = SparseBenchmarkParams {
            n: 8,
            m_min: 1,
            m_max: 5,
            k_min: 0,
            k_max: 4,
            d: 3,
            seed: 11,
        };
        let sys = random_sparse_system::<f64>(&prm);
        assert!(sys.uniform_shape().is_err(), "the family must be ragged");
        let points = random_points::<f64>(8, 21, 5);
        let packed = GpuOptions {
            encoding: EncodingKind::Packed,
            ..GpuOptions::default()
        };
        let mut single = SparseBatchGpuEvaluator::new(&sys, 21, packed.clone()).unwrap();
        let want = single.try_evaluate_batch(&points).unwrap();
        let mut cluster = ShardedBatchEvaluator::new(
            &sys,
            &hetero_specs(3),
            8,
            ClusterOptions {
                base: packed.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let got = cluster.evaluate_batch(&points);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.values, w.values, "point {i}");
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice(), "point {i}");
        }
        let mut strikes = 0u64;
        for seed in 0..12u64 {
            let mut opts = ClusterOptions {
                base: packed.clone(),
                recovery: RecoveryPolicy {
                    cpu_fallback: true,
                    ..RecoveryPolicy::default()
                },
                ..Default::default()
            };
            opts.base.fault = Some(FaultConfig {
                plan: FaultPlan::new(seed, 40_000),
                device_index: 0,
            });
            let mut chaos = ShardedBatchEvaluator::new(&sys, &hetero_specs(3), 8, opts).unwrap();
            let got = chaos
                .try_evaluate_batch(&points)
                .expect("cpu_fallback makes every schedule recoverable");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "seed {seed}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "seed {seed}, point {i}"
                );
            }
            strikes += chaos.cluster_stats().fault.faults;
        }
        assert!(strikes > 0, "40000 ppm over 12 seeds must strike");
    }

    #[test]
    fn double_double_cluster_matches_single_device_bitwise() {
        use polygpu_qd::Dd;
        let prm = small_params(17);
        let sys = random_system::<f64>(&prm).convert::<Dd>();
        let points: Vec<Vec<Complex<Dd>>> = random_points::<f64>(8, 11, 23)
            .into_iter()
            .map(|x| x.into_iter().map(|z| z.convert()).collect())
            .collect();
        let mut single = BatchGpuEvaluator::new(&sys, 11, GpuOptions::default()).unwrap();
        let want = single.evaluate_batch(&points);
        let mut cluster =
            ShardedBatchEvaluator::new(&sys, &hetero_specs(3), 8, ClusterOptions::default())
                .unwrap();
        let got = cluster.evaluate_batch(&points);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.values, w.values, "dd point {i}");
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice(), "dd point {i}");
        }
    }
}
