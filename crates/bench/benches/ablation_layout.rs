//! A2: the §3.3 layout tradeoff — paper's `Mons` (coalesced kernel-3
//! reads) vs row-major (scattered). Prints the modeled transaction
//! counts; criterion tracks the simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use polygpu_bench::alt_layout::compare_sum_layouts;
use polygpu_polysys::UniformShape;

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sum_layout");
    group.sample_size(10);
    for m in [22usize, 48] {
        let shape = UniformShape::square(32, m, 9, 2);
        group.bench_function(format!("compare_m{m}"), |b| {
            b.iter(|| compare_sum_layouts(shape, m as u64))
        });
        let (paper, row) = compare_sum_layouts(shape, m as u64);
        println!(
            "  [model] m={m}: Mons {} tx / {:.2} us, row-major {} tx / {:.2} us",
            paper.counters.global_transactions,
            paper.timing.kernel_seconds * 1e6,
            row.counters.global_transactions,
            row.timing.kernel_seconds * 1e6,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
