//! Per-kernel microbenchmarks: host cost of simulating the pipeline at
//! Table-1 scale, with the modeled device time printed per kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use polygpu_bench::bench_fixture;
use polygpu_polysys::SystemEvaluator;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_1024_monomials");
    group.sample_size(10);
    let (_cpu, mut gpu, points) = bench_fixture(1024, 9, 2);
    group.bench_function("full_pipeline_step", |b| {
        b.iter(|| gpu.evaluate(&points[0]).values[0])
    });
    group.finish();

    let _ = gpu.evaluate(&points[0]);
    for r in gpu.last_reports() {
        println!(
            "  [model] kernel `{}`: {:.2} us, {} warps, {} tx, bound {:?}",
            r.kernel_name,
            r.timing.kernel_seconds * 1e6,
            r.counters.warps,
            r.counters.global_transactions,
            r.timing.bound,
        );
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
