//! Cluster scaling: host cost of simulating a `P = 256` batch on 1 vs
//! 4 devices, with the modeled cluster table printed alongside — the
//! modeled throughput is what scales; the host cost of *simulating* D
//! devices stays roughly flat because shards run on parallel host
//! threads.

use criterion::{criterion_group, criterion_main, Criterion};
use polygpu_bench::{cluster_sweep, format_cluster_sweep};
use polygpu_cluster::{ClusterOptions, ShardedBatchEvaluator};
use polygpu_gpusim::prelude::DeviceSpec;
use polygpu_polysys::{random_points, random_system, BatchSystemEvaluator, BenchmarkParams};

fn bench_cluster_scaling(c: &mut Criterion) {
    let params = BenchmarkParams {
        n: 32,
        m: 4,
        k: 9,
        d: 2,
        seed: 0xC105,
    };
    let system = random_system::<f64>(&params);
    let points = random_points::<f64>(32, 256, 7);

    let mut group = c.benchmark_group("cluster_scaling_128_monomials_p256");
    group.sample_size(10);
    for d in [1usize, 4] {
        let specs = vec![DeviceSpec::tesla_c2050(); d];
        let mut cluster = ShardedBatchEvaluator::new(
            &system,
            &specs,
            256usize.div_ceil(d),
            ClusterOptions::default(),
        )
        .unwrap();
        group.bench_function(format!("d{d}_batch_256"), |b| {
            b.iter(|| cluster.evaluate_batch(&points)[0].values[0])
        });
    }
    group.finish();

    let rows = cluster_sweep(128, 9, 2, 256, &[1, 2, 4, 8]);
    println!("{}", format_cluster_sweep(128, 256, &rows));
}

criterion_group!(benches, bench_cluster_scaling);
criterion_main!(benches);
