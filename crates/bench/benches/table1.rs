//! Table 1 as a criterion benchmark: CPU evaluation time per monomial
//! count for the `k = 9, d <= 2` family, plus the (fast) simulated-GPU
//! pipeline step whose *modeled* time is printed alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polygpu_bench::{bench_fixture, cpu_batch};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_k9_d2");
    group.sample_size(10);
    for total in [704usize, 1024, 1536] {
        let (mut cpu, mut gpu, points) = bench_fixture(total, 9, 2);
        group.bench_with_input(BenchmarkId::new("cpu_1core_eval", total), &total, |b, _| {
            b.iter(|| cpu_batch(&mut cpu, &points))
        });
        // One simulated evaluation (functional execution + analysis);
        // its *modeled* device time is what the table reports.
        group.bench_with_input(BenchmarkId::new("gpu_sim_step", total), &total, |b, _| {
            use polygpu_polysys::SystemEvaluator;
            b.iter(|| gpu.evaluate(&points[0]).values[0])
        });
        let modeled = gpu.stats().seconds_per_eval();
        println!(
            "  [model] total={total}: GPU {:.3} us / evaluation -> {:.2} s per 100k",
            modeled * 1e6,
            modeled * 1e5
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
