//! A1: host-side cost of simulating the two common-factor strategies
//! (the modeled device comparison is printed by `repro ablate-cf`; this
//! bench tracks the simulator itself and prints the modeled numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use polygpu_bench::ablate_common_factor;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_common_factor");
    group.sample_size(10);
    for d in [2u16, 10] {
        group.bench_function(format!("both_variants_d{d}"), |b| {
            b.iter(|| ablate_common_factor(d))
        });
        let ab = ablate_common_factor(d);
        println!(
            "  [model] d={d}: two-stage {} muls / {:.2} us, from-scratch {} muls / {:.2} us ({} divergent)",
            ab.two_stage.counters.flops / 6,
            ab.two_stage.timing.kernel_seconds * 1e6,
            ab.from_scratch.counters.flops / 6,
            ab.from_scratch.timing.kernel_seconds * 1e6,
            ab.from_scratch.counters.divergent_segments,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
