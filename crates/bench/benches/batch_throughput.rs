//! Batched vs single-point evaluation throughput: host cost of
//! simulating one `P = 64` batch against 64 single-point pipeline
//! steps, with the modeled device throughput printed alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use polygpu_bench::{batch_fixture, bench_fixture};
use polygpu_polysys::{BatchSystemEvaluator, SystemEvaluator};

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput_704_monomials");
    group.sample_size(10);

    let (mut batch, points) = batch_fixture(704, 9, 2, 64);
    group.bench_function("batch_64_points", |b| {
        b.iter(|| batch.evaluate_batch(&points)[0].values[0])
    });

    let (_cpu, mut gpu, single_points) = bench_fixture(704, 9, 2);
    group.bench_function("single_64_points", |b| {
        b.iter(|| {
            let mut acc = single_points[0][0];
            for _ in 0..64 {
                acc = gpu.evaluate(&single_points[0]).values[0];
            }
            acc
        })
    });
    group.finish();

    let _ = batch.evaluate_batch(&points);
    let s = batch.stats();
    println!(
        "  [model] batch P=64: {:.3} us/eval, {:.0} evals/sec, overhead+transfer {:.3} us/eval",
        s.seconds_per_eval() * 1e6,
        s.throughput_evals_per_sec(),
        (s.overhead_seconds + s.transfer_seconds) / s.evaluations as f64 * 1e6,
    );
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
