//! E5: the arithmetic cost ladder — complex multiply in double,
//! double-double and quad-double. The paper's motivation rests on the
//! double-double factor (~8 in the authors' companion measurements)
//! being offset by a GPU speedup of the same order.

use criterion::{criterion_group, criterion_main, Criterion};
use polygpu_complex::Complex;
use polygpu_qd::{Dd, Qd, Real};

fn bench_mul<R: Real>(c: &mut Criterion, label: &str) {
    let z = Complex::<R>::from_f64(0.999_999, 1.3e-3);
    let w = Complex::<R>::from_f64(1.000_001, -1.1e-3);
    c.bench_function(format!("complex_mul/{label}"), |b| {
        b.iter(|| {
            let mut acc = z;
            for _ in 0..256 {
                acc = std::hint::black_box(acc * w);
            }
            acc
        })
    });
}

fn bench_eval_ladder(c: &mut Criterion) {
    // Full-evaluation comparison: the same Table-1 system in f64 vs DD.
    use polygpu_bench::{bench_fixture, bench_fixture_dd, cpu_batch};
    let (mut cpu64, _gpu, points) = bench_fixture(704, 9, 2);
    c.bench_function("eval_704_monomials/f64", |b| {
        b.iter(|| cpu_batch(&mut cpu64, &points))
    });
    let (mut cpu_dd, points_dd) = bench_fixture_dd(704, 9, 2);
    c.bench_function("eval_704_monomials/dd", |b| {
        b.iter(|| cpu_batch(&mut cpu_dd, &points_dd))
    });
}

fn benches(c: &mut Criterion) {
    bench_mul::<f64>(c, "f64");
    bench_mul::<Dd>(c, "dd");
    bench_mul::<Qd>(c, "qd");
    bench_eval_ladder(c);
}

criterion_group!(dd_overhead, benches);
criterion_main!(dd_overhead);
