//! `repro` — regenerate the paper's tables and in-text experiments.
//!
//! ```text
//! repro table1 [--full]     Table 1 (k = 9, d <= 2)
//! repro table2 [--full]     Table 2 (k = 16, d <= 10)
//! repro capacity            E3: constant-memory wall at 2,048 monomials
//! repro counts              E4: 5k − 4 and 3k − 6 multiplication counts
//! repro ddcost              E5: double-double cost factor
//! repro ablate-cf           A1: two-stage vs from-scratch common factors
//! repro ablate-layout       A2: Mons layout vs row-major summation
//! repro batch               B1: batched engine sweep over P in {1,4,16,64,256}
//! repro cluster             C1: multi-device scaling over D in {1,2,4,8} at P = 256
//! repro session             S1: multi-system residency table and setup amortization
//! repro solve               Solver: scheduler x backend table (paths/s, occupancy, escalation)
//! repro newton              N1: device-resident Newton — corrector mode table, flag-only D2H audit
//! repro syshard             R1: system (row) sharding — over-budget build + D-sweep
//! repro chaos               F1: fault injection — solves under device loss/corruption
//! repro trace               T1: deterministic tracing — span replay, stat reconciliation
//! repro serve               V1: multi-tenant solve service — fair queue, admission, cache
//! repro sparse              P1: sparse subsystem — packed keys, budget, mixed-cell path counts
//! repro multicore           multicore quality-up (companion experiment)
//! repro dims                working-dimension feasibility sweep (sections 3.1-3.2)
//! repro all [--full]        everything above, in order
//! ```
//!
//! `--full` times the paper's 100,000 CPU evaluations for real instead
//! of extrapolating from 200 (the GPU side is modeled either way, so
//! the default finishes in seconds with identical reported units).
//!
//! `--model-only` skips every wall-clock *check* (table rows still
//! show a measured column from one quick pass, marked unchecked;
//! `ddcost` and `multicore` are skipped under `all`), so every
//! PASS/FAIL printed is deterministic — what CI executes.
//!
//! Exit status: nonzero **only** on model-side check failures (the
//! deterministic table shape and the cluster scaling bar). Measured
//! checks are reported as `WARN (measured)` on a noisy host but never
//! fail the run — see `MEASURED_SHAPE_TOLERANCE` in the bench crate.

use polygpu_bench::*;
use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let model_only = args.iter().any(|a| a == "--model-only");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let measured = if full { 100_000 } else { 200 };
    let mut model_ok = true;
    match cmd {
        "table1" => table(&table1_spec(), measured, model_only, &mut model_ok),
        "table2" => table(&table2_spec(), measured, model_only, &mut model_ok),
        "capacity" => capacity(),
        "counts" => counts(),
        "ddcost" => ddcost(),
        "ablate-cf" => ablate_cf(),
        "ablate-layout" => ablate_layout(),
        "batch" => batch(),
        "cluster" => cluster(&mut model_ok),
        "session" => session(&mut model_ok),
        "solve" => solve(&mut model_ok),
        "newton" => newton(&mut model_ok),
        "syshard" => syshard(&mut model_ok),
        "chaos" => chaos(&mut model_ok),
        "trace" => trace(&mut model_ok),
        "serve" => serve(&mut model_ok),
        "sparse" => sparse(&mut model_ok),
        "multicore" => multicore(),
        "dims" => dims(),
        "all" => {
            table(&table1_spec(), measured, model_only, &mut model_ok);
            table(&table2_spec(), measured, model_only, &mut model_ok);
            capacity();
            counts();
            if !model_only {
                ddcost();
            }
            ablate_cf();
            ablate_layout();
            batch();
            cluster(&mut model_ok);
            session(&mut model_ok);
            solve(&mut model_ok);
            newton(&mut model_ok);
            syshard(&mut model_ok);
            chaos(&mut model_ok);
            trace(&mut model_ok);
            serve(&mut model_ok);
            sparse(&mut model_ok);
            if !model_only {
                multicore();
            }
            dims();
        }
        other => {
            eprintln!("unknown subcommand `{other}`; see the doc comment for usage");
            return ExitCode::FAILURE;
        }
    }
    if model_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("model-side checks FAILED (deterministic regression, not host noise)");
        ExitCode::FAILURE
    }
}

fn table(spec: &TableSpec, measured: usize, model_only: bool, model_ok: &mut bool) {
    let reported = 100_000;
    // Model-only mode times a single quick CPU pass per row so the
    // table keeps its shape, but the measured columns are explicitly
    // marked unchecked and the measured shape check is skipped.
    let rows = run_table(spec, if model_only { 1 } else { measured }, reported);
    println!("{}", format_table(spec, &rows, reported));
    if model_only {
        println!(
            "(--model-only: the measured CPU column above comes from a single quick\n\
             pass and is UNCHECKED; only the modeled columns are meaningful here)"
        );
    }
    let model = table_shape_holds_model(&rows);
    if !model {
        *model_ok = false;
    }
    println!(
        "model shape check (speedup vs 2012 CPU grows with monomials, all > 1): {}",
        if model { "PASS" } else { "FAIL" }
    );
    if !model_only {
        // Measured check: median-of-5 timing with tolerance; a FAIL
        // here is host noise by construction and never fails the run.
        println!(
            "measured shape check (CPU grows, GPU flatter; {:.0}% tolerance): {}",
            MEASURED_SHAPE_TOLERANCE * 100.0,
            if table_shape_holds_measured(&rows) {
                "PASS"
            } else {
                "WARN (measured)"
            }
        );
    }
    println!();
}

fn batch() {
    let rows = batch_sweep(704, 9, 2, &[1, 4, 16, 64, 256]);
    println!("{}", format_batch_sweep(704, &rows));
    println!(
        "model: one batch pays 3 launch overheads and 2 PCIe latencies for P\n\
         evaluations, so the fixed cost per evaluation falls ~P-fold while the\n\
         kernel seconds stay proportional to the work; throughput approaches the\n\
         kernel-bound ceiling as P grows.\n"
    );
}

fn cluster(model_ok: &mut bool) {
    let rows = cluster_sweep(128, 9, 2, 256, &[1, 2, 4, 8]);
    println!("{}", format_cluster_sweep(128, 256, &rows));
    let d4_bar = rows
        .iter()
        .find(|r| r.d == 4)
        .map(|r| r.speedup_vs_d1 >= 3.0)
        .unwrap_or(false);
    if !d4_bar {
        *model_ok = false;
    }
    println!(
        "scaling check (D = 4 at least 3x the D = 1 throughput): {}",
        if d4_bar { "PASS" } else { "FAIL" }
    );
    println!(
        "model: shards run concurrently, so the cluster wall clock is the max\n\
         over devices; stream overlap hides each shard's PCIe transfers under\n\
         its kernels (double-buffered uploads), shaving the savings column off\n\
         the serialized sum. Imbalance 1.0 = every device equally busy.\n"
    );
}

fn session(model_ok: &mut bool) {
    let report = session_residency(4);
    println!("{}", format_session(&report));
    let bar = report.amortization.steady_state_ratio >= 5.0;
    if !bar {
        *model_ok = false;
    }
    println!(
        "residency check (resident stage >= 5x cheaper than re-encoding): {}",
        if bar { "PASS" } else { "FAIL" }
    );
    println!(
        "model: all resident systems' supports live in constant memory at once\n\
         (joint budget enforced at load), so switching the active system is one\n\
         modeled command-queue round trip instead of re-uploading supports and\n\
         coefficients and re-running the validation probe.\n"
    );
}

fn solve(model_ok: &mut bool) {
    let sweep = solve_sweep();
    println!("{}", format_solve_sweep(&sweep));
    let checks = [
        (
            "identity check (per-path and queue endpoints bit-identical across backends)",
            sweep.endpoints_identical,
        ),
        (
            "occupancy check (auto-sized queue front > 0.8 occupied on the D = 4 cluster)",
            sweep.queue_occupancy_d4 > 0.8,
        ),
        (
            "escalation check (f64-unreachable tolerance retried and rescued in dd)",
            sweep.escalation_retried > 0 && sweep.escalation_rescued > 0,
        ),
    ];
    for (what, ok) in checks {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: one SolveRequest runs unchanged on every scheduler and backend;\n\
         schedulers are performance choices (the lockstep front shares its step\n\
         size, so only its cross-backend identity is asserted), SlotPolicy::Auto\n\
         sizes the queue front to D x per-device capacity from EngineCaps, and\n\
         escalation re-enters the same scheduler in double-double.\n"
    );
}

fn newton(model_ok: &mut bool) {
    let sweep = newton_sweep();
    println!("{}", format_newton_sweep(&sweep));
    for (what, ok) in sweep.checks() {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: DeviceResident fuses the corrector — evaluate, LU-factor,\n\
         back-substitute, update — against iterates that stay on the engine,\n\
         so each Newton iteration downloads only the O(P) convergence-flag\n\
         vector (FLAG_BYTES per live point) instead of every value and\n\
         Jacobian. The arithmetic is the shared host driver's either way, so\n\
         endpoints stay bit-identical to CorrectorMode::Host on every\n\
         scheduler and backend; the probe reconciles the engine's modeled\n\
         D2H counter byte-for-byte against the driver's charge log.\n"
    );
}

fn syshard(model_ok: &mut bool) {
    let sweep = syshard_sweep();
    println!("{}", format_syshard_sweep(&sweep));
    for (what, ok) in sweep.checks() {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: each device encodes only its rows' supports (~1/D of the bytes),\n\
         so the constant-memory wall lifts D-fold; every device evaluates every\n\
         point and the non-root rows cross to the root through the modeled\n\
         gather (concurrent per-source egress, serialized root ingress), charged\n\
         on top of the compute max. Row sharding trades the point-capacity\n\
         scaling of `repro cluster` for memory scaling.\n"
    );
}

fn chaos(model_ok: &mut bool) {
    let sweep = chaos_sweep();
    println!("{}", format_chaos_sweep(&sweep));
    for (what, ok) in sweep.checks() {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: every run draws a seeded, replayable fault schedule (pure function\n\
         of seed x device x op). Cluster fleets retry struck shards with modeled\n\
         backoff, then re-plan around lost devices; whatever still reaches the\n\
         scheduler retries the affected round against live slot state, which is\n\
         the natural checkpoint. A run that outlives recovery ends in a typed\n\
         error — chaos never panics — and every run that finishes is\n\
         bit-identical to its fault-free reference.\n"
    );
}

fn trace(model_ok: &mut bool) {
    let sweep = trace_sweep();
    println!("{}", format_trace_sweep(&sweep));
    println!("telemetry snapshot of one clean traced run:\n");
    println!("{}", sweep.sample_telemetry);
    for (what, ok) in sweep.checks() {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: spans are timestamped by the *simulated* device, cluster, and\n\
         scheduler clocks, never the host's, so the same seed replays the exact\n\
         same Chrome-trace JSON byte-for-byte — chaos runs included. The span\n\
         tree is audited against the stats structs it narrates (root solve span\n\
         == modeled wall clock, cluster batch spans tile the engine wall), and\n\
         a no-op tracer is asserted free: endpoints, modeled timings, and the\n\
         telemetry snapshot stay bit-identical to the untraced solve.\n"
    );
}

fn serve(model_ok: &mut bool) {
    let sweep = serve_sweep();
    println!("{}", format_serve_sweep(&sweep));
    for (what, ok) in sweep.checks() {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: one residency fleet fronts every tenant. The weighted fair queue\n\
         drains by virtual finish tag (charge / weight, FIFO within a tenant,\n\
         ties by arrival), so service order is a pure function of the\n\
         submissions; admission sizes each request against the engine spec's\n\
         constant-memory budget *before* touching device state, so rejections\n\
         are typed and free; repeat targets are recognized by support hash\n\
         (verified by full equality) and served from residency, paying one\n\
         modeled command-queue switch instead of encode + upload + probe.\n\
         Under chaos the fleet fails over, shrinking admitted capacity —\n\
         jobs fail typed, the service itself never errors.\n"
    );
}

fn sparse(model_ok: &mut bool) {
    let sweep = sparse_sweep();
    println!("{}", format_sparse_sweep(&sweep));
    for (what, ok) in sweep.checks() {
        if !ok {
            *model_ok = false;
        }
        println!("{}: {}", what, if ok { "PASS" } else { "FAIL" });
    }
    println!(
        "model: ragged supports carry no uniform shape, so the Direct layout\n\
         rejects them typed; the packed encoding stores one header word plus\n\
         bit-packed radix exponent keys per monomial, sized by what the support\n\
         contains — it shrinks the footprint the row-sharded cluster otherwise\n\
         fights per-device, and fits Table-2-scale targets that Direct refuses.\n\
         Mixed-cell starts track the mixed volume (Bernstein's bound) instead\n\
         of the Bezout count: a deterministic lifting of the supports picks the\n\
         cells, each contributes a binomial start system solved exactly, and\n\
         the solver runs one scheduler pass per cell — start systems evaluate\n\
         on the host, so endpoints stay bit-identical across schedulers,\n\
         backends, and injected faults.\n"
    );
}

fn multicore() {
    let r = multicore::multicore_quality_up(256);
    println!(
        "### Multicore quality up (companion experiment, {} threads)\n",
        r.threads
    );
    println!("| run | seconds ({} evals) |", r.evals);
    println!("|-----|-------------------:|");
    println!("| double, 1 core | {:.4} |", r.f64_seq_s);
    println!("| double, {} cores | {:.4} |", r.threads, r.f64_par_s);
    println!("| double-double, 1 core | {:.4} |", r.dd_seq_s);
    println!("| double-double, {} cores | {:.4} |", r.threads, r.dd_par_s);
    println!();
    println!("parallel speedup (double): {:.2}x", r.f64_speedup());
    println!(
        "double-double cost factor: {:.2}x (paper companion: ~8)",
        r.dd_cost_factor()
    );
    println!(
        "quality-up ratio (dd parallel / double sequential): {:.2} -> {}\n",
        r.quality_up_ratio(),
        if r.quality_up_ratio() <= 1.0 {
            "QUALITY UP"
        } else {
            "not achieved on this host"
        }
    );
}

fn dims() {
    println!("### Working dimensions (paper sections 3.1-3.2): m = n, k = n/2\n");
    println!("| n | constant bytes (direct) | kernel-2 shared bytes (dd) | complex double | complex double-double |");
    println!("|--:|------------------------:|---------------------------:|:--------------:|:---------------------:|");
    for r in dimension_sweep(&[16, 30, 32, 40, 44, 56, 64, 70]) {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.n,
            r.constant_bytes,
            r.shared_bytes,
            if r.fits_f64 { "fits" } else { "REFUSED" },
            if r.fits_dd { "fits" } else { "REFUSED" },
        );
    }
    println!("\npaper: dimensions 30-40 fit the constant memory; with double-double the\nshared memory still allows dimensions up to 70 (k <= n/2) -- but constant\nmemory becomes the binding constraint first, motivating the compact encoding.\n");
}

fn capacity() {
    println!("### E3 — constant-memory capacity (k = 16, n = 32)\n");
    println!("| #monomials | positions+exponents bytes | direct encoding | compact encoding |");
    println!("|-----------:|--------------------------:|:---------------:|:----------------:|");
    for (total, direct, compact, bytes) in capacity_sweep(&[704, 1024, 1536, 2048, 2560]) {
        println!(
            "| {} | {} | {} | {} |",
            total,
            bytes,
            if direct { "fits" } else { "REFUSED" },
            if compact { "fits" } else { "REFUSED" }
        );
    }
    println!(
        "\npaper: \"the capacity of the constant memory was not sufficient to hold\n\
         the exponents and positions of all 2,048 monomials\" — reproduced by the\n\
         direct column; the compact column is the paper's proposed compression.\n"
    );
}

fn counts() {
    println!("### E4 — multiplications per thread of kernel 2\n");
    println!("| k | measured | 5k-4 | Speelpenning part (3k-6) | common factor (k-1, kernel 1) |");
    println!("|--:|---------:|-----:|-------------------------:|------------------------------:|");
    for (k, measured, formula, spl, cf) in count_multiplications(&[2, 3, 5, 9, 16, 32]) {
        println!("| {k} | {measured} | {formula} | {spl} | {cf} |");
    }
    println!();
}

fn ddcost() {
    let (dd, qd) = measure_cost_factors(2_000_000);
    println!("### E5 — extended-precision arithmetic cost factors (complex multiply)\n");
    println!("| precision | measured factor | reference |");
    println!("|-----------|----------------:|-----------|");
    println!("| double | 1.00 | — |");
    println!("| double-double | {dd:.2} | ~8 (Verschelde-Yoffe, PASCO 2010) |");
    println!("| quad-double | {qd:.2} | O(10^2) (QD library) |");
    println!();
}

fn ablate_cf() {
    println!("### A1 — common-factor kernel: two-stage (paper) vs from-scratch\n");
    println!("| d | variant | complex muls | divergent segments | modeled kernel us |");
    println!("|--:|---------|-------------:|-------------------:|------------------:|");
    for d in [2u16, 5, 10] {
        let ab = ablate_common_factor(d);
        for (name, r) in [
            ("two-stage", &ab.two_stage),
            ("from-scratch", &ab.from_scratch),
        ] {
            println!(
                "| {} | {} | {} | {} | {:.2} |",
                d,
                name,
                r.counters.flops / 6,
                r.counters.divergent_segments,
                r.timing.kernel_seconds * 1e6
            );
        }
    }
    println!();
}

fn ablate_layout() {
    use polygpu_polysys::UniformShape;
    println!("### A2 — kernel 3 input layout: paper's Mons vs row-major\n");
    println!("| m | layout | global transactions | modeled kernel us |");
    println!("|--:|--------|--------------------:|------------------:|");
    for m in [22usize, 32, 48] {
        let shape = UniformShape::square(32, m, 9, 2);
        let (paper, row) = alt_layout::compare_sum_layouts(shape, m as u64);
        println!(
            "| {} | Mons (paper) | {} | {:.2} |",
            m,
            paper.counters.global_transactions,
            paper.timing.kernel_seconds * 1e6
        );
        println!(
            "| {} | row-major | {} | {:.2} |",
            m,
            row.counters.global_transactions,
            row.timing.kernel_seconds * 1e6
        );
    }
    println!();
}
