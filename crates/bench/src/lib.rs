//! # polygpu-bench — the experiment harness
//!
//! Regenerates every quantitative result of the paper's evaluation
//! (§4) plus the in-text claims, as catalogued below:
//!
//! * **Table 1 / Table 2** — [`run_table`]: wall time of `N`
//!   evaluations of a dimension-32 system and its Jacobian, simulated
//!   GPU (modeled time) vs 1 CPU core (measured), speedups;
//! * **E3** — [`capacity_sweep`]: the constant-memory wall at 2,048
//!   monomials with `k = 16`, and the compact-encoding extension that
//!   lifts it;
//! * **E4** — [`count_multiplications`]: the `5k − 4` / `3k − 6`
//!   multiplication counts;
//! * **E5** — [`measure_cost_factors`]: the double-double arithmetic
//!   overhead factor (the paper's companion work reports ≈ 8);
//! * **A1 / A2** — [`ablate_common_factor`], [`alt_layout`]:
//!   the design choices of §3.1 and §3.3;
//! * **B1** — [`batch_sweep`]: the batched multi-point engine's
//!   launch/transfer amortization over `P ∈ {1, 4, 16, 64, 256}`.
//!
//! The `repro` binary prints these in paper-style tables; the criterion
//! benches under `benches/` track the same quantities as regressions.

use polygpu_complex::{CDd, Complex, Real, C64};
use polygpu_core::pipeline::{GpuEvaluator, GpuOptions};
use polygpu_core::{BatchGpuEvaluator, EncodingKind};
use polygpu_gpusim::prelude::*;
use polygpu_polysys::{
    cost, random_points, random_system, AdEvaluator, BatchSystemEvaluator, BenchmarkParams,
    SystemEvaluator,
};
use std::time::Instant;

pub mod alt_layout;
pub mod multicore;

/// One row of a reproduced table.
#[derive(Debug, Clone)]
pub struct TableRow {
    pub monomials: usize,
    /// Modeled GPU seconds for `reported_evals` evaluations.
    pub gpu_seconds: f64,
    /// Measured 1-core CPU seconds, scaled to `reported_evals`.
    pub cpu_seconds: f64,
    /// `cpu_seconds / gpu_seconds`: the modeled device against *this
    /// host's* CPU — deflated relative to the paper because the host is
    /// ~14 years newer than the Xeon X5690 while the device model stays
    /// a C2050.
    pub speedup: f64,
    /// Modeled single-point evaluation throughput (evals/sec).
    pub gpu_evals_per_sec: f64,
    /// Modeled throughput of the batched engine at `P = 64`.
    pub gpu_batch64_evals_per_sec: f64,
    /// `paper_cpu / gpu_seconds`: the modeled device against the
    /// paper's own 2012 CPU baseline — the era-consistent comparison,
    /// and fully deterministic (no wall-clock measurement involved).
    pub speedup_vs_2012_cpu: f64,
    /// The paper's figures for the same cell.
    pub paper_gpu: f64,
    pub paper_cpu: f64,
    pub paper_speedup: f64,
}

/// A table specification (Table 1 or Table 2 of the paper).
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: &'static str,
    pub k: usize,
    pub d: u16,
    pub totals: [usize; 3],
    pub paper_gpu: [f64; 3],
    pub paper_cpu: [f64; 3],
}

/// Table 1: `k = 9`, `d <= 2`; paper GPU 14.514/15.265/17.000 s, CPU
/// 110.9/159.3/238.7 s (1 min 50.9 s etc.).
pub fn table1_spec() -> TableSpec {
    TableSpec {
        name: "Table 1 (k = 9, d <= 2)",
        k: 9,
        d: 2,
        totals: [704, 1024, 1536],
        paper_gpu: [14.514, 15.265, 17.000],
        paper_cpu: [110.9, 159.3, 238.7],
    }
}

/// Table 2: `k = 16`, `d <= 10`; paper GPU 19.068/20.800/21.763 s, CPU
/// 196.9/283.3/425.8 s.
pub fn table2_spec() -> TableSpec {
    TableSpec {
        name: "Table 2 (k = 16, d <= 10)",
        k: 16,
        d: 10,
        totals: [704, 1024, 1536],
        paper_gpu: [19.068, 20.800, 21.763],
        paper_cpu: [196.9, 283.3, 425.8],
    }
}

/// Robust per-evaluation CPU time: **median** over `repeats` timed
/// passes of the whole point batch (one untimed warm-up pass first).
/// The median filters scheduler and frequency noise symmetrically —
/// unlike the minimum it is also robust against a single
/// too-fast outlier pass — which matters in shared environments at the
/// default quick setting (200 evaluations per pass).
fn measure_cpu_per_eval(cpu: &mut AdEvaluator<f64>, points: &[Vec<C64>], repeats: usize) -> f64 {
    let mut sink = 0.0;
    for p in points {
        sink += cpu.evaluate(p).residual_norm();
    }
    let mut times: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for p in points {
                sink += cpu.evaluate(p).residual_norm();
            }
            t0.elapsed().as_secs_f64() / points.len() as f64
        })
        .collect();
    std::hint::black_box(sink);
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Relative tolerance of the **measured** table-shape check: the CPU
/// time of a bigger row must exceed the smaller row's by more than
/// measurement noise allows in the other direction. Median-of-5 timing
/// keeps residual noise in the low percent range; 10% slack makes the
/// check a property assertion, not a benchmark.
pub const MEASURED_SHAPE_TOLERANCE: f64 = 0.10;

/// Reproduce one table. `measured_evals` CPU evaluations are timed per
/// pass (median of 5 passes) and scaled to `reported_evals` (the
/// paper times 100,000); the GPU time is the pipeline's modeled
/// per-evaluation cost times `reported_evals`.
pub fn run_table(spec: &TableSpec, measured_evals: usize, reported_evals: usize) -> Vec<TableRow> {
    let mut rows = Vec::with_capacity(spec.totals.len());
    for (i, &total) in spec.totals.iter().enumerate() {
        let params = BenchmarkParams {
            n: 32,
            m: total / 32,
            k: spec.k,
            d: spec.d,
            seed: 0xC2050 + i as u64,
        };
        let system = random_system::<f64>(&params);
        // --- CPU: measure the sequential AD algorithm. ---
        let mut cpu = AdEvaluator::new(system.clone()).expect("generator yields uniform systems");
        let points = random_points::<f64>(32, measured_evals.max(1), params.seed ^ 0xAB);
        let cpu_per_eval = measure_cpu_per_eval(&mut cpu, &points, 5);
        // --- GPU: modeled time from the simulated pipeline. ---
        let mut gpu =
            GpuEvaluator::new(&system, GpuOptions::default()).expect("table systems fit the C2050");
        for p in points.iter().take(3) {
            let _ = gpu.evaluate(p);
        }
        let gpu_per_eval = gpu.stats().seconds_per_eval();
        let gpu_seconds = gpu_per_eval * reported_evals as f64;
        let cpu_seconds = cpu_per_eval * reported_evals as f64;
        // --- Batched engine at P = 64: one round trip, same math. ---
        let mut batch = BatchGpuEvaluator::new(&system, 64, GpuOptions::default())
            .expect("table systems fit the C2050");
        let batch_points = random_points::<f64>(32, 64, params.seed ^ 0xB);
        let _ = batch.evaluate_batch(&batch_points);
        rows.push(TableRow {
            monomials: total,
            gpu_seconds,
            cpu_seconds,
            speedup: cpu_seconds / gpu_seconds,
            gpu_evals_per_sec: gpu.stats().throughput_evals_per_sec(),
            gpu_batch64_evals_per_sec: batch.stats().throughput_evals_per_sec(),
            speedup_vs_2012_cpu: spec.paper_cpu[i] / gpu_seconds,
            paper_gpu: spec.paper_gpu[i],
            paper_cpu: spec.paper_cpu[i],
            paper_speedup: spec.paper_cpu[i] / spec.paper_gpu[i],
        });
    }
    rows
}

/// Render a reproduced table in markdown, paper figures alongside.
pub fn format_table(spec: &TableSpec, rows: &[TableRow], reported_evals: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "### {} — {} evaluations of a dim-32 system + Jacobian\n\n",
        spec.name, reported_evals
    ));
    s.push_str(
        "| #monomials | GPU-sim (model) | evals/s | evals/s (batch P=64) | 1 CPU core (measured) | speedup | speedup vs 2012 CPU | paper GPU | paper CPU | paper speedup |\n",
    );
    s.push_str(
        "|-----------:|----------------:|--------:|---------------------:|----------------------:|--------:|--------------------:|----------:|----------:|--------------:|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.3} s | {:.0} | {:.0} | {:.1} s | {:.2} | {:.2} | {:.3} s | {:.1} s | {:.2} |\n",
            r.monomials,
            r.gpu_seconds,
            r.gpu_evals_per_sec,
            r.gpu_batch64_evals_per_sec,
            r.cpu_seconds,
            r.speedup,
            r.speedup_vs_2012_cpu,
            r.paper_gpu,
            r.paper_cpu,
            r.paper_speedup
        ));
    }
    s
}

/// Shape checks on a reproduced table, mirroring the paper's central
/// observations:
///
/// 1. the era-consistent speedup grows with the monomial count and is
///    double-digit at the top (deterministic: modeled GPU vs the
///    paper's own CPU column);
/// 2. the measured CPU time grows with the monomial count;
/// 3. the modeled GPU time grows much slower than the CPU time
///    (latency-bound device, the reason speedup rises).
pub fn table_shape_holds(rows: &[TableRow]) -> bool {
    table_shape_holds_model(rows) && table_shape_holds_measured(rows)
}

/// The measured (wall-clock) side of [`table_shape_holds`], with
/// [`MEASURED_SHAPE_TOLERANCE`] slack per comparison: CPU time grows
/// with the monomial count, and the modeled GPU time grows slower than
/// the measured CPU time. A failure here is a *measurement* anomaly
/// (host noise), never a model regression — the `repro` binary reports
/// it as a warning and keeps its exit status clean.
pub fn table_shape_holds_measured(rows: &[TableRow]) -> bool {
    let tol = 1.0 - MEASURED_SHAPE_TOLERANCE;
    let cpu_grows = rows
        .windows(2)
        .all(|w| w[1].cpu_seconds > w[0].cpu_seconds * tol);
    let gpu_flat = {
        let first = rows.first().map(|r| r.gpu_seconds).unwrap_or(0.0);
        let last = rows.last().map(|r| r.gpu_seconds).unwrap_or(0.0);
        let cpu_ratio = rows.last().map(|r| r.cpu_seconds).unwrap_or(1.0)
            / rows.first().map(|r| r.cpu_seconds).unwrap_or(1.0);
        last / first < cpu_ratio / tol
    };
    cpu_grows && gpu_flat
}

/// The wall-clock-free subset of [`table_shape_holds`]: only the
/// modeled GPU side and the paper's own CPU column, hence fully
/// deterministic (safe under parallel test execution, where measuring
/// this host's CPU is unreliable).
pub fn table_shape_holds_model(rows: &[TableRow]) -> bool {
    rows.windows(2)
        .all(|w| w[1].speedup_vs_2012_cpu > w[0].speedup_vs_2012_cpu)
        && rows.iter().all(|r| r.speedup_vs_2012_cpu > 1.0)
}

/// E3: for each total monomial count, can the `k = 16` system be set
/// up on the device? Returns `(total, direct_ok, compact_ok,
/// direct_bytes_needed)`.
pub fn capacity_sweep(totals: &[usize]) -> Vec<(usize, bool, bool, usize)> {
    totals
        .iter()
        .map(|&total| {
            let params = BenchmarkParams {
                n: 32,
                m: total / 32,
                k: 16,
                d: 10,
                seed: 1,
            };
            let system = random_system::<f64>(&params);
            let direct = GpuEvaluator::new(&system, GpuOptions::default()).is_ok();
            let compact = GpuEvaluator::new(
                &system,
                GpuOptions {
                    encoding: EncodingKind::Compact,
                    ..Default::default()
                },
            )
            .is_ok();
            (total, direct, compact, 2 * total * 16)
        })
        .collect()
}

/// E4: instrumented multiplication counts of kernel 2 per monomial for
/// a range of `k`: `(k, measured, 5k−4 formula, 3k−6 part, k−1 part)`.
pub fn count_multiplications(ks: &[usize]) -> Vec<(usize, u64, u64, u64, u64)> {
    ks.iter()
        .map(|&k| {
            let params = BenchmarkParams {
                n: 32.max(k),
                m: 1,
                k,
                d: 3,
                seed: k as u64,
            };
            let system = random_system::<f64>(&params);
            let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
            let x = polygpu_polysys::random_point::<f64>(params.n, 9);
            let _ = gpu.evaluate(&x);
            // Kernel 2 is report index 1; complex muls = flops / 6.
            let k2 = &gpu.last_reports()[1];
            let muls_measured = k2.counters.flops / 6 / params.n as u64;
            (
                k,
                muls_measured,
                cost::kernel2_muls(k),
                cost::speelpenning_muls(k),
                cost::common_factor_muls(k),
            )
        })
        .collect()
}

/// E5: measured wall-clock cost factors of complex double-double and
/// quad-double multiplication relative to complex double, on this
/// host. The paper's companion work reports ≈ 8 for double-double.
pub fn measure_cost_factors(iters: usize) -> (f64, f64) {
    fn bench_mul<R: Real>(iters: usize) -> f64 {
        let mut z = Complex::<R>::from_f64(0.999_999, 1.3e-3);
        let w = Complex::<R>::from_f64(1.000_001, -1.1e-3);
        let t0 = Instant::now();
        for _ in 0..iters {
            z = std::hint::black_box(z * w);
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(z);
        dt / iters as f64
    }
    let f = bench_mul::<f64>(iters);
    let dd = bench_mul::<polygpu_qd::Dd>(iters);
    let qd = bench_mul::<polygpu_qd::Qd>(iters / 16 + 1);
    (dd / f, qd / f)
}

/// A1: modeled counters for the two-stage common-factor kernel vs the
/// from-scratch alternative of §3.1, at maximal degree `d`.
pub struct AblationCf {
    pub two_stage: LaunchReport,
    pub from_scratch: LaunchReport,
}

pub fn ablate_common_factor(d: u16) -> AblationCf {
    let params = BenchmarkParams {
        n: 32,
        m: 32,
        k: 9,
        d,
        seed: 77,
    };
    let system = random_system::<f64>(&params);
    let x = polygpu_polysys::random_point::<f64>(32, 3);
    let mut a = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let _ = a.evaluate(&x);
    let mut b = GpuEvaluator::new(
        &system,
        GpuOptions {
            from_scratch_cf: true,
            ..Default::default()
        },
    )
    .unwrap();
    let _ = b.evaluate(&x);
    AblationCf {
        two_stage: a.last_reports()[0].clone(),
        from_scratch: b.last_reports()[0].clone(),
    }
}

/// One row of the dimension-feasibility sweep (paper §3.1–§3.2): for
/// dimension `n` with `m = n` monomials per polynomial and `k = n/2`
/// variables per monomial, does the system fit the device in the given
/// precision?
#[derive(Debug, Clone)]
pub struct DimRow {
    pub n: usize,
    /// Constant-memory bytes the direct encoding needs.
    pub constant_bytes: usize,
    /// Kernel-2 shared memory per block, bytes.
    pub shared_bytes: usize,
    /// Fits with complex double?
    pub fits_f64: bool,
    /// Fits with complex double-double?
    pub fits_dd: bool,
}

/// Reproduce the paper's working-dimension analysis: "those are ranging
/// from 30 to 40" for constant memory, and "we also could increase
/// precision from double to double double and still work with
/// dimensions up to 70, as long as k is less or equal than a half of
/// dimension" for shared memory.
pub fn dimension_sweep(dims: &[usize]) -> Vec<DimRow> {
    let _device = DeviceSpec::tesla_c2050();
    dims.iter()
        .map(|&n| {
            let k = (n / 2).max(1);
            let m = n;
            let params = BenchmarkParams {
                n,
                m,
                k,
                d: 3,
                seed: n as u64,
            };
            let constant_bytes = 2 * n * m * k;
            // Kernel 2 shared: (n + B*(k+1)) elements.
            let elems = n + 32 * (k + 1);
            let shared_bytes_dd = elems * 32;
            let system = random_system::<f64>(&params);
            let fits_f64 = GpuEvaluator::new(&system, GpuOptions::default()).is_ok();
            let system_dd = system.convert::<polygpu_qd::Dd>();
            let fits_dd = GpuEvaluator::new(&system_dd, GpuOptions::default()).is_ok();
            DimRow {
                n,
                constant_bytes,
                shared_bytes: shared_bytes_dd,
                fits_f64,
                fits_dd,
            }
        })
        .collect()
}

/// A batch CPU evaluation helper shared by the criterion benches:
/// evaluates `points.len()` times and returns a residual checksum so
/// the optimizer cannot discard the work.
pub fn cpu_batch<R: Real>(eval: &mut AdEvaluator<R>, points: &[Vec<Complex<R>>]) -> f64 {
    let mut sink = 0.0;
    for p in points {
        sink += eval.evaluate(p).residual_norm().to_f64();
    }
    sink
}

/// Convenience: a table-shaped system and points for benches.
pub fn bench_fixture(
    total: usize,
    k: usize,
    d: u16,
) -> (AdEvaluator<f64>, GpuEvaluator<f64>, Vec<Vec<C64>>) {
    let params = BenchmarkParams {
        n: 32,
        m: total / 32,
        k,
        d,
        seed: 0xBEEF,
    };
    let system = random_system::<f64>(&params);
    let cpu = AdEvaluator::new(system.clone()).unwrap();
    let gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let points = random_points::<f64>(32, 16, 7);
    (cpu, gpu, points)
}

/// One row of the batched-engine sweep (B1).
#[derive(Debug, Clone, Copy)]
pub struct BatchRow {
    /// Batch size.
    pub p: usize,
    /// Modeled seconds per evaluation.
    pub seconds_per_eval: f64,
    /// Modeled evaluations per second.
    pub evals_per_sec: f64,
    /// Modeled fixed-cost (launch overhead + transfer) seconds per
    /// evaluation — the quantity batching amortizes `P`-fold.
    pub overhead_transfer_per_eval: f64,
    /// Throughput relative to the `P = 1` row.
    pub speedup_vs_p1: f64,
}

/// B1: sweep the batched engine over batch sizes on a Table-1-shaped
/// system, reporting the modeled launch/transfer amortization.
pub fn batch_sweep(total: usize, k: usize, d: u16, ps: &[usize]) -> Vec<BatchRow> {
    let params = BenchmarkParams {
        n: 32,
        m: total / 32,
        k,
        d,
        seed: 0xBA7C4,
    };
    let system = random_system::<f64>(&params);
    // Dedicated P = 1 reference so `speedup_vs_p1` means the same
    // thing regardless of which batch sizes (and in which order) the
    // caller asks for.
    let p1_throughput = {
        let mut gpu = BatchGpuEvaluator::new(&system, 1, GpuOptions::default())
            .expect("sweep systems fit the C2050");
        let points = random_points::<f64>(32, 1, params.seed ^ 1);
        let _ = gpu.evaluate_batch(&points);
        gpu.stats().throughput_evals_per_sec()
    };
    let mut rows: Vec<BatchRow> = Vec::with_capacity(ps.len());
    for &p in ps {
        let mut gpu = BatchGpuEvaluator::new(&system, p, GpuOptions::default())
            .expect("sweep systems fit the C2050");
        let points = random_points::<f64>(32, p, params.seed ^ p as u64);
        let _ = gpu.evaluate_batch(&points);
        let s = gpu.stats();
        let evals_per_sec = s.throughput_evals_per_sec();
        rows.push(BatchRow {
            p,
            seconds_per_eval: s.seconds_per_eval(),
            evals_per_sec,
            overhead_transfer_per_eval: s.overhead_transfer_per_eval(),
            speedup_vs_p1: evals_per_sec / p1_throughput,
        });
    }
    rows
}

/// Render the batch sweep in markdown.
pub fn format_batch_sweep(total: usize, rows: &[BatchRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "### B1 — batched evaluation engine ({total} monomials, one 3-launch round trip per batch)\n\n",
    ));
    s.push_str("| P | modeled s/eval | evals/s | overhead+transfer s/eval | speedup vs P=1 |\n");
    s.push_str("|--:|---------------:|--------:|-------------------------:|---------------:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.3e} | {:.0} | {:.3e} | {:.2} |\n",
            r.p, r.seconds_per_eval, r.evals_per_sec, r.overhead_transfer_per_eval, r.speedup_vs_p1
        ));
    }
    s
}

/// One row of the cluster scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ClusterRow {
    /// Device count.
    pub d: usize,
    /// Modeled cluster wall seconds for the batch.
    pub wall_seconds: f64,
    /// Modeled cluster throughput (evals/sec on the cluster wall
    /// clock, which is the max over devices).
    pub evals_per_sec: f64,
    /// Throughput relative to the `D = 1` row.
    pub speedup_vs_d1: f64,
    /// Seconds stream overlap shaved off the serialized per-device
    /// model, summed over devices.
    pub overlap_savings: f64,
    /// Busiest device wall over mean device wall (1.0 = balanced).
    pub imbalance: f64,
}

/// Cluster scaling sweep: evaluate one `P = p`-point batch of a
/// Table-1-shaped system on `D`-device clusters of identical C2050s
/// with stream overlap enabled, for each `D` in `ds`. Fully modeled,
/// hence deterministic.
pub fn cluster_sweep(
    total: usize,
    k: usize,
    d_exp: u16,
    p: usize,
    ds: &[usize],
) -> Vec<ClusterRow> {
    use polygpu_cluster::{ClusterOptions, ShardedBatchEvaluator};
    let params = BenchmarkParams {
        n: 32,
        m: total / 32,
        k,
        d: d_exp,
        seed: 0xC105,
    };
    let system = random_system::<f64>(&params);
    let points = random_points::<f64>(32, p, params.seed ^ 0xD);
    let run = |d: usize| -> (f64, f64, f64, f64) {
        let specs = vec![DeviceSpec::tesla_c2050(); d];
        let mut cluster =
            ShardedBatchEvaluator::new(&system, &specs, p.div_ceil(d), ClusterOptions::default())
                .expect("sweep systems fit the C2050");
        let _ = cluster.evaluate_batch(&points);
        let s = cluster.cluster_stats();
        (
            s.wall_seconds,
            s.throughput_evals_per_sec(),
            cluster.overlap_savings(),
            s.imbalance(),
        )
    };
    let raw: Vec<(usize, (f64, f64, f64, f64))> = ds.iter().map(|&d| (d, run(d))).collect();
    // `speedup_vs_d1` is relative to the D = 1 row when the sweep has
    // one (the common case), else to a dedicated reference run.
    let d1_throughput = raw
        .iter()
        .find(|(d, _)| *d == 1)
        .map(|(_, m)| m.1)
        .unwrap_or_else(|| run(1).1);
    raw.into_iter()
        .map(|(d, (wall, tput, savings, imbalance))| ClusterRow {
            d,
            wall_seconds: wall,
            evals_per_sec: tput,
            speedup_vs_d1: tput / d1_throughput,
            overlap_savings: savings,
            imbalance,
        })
        .collect()
}

/// Render the cluster sweep in markdown.
pub fn format_cluster_sweep(total: usize, p: usize, rows: &[ClusterRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "### Cluster scaling — {total} monomials, P = {p}, identical C2050s, stream overlap on\n\n",
    ));
    s.push_str("| D | modeled wall | evals/s | speedup vs D=1 | overlap savings | imbalance |\n");
    s.push_str("|--:|-------------:|--------:|---------------:|----------------:|----------:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.1} us | {:.0} | {:.2} | {:.1} us | {:.2} |\n",
            r.d,
            r.wall_seconds * 1e6,
            r.evals_per_sec,
            r.speedup_vs_d1,
            r.overlap_savings * 1e6,
            r.imbalance
        ));
    }
    s
}

/// The multi-system residency report behind `repro session`.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// One row per resident system (label, monomials, constant bytes,
    /// modeled setup seconds, activations).
    pub rows: Vec<polygpu_core::ResidencyRow>,
    /// Setup-cost accounting against the re-encode-every-stage
    /// baseline.
    pub amortization: polygpu_core::SessionAmortization,
    /// Bytes of the shared constant arena in use.
    pub constant_used: usize,
    /// The device's constant-memory budget.
    pub constant_budget: usize,
    /// Modeled cost of one system switch, seconds.
    pub switch_seconds: f64,
}

/// S1: multi-system residency. Three homotopy-stage systems (Table-1
/// shaped, growing monomial counts) co-reside in one device's constant
/// memory through an `engine::Session`; the stage sequence cycles
/// through them `rounds` times with a batched evaluation per stage.
/// Fully modeled, hence deterministic. The acceptance bar — a resident
/// stage costs ≥ 5× less than re-encoding its system — is
/// `amortization.steady_state_ratio`.
pub fn session_residency(rounds: usize) -> SessionReport {
    use polygpu_core::{Backend, Engine};
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
    let mut session = builder
        .session::<f64>()
        .expect("GPU backend opens a session");
    let stages: Vec<(String, _)> = [(352usize, 1u64), (704, 2), (1024, 3)]
        .iter()
        .map(|&(total, seed)| {
            let params = BenchmarkParams {
                n: 32,
                m: total / 32,
                k: 9,
                d: 2,
                seed: 0x5E55 + seed,
            };
            (format!("stage-{total}"), random_system::<f64>(&params))
        })
        .collect();
    let ids: Vec<_> = stages
        .iter()
        .map(|(label, sys)| {
            session
                .load(label, sys)
                .expect("three Table-1-shaped systems co-reside")
        })
        .collect();
    let points = random_points::<f64>(32, 4, 0xABC);
    for _ in 0..rounds {
        for &id in &ids {
            let engine = session.activate(id);
            let evals = engine
                .try_evaluate_batch(&points)
                .expect("resident engines evaluate");
            assert_eq!(evals.len(), points.len());
        }
    }
    SessionReport {
        rows: session.residency(),
        amortization: session.amortization(),
        constant_used: session.constant_bytes_used(),
        constant_budget: session.constant_budget(),
        switch_seconds: session.switch_seconds(),
    }
}

/// Render the residency report in markdown.
pub fn format_session(report: &SessionReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "### S1 — multi-system residency ({} systems share {} of {} constant-memory bytes)\n\n",
        report.rows.len(),
        report.constant_used,
        report.constant_budget
    ));
    s.push_str("| system | monomials | constant bytes | setup (modeled) | activations | switch (modeled) |\n");
    s.push_str("|--------|----------:|---------------:|----------------:|------------:|-----------------:|\n");
    for r in &report.rows {
        s.push_str(&format!(
            "| {} | {} | {} | {:.1} us | {} | {:.1} us |\n",
            r.label,
            r.monomials,
            r.constant_bytes,
            r.setup_seconds * 1e6,
            r.activations,
            report.switch_seconds * 1e6
        ));
    }
    let am = &report.amortization;
    s.push_str(&format!(
        "\nstages: {} | session setup cost: {:.1} us | re-encode baseline: {:.1} us \
         | per-stage amortization: {:.1}x (cumulative {:.1}x)\n",
        am.stages,
        am.session_seconds * 1e6,
        am.reencode_seconds * 1e6,
        am.steady_state_ratio,
        am.cumulative_ratio()
    ));
    s
}

/// One row of the solver sweep (scheduler × backend).
#[derive(Debug, Clone)]
pub struct SolveRow {
    pub scheduler: &'static str,
    pub backend: &'static str,
    pub devices: usize,
    pub paths: usize,
    pub successes: usize,
    /// Modeled engine wall seconds, both precision passes.
    pub wall_seconds: f64,
    /// Paths per modeled second (0 for the unmodeled CPU reference).
    pub paths_per_sec: f64,
    /// Mean slot occupancy of the scheduler's front.
    pub occupancy: f64,
    /// Fraction of paths retried in double-double.
    pub escalation_rate: f64,
}

/// The solver sweep plus its deterministic acceptance checks.
#[derive(Debug, Clone)]
pub struct SolveSweep {
    pub rows: Vec<SolveRow>,
    /// Per-path and queue endpoints bit-identical across every backend.
    pub endpoints_identical: bool,
    /// Queue occupancy of the `SlotPolicy::Auto` front on the D = 4
    /// cluster (the bar is > 0.8).
    pub queue_occupancy_d4: f64,
    /// The escalation demo (f64-unreachable tolerance): paths retried
    /// and rescued in double-double.
    pub escalation_retried: usize,
    pub escalation_rescued: usize,
}

impl SolveSweep {
    /// All model-side acceptance bars of `repro solve` in one place.
    pub fn passes(&self) -> bool {
        self.endpoints_identical
            && self.queue_occupancy_d4 > 0.8
            && self.escalation_retried > 0
            && self.escalation_rescued > 0
    }
}

/// The scheduler × backend table behind `repro solve`: one
/// `SolveRequest` (36 total-degree paths of a dim-2 system) through
/// every built-in scheduler on the CPU-reference, batched-GPU and
/// 4-device-cluster backends, with modeled throughput, occupancy and
/// escalation telemetry read straight off the `SolveReport`. Fully
/// modeled, hence deterministic.
pub fn solve_sweep() -> SolveSweep {
    use polygpu_cluster::Sharded;
    use polygpu_core::engine::EngineBuilder;
    use polygpu_homotopy::prelude::*;

    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let sys = random_system::<f64>(&params);
    let start = polygpu_homotopy::start::StartSystem::uniform(2, 6); // 36 paths
    let req = SolveRequest::new(sys.clone())
        .with_start(start)
        .with_gamma_seed(11);

    let per_device = 2usize;
    let backends: Vec<(&'static str, EngineBuilder<Sharded>)> = vec![
        (
            "cpu-reference",
            polygpu_cluster::engine_builder().backend(polygpu_core::Backend::CpuReference),
        ),
        (
            "gpu-batch",
            polygpu_cluster::engine_builder().backend(polygpu_core::Backend::GpuBatch {
                capacity: 4 * per_device,
            }),
        ),
        (
            "cluster",
            polygpu_cluster::engine_builder()
                .backend(polygpu_core::Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050(); 4],
                    shard: polygpu_core::engine::ClusterPolicy::default().into(),
                })
                .per_device_capacity(per_device),
        ),
    ];
    let schedulers = [
        SchedulerKind::PerPath,
        SchedulerKind::Lockstep,
        SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        },
    ];

    let mut rows = Vec::new();
    let mut endpoints_identical = true;
    let mut queue_occupancy_d4 = 0.0;
    let mut reference: Option<Vec<PathEndpoint>> = None;
    for (name, builder) in &backends {
        for scheduler in schedulers {
            let report = Solver::from_builder(builder.clone())
                .solve(&req.clone().with_scheduler(scheduler))
                .expect("sweep systems fit every backend");
            let wall = report.engine.wall_clock_seconds();
            rows.push(SolveRow {
                scheduler: scheduler.name(),
                backend: name,
                devices: report.caps.devices,
                paths: report.paths.len(),
                successes: report.successes(),
                wall_seconds: wall,
                paths_per_sec: report.paths_per_second(),
                occupancy: report.occupancy(),
                escalation_rate: report.escalation_rate(),
            });
            // The cross-scheduler × cross-backend identity bar: the
            // per-path and queue schedulers agree bit for bit
            // everywhere (lockstep shares its front step size, so it
            // is only checked against itself across backends).
            if scheduler != SchedulerKind::Lockstep {
                let endpoints: Vec<PathEndpoint> =
                    report.paths.iter().map(|p| p.endpoint.clone()).collect();
                match &reference {
                    None => reference = Some(endpoints),
                    Some(want) => endpoints_identical &= &endpoints == want,
                }
            }
            if *name == "cluster" && scheduler == schedulers[2] {
                queue_occupancy_d4 = report.occupancy();
            }
        }
    }

    // Escalation demo: an f64-unreachable tolerance forces every path
    // into the double-double retry, which rescues them on the same
    // backend spec.
    let brutal = TrackParams {
        corrector: NewtonParams {
            residual_tol: 1e-19,
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let esc_req = SolveRequest::new(sys)
        .with_start(polygpu_homotopy::start::StartSystem::uniform(2, 2))
        .with_gamma_seed(33)
        .with_params(brutal)
        .with_precision(PrecisionPolicy::Escalating { dd_params: brutal });
    let esc = Solver::from_builder(backends[1].1.clone())
        .solve(&esc_req)
        .expect("escalation demo fits the batched backend");
    let (retried, rescued) = esc
        .escalation
        .as_ref()
        .map_or((0, 0), |e| (e.retried, e.rescued));

    SolveSweep {
        rows,
        endpoints_identical,
        queue_occupancy_d4,
        escalation_retried: retried,
        escalation_rescued: rescued,
    }
}

/// Render the solver sweep in markdown.
pub fn format_solve_sweep(sweep: &SolveSweep) -> String {
    let mut s = String::new();
    s.push_str("### Solver — one request, every scheduler x backend (36 paths, dim-2 system)\n\n");
    s.push_str(
        "| scheduler | backend | D | paths ok | modeled wall | paths/s | occupancy | escalated |\n",
    );
    s.push_str(
        "|-----------|---------|--:|---------:|-------------:|--------:|----------:|----------:|\n",
    );
    for r in &sweep.rows {
        let wall = if r.wall_seconds > 0.0 {
            format!("{:.1} us", r.wall_seconds * 1e6)
        } else {
            "(unmodeled)".to_string()
        };
        let pps = if r.paths_per_sec > 0.0 {
            format!("{:.0}", r.paths_per_sec)
        } else {
            "-".to_string()
        };
        s.push_str(&format!(
            "| {} | {} | {} | {}/{} | {} | {} | {:.2} | {:.0}% |\n",
            r.scheduler,
            r.backend,
            r.devices,
            r.successes,
            r.paths,
            wall,
            pps,
            r.occupancy,
            r.escalation_rate * 100.0
        ));
    }
    s.push_str(&format!(
        "\nescalation demo (1e-19 tolerance, unreachable in f64): {} retried, {} rescued in double-double\n",
        sweep.escalation_retried, sweep.escalation_rescued
    ));
    s
}

/// One row of the corrector-mode sweep behind `repro newton`.
#[derive(Debug, Clone)]
pub struct NewtonRow {
    pub scheduler: &'static str,
    pub backend: &'static str,
    pub mode: &'static str,
    pub successes: usize,
    pub paths: usize,
    /// Modeled engine wall seconds of the solve.
    pub wall_seconds: f64,
    /// Modeled host-to-device traffic.
    pub h2d_bytes: u64,
    /// Modeled device-to-host traffic.
    pub d2h_bytes: u64,
    /// Newton updates applied by fused `correct` calls (0 on the host
    /// path, which corrects through plain evaluation round trips).
    pub corrector_iterations: u64,
    /// Modeled on-device LU / back-substitution kernel time.
    pub factor_seconds: f64,
    pub backsub_seconds: f64,
}

/// The corrector-mode sweep plus its deterministic acceptance checks.
#[derive(Debug, Clone)]
pub struct NewtonSweep {
    pub rows: Vec<NewtonRow>,
    /// `DeviceResident` endpoints bit-identical to `Host` on every
    /// scheduler × backend pair.
    pub endpoints_identical: bool,
    /// The resident solve downloads strictly fewer modeled bytes than
    /// the host-loop solve on every pair.
    pub d2h_reduced: bool,
    /// Micro-audit of one fused `try_correct_batch` call on the
    /// batched backend: points corrected, …
    pub points: usize,
    /// … bytes the fused loop downloaded *beyond* the one final
    /// endpoint download (i.e. everything that crossed per iteration),
    pub flag_bytes: u64,
    /// … the exact flag traffic the driver reported charging
    /// (`Σ live · FLAG_BYTES` over the rounds), replayed host-side,
    pub expected_flag_bytes: u64,
    /// … the one-time endpoint upload/download size (`P·n` elements),
    pub endpoint_bytes: u64,
    /// … and what the host loop downloads for the *same* correction
    /// (values + Jacobians, every iteration).
    pub host_loop_d2h: u64,
}

impl NewtonSweep {
    /// All model-side acceptance bars of `repro newton`, with the
    /// strings the binary prints.
    pub fn checks(&self) -> [(&'static str, bool); 4] {
        [
            (
                "identity check (DeviceResident endpoints bit-identical to Host, every scheduler x backend)",
                self.endpoints_identical,
            ),
            (
                "transfer check (resident solve downloads fewer modeled bytes on every pair)",
                self.d2h_reduced,
            ),
            (
                "flag check (per-iteration download is exactly the O(P) convergence-flag vector)",
                self.expected_flag_bytes > 0 && self.flag_bytes == self.expected_flag_bytes,
            ),
            (
                "loop check (fused total download undercuts the host loop's per-iteration traffic)",
                self.endpoint_bytes + self.flag_bytes < self.host_loop_d2h,
            ),
        ]
    }

    /// All bars in one predicate (what CI gates on).
    pub fn passes(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }
}

/// The corrector-mode table behind `repro newton`: the `solve_sweep`
/// request (36 total-degree paths of a dim-2 system) through every
/// scheduler on the batched-GPU and point-sharded-cluster backends,
/// once with [`polygpu_core::CorrectorMode::Host`] and once with
/// [`polygpu_core::CorrectorMode::DeviceResident`], plus a micro-audit
/// of one fused
/// `try_correct_batch` call that reconciles its modeled download
/// byte-for-byte against the driver's reported flag charges. Fully
/// modeled, hence deterministic.
pub fn newton_sweep() -> NewtonSweep {
    use polygpu_cluster::Sharded;
    use polygpu_core::engine::{AnyEvaluator, EngineBuilder};
    use polygpu_core::{
        drive_correct, BatchError, CorrectCharge, CorrectOps, CorrectParams, CorrectorMode,
        IdentityCombine, FLAG_BYTES,
    };
    use polygpu_homotopy::prelude::*;
    use polygpu_polysys::SystemEval;

    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let sys = random_system::<f64>(&params);
    let start = polygpu_homotopy::start::StartSystem::uniform(2, 6); // 36 paths
    let req = SolveRequest::new(sys.clone())
        .with_start(start)
        .with_gamma_seed(11);

    let per_device = 2usize;
    let backends: Vec<(&'static str, EngineBuilder<Sharded>)> = vec![
        (
            "gpu-batch",
            polygpu_cluster::engine_builder().backend(polygpu_core::Backend::GpuBatch {
                capacity: 4 * per_device,
            }),
        ),
        (
            "cluster",
            polygpu_cluster::engine_builder()
                .backend(polygpu_core::Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050(); 4],
                    shard: polygpu_core::engine::ClusterPolicy::default().into(),
                })
                .per_device_capacity(per_device),
        ),
    ];
    let schedulers = [
        SchedulerKind::PerPath,
        SchedulerKind::Lockstep,
        SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        },
    ];

    let mut rows = Vec::new();
    let mut endpoints_identical = true;
    let mut d2h_reduced = true;
    for (name, builder) in &backends {
        for scheduler in schedulers {
            let mut pair: Vec<(Vec<PathEndpoint>, u64)> = Vec::new();
            for (mode, label) in [
                (CorrectorMode::Host, "host"),
                (CorrectorMode::DeviceResident, "resident"),
            ] {
                let report = Solver::from_builder(builder.clone())
                    .solve(&req.clone().with_scheduler(scheduler).with_corrector(mode))
                    .expect("sweep systems fit every backend");
                rows.push(NewtonRow {
                    scheduler: scheduler.name(),
                    backend: name,
                    mode: label,
                    successes: report.successes(),
                    paths: report.paths.len(),
                    wall_seconds: report.engine.wall_clock_seconds(),
                    h2d_bytes: report.engine.h2d_bytes,
                    d2h_bytes: report.engine.d2h_bytes,
                    corrector_iterations: report.engine.corrector_iterations,
                    factor_seconds: report.engine.factor_seconds,
                    backsub_seconds: report.engine.backsub_seconds,
                });
                pair.push((
                    report.paths.iter().map(|p| p.endpoint.clone()).collect(),
                    report.engine.d2h_bytes,
                ));
            }
            endpoints_identical &= pair[0].0 == pair[1].0;
            d2h_reduced &= pair[1].1 < pair[0].1;
        }
    }

    // Micro-audit: one fused correction of P points, reconciled
    // byte-for-byte against the charges the shared driver reports.
    // The fused call uploads the iterates once and downloads them
    // once (the same `P·n` elements each way), so everything the
    // engine downloaded beyond its upload size is per-iteration
    // traffic — which must equal the flag words the driver charged.
    struct ChargeRecorder<'a> {
        engine: &'a mut dyn AnyEvaluator<f64>,
        flag_bytes: u64,
    }
    impl CorrectOps<f64> for ChargeRecorder<'_> {
        fn eval(
            &mut self,
            points: &[Vec<C64>],
            _indices: &[usize],
        ) -> Result<Vec<SystemEval<f64>>, BatchError> {
            self.engine.try_evaluate_batch(points)
        }
        fn charge(&mut self, ev: CorrectCharge) -> Result<(), BatchError> {
            if let CorrectCharge::Flags { count } = ev {
                self.flag_bytes += (count * FLAG_BYTES) as u64;
            }
            Ok(())
        }
    }
    /// The host loop on the same engine: every round downloads values
    /// and Jacobians through the ordinary batched evaluation path.
    struct HostLoop<'a>(&'a mut dyn AnyEvaluator<f64>);
    impl CorrectOps<f64> for HostLoop<'_> {
        fn eval(
            &mut self,
            points: &[Vec<C64>],
            _indices: &[usize],
        ) -> Result<Vec<SystemEval<f64>>, BatchError> {
            self.0.try_evaluate_batch(points)
        }
    }

    let probe_points: Vec<Vec<C64>> = random_points::<f64>(2, 8, 31);
    let cparams = CorrectParams::default();

    let mut cpu = polygpu_cluster::engine_builder()
        .backend(polygpu_core::Backend::CpuReference)
        .build(&sys)
        .expect("cpu reference always builds");
    let mut recorder = ChargeRecorder {
        engine: cpu.as_mut(),
        flag_bytes: 0,
    };
    let mut ref_pts = probe_points.clone();
    drive_correct(&mut recorder, &mut IdentityCombine, &mut ref_pts, &cparams)
        .expect("host replay of the probe correction succeeds");
    let expected_flag_bytes = recorder.flag_bytes;

    let mut fused = backends[0].1.clone().build(&sys).expect("probe fits");
    fused.reset_engine_stats();
    let mut fused_pts = probe_points.clone();
    fused
        .try_correct_batch(&mut fused_pts, &mut IdentityCombine, &cparams)
        .expect("fused probe correction succeeds");
    let fused_stats = fused.engine_stats();
    let endpoint_bytes = fused_stats.h2d_bytes;
    let flag_bytes = fused_stats.d2h_bytes.saturating_sub(endpoint_bytes);

    let mut host = backends[0].1.clone().build(&sys).expect("probe fits");
    host.reset_engine_stats();
    let mut host_pts = probe_points.clone();
    drive_correct(
        &mut HostLoop(host.as_mut()),
        &mut IdentityCombine,
        &mut host_pts,
        &cparams,
    )
    .expect("host-loop probe correction succeeds");
    let host_loop_d2h = host.engine_stats().d2h_bytes;
    endpoints_identical &= fused_pts == host_pts && fused_pts == ref_pts;

    NewtonSweep {
        rows,
        endpoints_identical,
        d2h_reduced,
        points: probe_points.len(),
        flag_bytes,
        expected_flag_bytes,
        endpoint_bytes,
        host_loop_d2h,
    }
}

/// Render the corrector-mode sweep in markdown.
pub fn format_newton_sweep(sweep: &NewtonSweep) -> String {
    let mut s = String::new();
    s.push_str(
        "### Device-resident Newton — corrector mode x scheduler x backend (36 paths, dim-2 system)\n\n",
    );
    s.push_str(
        "| scheduler | backend | corrector | paths ok | modeled wall | H2D | D2H | fused iters | factor+backsub |\n",
    );
    s.push_str(
        "|-----------|---------|-----------|---------:|-------------:|----:|----:|------------:|---------------:|\n",
    );
    for r in &sweep.rows {
        let kernels = if r.factor_seconds > 0.0 {
            format!("{:.2} us", (r.factor_seconds + r.backsub_seconds) * 1e6)
        } else {
            "-".to_string()
        };
        s.push_str(&format!(
            "| {} | {} | {} | {}/{} | {:.1} us | {} KiB | {} KiB | {} | {} |\n",
            r.scheduler,
            r.backend,
            r.mode,
            r.successes,
            r.paths,
            r.wall_seconds * 1e6,
            r.h2d_bytes / 1024,
            r.d2h_bytes / 1024,
            r.corrector_iterations,
            kernels,
        ));
    }
    s.push_str(&format!(
        "\nfused probe ({} points): {} B endpoint upload+download, {} B flag downloads \
         (driver charged {} B); the host loop moves {} B D2H for the same correction\n",
        sweep.points,
        sweep.endpoint_bytes,
        sweep.flag_bytes,
        sweep.expected_flag_bytes,
        sweep.host_loop_d2h
    ));
    s
}

/// One row of the system-sharding sweep.
#[derive(Debug, Clone)]
pub struct SyshardRow {
    /// Device count.
    pub d: usize,
    /// Whether the over-budget system built at this `D`.
    pub built: bool,
    /// Constant bytes resident across the fleet (0 when the build was
    /// rejected).
    pub constant_bytes: usize,
    /// Modeled wall seconds of the evaluation batch.
    pub wall_seconds: f64,
    /// Share of the wall clock spent on the inter-device gather.
    pub gather_fraction: f64,
    /// Modeled evaluations per second.
    pub evals_per_sec: f64,
}

/// The system-sharding sweep plus its deterministic acceptance checks.
#[derive(Debug, Clone)]
pub struct SyshardSweep {
    /// The over-budget (2,048-monomial, k = 16) system across
    /// D ∈ {1, 2, 4}.
    pub rows: Vec<SyshardRow>,
    /// `D = 1` (single device) must reject the over-budget encoding.
    pub over_budget_rejected_at_d1: bool,
    /// Row-sharded results at D ∈ {2, 4} bit-identical to the CPU
    /// reference.
    pub identical_to_cpu: bool,
    /// Compute-bound 1,536-monomial shape: row-sharded D = 4 wall
    /// clock vs D = 1 (same points, same system — fits one device).
    pub d1_wall_seconds: f64,
    pub d4_wall_seconds: f64,
    /// Gather share of the D = 4 compute-bound run.
    pub d4_gather_fraction: f64,
}

impl SyshardSweep {
    /// The named model-side acceptance bars of `repro syshard` — the
    /// single source of truth behind both [`SyshardSweep::passes`] and
    /// the PASS/FAIL lines the `repro` binary prints.
    pub fn checks(&self) -> [(&'static str, bool); 4] {
        [
            (
                "budget check (2,048-monomial k = 16 encoding rejected by one device)",
                self.over_budget_rejected_at_d1,
            ),
            (
                "build check (the same system builds row-sharded at D = 2 and D = 4)",
                self.rows.iter().filter(|r| r.built).count() == 2,
            ),
            (
                "identity check (row-sharded results bit-identical to the CPU reference)",
                self.identical_to_cpu,
            ),
            (
                "scaling check (row-sharded D = 4 beats D = 1 on the compute-bound shape)",
                self.d4_wall_seconds < self.d1_wall_seconds,
            ),
        ]
    }

    /// All acceptance bars at once: the wall stands at D = 1, falls at
    /// D ∈ {2, 4} bit-identically, and D = 4 beats D = 1 on the
    /// compute-bound shape despite the gather.
    pub fn passes(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }

    /// Speedup of row-sharded D = 4 over D = 1 on the compute-bound
    /// shape.
    pub fn d4_speedup(&self) -> f64 {
        if self.d4_wall_seconds > 0.0 {
            self.d1_wall_seconds / self.d4_wall_seconds
        } else {
            0.0
        }
    }
}

/// The system-sharding table behind `repro syshard`: the paper's
/// over-budget 2,048-monomial k = 16 system (65,536 support bytes
/// against a 65,280-byte constant budget) is rejected by one device,
/// then built row-sharded over D ∈ {2, 4} and checked bit-identical to
/// the CPU reference; a compute-bound 1,536-monomial shape that *does*
/// fit one device shows the wall-clock win of spreading the equations.
/// Fully modeled, hence deterministic.
pub fn syshard_sweep() -> SyshardSweep {
    use polygpu_cluster::{RowClusterOptions, RowShardedEvaluator};

    // Part 1: the constant-memory wall, lifted D-fold.
    let over = random_system::<f64>(&BenchmarkParams {
        n: 32,
        m: 64,
        k: 16,
        d: 10,
        seed: 3,
    });
    let p_small = 4usize;
    let points = random_points::<f64>(32, p_small, 21);
    let mut reference = AdEvaluator::new(over.clone()).expect("CPU takes any uniform system");
    let want = reference.evaluate_batch(&points);
    let mut rows = Vec::new();
    let mut over_budget_rejected_at_d1 = false;
    let mut identical_to_cpu = true;
    for d in [1usize, 2, 4] {
        let specs = vec![DeviceSpec::tesla_c2050(); d];
        match RowShardedEvaluator::new(&over, &specs, p_small, RowClusterOptions::default()) {
            Err(_) => {
                if d == 1 {
                    over_budget_rejected_at_d1 = true;
                }
                rows.push(SyshardRow {
                    d,
                    built: false,
                    constant_bytes: 0,
                    wall_seconds: 0.0,
                    gather_fraction: 0.0,
                    evals_per_sec: 0.0,
                });
            }
            Ok(mut cluster) => {
                let got = cluster.evaluate_batch(&points);
                for (g, w) in got.iter().zip(&want) {
                    identical_to_cpu &=
                        g.values == w.values && g.jacobian.as_slice() == w.jacobian.as_slice();
                }
                let s = cluster.cluster_stats();
                let caps = polygpu_core::AnyEvaluator::caps(&cluster);
                rows.push(SyshardRow {
                    d,
                    built: true,
                    constant_bytes: caps.constant_bytes,
                    wall_seconds: s.wall_seconds,
                    gather_fraction: s.gather_fraction(),
                    evals_per_sec: s.throughput_evals_per_sec(),
                });
            }
        }
    }

    // Part 2: the compute-bound wall-clock win (1,536 monomials fits
    // one device, so D = 1 is a fair baseline).
    let fits = random_system::<f64>(&BenchmarkParams {
        n: 32,
        m: 48,
        k: 16,
        d: 10,
        seed: 9,
    });
    let p = 32usize;
    let big_points = random_points::<f64>(32, p, 13);
    let wall = |d: usize| -> (f64, f64) {
        let specs = vec![DeviceSpec::tesla_c2050(); d];
        let mut cluster = RowShardedEvaluator::new(&fits, &specs, p, RowClusterOptions::default())
            .expect("1,536 monomials fit one device");
        let _ = cluster.evaluate_batch(&big_points);
        let s = cluster.cluster_stats();
        (s.wall_seconds, s.gather_fraction())
    };
    let (d1_wall_seconds, _) = wall(1);
    let (d4_wall_seconds, d4_gather_fraction) = wall(4);

    SyshardSweep {
        rows,
        over_budget_rejected_at_d1,
        identical_to_cpu,
        d1_wall_seconds,
        d4_wall_seconds,
        d4_gather_fraction,
    }
}

/// Render the system-sharding sweep in markdown.
pub fn format_syshard_sweep(sweep: &SyshardSweep) -> String {
    let mut s = String::new();
    s.push_str(
        "### System sharding — 2,048 monomials x k = 16 (65,536 support bytes, budget 65,280/device)\n\n",
    );
    s.push_str("| D | build | constant bytes (fleet) | modeled wall | gather share | evals/s |\n");
    s.push_str("|--:|-------|-----------------------:|-------------:|-------------:|--------:|\n");
    for r in &sweep.rows {
        if r.built {
            s.push_str(&format!(
                "| {} | ok | {} | {:.1} us | {:.0}% | {:.0} |\n",
                r.d,
                r.constant_bytes,
                r.wall_seconds * 1e6,
                r.gather_fraction * 100.0,
                r.evals_per_sec
            ));
        } else {
            s.push_str(&format!(
                "| {} | REJECTED (constant overflow — the paper's wall) | - | - | - | - |\n",
                r.d
            ));
        }
    }
    s.push_str(&format!(
        "\ncompute-bound 1,536-monomial shape, P = 32: D = 1 wall {:.1} us, \
         row-sharded D = 4 wall {:.1} us ({:.2}x, gather share {:.0}%)\n",
        sweep.d1_wall_seconds * 1e6,
        sweep.d4_wall_seconds * 1e6,
        sweep.d4_speedup(),
        sweep.d4_gather_fraction * 100.0
    ));
    s
}

/// One chaos run: a full solve under a seeded fault plan.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Shard mode of the cluster backend ("points" or "rows").
    pub shard: &'static str,
    /// Device count.
    pub d: usize,
    /// Fault-plan seed.
    pub seed: u64,
    /// "clean" (no fault struck), "recovered" (faults struck, solve
    /// finished), or "degraded"/"fault" (typed error surfaced).
    pub outcome: &'static str,
    /// Faults observed (engine injections + scheduler-level).
    pub faults: u64,
    /// Retries issued by engine-level recovery.
    pub retries: u64,
    /// Shards/loads re-planned onto surviving devices.
    pub failovers: u64,
    /// Share of the modeled wall clock spent detecting and recovering.
    pub recovery_share: f64,
    /// Endpoints bit-identical to the fault-free run (only meaningful
    /// when the solve finished).
    pub identical: bool,
}

/// The chaos sweep plus its deterministic acceptance checks.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    pub rows: Vec<ChaosRow>,
    /// Total faults observed across the sweep.
    pub faults_observed: u64,
    /// Runs that finished despite faults striking.
    pub recovered_runs: usize,
    /// Runs ending in a typed error (degraded fleet or surfaced
    /// fault) — allowed, never a panic.
    pub typed_failures: usize,
    /// Every finished run's endpoints bit-identical to its fault-free
    /// reference.
    pub all_identical: bool,
    /// Worst recovery share of any finished run.
    pub max_recovery_share: f64,
}

impl ChaosSweep {
    /// The named acceptance bars of `repro chaos` — the single source
    /// of truth behind both [`ChaosSweep::passes`] and the PASS/FAIL
    /// lines the `repro` binary prints.
    pub fn checks(&self) -> [(&'static str, bool); 4] {
        [
            (
                "injection check (the sweep actually struck faults)",
                self.faults_observed > 0,
            ),
            (
                "recovery check (some runs finished despite faults)",
                self.recovered_runs > 0,
            ),
            (
                "identity check (every recovered run bit-identical to the fault-free run)",
                self.all_identical,
            ),
            (
                "overhead check (recovery never dominates the wall clock)",
                self.max_recovery_share < 0.9,
            ),
        ]
    }

    /// All acceptance bars at once: faults strike, solves survive them,
    /// survivors are bit-identical, and recovery cost stays bounded.
    pub fn passes(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }
}

/// The chaos table behind `repro chaos`: one solve (16 total-degree
/// paths of a dim-4 system, queue scheduler) per
/// {points, rows} × D ∈ {2, 4} × fault seed, every run under a seeded
/// [`FaultPlan`]. Cluster-internal recovery (retry → failover) absorbs
/// most strikes; whatever reaches the scheduler is retried with
/// modeled backoff; a run that outlives recovery must end in a *typed*
/// error. The headline invariant: every run that finishes produces
/// endpoints **bit-identical** to its fault-free reference. Fully
/// modeled, hence deterministic — same seeds, same table, forever.
pub fn chaos_sweep() -> ChaosSweep {
    use polygpu_cluster::Sharded;
    use polygpu_core::engine::{ClusterPolicy, EngineBuilder, SystemShardPolicy};
    use polygpu_core::BatchError;
    use polygpu_homotopy::prelude::*;

    let sys = random_system::<f64>(&BenchmarkParams {
        n: 4,
        m: 4,
        k: 2,
        d: 2,
        seed: 17,
    });
    let start = polygpu_homotopy::start::StartSystem::uniform(4, 2); // 16 paths
    let req = SolveRequest::new(sys).with_start(start).with_gamma_seed(29);
    let per_device = 2usize;
    let builder = |shard: &'static str, d: usize| -> EngineBuilder<Sharded> {
        let shard = match shard {
            "points" => ClusterPolicy::default().into(),
            _ => SystemShardPolicy::Contiguous.into(),
        };
        polygpu_cluster::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); d],
                shard,
            })
            .per_device_capacity(per_device)
    };

    let mut rows = Vec::new();
    let mut faults_observed = 0u64;
    let mut recovered_runs = 0usize;
    let mut typed_failures = 0usize;
    let mut all_identical = true;
    let mut max_recovery_share: f64 = 0.0;
    for shard in ["points", "rows"] {
        for d in [2usize, 4] {
            let clean = Solver::from_builder(builder(shard, d))
                .solve(&req)
                .expect("the fault-free reference must solve");
            let want: Vec<PathEndpoint> = clean.paths.iter().map(|p| p.endpoint.clone()).collect();
            for seed in 0..3u64 {
                let solver =
                    Solver::from_builder(builder(shard, d).fault_plan(FaultPlan::new(seed, 300)));
                let row = match solver.solve(&req) {
                    Ok(report) => {
                        let got: Vec<PathEndpoint> =
                            report.paths.iter().map(|p| p.endpoint.clone()).collect();
                        let identical = got == want;
                        all_identical &= identical;
                        let faults = report.fault.faults + report.fault.engine.faults;
                        faults_observed += faults;
                        if faults > 0 {
                            recovered_runs += 1;
                        }
                        let share = report
                            .fault
                            .engine
                            .recovery_share(report.engine.wall_clock_seconds());
                        max_recovery_share = max_recovery_share.max(share);
                        ChaosRow {
                            shard,
                            d,
                            seed,
                            outcome: if faults > 0 { "recovered" } else { "clean" },
                            faults,
                            retries: report.fault.engine.retries,
                            failovers: report.fault.engine.failovers,
                            recovery_share: share,
                            identical,
                        }
                    }
                    Err(SolveError::Fault(e)) => {
                        typed_failures += 1;
                        faults_observed += 1;
                        ChaosRow {
                            shard,
                            d,
                            seed,
                            outcome: if matches!(e, BatchError::DegradedFleet { .. }) {
                                "degraded"
                            } else {
                                "fault"
                            },
                            faults: 1,
                            retries: 0,
                            failovers: 0,
                            recovery_share: 0.0,
                            identical: false,
                        }
                    }
                    Err(e) => panic!("chaos must fail typed, got: {e}"),
                };
                rows.push(row);
            }
        }
    }

    ChaosSweep {
        rows,
        faults_observed,
        recovered_runs,
        typed_failures,
        all_identical,
        max_recovery_share,
    }
}

/// Render the chaos sweep in markdown.
pub fn format_chaos_sweep(sweep: &ChaosSweep) -> String {
    let mut s = String::new();
    s.push_str(
        "### Chaos — solves under seeded fault injection (16 paths, dim-4 system, 300 ppm op fault rate)\n\n",
    );
    s.push_str("| shard | D | seed | outcome | faults | retries | failovers | recovery share | bit-identical |\n");
    s.push_str("|-------|--:|-----:|---------|-------:|--------:|----------:|---------------:|---------------|\n");
    for r in &sweep.rows {
        let identical = match r.outcome {
            "clean" | "recovered" => {
                if r.identical {
                    "yes"
                } else {
                    "NO"
                }
            }
            _ => "-",
        };
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.0}% | {} |\n",
            r.shard,
            r.d,
            r.seed,
            r.outcome,
            r.faults,
            r.retries,
            r.failovers,
            r.recovery_share * 100.0,
            identical
        ));
    }
    s.push_str(&format!(
        "\n{} faults across {} runs: {} recovered, {} typed failures, worst recovery share {:.0}%\n",
        sweep.faults_observed,
        sweep.rows.len(),
        sweep.recovered_runs,
        sweep.typed_failures,
        sweep.max_recovery_share * 100.0
    ));
    s
}

/// One traced solve of the trace sweep.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Shard mode of the cluster backend ("points" or "rows").
    pub shard: &'static str,
    /// Device count.
    pub d: usize,
    /// Fault-plan seed (`None` = fault-free run).
    pub seed: Option<u64>,
    /// "clean", "recovered", or "fault" (typed error surfaced).
    pub outcome: &'static str,
    /// Spans recorded by the solve.
    pub spans: usize,
    /// Size of the exported Chrome-trace JSON in bytes.
    pub json_bytes: usize,
    /// Rerunning with the same seed produced byte-identical JSON.
    pub deterministic: bool,
    /// Span durations reconcile with the report's modeled stats.
    pub reconciled: bool,
    /// Fault-lifecycle spans (retry/backoff/detect/reencode/fallback).
    pub fault_spans: usize,
}

/// The trace sweep plus its deterministic acceptance checks.
#[derive(Debug, Clone)]
pub struct TraceSweep {
    pub rows: Vec<TraceRow>,
    /// Every run's exported trace byte-identical across two runs.
    pub all_deterministic: bool,
    /// Every finished run's span tree sums to its modeled wall clock.
    pub all_reconciled: bool,
    /// Installing a no-op tracer left endpoints, modeled timings, and
    /// telemetry bit-identical to the untraced solve.
    pub noop_identical: bool,
    /// Runs that finished despite faults striking.
    pub faulted_runs: usize,
    /// Every faulted-but-finished run recorded fault-lifecycle spans.
    pub fault_spans_present: bool,
    /// Rendered [`TelemetrySnapshot`](polygpu_obs::TelemetrySnapshot)
    /// of one clean traced run, for display.
    pub sample_telemetry: String,
}

impl TraceSweep {
    /// The named acceptance bars of `repro trace` — the single source
    /// of truth behind both [`TraceSweep::passes`] and the PASS/FAIL
    /// lines the `repro` binary prints.
    pub fn checks(&self) -> [(&'static str, bool); 4] {
        [
            (
                "determinism check (same seed ⇒ byte-identical Chrome trace)",
                self.all_deterministic,
            ),
            (
                "reconciliation check (span tree sums to the modeled wall clock)",
                self.all_reconciled,
            ),
            (
                "no-op check (an installed no-op tracer changes nothing)",
                self.noop_identical,
            ),
            (
                "fault-span check (every recovered run shows fault-lifecycle spans)",
                self.faulted_runs > 0 && self.fault_spans_present,
            ),
        ]
    }

    /// All acceptance bars at once: traces replay byte-for-byte, spans
    /// reconcile with the stats structs, tracing never perturbs the
    /// solve, and chaos leaves a visible fault trail.
    pub fn passes(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }
}

/// The trace table behind `repro trace`: the chaos-sweep workload (16
/// total-degree paths of a dim-4 system, queue scheduler, cluster
/// backends) rerun with a [`CollectingTracer`](polygpu_obs::CollectingTracer)
/// installed. Each {shard, D, fault seed} cell is solved **twice** and
/// the exported Chrome-trace JSON compared byte-for-byte — spans are
/// timestamped by the simulated clock, so the trace is as deterministic
/// as the solve itself. Finished runs additionally reconcile the span
/// tree against the report (root `solve` span == modeled wall clock,
/// cluster `batch` spans sum to the engine wall), and faulted runs must
/// leave retry/backoff/detect spans behind. Fully modeled, hence
/// deterministic — same seeds, same table, forever.
pub fn trace_sweep() -> TraceSweep {
    use polygpu_cluster::Sharded;
    use polygpu_core::engine::{ClusterPolicy, EngineBuilder, SystemShardPolicy};
    use polygpu_homotopy::prelude::*;
    use polygpu_obs::{chrome_trace_json, CollectingTracer, NoopTracer, SpanKind, Track};
    use std::sync::Arc;

    let sys = random_system::<f64>(&BenchmarkParams {
        n: 4,
        m: 4,
        k: 2,
        d: 2,
        seed: 17,
    });
    let start = polygpu_homotopy::start::StartSystem::uniform(4, 2); // 16 paths
    let req = SolveRequest::new(sys).with_start(start).with_gamma_seed(29);
    let per_device = 2usize;
    let builder = |shard: &'static str, d: usize| -> EngineBuilder<Sharded> {
        let shard = match shard {
            "points" => ClusterPolicy::default().into(),
            _ => SystemShardPolicy::Contiguous.into(),
        };
        polygpu_cluster::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); d],
                shard,
            })
            .per_device_capacity(per_device)
    };
    const FAULT_KINDS: [SpanKind; 5] = [
        SpanKind::Retry,
        SpanKind::Backoff,
        SpanKind::Detect,
        SpanKind::Reencode,
        SpanKind::Fallback,
    ];
    let rel_eq = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-30);

    let mut rows = Vec::new();
    let mut all_deterministic = true;
    let mut all_reconciled = true;
    let mut noop_identical = true;
    let mut faulted_runs = 0usize;
    let mut fault_spans_present = true;
    let mut sample_telemetry = String::new();
    // The headline cell from the acceptance criteria (row-sharded D = 4
    // under chaos) plus the point-sharded D = 2 counterpart.
    for (shard, d) in [("points", 2usize), ("rows", 4)] {
        // No-op bit-identity: the untraced reference vs. a solve with a
        // no-op tracer installed. Nothing — endpoints, modeled wall
        // clock, telemetry — may move.
        let plain = Solver::from_builder(builder(shard, d))
            .solve(&req)
            .expect("the fault-free reference must solve");
        let noop = Solver::from_builder(builder(shard, d))
            .solve(&req.clone().with_tracer(Arc::new(NoopTracer)))
            .expect("the no-op-traced solve must behave like the untraced one");
        noop_identical &= plain
            .paths
            .iter()
            .zip(&noop.paths)
            .all(|(a, b)| a.endpoint == b.endpoint)
            && plain.modeled_wall_seconds() == noop.modeled_wall_seconds()
            && plain.telemetry == noop.telemetry;

        for seed in [None, Some(0u64), Some(1), Some(2)] {
            let run = || {
                let b = match seed {
                    Some(s) => builder(shard, d).fault_plan(FaultPlan::new(s, 300)),
                    None => builder(shard, d),
                };
                let tracer = Arc::new(CollectingTracer::new());
                let res = Solver::from_builder(b).solve(&req.clone().with_tracer(tracer.clone()));
                (res, chrome_trace_json(&tracer.spans()), tracer)
            };
            let (res, json, tracer) = run();
            let (_, json2, _) = run();
            let deterministic = json == json2;
            all_deterministic &= deterministic;
            let spans = tracer.spans();
            let row = match res {
                Ok(report) => {
                    // Root `solve` span covers the whole modeled solve;
                    // cluster `batch` spans tile the engine wall clock.
                    let root_ok = spans
                        .iter()
                        .find(|s| s.kind == SpanKind::Solve)
                        .is_some_and(|s| {
                            s.start == 0.0 && rel_eq(s.dur, report.modeled_wall_seconds())
                        });
                    let batch_sum: f64 = spans
                        .iter()
                        .filter(|s| s.kind == SpanKind::Batch && s.track == Track::Cluster)
                        .map(|s| s.dur)
                        .sum();
                    let reconciled =
                        root_ok && rel_eq(batch_sum, report.engine.wall_clock_seconds());
                    all_reconciled &= reconciled;
                    let faults = report.fault.faults + report.fault.engine.faults;
                    let fault_spans = spans
                        .iter()
                        .filter(|s| FAULT_KINDS.contains(&s.kind))
                        .count();
                    if faults > 0 {
                        faulted_runs += 1;
                        fault_spans_present &= fault_spans > 0;
                    }
                    if seed.is_none() && sample_telemetry.is_empty() {
                        sample_telemetry = report.telemetry.to_string();
                    }
                    TraceRow {
                        shard,
                        d,
                        seed,
                        outcome: if faults > 0 { "recovered" } else { "clean" },
                        spans: spans.len(),
                        json_bytes: json.len(),
                        deterministic,
                        reconciled,
                        fault_spans,
                    }
                }
                Err(SolveError::Fault(_)) => {
                    // A surfaced fault is a legal chaos outcome; the
                    // partial trace must still replay byte-for-byte.
                    let fault_spans = spans
                        .iter()
                        .filter(|s| FAULT_KINDS.contains(&s.kind))
                        .count();
                    TraceRow {
                        shard,
                        d,
                        seed,
                        outcome: "fault",
                        spans: spans.len(),
                        json_bytes: json.len(),
                        deterministic,
                        reconciled: true,
                        fault_spans,
                    }
                }
                Err(e) => panic!("the trace sweep must fail typed, got: {e}"),
            };
            rows.push(row);
        }
    }

    TraceSweep {
        rows,
        all_deterministic,
        all_reconciled,
        noop_identical,
        faulted_runs,
        fault_spans_present,
        sample_telemetry,
    }
}

/// Render the trace sweep in markdown.
pub fn format_trace_sweep(sweep: &TraceSweep) -> String {
    let mut s = String::new();
    s.push_str(
        "### Trace — deterministic spans over the modeled timeline (16 paths, dim-4 system)\n\n",
    );
    s.push_str(
        "| shard | D | fault seed | outcome | spans | trace bytes | byte-identical | reconciled | fault spans |\n",
    );
    s.push_str(
        "|-------|--:|-----------:|---------|------:|------------:|----------------|------------|------------:|\n",
    );
    for r in &sweep.rows {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.shard,
            r.d,
            r.seed.map_or("-".to_string(), |v| v.to_string()),
            r.outcome,
            r.spans,
            r.json_bytes,
            if r.deterministic { "yes" } else { "NO" },
            if r.reconciled { "yes" } else { "NO" },
            r.fault_spans
        ));
    }
    s.push_str(&format!(
        "\n{} runs, {} finished under faults; no-op tracer bit-identity: {}\n",
        sweep.rows.len(),
        sweep.faulted_runs,
        if sweep.noop_identical {
            "holds"
        } else {
            "BROKEN"
        }
    ));
    s
}

/// One tenant's accounting in the serve sweep's contention run.
#[derive(Debug, Clone)]
pub struct ServeTenantRow {
    /// Tenant display name.
    pub tenant: String,
    /// Fair-queue weight.
    pub weight: u32,
    /// Jobs served.
    pub jobs: u64,
    /// Paths tracked across those jobs.
    pub paths: u64,
    /// Jobs served from the encoded-system cache.
    pub cache_hits: u64,
    /// Mean modeled queue wait per job.
    pub mean_wait_seconds: f64,
}

/// One chaos cell of the serve sweep: a row-sharded fleet under a
/// seeded fault plan, serving a short job stream twice.
#[derive(Debug, Clone)]
pub struct ServeChaosRow {
    /// Fault-plan seed.
    pub seed: u64,
    /// Jobs accounted for in the report (admitted jobs never vanish).
    pub jobs: usize,
    /// Jobs that failed typed (degraded fleet or surfaced fault).
    pub failed: usize,
    /// Devices the fleet lost to failover during the run.
    pub devices_lost: usize,
    /// The degraded-fleet flag of the report.
    pub degraded: bool,
    /// Both runs of this seed rendered byte-identical reports.
    pub deterministic: bool,
}

/// The multi-tenant serve sweep plus its deterministic acceptance
/// checks.
#[derive(Debug, Clone)]
pub struct ServeSweep {
    /// Contention-run tenants, sorted by descending weight.
    pub tenants: Vec<ServeTenantRow>,
    /// Adjacent tenant changes in the service order — WFQ interleaves
    /// the backlog instead of draining tenants in blocks.
    pub interleave_switches: usize,
    /// Share of the service clock spent solving (vs. admission).
    pub occupancy: f64,
    /// Submissions bounced off the per-tenant in-flight budget.
    pub rejected_overloaded: u64,
    /// Encoded-system cache counters of the contention run.
    pub cache: polygpu_serve::CacheStats,
    /// Mean admission cost of a cache miss (encode + upload + probe)
    /// on an alternating two-target stream.
    pub miss_admission_seconds: f64,
    /// Mean admission cost of a cache hit on the same stream — a real
    /// command-queue switch, the hit's worst case.
    pub hit_admission_seconds: f64,
    /// `mean miss / mean hit` — the residency amortization factor.
    pub amortization: f64,
    /// The contention run rendered byte-identical across two runs.
    pub deterministic: bool,
    /// Chaos cells, one per fault seed.
    pub chaos: Vec<ServeChaosRow>,
    /// Every chaos run accounted for every admitted job.
    pub chaos_all_accounted: bool,
    /// At least one seed degraded the fleet or failed jobs typed.
    pub chaos_degraded_seen: bool,
    /// Every chaos seed replayed byte-identically.
    pub chaos_deterministic: bool,
}

impl ServeSweep {
    /// The named acceptance bars of `repro serve` — the single source
    /// of truth behind both [`ServeSweep::passes`] and the PASS/FAIL
    /// lines the `repro` binary prints.
    pub fn checks(&self) -> [(&'static str, bool); 5] {
        let waits_ordered = self
            .tenants
            .windows(2)
            .all(|w| w[0].mean_wait_seconds <= w[1].mean_wait_seconds);
        [
            (
                "fairness check (WFQ interleaves tenants; mean wait ordered by weight)",
                self.interleave_switches >= 6 && waits_ordered,
            ),
            (
                "occupancy check (contended backlog keeps the fleet solving > 0.8 of the clock)",
                self.occupancy > 0.8,
            ),
            (
                "amortization check (repeat admission at least 5x cheaper via the cache)",
                self.amortization >= 5.0 && self.cache.hits > self.cache.misses,
            ),
            (
                "degradation check (chaos loses devices and fails jobs typed, never the service)",
                self.chaos_all_accounted && self.chaos_degraded_seen,
            ),
            (
                "determinism check (same submissions => byte-identical service reports)",
                self.deterministic && self.chaos_deterministic,
            ),
        ]
    }

    /// All acceptance bars at once.
    pub fn passes(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }
}

/// The multi-tenant table behind `repro serve`.
///
/// **Contention run** — three tenants (weights 1/2/4, one shared
/// target) each submit 6 four-path jobs into a single-device batched
/// fleet, plus one over-budget submission that must bounce typed. The
/// weighted fair queue drains the backlog interleaved, the
/// encoded-system cache serves 17 of the 18 admissions from residency,
/// and the whole report replays byte-for-byte.
///
/// **Chaos cells** — a row-sharded two-device fleet under seeded fault
/// plans serves a short mixed stream; jobs may fail typed and the
/// fleet may shrink, but every admitted job is accounted for and the
/// report stays deterministic. Fully modeled, hence deterministic —
/// same seeds, same table, forever.
pub fn serve_sweep() -> ServeSweep {
    use polygpu_core::engine::{Engine, SystemShardPolicy};
    use polygpu_homotopy::solve::{SolveRequest, StartSelection};
    use polygpu_serve::{Priority, ServeError, SolveService, TenantSpec};

    let target = random_system::<f64>(&BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 17,
    });
    let request = || SolveRequest::new(target.clone()).with_starts(StartSelection::FirstN(4));

    // Contention: 18 jobs, round-robin arrivals, one shared target.
    let contend = || {
        let builder = Engine::builder().backend(polygpu_core::Backend::GpuBatch { capacity: 4 });
        let mut svc = SolveService::new(&builder).expect("batched backend serves");
        let tenants = [
            svc.register(
                TenantSpec::new("bronze")
                    .with_weight(1)
                    .with_max_in_flight(6),
            ),
            svc.register(
                TenantSpec::new("silver")
                    .with_weight(2)
                    .with_max_in_flight(6),
            ),
            svc.register(TenantSpec::new("gold").with_weight(4).with_max_in_flight(6)),
        ];
        for _ in 0..6 {
            for t in tenants {
                svc.submit(t, Priority::Normal, request())
                    .expect("the backlog fits every budget");
            }
        }
        // The 7th bronze job must bounce off the in-flight budget —
        // typed backpressure, not queue growth.
        match svc.submit(tenants[0], Priority::Normal, request()) {
            Err(ServeError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        svc.run()
    };
    let report = contend();
    let deterministic = report.render() == contend().render();

    let mut tenants: Vec<ServeTenantRow> = report
        .tenants
        .iter()
        .map(|t| ServeTenantRow {
            tenant: t.tenant.clone(),
            weight: t.weight,
            jobs: t.jobs,
            paths: t.paths,
            cache_hits: t.cache_hits,
            mean_wait_seconds: t.wait_seconds / t.jobs.max(1) as f64,
        })
        .collect();
    tenants.sort_by_key(|t| std::cmp::Reverse(t.weight));
    let interleave_switches = report
        .jobs
        .windows(2)
        .filter(|w| w[0].tenant != w[1].tenant)
        .count();
    let solve_total: f64 = report.jobs.iter().map(|j| j.solve_seconds).sum();
    let occupancy = solve_total / (report.finished_at - report.started_at);
    // Amortization is measured on an alternating two-target stream so
    // every cache hit pays the worst case — a real command-queue
    // switch, not the free already-active path the shared-target
    // backlog above enjoys.
    let alternating = {
        let builder = Engine::builder().backend(polygpu_core::Backend::GpuBatch { capacity: 4 });
        let mut svc = SolveService::new(&builder).expect("batched backend serves");
        let t = svc.register(TenantSpec::new("acme").with_max_in_flight(8));
        let other = random_system::<f64>(&BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 23,
        });
        for _ in 0..2 {
            svc.submit(t, Priority::Normal, request())
                .expect("target A admits");
            svc.submit(
                t,
                Priority::Normal,
                SolveRequest::new(other.clone()).with_starts(StartSelection::FirstN(4)),
            )
            .expect("target B admits");
        }
        svc.run()
    };
    let mean = |hit: bool| {
        let picked: Vec<f64> = alternating
            .jobs
            .iter()
            .filter(|j| j.cache_hit == hit)
            .map(|j| j.admission_seconds)
            .collect();
        picked.iter().sum::<f64>() / picked.len().max(1) as f64
    };
    let miss_admission_seconds = mean(false);
    let hit_admission_seconds = mean(true);
    let amortization = miss_admission_seconds / hit_admission_seconds.max(f64::MIN_POSITIVE);

    // Chaos: a row-sharded fleet under heavy seeded fault injection.
    let chaos_run = |seed: u64| {
        let builder = polygpu_cluster::engine_builder()
            .backend(polygpu_core::Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 2],
                shard: SystemShardPolicy::Contiguous.into(),
            })
            .per_device_capacity(4)
            .fault_plan(FaultPlan::new(seed, 2_000));
        let mut svc = SolveService::new(&builder).expect("row-sharded fleets serve");
        let t = svc.register(TenantSpec::new("chaos").with_max_in_flight(8));
        for _ in 0..2 {
            for r in [request(), request().with_gamma_seed(5)] {
                svc.submit(t, Priority::Normal, r)
                    .expect("chaos jobs admit while the fleet stands");
            }
        }
        svc.run()
    };
    let mut chaos = Vec::new();
    let mut chaos_all_accounted = true;
    let mut chaos_degraded_seen = false;
    let mut chaos_deterministic = true;
    for seed in [3u64, 11, 29] {
        let r1 = chaos_run(seed);
        let r2 = chaos_run(seed);
        let deterministic = r1.render() == r2.render();
        chaos_deterministic &= deterministic;
        chaos_all_accounted &= r1.jobs.len() == 4;
        let failed = r1.jobs.len() - r1.solved();
        chaos_degraded_seen |= r1.degraded || failed > 0 || r1.devices_lost > 0;
        chaos.push(ServeChaosRow {
            seed,
            jobs: r1.jobs.len(),
            failed,
            devices_lost: r1.devices_lost,
            degraded: r1.degraded,
            deterministic,
        });
    }

    ServeSweep {
        tenants,
        interleave_switches,
        occupancy,
        rejected_overloaded: report.rejected_overloaded,
        cache: report.cache,
        miss_admission_seconds,
        hit_admission_seconds,
        amortization,
        deterministic,
        chaos,
        chaos_all_accounted,
        chaos_degraded_seen,
        chaos_deterministic,
    }
}

/// Render the serve sweep in markdown.
pub fn format_serve_sweep(sweep: &ServeSweep) -> String {
    let mut s = String::new();
    s.push_str("### Serve — multi-tenant solve service (18-job contended backlog, 1 fleet)\n\n");
    s.push_str("| tenant | weight | jobs | paths | cache hits | mean wait (modeled s) |\n");
    s.push_str("|--------|-------:|-----:|------:|-----------:|----------------------:|\n");
    for t in &sweep.tenants {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.3e} |\n",
            t.tenant, t.weight, t.jobs, t.paths, t.cache_hits, t.mean_wait_seconds
        ));
    }
    s.push_str(&format!(
        "\nservice order interleaves tenants ({} switches); occupancy {:.3}; \
         {} submission(s) bounced typed on the in-flight budget\n",
        sweep.interleave_switches, sweep.occupancy, sweep.rejected_overloaded
    ));
    s.push_str(&format!(
        "cache: {} miss / {} hits / {} evictions; admission {:.3e} s cold vs {:.3e} s \
         resident — {:.1}x amortization\n\n",
        sweep.cache.misses,
        sweep.cache.hits,
        sweep.cache.evictions,
        sweep.miss_admission_seconds,
        sweep.hit_admission_seconds,
        sweep.amortization
    ));
    s.push_str("| fault seed | jobs | failed | devices lost | degraded | byte-identical |\n");
    s.push_str("|-----------:|-----:|-------:|-------------:|----------|----------------|\n");
    for c in &sweep.chaos {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            c.seed,
            c.jobs,
            c.failed,
            c.devices_lost,
            if c.degraded { "yes" } else { "no" },
            if c.deterministic { "yes" } else { "NO" }
        ));
    }
    s
}

/// One row of the sparse footprint table behind `repro sparse`.
#[derive(Debug, Clone)]
pub struct SparseFootprintRow {
    /// What the row encodes (family seed or the uniform comparison).
    pub label: String,
    /// Total monomials of the system.
    pub monomials: usize,
    /// Bytes the `Direct` encoding needs: exact for uniform shapes,
    /// the dense `2 × rows × max_m × max_k` envelope (every monomial
    /// padded to the widest) for ragged ones, which `Direct` cannot
    /// express at all.
    pub direct_bytes: usize,
    /// Bytes the packed exponent-key encoding needs (headers + keys
    /// for ragged shapes, header-free keys for uniform ones).
    pub packed_bytes: usize,
    /// `direct_bytes / packed_bytes`.
    pub shrink: f64,
}

/// One chaos run of the sparse sweep.
#[derive(Debug, Clone)]
pub struct SparseChaosRow {
    /// Cluster shard mode ("points" or "rows").
    pub shard: &'static str,
    /// Fault-plan seed.
    pub seed: u64,
    /// "clean", "recovered", "degraded" or "fault".
    pub outcome: &'static str,
    /// Faults observed (scheduler + engine accounting).
    pub faults: u64,
    /// Endpoints bit-identical to the CPU reference (finished runs).
    pub identical: bool,
}

/// The `repro sparse` sweep plus its deterministic acceptance checks:
/// the packed exponent-key encoding's footprint, the
/// fits-where-`Direct`-rejects demonstration, and a ragged target
/// solved from mixed-cell starts with mixed-volume-many paths,
/// bit-identical to the CPU reference on all five backends — chaos
/// seeds included.
#[derive(Debug, Clone)]
pub struct SparseSweep {
    /// Footprint rows (ragged Table-1-scale family + uniform control).
    pub footprint: Vec<SparseFootprintRow>,
    /// Worst shrink across the ragged family rows.
    pub min_shrink: f64,
    /// Display of the typed rejection of the Table-2-scale target
    /// under `Direct` at D = 1 (empty = it wrongly built).
    pub budget_direct_error: String,
    /// Bytes `Direct` would need for that target (over the budget).
    pub budget_direct_bytes: usize,
    /// Bytes its packed build actually occupies (under the budget).
    pub budget_packed_bytes: usize,
    /// The packed build evaluates bit-identically to the CPU reference.
    pub budget_packed_identical: bool,
    /// Display of the typed rejection of the ragged solve target under
    /// `Direct` (must name the uniform-shape violation).
    pub ragged_direct_error: String,
    /// Total-degree path count of the ragged target.
    pub bezout: u128,
    /// Bernstein's bound — the paths mixed cells actually track.
    pub mixed_volume: u128,
    /// Fine mixed cells found.
    pub cells: usize,
    /// Paths of the total-degree solve of the same target.
    pub total_degree_paths: usize,
    /// Paths of the mixed-cell solve (== mixed volume).
    pub mixed_paths: usize,
    /// Worst endpoint residual of the mixed-cell solve.
    pub max_residual: f64,
    /// Per-backend mixed-cell endpoint identity vs the CPU reference.
    pub endpoints: Vec<(&'static str, bool)>,
    /// Every backend above matched bit-for-bit.
    pub all_backends_identical: bool,
    /// Chaos runs (cluster shard modes × fault seeds).
    pub chaos: Vec<SparseChaosRow>,
    /// Faults observed across the chaos runs.
    pub chaos_faults: u64,
    /// Chaos runs that finished despite faults striking.
    pub chaos_recovered: usize,
    /// Every finished chaos run bit-identical to the CPU reference.
    pub chaos_identical: bool,
}

impl SparseSweep {
    /// The named acceptance bars of `repro sparse` — the single source
    /// of truth behind both [`SparseSweep::passes`] and the PASS/FAIL
    /// lines the `repro` binary prints.
    pub fn checks(&self) -> [(&'static str, bool); 6] {
        [
            (
                "footprint check (packed >= 2x below the dense envelope on the sparse Table-1-scale family)",
                self.min_shrink >= 2.0,
            ),
            (
                "budget check (Table-2-scale target over the Direct budget builds packed, bit-identical to CPU)",
                !self.budget_direct_error.is_empty()
                    && self.budget_packed_bytes < self.budget_direct_bytes
                    && self.budget_packed_identical,
            ),
            (
                "rejection check (ragged target rejects typed under Direct)",
                self.ragged_direct_error.contains("expected k"),
            ),
            (
                "path-count check (mixed volume strictly below Bezout, solved with exactly that many paths)",
                self.mixed_volume < self.bezout
                    && self.mixed_paths as u128 == self.mixed_volume
                    && self.mixed_paths < self.total_degree_paths,
            ),
            (
                "identity check (mixed-cell endpoints bit-identical to the CPU reference on all five backends)",
                self.all_backends_identical,
            ),
            (
                "chaos check (faults struck; every finished run bit-identical)",
                self.chaos_faults > 0 && self.chaos_recovered > 0 && self.chaos_identical,
            ),
        ]
    }

    /// All acceptance bars at once.
    pub fn passes(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }
}

/// The sweep behind `repro sparse`. Fully modeled, hence
/// deterministic — same seeds, same table, forever.
pub fn sparse_sweep() -> SparseSweep {
    use polygpu_cluster::Sharded;
    use polygpu_core::engine::{ClusterPolicy, EngineBuilder, SystemShardPolicy};
    use polygpu_core::{sparse_packed_bytes, Backend, EncodedSupports};
    use polygpu_homotopy::prelude::*;
    use polygpu_polyhedral::mixed_cell_starts;
    use polygpu_polysys::{
        parse_system, random_sparse_system, SparseBenchmarkParams, UniformShape,
    };

    // ---- footprint: the ragged Table-1-scale family ----------------
    let mut footprint = Vec::new();
    let mut min_shrink = f64::INFINITY;
    for seed in [3u64, 5, 7] {
        let sys = random_sparse_system::<f64>(&SparseBenchmarkParams::table1_sparse(seed));
        let shape = sys.sparse_shape();
        let direct = 2 * shape.rows * shape.max_m * shape.max_k;
        let packed = sparse_packed_bytes(&shape);
        let shrink = direct as f64 / packed as f64;
        min_shrink = min_shrink.min(shrink);
        footprint.push(SparseFootprintRow {
            label: format!("table1-sparse seed {seed}"),
            monomials: shape.total_monomials,
            direct_bytes: direct,
            packed_bytes: packed,
            shrink,
        });
    }
    // Uniform control row: both encodings exact, no envelope involved.
    let uniform = UniformShape::square(32, 22, 9, 2);
    let u_direct = EncodedSupports::bytes_needed(&uniform, EncodingKind::Direct);
    let u_packed = EncodedSupports::bytes_needed(&uniform, EncodingKind::Packed);
    footprint.push(SparseFootprintRow {
        label: "uniform 704 x k=9 (exact both ways)".into(),
        monomials: uniform.total_monomials(),
        direct_bytes: u_direct,
        packed_bytes: u_packed,
        shrink: u_direct as f64 / u_packed as f64,
    });

    // ---- budget: fits where Direct rejects -------------------------
    // The facade doctest's wall: 2,048 monomials at k = 16 exhaust one
    // device's 65,536-byte constant memory under Direct.
    let big = random_system::<f64>(&BenchmarkParams {
        n: 32,
        m: 64,
        k: 16,
        d: 10,
        seed: 3,
    });
    let big_shape = big.uniform_shape().expect("the Table-2 family is uniform");
    let budget_direct_bytes = EncodedSupports::bytes_needed(&big_shape, EncodingKind::Direct);
    let spec = || polygpu_cluster::engine_builder().backend(Backend::GpuBatch { capacity: 4 });
    let budget_direct_error = match spec().build(&big) {
        Err(e) => e.to_string(),
        Ok(_) => String::new(),
    };
    let (budget_packed_bytes, budget_packed_identical) =
        match spec().encoding(EncodingKind::Packed).build(&big) {
            Ok(mut packed) => {
                let points = random_points::<f64>(32, 4, 41);
                let got = packed
                    .try_evaluate_batch(&points)
                    .expect("the packed build must evaluate");
                let mut cpu = polygpu_cluster::engine_builder()
                    .backend(Backend::CpuReference)
                    .build(&big)
                    .expect("the CPU reference always builds");
                let identical = points
                    .iter()
                    .zip(&got)
                    .all(|(p, g)| g.values == cpu.evaluate(p).values);
                (packed.caps().constant_bytes, identical)
            }
            Err(_) => (usize::MAX, false),
        };

    // ---- mixed cells: fewer paths, every backend -------------------
    // Two sparse quadratics without pure square terms: ragged (their
    // constant terms have no variables), Bezout 4, mixed volume 2.
    let target =
        parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").expect("the demo target parses");
    let ragged_direct_error = match spec().build(&target) {
        Err(e) => e.to_string(),
        Ok(_) => String::new(),
    };
    let mc = mixed_cell_starts(&target, 7).expect("dim 2 is far under the cell guards");
    let req = SolveRequest::new(target.clone())
        .with_start_kind(StartKind::MixedCells { lift_seed: 7 })
        .with_gamma_seed(11);
    let devices = vec![DeviceSpec::tesla_c2050(); 2];
    let backends: Vec<(&'static str, Backend)> = vec![
        ("cpu-reference", Backend::CpuReference),
        ("gpu", Backend::Gpu),
        ("gpu-batch", Backend::GpuBatch { capacity: 4 }),
        (
            "cluster",
            Backend::Cluster {
                devices: devices.clone(),
                shard: ClusterPolicy::default().into(),
            },
        ),
        (
            "cluster-rows",
            Backend::Cluster {
                devices: devices.clone(),
                shard: SystemShardPolicy::Contiguous.into(),
            },
        ),
    ];
    let builder = |backend: Backend| -> EngineBuilder<Sharded> {
        polygpu_cluster::engine_builder()
            .backend(backend)
            .per_device_capacity(2)
            .encoding(EncodingKind::Packed)
    };
    let cpu_report = Solver::from_builder(builder(Backend::CpuReference))
        .solve(&req)
        .expect("the CPU mixed-cell solve must succeed");
    let want: Vec<PathEndpoint> = cpu_report
        .paths
        .iter()
        .map(|p| p.endpoint.clone())
        .collect();
    let max_residual = cpu_report
        .paths
        .iter()
        .map(|p| p.residual)
        .fold(0.0f64, f64::max);
    let total_degree_paths = Solver::from_builder(builder(Backend::CpuReference))
        .solve(&SolveRequest::new(target.clone()).with_gamma_seed(11))
        .expect("the total-degree solve must succeed")
        .paths
        .len();
    let mut endpoints = Vec::new();
    let mut all_backends_identical = true;
    for (name, backend) in &backends {
        let report = Solver::from_builder(builder(backend.clone()))
            .solve(&req)
            .unwrap_or_else(|e| panic!("mixed-cell solve on {name} failed: {e}"));
        let got: Vec<PathEndpoint> = report.paths.iter().map(|p| p.endpoint.clone()).collect();
        let identical = got == want;
        all_backends_identical &= identical;
        endpoints.push((*name, identical));
    }

    // ---- chaos: mixed-cell solves under fault injection ------------
    let mut chaos = Vec::new();
    let mut chaos_faults = 0u64;
    let mut chaos_recovered = 0usize;
    let mut chaos_identical = true;
    for (shard, backend) in [
        (
            "points",
            Backend::Cluster {
                devices: devices.clone(),
                shard: ClusterPolicy::default().into(),
            },
        ),
        (
            "rows",
            Backend::Cluster {
                devices: devices.clone(),
                shard: SystemShardPolicy::Contiguous.into(),
            },
        ),
    ] {
        for seed in 0..3u64 {
            let solver = Solver::from_builder(
                builder(backend.clone()).fault_plan(FaultPlan::new(seed, 10_000)),
            );
            let row = match solver.solve(&req) {
                Ok(report) => {
                    let got: Vec<PathEndpoint> =
                        report.paths.iter().map(|p| p.endpoint.clone()).collect();
                    let identical = got == want;
                    chaos_identical &= identical;
                    let faults = report.fault.faults + report.fault.engine.faults;
                    chaos_faults += faults;
                    if faults > 0 {
                        chaos_recovered += 1;
                    }
                    SparseChaosRow {
                        shard,
                        seed,
                        outcome: if faults > 0 { "recovered" } else { "clean" },
                        faults,
                        identical,
                    }
                }
                Err(SolveError::Fault(e)) => {
                    chaos_faults += 1;
                    SparseChaosRow {
                        shard,
                        seed,
                        outcome: if matches!(e, polygpu_core::BatchError::DegradedFleet { .. }) {
                            "degraded"
                        } else {
                            "fault"
                        },
                        faults: 1,
                        identical: false,
                    }
                }
                Err(e) => panic!("sparse chaos must fail typed, got: {e}"),
            };
            chaos.push(row);
        }
    }

    SparseSweep {
        footprint,
        min_shrink,
        budget_direct_error,
        budget_direct_bytes,
        budget_packed_bytes,
        budget_packed_identical,
        ragged_direct_error,
        bezout: mc.bezout,
        mixed_volume: mc.mixed_volume,
        cells: mc.cells.len(),
        total_degree_paths,
        mixed_paths: want.len(),
        max_residual,
        endpoints,
        all_backends_identical,
        chaos,
        chaos_faults,
        chaos_recovered,
        chaos_identical,
    }
}

/// Render the sparse sweep in markdown.
pub fn format_sparse_sweep(sweep: &SparseSweep) -> String {
    let mut s = String::new();
    s.push_str("### Sparse — packed exponent keys + polyhedral starts\n\n");
    s.push_str("| system | monomials | direct bytes | packed bytes | shrink |\n");
    s.push_str("|--------|----------:|-------------:|-------------:|-------:|\n");
    for r in &sweep.footprint {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {:.2}x |\n",
            r.label, r.monomials, r.direct_bytes, r.packed_bytes, r.shrink
        ));
    }
    s.push_str(&format!(
        "\nTable-2-scale target (2,048 monomials, k = 16): Direct needs {} B — \
         REJECTED (\"{}\"); packed occupies {} B and evaluates {} to the CPU reference\n",
        sweep.budget_direct_bytes,
        sweep.budget_direct_error,
        sweep.budget_packed_bytes,
        if sweep.budget_packed_identical {
            "bit-identically"
        } else {
            "DIFFERENTLY"
        }
    ));
    s.push_str(&format!(
        "\nragged solve target under Direct: REJECTED (\"{}\")\n",
        sweep.ragged_direct_error
    ));
    s.push_str(&format!(
        "mixed cells: Bezout {} vs mixed volume {} ({} cells) — total-degree solve \
         tracked {} paths, mixed-cell solve {} (max residual {:.2e})\n\n",
        sweep.bezout,
        sweep.mixed_volume,
        sweep.cells,
        sweep.total_degree_paths,
        sweep.mixed_paths,
        sweep.max_residual
    ));
    s.push_str("| backend | mixed-cell endpoints vs CPU reference |\n");
    s.push_str("|---------|---------------------------------------|\n");
    for (name, identical) in &sweep.endpoints {
        s.push_str(&format!(
            "| {} | {} |\n",
            name,
            if *identical {
                "bit-identical"
            } else {
                "DIFFER"
            }
        ));
    }
    s.push_str("\n| shard | fault seed | outcome | faults | bit-identical |\n");
    s.push_str("|-------|-----------:|---------|-------:|---------------|\n");
    for c in &sweep.chaos {
        let identical = match c.outcome {
            "clean" | "recovered" => {
                if c.identical {
                    "yes"
                } else {
                    "NO"
                }
            }
            _ => "-",
        };
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            c.shard, c.seed, c.outcome, c.faults, identical
        ));
    }
    s.push_str(&format!(
        "\n{} faults across {} chaos runs: {} recovered\n",
        sweep.chaos_faults,
        sweep.chaos.len(),
        sweep.chaos_recovered
    ));
    s
}

/// Fixture for the batch benches: a batched evaluator at `capacity`
/// plus matching random points.
pub fn batch_fixture(
    total: usize,
    k: usize,
    d: u16,
    capacity: usize,
) -> (BatchGpuEvaluator<f64>, Vec<Vec<C64>>) {
    let params = BenchmarkParams {
        n: 32,
        m: total / 32,
        k,
        d,
        seed: 0xBEEF,
    };
    let system = random_system::<f64>(&params);
    let gpu = BatchGpuEvaluator::new(&system, capacity, GpuOptions::default()).unwrap();
    let points = random_points::<f64>(32, capacity, 7);
    (gpu, points)
}

/// Double-double variant of the fixture (for the quality-up benches).
pub fn bench_fixture_dd(
    total: usize,
    k: usize,
    d: u16,
) -> (AdEvaluator<polygpu_qd::Dd>, Vec<Vec<CDd>>) {
    let params = BenchmarkParams {
        n: 32,
        m: total / 32,
        k,
        d,
        seed: 0xBEEF,
    };
    let system = random_system::<f64>(&params).convert();
    let cpu = AdEvaluator::new(system).unwrap();
    let points: Vec<Vec<CDd>> = random_points::<f64>(32, 16, 7)
        .into_iter()
        .map(|p| p.into_iter().map(|z| z.convert()).collect())
        .collect();
    (cpu, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_reproduces() {
        // Unit tests run in parallel, so only the deterministic
        // (modeled) side of the shape is asserted here; the measured
        // side is checked by `repro table1` (serial, release).
        let rows = run_table(&table1_spec(), 20, 100_000);
        assert_eq!(rows.len(), 3);
        assert!(
            table_shape_holds_model(&rows),
            "modeled table shape broken: speedups(2012) {:?}",
            rows.iter()
                .map(|r| r.speedup_vs_2012_cpu)
                .collect::<Vec<_>>(),
        );
        // Double-digit speedup at the top against the era-consistent
        // baseline, as in the paper; GPU time nearly flat in monomials.
        assert!(rows[2].speedup_vs_2012_cpu > 10.0);
        assert!(rows[2].gpu_seconds / rows[0].gpu_seconds < 1.6);
    }

    #[test]
    fn capacity_sweep_matches_paper() {
        let sweep = capacity_sweep(&[1536, 2048]);
        // 1,536 fits directly (the paper's largest point).
        assert!(sweep[0].1);
        // 2,048 does not fit directly (E3) but fits compactly (X1).
        assert!(!sweep[1].1);
        assert!(sweep[1].2);
        assert_eq!(sweep[1].3, 65_536);
    }

    #[test]
    fn counts_match_formulas() {
        for (k, measured, formula, spl, cf) in count_multiplications(&[2, 3, 9, 16]) {
            assert_eq!(measured, formula, "k = {k}");
            assert_eq!(formula, spl + 2 * k as u64 + 2, "decomposition for k = {k}");
            assert_eq!(cf, k as u64 - 1);
        }
    }

    #[test]
    fn batch_sweep_amortizes_monotonically() {
        let rows = batch_sweep(704, 9, 2, &[1, 4, 16, 64]);
        assert_eq!(rows.len(), 4);
        // Fixed cost per evaluation falls monotonically with P…
        for w in rows.windows(2) {
            assert!(
                w[1].overhead_transfer_per_eval < w[0].overhead_transfer_per_eval,
                "amortization not monotone: {rows:?}"
            );
        }
        // …and by at least 10x from P=1 to P=64 (the acceptance bar).
        assert!(
            rows[0].overhead_transfer_per_eval >= 10.0 * rows[3].overhead_transfer_per_eval,
            "P=64 amortization below 10x: {rows:?}"
        );
        assert!(rows[3].speedup_vs_p1 > 1.0);
        let s = format_batch_sweep(704, &rows);
        assert!(s.contains("| 64 |"));
    }

    #[test]
    fn cluster_sweep_scales_and_overlaps() {
        // The scale-out acceptance at bench level: P = 256 on D = 4
        // identical devices is at least 3x the D = 1 throughput, with
        // positive overlap savings and near-perfect balance.
        let rows = cluster_sweep(128, 9, 2, 256, &[1, 4]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].speedup_vs_d1 - 1.0).abs() < 1e-9);
        assert!(
            rows[1].speedup_vs_d1 >= 3.0,
            "D=4 must scale >= 3x: {rows:?}"
        );
        for r in &rows {
            assert!(r.overlap_savings > 0.0, "overlap modeled: {r:?}");
            assert!(r.imbalance >= 1.0 && r.imbalance < 1.5, "balanced: {r:?}");
        }
        let s = format_cluster_sweep(128, 256, &rows);
        assert!(s.contains("| 4 |"));
    }

    #[test]
    fn measured_shape_check_tolerates_noise() {
        let mut rows = run_table(&table1_spec(), 5, 1000);
        // Within-tolerance inversion of the measured CPU column must
        // not fail the measured check (that is the flake this guards).
        rows[1].cpu_seconds = rows[0].cpu_seconds * (1.0 - MEASURED_SHAPE_TOLERANCE / 2.0);
        rows[2].cpu_seconds = rows[0].cpu_seconds * 2.0;
        assert!(table_shape_holds_measured(&rows));
        // A gross inversion still fails.
        rows[1].cpu_seconds = rows[0].cpu_seconds * 0.5;
        assert!(!table_shape_holds_measured(&rows));
        // The model-side check ignores the measured column entirely.
        assert!(table_shape_holds_model(&rows));
    }

    /// The residency acceptance: once a system is resident, a homotopy
    /// stage pays ≥ 5x less modeled setup cost than re-encoding, and
    /// the constant-memory accounting is explicit and within budget.
    #[test]
    fn session_residency_amortizes_setup_5x() {
        let report = session_residency(4);
        assert_eq!(report.rows.len(), 3);
        assert!(report.constant_used <= report.constant_budget);
        assert_eq!(
            report.constant_used,
            report.rows.iter().map(|r| r.constant_bytes).sum::<usize>()
        );
        assert_eq!(report.amortization.stages, 12);
        assert!(
            report.amortization.steady_state_ratio >= 5.0,
            "per-stage amortization below 5x: {:.2}",
            report.amortization.steady_state_ratio
        );
        assert!(report.amortization.cumulative_ratio() > 1.0);
        let s = format_session(&report);
        assert!(s.contains("stage-1024"));
        assert!(s.contains("per-stage amortization"));
    }

    /// The `repro solve` acceptance: endpoints identical across
    /// schedulers and backends, the auto-sized queue front > 0.8
    /// occupied on the D = 4 cluster, and the escalation demo rescues
    /// its paths in double-double.
    #[test]
    fn solve_sweep_passes_its_gates() {
        let sweep = solve_sweep();
        assert_eq!(sweep.rows.len(), 9, "3 schedulers x 3 backends");
        assert!(sweep.endpoints_identical, "{sweep:?}");
        assert!(
            sweep.queue_occupancy_d4 > 0.8,
            "auto-front occupancy at D = 4: {:.3}",
            sweep.queue_occupancy_d4
        );
        assert_eq!(sweep.escalation_retried, 4);
        assert!(sweep.escalation_rescued > 0);
        assert!(sweep.passes());
        // Modeled throughput exists exactly where a device model does.
        for r in &sweep.rows {
            if r.backend == "cpu-reference" {
                assert_eq!(r.paths_per_sec, 0.0);
            } else {
                assert!(r.paths_per_sec > 0.0, "{r:?}");
            }
        }
        let s = format_solve_sweep(&sweep);
        assert!(s.contains("| queue | cluster | 4 |"));
        assert!(s.contains("rescued in double-double"));
    }

    /// The `repro newton` gates: DeviceResident endpoints bit-identical
    /// to Host everywhere, every resident run downloads fewer modeled
    /// bytes, and the fused probe's per-iteration D2H reconciles exactly
    /// with the driver's flag-charge log.
    #[test]
    fn newton_sweep_passes_its_gates() {
        let sweep = newton_sweep();
        assert_eq!(sweep.rows.len(), 12, "3 schedulers x 2 backends x 2 modes");
        assert!(sweep.endpoints_identical, "{sweep:?}");
        assert!(sweep.d2h_reduced, "{sweep:?}");
        assert!(sweep.expected_flag_bytes > 0);
        assert_eq!(sweep.flag_bytes, sweep.expected_flag_bytes);
        assert!(sweep.endpoint_bytes + sweep.flag_bytes < sweep.host_loop_d2h);
        assert!(sweep.passes());
        // The fused kernels are charged exactly on the resident rows.
        for r in &sweep.rows {
            if r.mode == "resident" {
                assert!(r.corrector_iterations > 0, "{r:?}");
                assert!(r.factor_seconds > 0.0 && r.backsub_seconds > 0.0, "{r:?}");
            } else {
                assert_eq!(r.corrector_iterations, 0, "{r:?}");
                assert_eq!(r.factor_seconds, 0.0, "{r:?}");
            }
        }
        let s = format_newton_sweep(&sweep);
        assert!(s.contains("| queue | cluster | resident |"));
        assert!(s.contains("flag downloads"));
    }

    /// The `repro syshard` gates: the over-budget system is rejected at
    /// D = 1, builds bit-identically to the CPU at D ∈ {2, 4}, and
    /// row-sharded D = 4 beats D = 1 on the compute-bound shape.
    #[test]
    fn syshard_sweep_passes_its_gates() {
        let sweep = syshard_sweep();
        assert!(sweep.over_budget_rejected_at_d1, "{sweep:?}");
        assert!(sweep.identical_to_cpu, "{sweep:?}");
        assert!(!sweep.rows[0].built && sweep.rows[1].built && sweep.rows[2].built);
        // The whole 65,536-byte encoding resides, spread over the fleet.
        assert_eq!(sweep.rows[1].constant_bytes, 65_536);
        assert_eq!(sweep.rows[2].constant_bytes, 65_536);
        assert!(sweep.rows[1].gather_fraction > 0.0);
        assert!(
            sweep.d4_wall_seconds < sweep.d1_wall_seconds,
            "D = 4 must beat D = 1: {:.3e} vs {:.3e}",
            sweep.d4_wall_seconds,
            sweep.d1_wall_seconds
        );
        assert!(sweep.d4_gather_fraction > 0.0 && sweep.d4_gather_fraction < 0.5);
        assert!(sweep.passes());
        let s = format_syshard_sweep(&sweep);
        assert!(s.contains("REJECTED"));
        assert!(s.contains("row-sharded D = 4 wall"));
    }

    /// The `repro chaos` gates: faults strike, solves survive them,
    /// every survivor is bit-identical to the fault-free run, and
    /// recovery cost stays bounded. Fully modeled, hence these are
    /// assertions, not benchmarks.
    #[test]
    fn chaos_sweep_passes_its_gates() {
        let sweep = chaos_sweep();
        assert_eq!(sweep.rows.len(), 12, "2 shard modes x 2 fleets x 3 seeds");
        assert!(sweep.faults_observed > 0, "{sweep:?}");
        assert!(sweep.recovered_runs > 0, "{sweep:?}");
        assert!(sweep.all_identical, "{sweep:?}");
        assert!(sweep.max_recovery_share < 0.9, "{sweep:?}");
        assert!(sweep.passes());
        let s = format_chaos_sweep(&sweep);
        assert!(s.contains("recovered"));
        assert!(s.contains("worst recovery share"));
    }

    #[test]
    fn trace_sweep_passes_its_gates() {
        let sweep = trace_sweep();
        assert_eq!(sweep.rows.len(), 8, "2 cluster shapes x (clean + 3 seeds)");
        assert!(sweep.all_deterministic, "{sweep:?}");
        assert!(sweep.all_reconciled, "{sweep:?}");
        assert!(sweep.noop_identical, "{sweep:?}");
        assert!(sweep.faulted_runs > 0, "{sweep:?}");
        assert!(sweep.fault_spans_present, "{sweep:?}");
        assert!(sweep.passes());
        assert!(!sweep.sample_telemetry.is_empty());
        let s = format_trace_sweep(&sweep);
        assert!(s.contains("byte-identical"));
        assert!(s.contains("no-op tracer bit-identity: holds"));
    }

    /// The `repro serve` gates: the weighted fair queue interleaves a
    /// contended backlog with waits ordered by weight, the cache keeps
    /// the fleet solving and amortizes repeat admission at least 5x,
    /// chaos degrades jobs but never the service, and every report
    /// replays byte-for-byte.
    #[test]
    fn serve_sweep_passes_its_gates() {
        let sweep = serve_sweep();
        assert_eq!(sweep.tenants.len(), 3);
        assert_eq!(sweep.tenants[0].tenant, "gold");
        assert!(
            sweep.tenants[0].mean_wait_seconds <= sweep.tenants[2].mean_wait_seconds,
            "weight 4 must wait no longer than weight 1: {sweep:?}"
        );
        assert!(sweep.interleave_switches >= 6, "{sweep:?}");
        assert!(sweep.occupancy > 0.8, "occupancy {:.3}", sweep.occupancy);
        assert_eq!(sweep.rejected_overloaded, 1);
        assert_eq!(sweep.cache.misses, 1);
        assert_eq!(sweep.cache.hits, 17);
        assert!(
            sweep.amortization >= 5.0,
            "amortization {:.1}x",
            sweep.amortization
        );
        assert_eq!(sweep.chaos.len(), 3);
        assert!(sweep.chaos_all_accounted, "{sweep:?}");
        assert!(sweep.chaos_degraded_seen, "{sweep:?}");
        assert!(
            sweep.deterministic && sweep.chaos_deterministic,
            "{sweep:?}"
        );
        assert!(sweep.passes());
        let s = format_serve_sweep(&sweep);
        assert!(s.contains("| gold | 4 |"));
        assert!(s.contains("amortization"));
    }

    /// The `repro sparse` gates: the packed encoding shrinks the
    /// ragged family's footprint at least 2x, the Table-2-scale target
    /// over the Direct budget builds packed and matches the CPU
    /// bit-for-bit, the ragged solve target rejects typed under
    /// Direct, mixed-cell solves track mixed-volume-many paths
    /// (strictly fewer than Bezout) bit-identical to the CPU reference
    /// on all five backends, and chaos runs recover bit-identically.
    #[test]
    fn sparse_sweep_passes_its_gates() {
        let sweep = sparse_sweep();
        assert_eq!(sweep.footprint.len(), 4, "3 family seeds + uniform control");
        assert!(
            sweep.min_shrink >= 2.0,
            "packed shrink below 2x: {:?}",
            sweep.footprint
        );
        assert!(!sweep.budget_direct_error.is_empty(), "{sweep:?}");
        assert!(
            sweep.budget_packed_bytes < sweep.budget_direct_bytes,
            "{sweep:?}"
        );
        assert!(sweep.budget_packed_identical, "{sweep:?}");
        assert!(
            sweep.ragged_direct_error.contains("expected k"),
            "direct rejection not typed as a shape violation: {}",
            sweep.ragged_direct_error
        );
        assert_eq!(sweep.bezout, 4);
        assert_eq!(sweep.mixed_volume, 2);
        assert_eq!(sweep.cells, 2);
        assert_eq!(sweep.total_degree_paths, 4);
        assert_eq!(sweep.mixed_paths, 2);
        assert!(sweep.max_residual < 1e-8, "{sweep:?}");
        assert_eq!(sweep.endpoints.len(), 5, "all five backends solved");
        assert!(sweep.all_backends_identical, "{sweep:?}");
        assert_eq!(sweep.chaos.len(), 6, "2 shard modes x 3 seeds");
        assert!(sweep.chaos_faults > 0, "{sweep:?}");
        assert!(sweep.chaos_recovered > 0, "{sweep:?}");
        assert!(sweep.chaos_identical, "{sweep:?}");
        assert!(sweep.passes());
        let s = format_sparse_sweep(&sweep);
        assert!(s.contains("REJECTED"));
        assert!(s.contains("| cluster-rows | bit-identical |"));
    }

    #[test]
    fn dd_cost_factor_is_significant() {
        let (dd, qd) = measure_cost_factors(200_000);
        // The paper's companion work reports ~8; allow a broad band for
        // host variation but require a real overhead and ordering.
        assert!(dd > 2.0, "dd factor suspiciously low: {dd}");
        assert!(qd > dd, "qd must cost more than dd: {qd} vs {dd}");
    }

    #[test]
    fn ablation_prefers_two_stage_at_high_degree() {
        let ab = ablate_common_factor(10);
        assert!(ab.from_scratch.counters.flops > ab.two_stage.counters.flops);
        assert!(ab.from_scratch.counters.divergent_segments > 0);
        assert_eq!(ab.two_stage.counters.divergent_segments, 0);
    }

    #[test]
    fn formatting_contains_all_rows() {
        let spec = table1_spec();
        let rows = run_table(&spec, 5, 1000);
        let s = format_table(&spec, &rows, 1000);
        assert!(s.contains("704"));
        assert!(s.contains("1024"));
        assert!(s.contains("1536"));
        assert!(s.contains("paper"));
    }
}
