//! Ablation A2: the other side of the §3.3 layout tradeoff.
//!
//! The paper chose to write kernel 2's output *uncoalesced* so that
//! kernel 3 reads it *coalesced*. The rejected alternative stores each
//! combined polynomial's terms contiguously ("row major"): kernel 2's
//! writes would then be friendlier, but kernel 3's lanes would stride
//! `m` elements apart at every step. This module implements the
//! rejected summation layout so the simulator can price both.

use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_polysys::UniformShape;

/// Element index of term `j` of combined polynomial `q` in the
/// *row-major* (rejected) layout.
#[inline]
pub fn row_major_slot(shape: &UniformShape, j: usize, q: usize) -> usize {
    q * shape.m + j
}

/// Summation kernel over the row-major layout: mathematically identical
/// to `polygpu_core`'s `SumKernel`, but each warp's loads scatter with
/// stride `m`.
pub struct RowMajorSumKernel {
    pub shape: UniformShape,
    pub mons: BufferId,
    pub out: BufferId,
}

impl<R: Real> Kernel<Complex<R>> for RowMajorSumKernel {
    fn name(&self) -> &str {
        "sum_row_major"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        0
    }

    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.shape;
        let outputs = shape.outputs();
        blk.threads(|t| {
            let q = t.global_tid() as usize;
            if q >= outputs {
                return;
            }
            let mut acc = Complex::<R>::zero();
            for j in 0..shape.m {
                let term = t.gload(self.mons, row_major_slot(&shape, j, q));
                acc = t.add(acc, term);
            }
            t.gstore(self.out, q, acc);
        });
    }
}

/// Run both summation layouts over identical data and return
/// `(paper_layout_report, row_major_report)`. The values produced are
/// asserted identical; only the memory behaviour differs.
pub fn compare_sum_layouts(shape: UniformShape, seed: u64) -> (LaunchReport, LaunchReport) {
    use polygpu_core::kernels::SumKernel;
    use polygpu_core::layout::mons::term_slot;

    let device = DeviceSpec::tesla_c2050();
    let cm = ConstantMemory::new(&device);
    let cfg = LaunchConfig::cover(shape.outputs(), 32);

    // Deterministic pseudo-random terms.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut terms = vec![Complex::<f64>::zero(); shape.outputs() * shape.m];
    for v in terms.iter_mut() {
        *v = Complex::new(next(), next());
    }

    // Paper layout.
    let mut g1 = GlobalMem::new();
    let mons1 = g1.alloc(shape.outputs() * shape.m);
    let out1 = g1.alloc(shape.outputs());
    let mut data1 = vec![Complex::<f64>::zero(); shape.outputs() * shape.m];
    for q in 0..shape.outputs() {
        for j in 0..shape.m {
            data1[term_slot(&shape, j, q)] = terms[q * shape.m + j];
        }
    }
    g1.host_write(mons1, 0, &data1);
    let r1 = launch(
        &device,
        &SumKernel {
            shape,
            mons: mons1,
            out: out1,
        },
        cfg,
        &mut g1,
        &cm,
        LaunchOptions::default(),
    )
    .expect("paper layout launch");

    // Row-major layout (terms already in q-major order).
    let mut g2 = GlobalMem::new();
    let mons2 = g2.alloc(shape.outputs() * shape.m);
    let out2 = g2.alloc(shape.outputs());
    g2.host_write(mons2, 0, &terms);
    let r2 = launch(
        &device,
        &RowMajorSumKernel {
            shape,
            mons: mons2,
            out: out2,
        },
        cfg,
        &mut g2,
        &cm,
        LaunchOptions::default(),
    )
    .expect("row-major layout launch");

    assert_eq!(
        g1.host_read(out1),
        g2.host_read(out2),
        "both layouts must sum to identical values"
    );
    (r1, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_needs_fewer_transactions() {
        let shape = UniformShape::square(32, 22, 9, 2);
        let (paper, row_major) = compare_sum_layouts(shape, 42);
        assert!(
            paper.counters.global_transactions < row_major.counters.global_transactions / 4,
            "coalescing advantage missing: {} vs {}",
            paper.counters.global_transactions,
            row_major.counters.global_transactions
        );
        // Same arithmetic on both sides.
        assert_eq!(paper.counters.flops, row_major.counters.flops);
    }

    #[test]
    fn modeled_time_favors_paper_layout() {
        let shape = UniformShape::square(32, 48, 9, 2);
        let (paper, row_major) = compare_sum_layouts(shape, 7);
        assert!(
            paper.timing.kernel_seconds <= row_major.timing.kernel_seconds,
            "paper {} vs row-major {}",
            paper.timing.kernel_seconds,
            row_major.timing.kernel_seconds
        );
    }
}
