//! The multicore companion experiment (paper §1, citing the authors'
//! PASCO 2010 work): "the cost of tracking one solution path in double
//! double arithmetic can be compensated in a parallel multicore
//! implementation, thus achieving quality up."
//!
//! We batch-evaluate a Table-1-shaped system over many points on all
//! host cores with rayon (each worker owns its own evaluator scratch)
//! in double and double-double, and check whether the multicore
//! double-double run beats the sequential double run — the literal
//! quality-up criterion.

use polygpu_complex::{Complex, Real, C64};
use polygpu_polysys::{
    random_points, random_system, AdEvaluator, BenchmarkParams, System, SystemEvaluator,
};
use rayon::prelude::*;
use std::time::Instant;

/// Timings of the four quadrants of the quality-up comparison.
#[derive(Debug, Clone, Copy)]
pub struct MulticoreReport {
    pub threads: usize,
    pub evals: usize,
    pub f64_seq_s: f64,
    pub f64_par_s: f64,
    pub dd_seq_s: f64,
    pub dd_par_s: f64,
}

impl MulticoreReport {
    /// Parallel speedup in double precision.
    pub fn f64_speedup(&self) -> f64 {
        self.f64_seq_s / self.f64_par_s
    }

    /// The measured double-double cost factor (sequential).
    pub fn dd_cost_factor(&self) -> f64 {
        self.dd_seq_s / self.f64_seq_s
    }

    /// The quality-up ratio: multicore double-double time relative to
    /// sequential double time. `<= 1` means extended precision came for
    /// free, the paper's criterion.
    pub fn quality_up_ratio(&self) -> f64 {
        self.dd_par_s / self.f64_seq_s
    }
}

fn batch_seq<R: Real>(system: &System<R>, points: &[Vec<Complex<R>>]) -> f64 {
    let mut ev = AdEvaluator::new(system.clone()).expect("uniform");
    let mut sink = 0.0;
    let t0 = Instant::now();
    for p in points {
        sink += ev.evaluate(p).residual_norm().to_f64();
    }
    std::hint::black_box(sink);
    t0.elapsed().as_secs_f64()
}

fn batch_par<R: Real>(system: &System<R>, points: &[Vec<Complex<R>>]) -> f64 {
    let t0 = Instant::now();
    let sink: f64 = points
        .par_iter()
        .map_init(
            || AdEvaluator::new(system.clone()).expect("uniform"),
            |ev, p| ev.evaluate(p).residual_norm().to_f64(),
        )
        .sum();
    std::hint::black_box(sink);
    t0.elapsed().as_secs_f64()
}

/// Run the experiment on a Table-1-shaped system with `evals` points.
pub fn multicore_quality_up(evals: usize) -> MulticoreReport {
    let params = BenchmarkParams {
        n: 32,
        m: 32,
        k: 9,
        d: 2,
        seed: 0x040C_05E5,
    };
    let system = random_system::<f64>(&params);
    let system_dd = system.convert::<polygpu_qd::Dd>();
    let points: Vec<Vec<C64>> = random_points::<f64>(32, evals, 17);
    let points_dd: Vec<Vec<Complex<polygpu_qd::Dd>>> = points
        .iter()
        .map(|p| p.iter().map(|z| z.convert()).collect())
        .collect();

    // Warm up the pool so thread spawning is outside the timings.
    let _ = batch_par(&system, &points[..evals.min(8)]);

    MulticoreReport {
        threads: rayon::current_num_threads(),
        evals,
        f64_seq_s: batch_seq(&system, &points),
        f64_par_s: batch_par(&system, &points),
        dd_seq_s: batch_seq(&system_dd, &points_dd),
        dd_par_s: batch_par(&system_dd, &points_dd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_and_sequential_batches_agree_numerically() {
        // Correctness of the rayon batch path: same residual checksum.
        let params = BenchmarkParams {
            n: 8,
            m: 4,
            k: 3,
            d: 2,
            seed: 2,
        };
        let system = random_system::<f64>(&params);
        let points = random_points::<f64>(8, 32, 5);
        let mut ev = AdEvaluator::new(system.clone()).unwrap();
        let seq: Vec<f64> = points
            .iter()
            .map(|p| ev.evaluate(p).residual_norm())
            .collect();
        let par: Vec<f64> = points
            .par_iter()
            .map_init(
                || AdEvaluator::new(system.clone()).unwrap(),
                |e, p| e.evaluate(p).residual_norm(),
            )
            .collect();
        assert_eq!(seq, par, "rayon batch must be bit-identical per point");
    }

    #[test]
    fn report_arithmetic() {
        let r = MulticoreReport {
            threads: 8,
            evals: 100,
            f64_seq_s: 1.0,
            f64_par_s: 0.2,
            dd_seq_s: 6.0,
            dd_par_s: 0.9,
        };
        assert!((r.f64_speedup() - 5.0).abs() < 1e-12);
        assert!((r.dd_cost_factor() - 6.0).abs() < 1e-12);
        assert!(r.quality_up_ratio() < 1.0, "quality up achieved");
    }
}
