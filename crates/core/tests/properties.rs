//! Property-based test: the simulated GPU pipeline is bit-identical to
//! the sequential CPU algorithm on arbitrary uniform systems.

use polygpu_core::pipeline::{GpuEvaluator, GpuOptions};
use polygpu_core::EncodingKind;
use polygpu_polysys::{random_point, random_system, AdEvaluator, BenchmarkParams, SystemEvaluator};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = BenchmarkParams> {
    (2usize..16, 1usize..5, 1u16..6, 0u64..1_000_000).prop_flat_map(|(n, m, d, seed)| {
        (1usize..=n).prop_map(move |k| BenchmarkParams { n, m, k, d, seed })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpu_pipeline_bitwise_equals_cpu_ad(params in shapes()) {
        let system = random_system::<f64>(&params);
        let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let mut cpu = AdEvaluator::new(system).unwrap();
        let x = random_point::<f64>(params.n, params.seed ^ 0xD00D);
        let a = gpu.evaluate(&x);
        let b = cpu.evaluate(&x);
        prop_assert_eq!(&a.values, &b.values, "values for {:?}", params);
        prop_assert_eq!(a.jacobian.as_slice(), b.jacobian.as_slice(),
            "jacobian for {:?}", params);
    }

    #[test]
    fn encodings_agree_bitwise(params in shapes()) {
        prop_assume!(params.d <= 16); // compact encoding limit
        let system = random_system::<f64>(&params);
        let mut direct = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let mut compact = GpuEvaluator::new(&system, GpuOptions {
            encoding: EncodingKind::Compact,
            ..Default::default()
        }).unwrap();
        let x = random_point::<f64>(params.n, params.seed);
        prop_assert_eq!(direct.evaluate(&x).values, compact.evaluate(&x).values);
    }

    #[test]
    fn kernel2_flops_follow_5k_minus_4(params in shapes()) {
        let system = random_system::<f64>(&params);
        let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let x = random_point::<f64>(params.n, 1);
        let _ = gpu.evaluate(&x);
        let k2 = &gpu.last_reports()[1];
        let monomials = (params.n * params.m) as u64;
        let expect = monomials * polygpu_polysys::cost::kernel2_muls(params.k) * 6;
        prop_assert_eq!(k2.counters.flops, expect,
            "kernel2 flops for {:?}", params);
    }

    #[test]
    fn modeled_time_positive_and_deterministic(params in shapes()) {
        let system = random_system::<f64>(&params);
        let x = random_point::<f64>(params.n, 3);
        let mut g1 = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let mut g2 = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let _ = g1.evaluate(&x);
        let _ = g2.evaluate(&x);
        prop_assert!(g1.stats().total_seconds() > 0.0);
        prop_assert_eq!(g1.stats().total_seconds(), g2.stats().total_seconds());
    }
}
