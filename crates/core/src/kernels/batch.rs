//! Batched variants of the paper's three kernels: one launch evaluates
//! the system and its Jacobian at **`P` points**.
//!
//! The grid is linearized point-major ([`LaunchConfig::cover_batch`]):
//! block `b` serves point `b / inner` at inner block index `b % inner`,
//! where `inner` is the single-point block count of the kernel. Each
//! block's program is **identical** to its single-point counterpart —
//! same shared-memory staging, same operation order — except that its
//! global reads and writes are offset into that point's region of the
//! batched buffers. Batched results are therefore bit-for-bit equal to
//! `P` single-point evaluations, and a `P = 1` batch produces exactly
//! the single-point launch counters.
//!
//! Per-point regions are **pitched**: strides are rounded up to the
//! device's coalescing segment ([`BatchLayout::new`]), so every point's
//! access pattern (and hence its transaction count) matches the
//! single-point pipeline regardless of its position in the batch.
//!
//! The support encoding in constant memory and the `Coeffs` array are
//! shared by all points — "the information … does not change along the
//! path tracking" holds across paths too.

use crate::layout::coeffs::coeff_index;
use crate::layout::encoding::EncodedSupports;
use crate::layout::mons::{mons_len, q_deriv, q_value, term_slot};
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_polysys::UniformShape;

/// Per-point strides and inner block counts of a batched launch.
#[derive(Debug, Clone, Copy)]
pub struct BatchLayout {
    /// Points the device buffers are sized for.
    pub capacity: usize,
    /// Elements between consecutive points' variable vectors.
    pub vars_stride: usize,
    /// Elements between consecutive points' common-factor regions.
    pub cf_stride: usize,
    /// Elements between consecutive points' `Mons` regions.
    pub mons_stride: usize,
    /// Elements between consecutive points' output regions.
    pub out_stride: usize,
    /// Single-point block count over the `n·m` monomials.
    pub mon_blocks: u32,
    /// Single-point block count over the `n² + n` outputs.
    pub out_blocks: u32,
}

impl BatchLayout {
    /// Compute the layout for `capacity` points of `shape` with
    /// `elem_bytes`-sized device elements and the device's coalescing
    /// `segment` (bytes).
    pub fn new(
        shape: &UniformShape,
        capacity: usize,
        block_dim: u32,
        elem_bytes: usize,
        segment: usize,
    ) -> Self {
        let pitch = |len: usize| {
            let seg_elems = (segment / elem_bytes).max(1);
            len.next_multiple_of(seg_elems)
        };
        BatchLayout {
            capacity,
            vars_stride: pitch(shape.n),
            cf_stride: pitch(shape.total_monomials()),
            mons_stride: pitch(mons_len(shape)),
            out_stride: pitch(shape.outputs()),
            mon_blocks: LaunchConfig::blocks_for(shape.total_monomials(), block_dim),
            out_blocks: LaunchConfig::blocks_for(shape.outputs(), block_dim),
        }
    }

    /// Degenerate layout for a **single-point** launch: the whole grid
    /// serves point 0 at zero offsets (`mon_blocks`/`out_blocks` equal
    /// the launch's grid, so `block / blocks = 0` and
    /// `block % blocks = block`). The single-point kernels delegate
    /// their block programs to the batch kernels through this, keeping
    /// exactly one copy of each program — the bit-for-bit
    /// batch-equals-single invariant then holds by construction.
    pub fn single(grid_dim: u32) -> Self {
        BatchLayout {
            capacity: 1,
            vars_stride: 0,
            cf_stride: 0,
            mons_stride: 0,
            out_stride: 0,
            mon_blocks: grid_dim.max(1),
            out_blocks: grid_dim.max(1),
        }
    }

    /// Grid covering `points` batch entries of the monomial-indexed
    /// kernels (1 and 2).
    pub fn monomial_cfg(
        &self,
        points: usize,
        shape: &UniformShape,
        block_dim: u32,
    ) -> LaunchConfig {
        LaunchConfig::cover_batch(points, shape.total_monomials(), block_dim)
    }

    /// Grid covering `points` batch entries of the output-indexed
    /// kernel (3).
    pub fn output_cfg(&self, points: usize, shape: &UniformShape, block_dim: u32) -> LaunchConfig {
        LaunchConfig::cover_batch(points, shape.outputs(), block_dim)
    }
}

/// Batched kernel 1: common factors of every monomial at every point.
pub struct BatchCommonFactorKernel {
    pub enc: EncodedSupports,
    /// Input points (`capacity × vars_stride` elements).
    pub vars: BufferId,
    /// Output common factors (`capacity × cf_stride` elements).
    pub out: BufferId,
    pub layout: BatchLayout,
}

impl BatchCommonFactorKernel {
    fn power_rows(&self) -> usize {
        self.enc.shape.d as usize
    }
}

impl<R: Real> Kernel<Complex<R>> for BatchCommonFactorKernel {
    fn name(&self) -> &str {
        "batch_common_factor"
    }

    /// Same per-block shared table as the single-point kernel.
    fn shared_elems(&self, _block_dim: u32) -> usize {
        self.power_rows() * self.enc.shape.n
    }

    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.enc.shape;
        let n = shape.n;
        let k = shape.k;
        let total = shape.total_monomials();
        let rows = self.power_rows();
        let block_dim = blk.block_dim() as usize;
        // Point-major grid decode; uniform per block, so not traced
        // (on hardware this is hoisted into two registers).
        let point = (blk.block_id() / self.layout.mon_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.mon_blocks) as usize;
        let vbase = point * self.layout.vars_stride;
        let obase = point * self.layout.cf_stride;

        // Stage 1: this point's power table, exactly as the
        // single-point kernel builds it.
        blk.threads(|t| {
            let mut v = t.tid() as usize;
            while v < n {
                let xv = t.gload(self.vars, vbase + v);
                t.sstore(v, Complex::one());
                if rows > 1 {
                    t.sstore(n + v, xv);
                    let mut cur = xv;
                    for r in 2..rows {
                        cur = t.mul(cur, xv);
                        t.sstore(r * n + v, cur);
                    }
                }
                v += block_dim;
            }
        });

        // Stage 2: one common factor per thread into this point's
        // region.
        blk.threads(|t| {
            let g = chunk * block_dim + t.tid() as usize;
            if g >= total {
                return;
            }
            let (v0, e0) = self.enc.read_factor(t, g, 0);
            let mut cf = t.sload(e0 * n + v0);
            for j in 1..k {
                let (v, e) = self.enc.read_factor(t, g, j);
                let p = t.sload(e * n + v);
                cf = t.mul(cf, p);
            }
            t.gstore(self.out, obase + g, cf);
        });
    }
}

/// Batched form of the rejected from-scratch alternative (ablation A1),
/// so the batch engine supports the same `GpuOptions` as the
/// single-point pipeline.
pub struct BatchCommonFactorFromScratch {
    pub enc: EncodedSupports,
    pub vars: BufferId,
    pub out: BufferId,
    pub layout: BatchLayout,
}

impl<R: Real> Kernel<Complex<R>> for BatchCommonFactorFromScratch {
    fn name(&self) -> &str {
        "batch_common_factor_from_scratch"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        0
    }

    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.enc.shape;
        let k = shape.k;
        let total = shape.total_monomials();
        let block_dim = blk.block_dim() as usize;
        let point = (blk.block_id() / self.layout.mon_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.mon_blocks) as usize;
        let vbase = point * self.layout.vars_stride;
        let obase = point * self.layout.cf_stride;
        blk.threads(|t| {
            let g = chunk * block_dim + t.tid() as usize;
            if g >= total {
                return;
            }
            let mut cf = Complex::<R>::one();
            for j in 0..k {
                let (v, e_m1) = self.enc.read_factor(t, g, j);
                let xv = t.gload(self.vars, vbase + v);
                let mut pw = Complex::<R>::one();
                for _ in 0..e_m1 {
                    pw = t.mul(pw, xv);
                }
                cf = t.mul(cf, pw);
            }
            t.gstore(self.out, obase + g, cf);
        });
    }
}

/// Batched kernel 2: Speelpenning products, derivatives, coefficients
/// and the scattered `Mons` writes for every point.
pub struct BatchSpeelpenningKernel {
    pub enc: EncodedSupports,
    pub vars: BufferId,
    pub common_factors: BufferId,
    /// Shared (not per-point) derivative-major coefficient array.
    pub coeffs: BufferId,
    pub mons: BufferId,
    pub layout: BatchLayout,
}

impl<R: Real> Kernel<Complex<R>> for BatchSpeelpenningKernel {
    fn name(&self) -> &str {
        "batch_speelpenning"
    }

    /// Same per-block budget as the single-point kernel: the `n`
    /// variable values of this block's point plus `B·(k+1)` scratch.
    fn shared_elems(&self, block_dim: u32) -> usize {
        self.enc.shape.n + block_dim as usize * (self.enc.shape.k + 1)
    }

    // Mirrors the single-point kernel's paper-notation loops.
    #[allow(clippy::needless_range_loop)]
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.enc.shape;
        let (n, m, k) = (shape.n, shape.m, shape.k);
        let total = shape.total_monomials();
        let block_dim = blk.block_dim() as usize;
        let point = (blk.block_id() / self.layout.mon_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.mon_blocks) as usize;
        let vbase = point * self.layout.vars_stride;
        let cfbase = point * self.layout.cf_stride;
        let mbase = point * self.layout.mons_stride;

        // Phase 1: stage this point's variables into shared memory.
        blk.threads(|t| {
            let mut v = t.tid() as usize;
            while v < n {
                let xv = t.gload(self.vars, vbase + v);
                t.sstore(v, xv);
                v += block_dim;
            }
        });

        // Phase 2: one monomial per thread, exactly the single-point
        // program with offset global accesses.
        blk.threads(|t| {
            let tid = t.tid() as usize;
            let g = chunk * block_dim + tid;
            if g >= total {
                return;
            }
            let p = g / m;
            let j = g % m;
            t.iops(2);

            let mut vs = [0usize; 256];
            for i in 0..k {
                vs[i] = self.enc.read_position(t, g, i);
            }
            let lbase = n + tid * (k + 1);
            let l = |i: usize| lbase + i - 1;
            macro_rules! xi {
                ($t:expr, $idx:expr) => {
                    $t.sload(vs[$idx])
                };
            }

            match k {
                1 => {
                    t.sstore(l(1), Complex::one());
                }
                2 => {
                    let x2 = xi!(t, 1);
                    t.sstore(l(1), x2);
                    let x1 = xi!(t, 0);
                    t.sstore(l(2), x1);
                }
                _ => {
                    let x1 = xi!(t, 0);
                    t.sstore(l(2), x1);
                    for r in 1..=k - 2 {
                        let prev = t.sload(l(r + 1));
                        let xr = xi!(t, r);
                        let f = t.mul(prev, xr);
                        t.sstore(l(r + 2), f);
                    }
                    let mut q = xi!(t, k - 1);
                    let lk1 = t.sload(l(k - 1));
                    let d = t.mul(lk1, q);
                    t.sstore(l(k - 1), d);
                    for r in 1..=k.saturating_sub(3) {
                        let xv = xi!(t, k - 1 - r);
                        q = t.mul(q, xv);
                        let prev = t.sload(l(k - r - 1));
                        let d = t.mul(prev, q);
                        t.sstore(l(k - r - 1), d);
                    }
                    let x2 = xi!(t, 1);
                    q = t.mul(q, x2);
                    t.sstore(l(1), q);
                }
            }

            let cf = t.gload(self.common_factors, cfbase + g);
            for i in 1..=k {
                let d = t.sload(l(i));
                let d = t.mul(d, cf);
                t.sstore(l(i), d);
            }
            let dk = t.sload(l(k));
            let xik = xi!(t, k - 1);
            let mv = t.mul(dk, xik);
            t.sstore(l(k + 1), mv);

            let c = t.gload(self.coeffs, coeff_index(&shape, k, g));
            let lv = t.sload(l(k + 1));
            let val = t.mul(lv, c);
            t.gstore(self.mons, mbase + term_slot(&shape, j, q_value(p)), val);
            for i in 0..k {
                let c = t.gload(self.coeffs, coeff_index(&shape, i, g));
                let d = t.sload(l(i + 1));
                let dv = t.mul(d, c);
                // Derivative groups stride by the block's row count
                // (== n for square systems, the paper's layout).
                t.gstore(
                    self.mons,
                    mbase + term_slot(&shape, j, q_deriv(shape.rows, p, vs[i])),
                    dv,
                );
            }
        });
    }
}

/// Batched kernel 3: the branch-free summations for every point.
pub struct BatchSumKernel {
    pub shape: UniformShape,
    pub mons: BufferId,
    pub out: BufferId,
    pub layout: BatchLayout,
}

impl<R: Real> Kernel<Complex<R>> for BatchSumKernel {
    fn name(&self) -> &str {
        "batch_sum"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        0
    }

    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.shape;
        let outputs = shape.outputs();
        let block_dim = blk.block_dim() as usize;
        let point = (blk.block_id() / self.layout.out_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.out_blocks) as usize;
        let mbase = point * self.layout.mons_stride;
        let obase = point * self.layout.out_stride;
        blk.threads(|t| {
            let q = chunk * block_dim + t.tid() as usize;
            if q >= outputs {
                return;
            }
            let mut acc = Complex::<R>::zero();
            for j in 0..shape.m {
                let term = t.gload(self.mons, mbase + term_slot(&shape, j, q));
                acc = t.add(acc, term);
            }
            t.gstore(self.out, obase + q, acc);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_pitches_to_the_coalescing_segment() {
        let shape = UniformShape {
            n: 33,
            rows: 33,
            m: 3,
            k: 5,
            d: 3,
        };
        let l = BatchLayout::new(&shape, 4, 32, 16, 128);
        assert_eq!(l.capacity, 4);
        assert_eq!(l.vars_stride, 40); // 33 -> next multiple of 8
        assert_eq!(l.cf_stride, (33 * 3usize).next_multiple_of(8));
        assert_eq!(l.mons_stride, ((33 * 33 + 33) * 3usize).next_multiple_of(8));
        assert_eq!(l.out_stride, (33 * 33 + 33usize).next_multiple_of(8));
        assert_eq!(l.mon_blocks, LaunchConfig::blocks_for(99, 32));
        assert_eq!(l.out_blocks, LaunchConfig::blocks_for(33 * 34, 32));
    }

    #[test]
    fn layout_grids_scale_with_points() {
        let shape = UniformShape {
            n: 8,
            rows: 8,
            m: 4,
            k: 2,
            d: 2,
        };
        let l = BatchLayout::new(&shape, 16, 32, 16, 128);
        assert_eq!(l.monomial_cfg(1, &shape, 32).grid_dim, l.mon_blocks);
        assert_eq!(l.monomial_cfg(16, &shape, 32).grid_dim, 16 * l.mon_blocks);
        assert_eq!(l.output_cfg(7, &shape, 32).grid_dim, 7 * l.out_blocks);
    }

    #[test]
    fn double_double_elements_pitch_wider() {
        let shape = UniformShape {
            n: 6,
            rows: 6,
            m: 2,
            k: 2,
            d: 2,
        };
        // 32-byte complex double-doubles: 4 elements per 128-byte
        // segment.
        let l = BatchLayout::new(&shape, 2, 32, 32, 128);
        assert_eq!(l.vars_stride, 8);
        assert_eq!(l.out_stride, (6 * 7usize).next_multiple_of(4));
    }
}
