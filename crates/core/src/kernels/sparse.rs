//! Batched three-kernel pipeline for **ragged** systems on the packed
//! exponent-key encoding.
//!
//! Each kernel is the dense batch kernel with the uniform `k`/`m`
//! replaced by the per-monomial `k_g` (from the packed header) and the
//! zero-padded `max_m`-slot `Mons` layout. The floating-point operation
//! order per monomial is **identical** to the dense kernels' — and to
//! [`SparseAdEvaluator`](polygpu_polysys::SparseAdEvaluator), the CPU
//! reference — so sparse results are bit-for-bit equal to the reference
//! on every backend. Constant terms (`k_g == 0`) contribute their
//! coefficient to the value slot directly and no derivative slots.
//!
//! `Mons` slots a monomial does not own are never written: they keep
//! their zero initialization across evaluations (the write pattern is a
//! pure function of the supports), so the branch-free sum over all
//! `max_m` slots reads exactly the zero padding the CPU reference adds.

use crate::layout::coeffs::sparse_coeff_index;
use crate::layout::packed::PackedSupports;
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_polysys::SparseShape;

/// Per-point strides and inner block counts of a ragged batched launch
/// — the sparse analogue of [`BatchLayout`](crate::kernels::BatchLayout).
#[derive(Debug, Clone, Copy)]
pub struct SparseBatchLayout {
    pub capacity: usize,
    pub vars_stride: usize,
    pub cf_stride: usize,
    pub mons_stride: usize,
    pub out_stride: usize,
    pub mon_blocks: u32,
    pub out_blocks: u32,
}

impl SparseBatchLayout {
    pub fn new(
        shape: &SparseShape,
        capacity: usize,
        block_dim: u32,
        elem_bytes: usize,
        segment: usize,
    ) -> Self {
        let pitch = |len: usize| {
            let seg_elems = (segment / elem_bytes).max(1);
            len.next_multiple_of(seg_elems)
        };
        SparseBatchLayout {
            capacity,
            vars_stride: pitch(shape.n),
            cf_stride: pitch(shape.total_monomials),
            mons_stride: pitch(shape.mons_len()),
            out_stride: pitch(shape.outputs()),
            mon_blocks: LaunchConfig::blocks_for(shape.total_monomials, block_dim),
            out_blocks: LaunchConfig::blocks_for(shape.outputs(), block_dim),
        }
    }

    /// Grid covering `points` batch entries of the monomial-indexed
    /// kernels (1 and 2).
    pub fn monomial_cfg(&self, points: usize, shape: &SparseShape, block_dim: u32) -> LaunchConfig {
        LaunchConfig::cover_batch(points, shape.total_monomials, block_dim)
    }

    /// Grid covering `points` batch entries of the output-indexed
    /// kernel (3).
    pub fn output_cfg(&self, points: usize, shape: &SparseShape, block_dim: u32) -> LaunchConfig {
        LaunchConfig::cover_batch(points, shape.outputs(), block_dim)
    }
}

/// Slot of monomial-slot `j`'s contribution to output `q` in a point's
/// sparse `Mons` region.
#[inline]
fn term_slot(outputs: usize, j: usize, q: usize) -> usize {
    j * outputs + q
}

#[inline]
fn q_value(p: usize) -> usize {
    p
}

#[inline]
fn q_deriv(rows: usize, p: usize, v: usize) -> usize {
    rows * (1 + v) + p
}

/// Sparse kernel 1: common factors of every monomial at every point,
/// with per-monomial factor counts.
pub struct SparseCommonFactorKernel {
    pub sup: PackedSupports,
    pub vars: BufferId,
    pub out: BufferId,
    pub layout: SparseBatchLayout,
}

impl SparseCommonFactorKernel {
    fn power_rows(&self) -> usize {
        self.sup.shape.d as usize
    }
}

impl<R: Real> Kernel<Complex<R>> for SparseCommonFactorKernel {
    fn name(&self) -> &str {
        "sparse_common_factor"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        self.power_rows() * self.sup.shape.n
    }

    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.sup.shape;
        let n = shape.n;
        let total = shape.total_monomials;
        let rows = self.power_rows();
        let block_dim = blk.block_dim() as usize;
        let point = (blk.block_id() / self.layout.mon_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.mon_blocks) as usize;
        let vbase = point * self.layout.vars_stride;
        let obase = point * self.layout.cf_stride;

        // Stage 1: this point's power table, exactly as the dense
        // kernel builds it.
        blk.threads(|t| {
            let mut v = t.tid() as usize;
            while v < n {
                let xv = t.gload(self.vars, vbase + v);
                t.sstore(v, Complex::one());
                if rows > 1 {
                    t.sstore(n + v, xv);
                    let mut cur = xv;
                    for r in 2..rows {
                        cur = t.mul(cur, xv);
                        t.sstore(r * n + v, cur);
                    }
                }
                v += block_dim;
            }
        });

        // Stage 2: one common factor per thread; the factor count comes
        // from the monomial's header.
        blk.threads(|t| {
            let g = chunk * block_dim + t.tid() as usize;
            if g >= total {
                return;
            }
            let (k, _p, _j) = self.sup.read_header(t, g);
            if k == 0 {
                // Constant term: kernel 2 never reads its common
                // factor, but every monomial slot stays defined.
                t.gstore(self.out, obase + g, Complex::one());
                return;
            }
            let (v0, e0) = self.sup.read_factor(t, g, 0);
            let mut cf = t.sload(e0 * n + v0);
            for j in 1..k {
                let (v, e) = self.sup.read_factor(t, g, j);
                let p = t.sload(e * n + v);
                cf = t.mul(cf, p);
            }
            t.gstore(self.out, obase + g, cf);
        });
    }
}

/// Sparse kernel 2: Speelpenning products, derivative and value
/// coefficients, and the scattered `Mons` writes — per-monomial `k`.
pub struct SparseSpeelpenningKernel {
    pub sup: PackedSupports,
    pub vars: BufferId,
    pub common_factors: BufferId,
    pub coeffs: BufferId,
    pub mons: BufferId,
    pub layout: SparseBatchLayout,
}

impl<R: Real> Kernel<Complex<R>> for SparseSpeelpenningKernel {
    fn name(&self) -> &str {
        "sparse_speelpenning"
    }

    /// `n` staged variables plus `B·(max_k + 1)` per-thread scratch.
    fn shared_elems(&self, block_dim: u32) -> usize {
        self.sup.shape.n + block_dim as usize * (self.sup.shape.max_k + 1)
    }

    #[allow(clippy::needless_range_loop)]
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.sup.shape;
        let n = shape.n;
        let max_k = shape.max_k;
        let total = shape.total_monomials;
        let outputs = shape.outputs();
        let block_dim = blk.block_dim() as usize;
        let point = (blk.block_id() / self.layout.mon_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.mon_blocks) as usize;
        let vbase = point * self.layout.vars_stride;
        let cfbase = point * self.layout.cf_stride;
        let mbase = point * self.layout.mons_stride;

        // Phase 1: stage this point's variables into shared memory.
        blk.threads(|t| {
            let mut v = t.tid() as usize;
            while v < n {
                let xv = t.gload(self.vars, vbase + v);
                t.sstore(v, xv);
                v += block_dim;
            }
        });

        // Phase 2: one monomial per thread — the dense program with
        // this monomial's own k.
        blk.threads(|t| {
            let tid = t.tid() as usize;
            let g = chunk * block_dim + tid;
            if g >= total {
                return;
            }
            let (k, p, j) = self.sup.read_header(t, g);
            if k == 0 {
                // Constant term: value slot takes the coefficient
                // verbatim, no derivatives.
                let c = t.gload(self.coeffs, sparse_coeff_index(total, max_k, g));
                t.gstore(self.mons, mbase + term_slot(outputs, j, q_value(p)), c);
                return;
            }

            let mut vs = [0usize; 256];
            for i in 0..k {
                vs[i] = self.sup.read_position(t, g, i);
            }
            let lbase = n + tid * (max_k + 1);
            let l = |i: usize| lbase + i - 1;
            macro_rules! xi {
                ($t:expr, $idx:expr) => {
                    $t.sload(vs[$idx])
                };
            }

            match k {
                1 => {
                    t.sstore(l(1), Complex::one());
                }
                2 => {
                    let x2 = xi!(t, 1);
                    t.sstore(l(1), x2);
                    let x1 = xi!(t, 0);
                    t.sstore(l(2), x1);
                }
                _ => {
                    let x1 = xi!(t, 0);
                    t.sstore(l(2), x1);
                    for r in 1..=k - 2 {
                        let prev = t.sload(l(r + 1));
                        let xr = xi!(t, r);
                        let f = t.mul(prev, xr);
                        t.sstore(l(r + 2), f);
                    }
                    let mut q = xi!(t, k - 1);
                    let lk1 = t.sload(l(k - 1));
                    let d = t.mul(lk1, q);
                    t.sstore(l(k - 1), d);
                    for r in 1..=k.saturating_sub(3) {
                        let xv = xi!(t, k - 1 - r);
                        q = t.mul(q, xv);
                        let prev = t.sload(l(k - r - 1));
                        let d = t.mul(prev, q);
                        t.sstore(l(k - r - 1), d);
                    }
                    let x2 = xi!(t, 1);
                    q = t.mul(q, x2);
                    t.sstore(l(1), q);
                }
            }

            let cf = t.gload(self.common_factors, cfbase + g);
            for i in 1..=k {
                let d = t.sload(l(i));
                let d = t.mul(d, cf);
                t.sstore(l(i), d);
            }
            let dk = t.sload(l(k));
            let xik = xi!(t, k - 1);
            let mv = t.mul(dk, xik);
            t.sstore(l(k + 1), mv);

            let c = t.gload(self.coeffs, sparse_coeff_index(total, max_k, g));
            let lv = t.sload(l(k + 1));
            let val = t.mul(lv, c);
            t.gstore(self.mons, mbase + term_slot(outputs, j, q_value(p)), val);
            for i in 0..k {
                let c = t.gload(self.coeffs, sparse_coeff_index(total, i, g));
                let d = t.sload(l(i + 1));
                let dv = t.mul(d, c);
                t.gstore(
                    self.mons,
                    mbase + term_slot(outputs, j, q_deriv(shape.rows, p, vs[i])),
                    dv,
                );
            }
        });
    }
}

/// Sparse kernel 3: branch-free sums over all `max_m` slots (zero
/// padding included — those additions matter bitwise).
pub struct SparseSumKernel {
    pub shape: SparseShape,
    pub mons: BufferId,
    pub out: BufferId,
    pub layout: SparseBatchLayout,
}

impl<R: Real> Kernel<Complex<R>> for SparseSumKernel {
    fn name(&self) -> &str {
        "sparse_sum"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        0
    }

    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.shape;
        let outputs = shape.outputs();
        let block_dim = blk.block_dim() as usize;
        let point = (blk.block_id() / self.layout.out_blocks) as usize;
        let chunk = (blk.block_id() % self.layout.out_blocks) as usize;
        let mbase = point * self.layout.mons_stride;
        let obase = point * self.layout.out_stride;
        blk.threads(|t| {
            let q = chunk * block_dim + t.tid() as usize;
            if q >= outputs {
                return;
            }
            let mut acc = Complex::<R>::zero();
            for j in 0..shape.max_m {
                let term = t.gload(self.mons, mbase + term_slot(outputs, j, q));
                acc = t.add(acc, term);
            }
            t.gstore(self.out, obase + q, acc);
        });
    }
}
