//! Kernel 1: common-factor calculation (paper §3.1).
//!
//! Two stages inside one kernel, separated by a barrier:
//!
//! 1. each of the first `n` threads of the block computes,
//!    *sequentially*, the powers `x_v^2 … x_v^{d−1}` of one variable
//!    into the shared `Powers` table (row-major by power so concurrent
//!    writes land in different banks);
//! 2. each thread computes the common factor
//!    `x_{i1}^{a1−1} · … · x_{ik}^{ak−1}` of one monomial as a product
//!    of `k` table entries (`k − 1` multiplications) and writes it to
//!    global memory coalesced (thread `t` of block `b` owns monomial
//!    `g = b·B + t`).
//!
//! Rows 0 (`x^0 = 1`) and 1 (`x^1`) are materialized in the table so
//! stage 2 is branch-free even when exponents are 1 — every lane of a
//! warp executes the same `k − 1` multiplications.
//!
//! The paper argues (at length) that recomputing the power table in
//! every block beats a separate powers kernel round-tripping through
//! global memory; [`CommonFactorFromScratch`] below implements the
//! *other* rejected alternative — no table at all — for the ablation
//! benchmark, exhibiting the warp divergence the paper predicts.

use crate::kernels::batch::BatchLayout;
use crate::layout::encoding::EncodedSupports;
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;

/// The paper's two-stage common-factor kernel.
pub struct CommonFactorKernel {
    pub enc: EncodedSupports,
    /// Input point `x` (length `n`).
    pub vars: BufferId,
    /// Output: one common factor per monomial (length `n·m`).
    pub out: BufferId,
}

impl CommonFactorKernel {
    /// Shared `Powers` table rows: powers `0 ..= d−1` (the common
    /// factor's exponents are `a − 1 ∈ 0 ..= d−1`).
    fn power_rows(&self) -> usize {
        self.enc.shape.d as usize
    }
}

impl<R: Real> Kernel<Complex<R>> for CommonFactorKernel {
    fn name(&self) -> &str {
        "common_factor"
    }

    /// `Powers` is `rows × n` elements.
    fn shared_elems(&self, _block_dim: u32) -> usize {
        self.power_rows() * self.enc.shape.n
    }

    /// The canonical block program lives in
    /// [`crate::kernels::batch::BatchCommonFactorKernel`]; a
    /// single-point launch is the degenerate batch where the whole
    /// grid serves point 0 ([`BatchLayout::single`]).
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        crate::kernels::batch::BatchCommonFactorKernel {
            enc: self.enc,
            vars: self.vars,
            out: self.out,
            layout: BatchLayout::single(blk.grid_dim()),
        }
        .run_block(blk);
    }
}

/// The rejected alternative of §3.1: every thread exponentiates its own
/// variables from scratch, in registers, with no shared table.
///
/// "However this would introduce branching in execution of threads of a
/// warp when monomials would have different tuples of exponents" — the
/// simulator's divergence counter confirms it, and the flop counters
/// show the redundant exponentiations.
pub struct CommonFactorFromScratch {
    pub enc: EncodedSupports,
    pub vars: BufferId,
    pub out: BufferId,
}

impl<R: Real> Kernel<Complex<R>> for CommonFactorFromScratch {
    fn name(&self) -> &str {
        "common_factor_from_scratch"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        0
    }

    /// Delegates to
    /// [`crate::kernels::batch::BatchCommonFactorFromScratch`] as the
    /// degenerate single-point batch.
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        crate::kernels::batch::BatchCommonFactorFromScratch {
            enc: self.enc,
            vars: self.vars,
            out: self.out,
            layout: BatchLayout::single(blk.grid_dim()),
        }
        .run_block(blk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::encoding::EncodingKind;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_point, random_system, BenchmarkParams, System};

    #[allow(clippy::type_complexity)] // test rig returns the full fixture
    fn setup(
        params: &BenchmarkParams,
    ) -> (
        DeviceSpec,
        System<f64>,
        GlobalMem<C64>,
        ConstantMemory,
        EncodedSupports,
        BufferId,
        BufferId,
        Vec<C64>,
    ) {
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(params);
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap();
        let mut g = GlobalMem::new();
        let vars = g.alloc(params.n);
        let out = g.alloc(enc.shape.total_monomials());
        let x = random_point::<f64>(params.n, 77);
        g.host_write(vars, 0, &x);
        (dev, sys, g, cm, enc, vars, out, x)
    }

    fn expected_cf(sys: &System<f64>, x: &[C64]) -> Vec<C64> {
        let mut expect = Vec::new();
        for poly in sys.polys() {
            for term in poly.terms() {
                let mut cf = C64::one();
                for &(v, e) in term.monomial.factors() {
                    cf *= x[v as usize].powi(e as i32 - 1);
                }
                expect.push(cf);
            }
        }
        expect
    }

    #[test]
    fn computes_common_factors_divergence_free() {
        let params = BenchmarkParams {
            n: 32,
            m: 4,
            k: 9,
            d: 4,
            seed: 3,
        };
        let (dev, sys, mut g, cm, enc, vars, out, x) = setup(&params);
        let kernel = CommonFactorKernel { enc, vars, out };
        let cfg = LaunchConfig::cover(enc.shape.total_monomials(), 32);
        let report = launch(&dev, &kernel, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        assert_eq!(
            report.counters.divergent_segments, 0,
            "paper's design is uniform"
        );
        let got = g.host_read(out);
        for (i, want) in expected_cf(&sys, &x).iter().enumerate() {
            assert!(
                (got[i] - *want).abs() < 1e-12,
                "cf {i}: {} vs {want}",
                got[i]
            );
        }
    }

    #[test]
    fn multiplication_count_matches_model() {
        // Stage 1: n*(d-2) muls per block; stage 2: k-1 per monomial.
        let params = BenchmarkParams {
            n: 32,
            m: 2, // 64 monomials, 2 blocks
            k: 5,
            d: 6,
            seed: 9,
        };
        let (dev, _sys, mut g, cm, enc, vars, out, _x) = setup(&params);
        let kernel = CommonFactorKernel { enc, vars, out };
        let cfg = LaunchConfig::cover(64, 32);
        let report = launch(&dev, &kernel, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        let blocks = 2u64;
        let expected_muls = blocks * 32 * (6 - 2) + 64 * (5 - 1);
        // 6 f64 flops per complex multiplication.
        assert_eq!(report.counters.flops, expected_muls * 6);
    }

    #[test]
    fn from_scratch_variant_matches_values_but_diverges() {
        let params = BenchmarkParams {
            n: 16,
            m: 4,
            k: 4,
            d: 5,
            seed: 21,
        };
        let (dev, sys, mut g, cm, enc, vars, out, x) = setup(&params);
        let kernel = CommonFactorFromScratch { enc, vars, out };
        let cfg = LaunchConfig::cover(enc.shape.total_monomials(), 32);
        let report = launch(&dev, &kernel, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        let got = g.host_read(out);
        for (i, want) in expected_cf(&sys, &x).iter().enumerate() {
            assert!((got[i] - *want).abs() < 1e-12, "cf {i}");
        }
        // Random exponents in 1..=5 across a warp: divergence is
        // practically certain at this size.
        assert!(
            report.counters.divergent_segments > 0,
            "expected the paper's predicted divergence"
        );
    }

    #[test]
    fn two_stage_beats_from_scratch_on_modeled_cycles_at_high_degree() {
        // The design-choice ablation (A1) in miniature: with d large and
        // exponents varied, the table amortizes exponentiation.
        let params = BenchmarkParams {
            n: 32,
            m: 16,
            k: 8,
            d: 12,
            seed: 4,
        };
        let (dev, _sys, mut g, cm, enc, vars, out, _x) = setup(&params);
        let cfg = LaunchConfig::cover(enc.shape.total_monomials(), 32);
        let r1 = launch(
            &dev,
            &CommonFactorKernel { enc, vars, out },
            cfg,
            &mut g,
            &cm,
            LaunchOptions::default(),
        )
        .unwrap();
        let r2 = launch(
            &dev,
            &CommonFactorFromScratch { enc, vars, out },
            cfg,
            &mut g,
            &cm,
            LaunchOptions::default(),
        )
        .unwrap();
        assert!(
            r2.counters.flops > r1.counters.flops,
            "from-scratch redoes exponentiations: {} vs {}",
            r2.counters.flops,
            r1.counters.flops
        );
    }

    #[test]
    fn d1_systems_need_no_power_rows_beyond_ones() {
        // All exponents are 1: common factors are all one.
        let params = BenchmarkParams {
            n: 8,
            m: 2,
            k: 3,
            d: 1,
            seed: 2,
        };
        let (dev, _sys, mut g, cm, enc, vars, out, _x) = setup(&params);
        let kernel = CommonFactorKernel { enc, vars, out };
        let cfg = LaunchConfig::cover(16, 32);
        launch(&dev, &kernel, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        for v in g.host_read(out) {
            assert_eq!(*v, C64::one());
        }
    }
}
