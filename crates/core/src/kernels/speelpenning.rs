//! Kernel 2: monomial evaluation and differentiation via the
//! Speelpenning product (paper §3.2).
//!
//! One thread per monomial. The thread:
//!
//! 1. computes all `k` partial derivatives of the Speelpenning product
//!    `x_{i1}···x_{ik}` in `3k − 6` multiplications, using forward
//!    products in shared locations `L2…Lk` and a backward product in
//!    the register `Q`;
//! 2. multiplies the `k` derivatives by the common factor from
//!    kernel 1 (`k` multiplications) and recovers the monomial value as
//!    `L_k · x_{ik}` into `L_{k+1}` (1 multiplication);
//! 3. multiplies the `k + 1` values by their coefficients from the
//!    derivative-major `Coeffs` array (`k + 1` multiplications,
//!    coalesced reads) and scatters them into the `Mons` array — the
//!    deliberately uncoalesced side of the §3.3 tradeoff that buys
//!    kernel 3 its coalesced reads.
//!
//! Total: `5k − 4` multiplications per thread, identical instruction
//! sequence for every lane (k is fixed system-wide), hence no
//! divergence.
//!
//! Shared memory per block: the `n` variable values (loaded once,
//! coalesced, shared by all threads — §3.2's memory consideration) plus
//! `B·(k + 1)` scratch locations.

use crate::layout::coeffs::coeff_index;
use crate::layout::encoding::EncodedSupports;
use crate::layout::mons::{q_deriv, q_value, term_slot};
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;

/// The paper's second kernel.
pub struct SpeelpenningKernel {
    pub enc: EncodedSupports,
    /// Input point `x` (length `n`).
    pub vars: BufferId,
    /// Common factors from kernel 1 (length `n·m`).
    pub common_factors: BufferId,
    /// Derivative-major coefficient array (length `n·m·(k+1)`).
    pub coeffs: BufferId,
    /// Output terms, `Mons` layout (length `(n²+n)·m`).
    pub mons: BufferId,
}

impl<R: Real> Kernel<Complex<R>> for SpeelpenningKernel {
    fn name(&self) -> &str {
        "speelpenning"
    }

    /// `n` shared variable values + `B·(k+1)` locations `L1..L_{k+1}`.
    fn shared_elems(&self, block_dim: u32) -> usize {
        self.enc.shape.n + block_dim as usize * (self.enc.shape.k + 1)
    }

    // Indexed loops below deliberately mirror the paper's 1-based
    // L/position notation rather than iterator chains.
    #[allow(clippy::needless_range_loop)]
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        let shape = self.enc.shape;
        let (n, m, k) = (shape.n, shape.m, shape.k);
        let total = shape.total_monomials();
        let block_dim = blk.block_dim() as usize;
        let block_id = blk.block_id() as usize;

        // Phase 1: stage the variable values into shared memory with one
        // coalesced global read per warp-worth of variables.
        blk.threads(|t| {
            let mut v = t.tid() as usize;
            while v < n {
                let xv = t.gload(self.vars, v);
                t.sstore(v, xv);
                v += block_dim;
            }
        });

        // Phase 2: one monomial per thread.
        blk.threads(|t| {
            let tid = t.tid() as usize;
            let g = block_id * block_dim + tid;
            if g >= total {
                return;
            }
            // Sm order is polynomial-major: g = p*m + j.
            let p = g / m;
            let j = g % m;
            t.iops(2); // the div/mod address arithmetic

            // Variable positions of this monomial (constant memory; the
            // same Positions array kernel 1 used).
            let mut vs = [0usize; 256];
            for i in 0..k {
                vs[i] = self.enc.read_position(t, g, i);
            }
            // L locations live in shared memory after the n variables;
            // 1-based as in the paper: L(i) for i in 1..=k+1.
            let lbase = n + tid * (k + 1);
            let l = |i: usize| lbase + i - 1;
            // x_{i_{idx+1}} from the shared variable table.
            macro_rules! xi {
                ($t:expr, $idx:expr) => {
                    $t.sload(vs[$idx])
                };
            }

            // --- Derivatives of the Speelpenning product (3k − 6). ---
            match k {
                1 => {
                    t.sstore(l(1), Complex::one());
                }
                2 => {
                    let x2 = xi!(t, 1);
                    t.sstore(l(1), x2);
                    let x1 = xi!(t, 0);
                    t.sstore(l(2), x1);
                }
                _ => {
                    // Forward products into L2..Lk (k − 2 muls).
                    let x1 = xi!(t, 0);
                    t.sstore(l(2), x1);
                    for r in 1..=k - 2 {
                        let prev = t.sload(l(r + 1));
                        let xr = xi!(t, r);
                        let f = t.mul(prev, xr);
                        t.sstore(l(r + 2), f);
                    }
                    // Backward product in the register q.
                    let mut q = xi!(t, k - 1);
                    let lk1 = t.sload(l(k - 1));
                    let d = t.mul(lk1, q);
                    t.sstore(l(k - 1), d);
                    // Middle steps: 2 muls each.
                    for r in 1..=k.saturating_sub(3) {
                        let xv = xi!(t, k - 1 - r);
                        q = t.mul(q, xv);
                        let prev = t.sload(l(k - r - 1));
                        let d = t.mul(prev, q);
                        t.sstore(l(k - r - 1), d);
                    }
                    // Derivative w.r.t. x_{i1} into L1.
                    let x2 = xi!(t, 1);
                    q = t.mul(q, x2);
                    t.sstore(l(1), q);
                }
            }

            // --- Common factor and monomial value (k + 1 muls). ---
            let cf = t.gload(self.common_factors, g); // coalesced
            for i in 1..=k {
                let d = t.sload(l(i));
                let d = t.mul(d, cf);
                t.sstore(l(i), d);
            }
            let dk = t.sload(l(k));
            let xik = xi!(t, k - 1);
            let mv = t.mul(dk, xik);
            t.sstore(l(k + 1), mv);

            // --- Coefficients (k + 1 muls) and scattered Mons writes. ---
            let c = t.gload(self.coeffs, coeff_index(&shape, k, g)); // coalesced
            let lv = t.sload(l(k + 1));
            let val = t.mul(lv, c);
            t.gstore(self.mons, term_slot(&shape, j, q_value(p)), val);
            for i in 0..k {
                let c = t.gload(self.coeffs, coeff_index(&shape, i, g)); // coalesced
                let d = t.sload(l(i + 1));
                let dv = t.mul(d, c);
                t.gstore(self.mons, term_slot(&shape, j, q_deriv(n, p, vs[i])), dv);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::common_factor::CommonFactorKernel;
    use crate::layout::coeffs::build_coeffs;
    use crate::layout::encoding::EncodingKind;
    use crate::layout::mons::mons_len;
    use polygpu_complex::C64;
    use polygpu_polysys::cost;
    use polygpu_polysys::{random_point, random_system, BenchmarkParams};

    struct Rig {
        dev: DeviceSpec,
        g: GlobalMem<C64>,
        cm: ConstantMemory,
        enc: EncodedSupports,
        kernel: SpeelpenningKernel,
        cf_kernel: CommonFactorKernel,
    }

    fn rig(params: &BenchmarkParams) -> Rig {
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(params);
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap();
        let shape = enc.shape;
        let mut g = GlobalMem::new();
        let vars = g.alloc(shape.n);
        let cf = g.alloc(shape.total_monomials());
        let coeffs = g.alloc(shape.total_monomials() * (shape.k + 1));
        let mons = g.alloc(mons_len(&shape));
        g.host_write(vars, 0, &random_point::<f64>(shape.n, 123));
        g.host_write(coeffs, 0, &build_coeffs(&sys, &shape));
        Rig {
            dev,
            g,
            cm,
            enc,
            kernel: SpeelpenningKernel {
                enc,
                vars,
                common_factors: cf,
                coeffs,
                mons,
            },
            cf_kernel: CommonFactorKernel {
                enc,
                vars,
                out: cf,
            },
        }
    }

    fn run(rig: &mut Rig) -> (LaunchReport, LaunchReport) {
        let cfg = LaunchConfig::cover(rig.enc.shape.total_monomials(), 32);
        let r1 = launch(
            &rig.dev,
            &rig.cf_kernel,
            cfg,
            &mut rig.g,
            &rig.cm,
            LaunchOptions::default(),
        )
        .unwrap();
        let r2 = launch(
            &rig.dev,
            &rig.kernel,
            cfg,
            &mut rig.g,
            &rig.cm,
            LaunchOptions::default(),
        )
        .unwrap();
        (r1, r2)
    }

    #[test]
    fn per_thread_multiplications_are_5k_minus_4() {
        for k in [2usize, 3, 5, 9, 16] {
            let params = BenchmarkParams {
                n: 32,
                m: 1, // one full block of monomials
                k,
                d: 3,
                seed: k as u64,
            };
            let mut r = rig(&params);
            let (_, rep) = run(&mut r);
            // 32 threads x (5k-4) complex muls x 6 flops each.
            let expect = 32 * cost::kernel2_muls(k) * 6;
            assert_eq!(
                rep.counters.flops, expect,
                "k = {k}: flops {} != {}",
                rep.counters.flops, expect
            );
            assert_eq!(rep.counters.divergent_segments, 0, "k = {k}");
        }
    }

    #[test]
    fn mons_gets_monomial_values_and_derivatives() {
        let params = BenchmarkParams {
            n: 6,
            m: 3,
            k: 3,
            d: 4,
            seed: 31,
        };
        let sys = random_system::<f64>(&params);
        let x = random_point::<f64>(6, 123);
        let mut r = rig(&params);
        run(&mut r);
        let shape = r.enc.shape;
        let mons = r.g.host_read(r.kernel.mons);
        // Check each written slot against directly computed values.
        let mut g_idx = 0usize;
        for (p, poly) in sys.polys().iter().enumerate() {
            for (j, term) in poly.terms().iter().enumerate() {
                // c * x^a
                let mut want = term.coeff;
                for &(v, e) in term.monomial.factors() {
                    want *= x[v as usize].powi(e as i32);
                }
                let got = mons[term_slot(&shape, j, q_value(p))];
                assert!((got - want).abs() < 1e-12, "value ({p},{j})");
                // derivatives
                for &(v, e) in term.monomial.factors() {
                    let mut dwant = term.coeff.scale(e as f64);
                    for &(w, f) in term.monomial.factors() {
                        let fe = if w == v { f - 1 } else { f };
                        dwant *= x[w as usize].powi(fe as i32);
                    }
                    let got = mons[term_slot(&shape, j, q_deriv(6, p, v as usize))];
                    assert!((got - dwant).abs() < 1e-12, "deriv ({p},{j},{v})");
                }
                g_idx += 1;
            }
        }
        assert_eq!(g_idx, shape.total_monomials());
    }

    #[test]
    fn zero_slots_stay_zero() {
        let params = BenchmarkParams {
            n: 6,
            m: 3,
            k: 2, // k << n: most derivative slots must remain zero
            d: 2,
            seed: 5,
        };
        let sys = random_system::<f64>(&params);
        let mut r = rig(&params);
        run(&mut r);
        let shape = r.enc.shape;
        let mons = r.g.host_read(r.kernel.mons);
        let mut zero_slots = 0;
        for (p, poly) in sys.polys().iter().enumerate() {
            for (j, term) in poly.terms().iter().enumerate() {
                for v in 0..6u16 {
                    if !term.monomial.contains(v) {
                        let got = mons[term_slot(&shape, j, q_deriv(6, p, v as usize))];
                        assert_eq!(got, C64::zero(), "slot ({p},{j},{v}) must stay zero");
                        zero_slots += 1;
                    }
                }
            }
        }
        // n*m*(n-k) zero derivative slots.
        assert_eq!(zero_slots, 6 * 3 * (6 - 2));
    }

    #[test]
    fn coefficient_reads_are_coalesced_and_mons_writes_are_not() {
        // The paper's 1,024-monomial configuration: each warp covers
        // exactly one polynomial (m = 32), so every Mons store slot is
        // 32 single-lane transactions while every load slot (variables,
        // common factor, coefficients) coalesces into 4.
        let params = BenchmarkParams {
            n: 32,
            m: 32,
            k: 9,
            d: 2,
            seed: 1,
        };
        let mut r = rig(&params);
        let (_, rep) = run(&mut r);
        let warps = 32u64; // 1024 monomials / 32 lanes
        let per_warp_loads = 1 + 1 + 10; // vars preload + cf + (k+1) coeffs
        let per_warp_stores = 10u64; // k+1 scattered Mons writes
        let expect = warps * (per_warp_loads * 4 + per_warp_stores * 32);
        assert_eq!(
            rep.counters.global_transactions, expect,
            "coalescing accounting changed: {} vs {}",
            rep.counters.global_transactions, expect
        );
        assert_eq!(rep.counters.divergent_segments, 0);
    }
}
