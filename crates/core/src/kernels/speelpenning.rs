//! Kernel 2: monomial evaluation and differentiation via the
//! Speelpenning product (paper §3.2).
//!
//! One thread per monomial. The thread:
//!
//! 1. computes all `k` partial derivatives of the Speelpenning product
//!    `x_{i1}···x_{ik}` in `3k − 6` multiplications, using forward
//!    products in shared locations `L2…Lk` and a backward product in
//!    the register `Q`;
//! 2. multiplies the `k` derivatives by the common factor from
//!    kernel 1 (`k` multiplications) and recovers the monomial value as
//!    `L_k · x_{ik}` into `L_{k+1}` (1 multiplication);
//! 3. multiplies the `k + 1` values by their coefficients from the
//!    derivative-major `Coeffs` array (`k + 1` multiplications,
//!    coalesced reads) and scatters them into the `Mons` array — the
//!    deliberately uncoalesced side of the §3.3 tradeoff that buys
//!    kernel 3 its coalesced reads.
//!
//! Total: `5k − 4` multiplications per thread, identical instruction
//! sequence for every lane (k is fixed system-wide), hence no
//! divergence.
//!
//! Shared memory per block: the `n` variable values (loaded once,
//! coalesced, shared by all threads — §3.2's memory consideration) plus
//! `B·(k + 1)` scratch locations.

use crate::kernels::batch::BatchLayout;
use crate::layout::encoding::EncodedSupports;
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;

/// The paper's second kernel.
pub struct SpeelpenningKernel {
    pub enc: EncodedSupports,
    /// Input point `x` (length `n`).
    pub vars: BufferId,
    /// Common factors from kernel 1 (length `n·m`).
    pub common_factors: BufferId,
    /// Derivative-major coefficient array (length `n·m·(k+1)`).
    pub coeffs: BufferId,
    /// Output terms, `Mons` layout (length `(n²+n)·m`).
    pub mons: BufferId,
}

impl<R: Real> Kernel<Complex<R>> for SpeelpenningKernel {
    fn name(&self) -> &str {
        "speelpenning"
    }

    /// `n` shared variable values + `B·(k+1)` locations `L1..L_{k+1}`.
    fn shared_elems(&self, block_dim: u32) -> usize {
        self.enc.shape.n + block_dim as usize * (self.enc.shape.k + 1)
    }

    /// The canonical block program lives in
    /// [`crate::kernels::batch::BatchSpeelpenningKernel`]; a
    /// single-point launch is the degenerate batch where the whole
    /// grid serves point 0 ([`BatchLayout::single`]).
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        crate::kernels::batch::BatchSpeelpenningKernel {
            enc: self.enc,
            vars: self.vars,
            common_factors: self.common_factors,
            coeffs: self.coeffs,
            mons: self.mons,
            layout: BatchLayout::single(blk.grid_dim()),
        }
        .run_block(blk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::common_factor::CommonFactorKernel;
    use crate::layout::coeffs::build_coeffs;
    use crate::layout::encoding::EncodingKind;
    use crate::layout::mons::{mons_len, q_deriv, q_value, term_slot};
    use polygpu_complex::C64;
    use polygpu_polysys::cost;
    use polygpu_polysys::{random_point, random_system, BenchmarkParams};

    struct Rig {
        dev: DeviceSpec,
        g: GlobalMem<C64>,
        cm: ConstantMemory,
        enc: EncodedSupports,
        kernel: SpeelpenningKernel,
        cf_kernel: CommonFactorKernel,
    }

    fn rig(params: &BenchmarkParams) -> Rig {
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(params);
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap();
        let shape = enc.shape;
        let mut g = GlobalMem::new();
        let vars = g.alloc(shape.n);
        let cf = g.alloc(shape.total_monomials());
        let coeffs = g.alloc(shape.total_monomials() * (shape.k + 1));
        let mons = g.alloc(mons_len(&shape));
        g.host_write(vars, 0, &random_point::<f64>(shape.n, 123));
        g.host_write(coeffs, 0, &build_coeffs(&sys, &shape));
        Rig {
            dev,
            g,
            cm,
            enc,
            kernel: SpeelpenningKernel {
                enc,
                vars,
                common_factors: cf,
                coeffs,
                mons,
            },
            cf_kernel: CommonFactorKernel { enc, vars, out: cf },
        }
    }

    fn run(rig: &mut Rig) -> (LaunchReport, LaunchReport) {
        let cfg = LaunchConfig::cover(rig.enc.shape.total_monomials(), 32);
        let r1 = launch(
            &rig.dev,
            &rig.cf_kernel,
            cfg,
            &mut rig.g,
            &rig.cm,
            LaunchOptions::default(),
        )
        .unwrap();
        let r2 = launch(
            &rig.dev,
            &rig.kernel,
            cfg,
            &mut rig.g,
            &rig.cm,
            LaunchOptions::default(),
        )
        .unwrap();
        (r1, r2)
    }

    #[test]
    fn per_thread_multiplications_are_5k_minus_4() {
        for k in [2usize, 3, 5, 9, 16] {
            let params = BenchmarkParams {
                n: 32,
                m: 1, // one full block of monomials
                k,
                d: 3,
                seed: k as u64,
            };
            let mut r = rig(&params);
            let (_, rep) = run(&mut r);
            // 32 threads x (5k-4) complex muls x 6 flops each.
            let expect = 32 * cost::kernel2_muls(k) * 6;
            assert_eq!(
                rep.counters.flops, expect,
                "k = {k}: flops {} != {}",
                rep.counters.flops, expect
            );
            assert_eq!(rep.counters.divergent_segments, 0, "k = {k}");
        }
    }

    #[test]
    fn mons_gets_monomial_values_and_derivatives() {
        let params = BenchmarkParams {
            n: 6,
            m: 3,
            k: 3,
            d: 4,
            seed: 31,
        };
        let sys = random_system::<f64>(&params);
        let x = random_point::<f64>(6, 123);
        let mut r = rig(&params);
        run(&mut r);
        let shape = r.enc.shape;
        let mons = r.g.host_read(r.kernel.mons);
        // Check each written slot against directly computed values.
        let mut g_idx = 0usize;
        for (p, poly) in sys.polys().iter().enumerate() {
            for (j, term) in poly.terms().iter().enumerate() {
                // c * x^a
                let mut want = term.coeff;
                for &(v, e) in term.monomial.factors() {
                    want *= x[v as usize].powi(e as i32);
                }
                let got = mons[term_slot(&shape, j, q_value(p))];
                assert!((got - want).abs() < 1e-12, "value ({p},{j})");
                // derivatives
                for &(v, e) in term.monomial.factors() {
                    let mut dwant = term.coeff.scale(e as f64);
                    for &(w, f) in term.monomial.factors() {
                        let fe = if w == v { f - 1 } else { f };
                        dwant *= x[w as usize].powi(fe as i32);
                    }
                    let got = mons[term_slot(&shape, j, q_deriv(6, p, v as usize))];
                    assert!((got - dwant).abs() < 1e-12, "deriv ({p},{j},{v})");
                }
                g_idx += 1;
            }
        }
        assert_eq!(g_idx, shape.total_monomials());
    }

    #[test]
    fn zero_slots_stay_zero() {
        let params = BenchmarkParams {
            n: 6,
            m: 3,
            k: 2, // k << n: most derivative slots must remain zero
            d: 2,
            seed: 5,
        };
        let sys = random_system::<f64>(&params);
        let mut r = rig(&params);
        run(&mut r);
        let shape = r.enc.shape;
        let mons = r.g.host_read(r.kernel.mons);
        let mut zero_slots = 0;
        for (p, poly) in sys.polys().iter().enumerate() {
            for (j, term) in poly.terms().iter().enumerate() {
                for v in 0..6u16 {
                    if !term.monomial.contains(v) {
                        let got = mons[term_slot(&shape, j, q_deriv(6, p, v as usize))];
                        assert_eq!(got, C64::zero(), "slot ({p},{j},{v}) must stay zero");
                        zero_slots += 1;
                    }
                }
            }
        }
        // n*m*(n-k) zero derivative slots.
        assert_eq!(zero_slots, 6 * 3 * (6 - 2));
    }

    #[test]
    fn coefficient_reads_are_coalesced_and_mons_writes_are_not() {
        // The paper's 1,024-monomial configuration: each warp covers
        // exactly one polynomial (m = 32), so every Mons store slot is
        // 32 single-lane transactions while every load slot (variables,
        // common factor, coefficients) coalesces into 4.
        let params = BenchmarkParams {
            n: 32,
            m: 32,
            k: 9,
            d: 2,
            seed: 1,
        };
        let mut r = rig(&params);
        let (_, rep) = run(&mut r);
        let warps = 32u64; // 1024 monomials / 32 lanes
        let per_warp_loads = 1 + 1 + 10; // vars preload + cf + (k+1) coeffs
        let per_warp_stores = 10u64; // k+1 scattered Mons writes
        let expect = warps * (per_warp_loads * 4 + per_warp_stores * 32);
        assert_eq!(
            rep.counters.global_transactions, expect,
            "coalescing accounting changed: {} vs {}",
            rep.counters.global_transactions, expect
        );
        assert_eq!(rep.counters.divergent_segments, 0);
    }
}
