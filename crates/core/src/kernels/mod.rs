//! The paper's three kernels.

pub mod common_factor;
pub mod speelpenning;
pub mod sum;

pub use common_factor::{CommonFactorFromScratch, CommonFactorKernel};
pub use speelpenning::SpeelpenningKernel;
pub use sum::SumKernel;
