//! The paper's three kernels, plus their batched multi-point variants
//! and the ragged (sparse) batched variants.

pub mod batch;
pub mod common_factor;
pub mod sparse;
pub mod speelpenning;
pub mod sum;

pub use batch::{
    BatchCommonFactorFromScratch, BatchCommonFactorKernel, BatchLayout, BatchSpeelpenningKernel,
    BatchSumKernel,
};
pub use common_factor::{CommonFactorFromScratch, CommonFactorKernel};
pub use sparse::{
    SparseBatchLayout, SparseCommonFactorKernel, SparseSpeelpenningKernel, SparseSumKernel,
};
pub use speelpenning::SpeelpenningKernel;
pub use sum::SumKernel;
