//! Kernel 3: summation of additive terms (paper §3.3).
//!
//! One thread per combined polynomial (the `n` system values plus the
//! `n²` Jacobian entries). Every thread adds **exactly `m` terms** —
//! including the pre-zeroed slots standing in for derivatives of
//! monomials that do not contain the variable — so all lanes follow one
//! execution path, and at every step `j` the warp reads consecutive
//! `Mons` elements: perfectly coalesced input, bought by kernel 2's
//! scattered output.

use crate::kernels::batch::BatchLayout;
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_polysys::UniformShape;

/// The paper's third kernel.
pub struct SumKernel {
    pub shape: UniformShape,
    /// Input terms in the `Mons` layout.
    pub mons: BufferId,
    /// Output: `n² + n` summed values.
    pub out: BufferId,
}

impl<R: Real> Kernel<Complex<R>> for SumKernel {
    fn name(&self) -> &str {
        "sum"
    }

    fn shared_elems(&self, _block_dim: u32) -> usize {
        0
    }

    /// The canonical block program lives in
    /// [`crate::kernels::batch::BatchSumKernel`]; a single-point
    /// launch is the degenerate batch where the whole grid serves
    /// point 0 ([`BatchLayout::single`]).
    fn run_block(&self, blk: &mut BlockCtx<'_, Complex<R>>) {
        crate::kernels::batch::BatchSumKernel {
            shape: self.shape,
            mons: self.mons,
            out: self.out,
            layout: BatchLayout::single(blk.grid_dim()),
        }
        .run_block(blk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::mons::term_slot;
    use polygpu_complex::C64;

    fn shape(n: usize, m: usize) -> UniformShape {
        UniformShape::square(n, m, 2, 2)
    }

    #[test]
    fn sums_each_combined_polynomial() {
        let s = shape(4, 3);
        let dev = DeviceSpec::tesla_c2050();
        let mut g = GlobalMem::<C64>::new();
        let mons = g.alloc(s.outputs() * s.m);
        let out = g.alloc(s.outputs());
        // term j of polynomial q := (q + 1) * 10^j (easy to verify sums)
        let mut data = vec![C64::zero(); s.outputs() * s.m];
        for q in 0..s.outputs() {
            for j in 0..s.m {
                data[term_slot(&s, j, q)] =
                    C64::from_f64((q + 1) as f64 * 10f64.powi(j as i32), 0.0);
            }
        }
        g.host_write(mons, 0, &data);
        let cm = ConstantMemory::new(&dev);
        let k = SumKernel {
            shape: s,
            mons,
            out,
        };
        let cfg = LaunchConfig::cover(s.outputs(), 32);
        let rep = launch(&dev, &k, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        for q in 0..s.outputs() {
            let want = (q + 1) as f64 * 111.0;
            assert_eq!(g.host_read(out)[q], C64::from_f64(want, 0.0), "q = {q}");
        }
        assert_eq!(rep.counters.divergent_segments, 0);
    }

    #[test]
    fn each_thread_adds_exactly_m_terms() {
        let s = shape(8, 5);
        let dev = DeviceSpec::tesla_c2050();
        let mut g = GlobalMem::<C64>::new();
        let mons = g.alloc(s.outputs() * s.m);
        let out = g.alloc(s.outputs());
        let cm = ConstantMemory::new(&dev);
        let k = SumKernel {
            shape: s,
            mons,
            out,
        };
        let cfg = LaunchConfig::cover(s.outputs(), 32);
        let rep = launch(&dev, &k, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        // outputs = 72 threads, each m complex adds of 2 flops.
        assert_eq!(rep.counters.flops, 72 * 5 * 2);
    }

    #[test]
    fn reads_are_fully_coalesced() {
        // 32-wide warps reading consecutive 16-byte elements: every load
        // slot is exactly 4 transactions; totals must match that bound.
        let s = UniformShape {
            n: 32,
            rows: 32,
            m: 4,
            k: 2,
            d: 2,
        };
        let dev = DeviceSpec::tesla_c2050();
        let mut g = GlobalMem::<C64>::new();
        let mons = g.alloc(s.outputs() * s.m);
        let out = g.alloc(s.outputs());
        let cm = ConstantMemory::new(&dev);
        let k = SumKernel {
            shape: s,
            mons,
            out,
        };
        let cfg = LaunchConfig::cover(s.outputs(), 32);
        let rep = launch(&dev, &k, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        let warps = (s.outputs() / 32) as u64;
        // per warp: m load slots + 1 store slot, 4 transactions each.
        assert_eq!(
            rep.counters.global_transactions,
            warps * (s.m as u64 + 1) * 4
        );
    }
}
