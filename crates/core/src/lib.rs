//! # polygpu-core — massively parallel polynomial evaluation and
//! differentiation
//!
//! The primary contribution of the reproduced paper (Verschelde &
//! Yoffe, 2012): evaluating a sparse polynomial system **and its full
//! Jacobian** with three divergence-free SIMT kernels —
//!
//! 1. [`kernels::CommonFactorKernel`] — powers of variables in shared
//!    memory, then the common factor `x^{a−1}` of every monomial;
//! 2. [`kernels::SpeelpenningKernel`] — all partial derivatives of each
//!    monomial's Speelpenning product in `3k − 6` multiplications,
//!    combined with the common factor and coefficients (`5k − 4` total
//!    per thread);
//! 3. [`kernels::SumKernel`] — branch-free summation over the
//!    zero-padded `Mons` layout with fully coalesced reads.
//!
//! The host-side [`pipeline::GpuEvaluator`] owns device memory, runs
//! the three launches per evaluation, and implements the same
//! [`polygpu_polysys::SystemEvaluator`] interface as the CPU
//! evaluators — in double precision its results are **bit-identical**
//! to the sequential algorithm ([`polygpu_polysys::AdEvaluator`]),
//! because both execute the same multiplications in the same order.
//!
//! ```
//! use polygpu_core::pipeline::{GpuEvaluator, GpuOptions};
//! use polygpu_polysys::{random_system, random_point, BenchmarkParams, SystemEvaluator};
//!
//! let params = BenchmarkParams { n: 8, m: 4, k: 3, d: 2, seed: 42 };
//! let system = random_system::<f64>(&params);
//! let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
//! let x = random_point(8, 7);
//! let eval = gpu.evaluate(&x);
//! assert_eq!(eval.values.len(), 8);
//! // Modeled device-time accounting for the paper's tables:
//! assert!(gpu.stats().seconds_per_eval() > 0.0);
//! ```

//! The batched engine ([`batch::BatchGpuEvaluator`]) evaluates at `P`
//! points with **one** set of three launches and one transfer each way,
//! amortizing launch overhead and PCIe latency `P`-fold while staying
//! bit-for-bit equal to `P` single-point evaluations.

//! The unified public surface is the [`engine`] module: one
//! [`engine::Engine::builder`] for every backend and precision, one
//! object-safe [`engine::AnyEvaluator`] trait, and multi-system device
//! residency via [`engine::Session`].

pub mod batch;
pub mod correct;
pub mod engine;
pub mod kernels;
pub mod layout;
pub mod pipeline;
pub mod sparse;

pub use batch::{expect_batch, BatchError, BatchGpuEvaluator};
pub use correct::{
    drive_correct, CombineMap, CorrectCharge, CorrectOps, CorrectParams, CorrectStatus,
    CorrectStop, CorrectorMode, IdentityCombine, OffsetCombine, FLAG_BYTES,
};
pub use engine::{
    AdmissionBudget, AnyEvaluator, Backend, BuildError, ClusterPolicy, ClusterProvider,
    ClusterSpec, Engine, EngineBuilder, EngineCaps, NoCluster, ResidencyRow, Session,
    SessionAmortization, ShardMode, SystemId, SystemShardPolicy,
};
pub use kernels::batch::BatchLayout;
pub use kernels::sparse::SparseBatchLayout;
pub use layout::encoding::{
    packed_geometry, EncodeError, EncodedSupports, EncodingKind, PackedGeometry,
};
pub use layout::packed::{sparse_packed_bytes, PackedSupports};
pub use pipeline::{FaultConfig, GpuEvaluator, GpuOptions, PipelineStats, SetupError};
pub use sparse::{SparseBatchGpuEvaluator, SparseGpuEvaluator};
// The fault-model vocabulary, so fault-aware callers (schedulers,
// cluster recovery, chaos harnesses) need not depend on the simulator
// crate directly.
pub use polygpu_gpusim::fault::{
    FaultError, FaultKind, FaultPlan, FaultStats, OpClass, RecoveryPolicy,
};
