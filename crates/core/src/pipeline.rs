//! The host-side pipeline: set up device memory once, then evaluate the
//! system and its Jacobian at a point with three kernel launches.
//!
//! Mirrors the paper's host flow: supports and coefficients are
//! uploaded once ("the information … does not change along the path
//! tracking"); per evaluation only the point travels to the device and
//! the `n² + n` results travel back.

use crate::batch::{expect_batch, BatchError};
use crate::kernels::common_factor::{CommonFactorFromScratch, CommonFactorKernel};
use crate::kernels::speelpenning::SpeelpenningKernel;
use crate::kernels::sum::SumKernel;
use crate::layout::coeffs::build_coeffs;
use crate::layout::encoding::{EncodeError, EncodedSupports, EncodingKind};
use crate::layout::mons::{mons_len, q_deriv, q_value};
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_obs::{Lane, MetaValue, MetricsRegistry, SpanKind, TraceSink};
use polygpu_polysys::{BatchSystemEvaluator, System, SystemEval, SystemEvaluator, UniformShape};
use std::fmt;

/// Deterministic fault injection for one modeled device: the seeded
/// [`FaultPlan`] plus the fleet index its schedule is keyed on (so a
/// cluster's devices draw decorrelated schedules from one plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    pub plan: FaultPlan,
    /// Fleet index of this device in the plan's keying (0 for
    /// single-device engines; the cluster provider sets it per shard).
    pub device_index: usize,
}

/// Configuration of the GPU evaluator.
#[derive(Debug, Clone)]
pub struct GpuOptions {
    pub device: DeviceSpec,
    /// Threads per block; the paper uses 32 ("the number of threads in
    /// each block was 32 for all three kernels").
    pub block_dim: u32,
    /// Support encoding in constant memory.
    pub encoding: EncodingKind,
    /// Use the from-scratch common-factor variant (ablation A1).
    pub from_scratch_cf: bool,
    /// Stream-overlap model for the batched engine: split each batch
    /// into this many chunks and schedule upload/kernels/download on a
    /// double-buffered [`polygpu_gpusim::stream::Timeline`], so modeled
    /// transfers overlap modeled compute. `Some(1)` keeps the original
    /// fully-serialized accounting (the default); `None` picks the
    /// chunk count **adaptively** per batch from the modeled
    /// kernel-time/transfer-time ratio, never scheduling worse than a
    /// single chunk. Functional results are identical in every mode —
    /// only [`PipelineStats::wall_seconds`] changes.
    pub overlap_chunks: Option<usize>,
    /// Host-side launch options.
    pub launch: LaunchOptions,
    /// Deterministic fault injection (`None` — the default — models a
    /// fault-free device). Injection arms only after the construction
    /// validation probe, so setup never faults; armed, each modeled
    /// operation consults the seeded schedule and a struck operation
    /// surfaces as [`BatchError::Fault`] with its detection latency
    /// charged to the wall clock.
    pub fault: Option<FaultConfig>,
    /// Observability sink this engine emits its device-op spans into
    /// (uploads, launches, downloads, fault-detection windows), on the
    /// modeled clock. The default no-op sink records nothing and
    /// changes nothing — modeled timings and results stay bit-identical
    /// to an untraced run.
    pub trace: TraceSink,
}

impl Default for GpuOptions {
    fn default() -> Self {
        GpuOptions {
            device: DeviceSpec::tesla_c2050(),
            block_dim: 32,
            encoding: EncodingKind::Direct,
            from_scratch_cf: false,
            overlap_chunks: Some(1),
            launch: LaunchOptions::default(),
            fault: None,
            trace: TraceSink::noop(),
        }
    }
}

/// Setup failure: the system does not fit the device or the encoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum SetupError {
    Encode(EncodeError),
    Launch(LaunchError),
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::Encode(e) => write!(f, "encoding: {e}"),
            SetupError::Launch(e) => write!(f, "launch validation: {e}"),
        }
    }
}

impl std::error::Error for SetupError {}

impl From<EncodeError> for SetupError {
    fn from(e: EncodeError) -> Self {
        SetupError::Encode(e)
    }
}

impl From<LaunchError> for SetupError {
    fn from(e: LaunchError) -> Self {
        SetupError::Launch(e)
    }
}

/// Accumulated modeled cost of the pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Evaluations performed (points; a batch of `P` counts `P`).
    pub evaluations: u64,
    /// Batched round trips (three launches + two transfers each). For
    /// the single-point pipeline this equals `evaluations`; for the
    /// batch engine it is the number of `evaluate_batch` calls — the
    /// denominator of the launch/transfer amortization.
    pub batches: u64,
    /// Counters summed over all launches.
    pub counters: Counters,
    /// Modeled kernel execution seconds.
    pub kernel_seconds: f64,
    /// Modeled launch overhead seconds.
    pub overhead_seconds: f64,
    /// Modeled PCIe transfer seconds (points up, results down).
    pub transfer_seconds: f64,
    /// Modeled host→device bytes behind `transfer_seconds` — the
    /// numerator of the per-iteration traffic comparison between the
    /// host and device-resident correctors.
    pub h2d_bytes: u64,
    /// Modeled device→host bytes. Under `CorrectorMode::DeviceResident`
    /// the per-iteration share of this is the `O(P)` convergence-flag
    /// download only.
    pub d2h_bytes: u64,
    /// Modeled seconds in batched on-device LU factorization (the
    /// device-resident corrector's `factor` spans).
    pub factor_seconds: f64,
    /// Modeled seconds in batched on-device back-substitution.
    pub backsub_seconds: f64,
    /// Fused device-resident corrector calls, in points (a call over
    /// `P` points counts `P`).
    pub corrections: u64,
    /// Newton iterations executed inside fused corrector calls, summed
    /// over points.
    pub corrector_iterations: u64,
    /// Modeled wall-clock seconds. Without stream overlap this equals
    /// [`PipelineStats::total_seconds`]; with
    /// [`GpuOptions::overlap_chunks`] `> 1` it is the makespan of the
    /// double-buffered copy/compute timeline, which is smaller because
    /// transfers hide under kernels.
    pub wall_seconds: f64,
    /// Injected-fault and recovery accounting. Faults charge their
    /// detection latency (and any recovery work above this engine) to
    /// `wall_seconds` but never touch `evaluations`: a struck call
    /// delivers no results.
    pub fault: FaultStats,
}

impl PipelineStats {
    /// Total modeled resource seconds (kernels + overhead + transfers,
    /// summed as if fully serialized).
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.overhead_seconds + self.transfer_seconds
    }

    /// Modeled wall-clock seconds: the stream-timeline makespan when
    /// overlap was modeled, the serialized sum otherwise (also the
    /// fallback for stats that never accumulated a wall clock).
    pub fn wall_clock_seconds(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.wall_seconds
        } else {
            self.total_seconds()
        }
    }

    /// Seconds shaved off the serialized sum by copy/compute overlap.
    pub fn overlap_savings(&self) -> f64 {
        (self.total_seconds() - self.wall_clock_seconds()).max(0.0)
    }

    /// Modeled seconds per evaluation.
    pub fn seconds_per_eval(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.total_seconds() / self.evaluations as f64
        }
    }

    /// Modeled fixed-cost (launch overhead + PCIe) seconds per
    /// evaluation — the share a batched engine amortizes `P`-fold.
    pub fn overhead_transfer_per_eval(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            (self.overhead_seconds + self.transfer_seconds) / self.evaluations as f64
        }
    }

    /// Modeled evaluation throughput in evaluations per second, on the
    /// wall clock (so stream overlap shows up as higher throughput).
    pub fn throughput_evals_per_sec(&self) -> f64 {
        let t = self.wall_clock_seconds();
        if t > 0.0 {
            self.evaluations as f64 / t
        } else {
            0.0
        }
    }

    /// Record these stats into a metrics registry under `prefix`
    /// (`{prefix}.evaluations`, `{prefix}.wall_seconds`, …).
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.evaluations"), self.evaluations);
        reg.counter(&format!("{prefix}.batches"), self.batches);
        reg.counter(&format!("{prefix}.flops"), self.counters.flops);
        reg.counter(
            &format!("{prefix}.global_bytes"),
            self.counters.global_bytes,
        );
        reg.counter(&format!("{prefix}.h2d_bytes"), self.h2d_bytes);
        reg.counter(&format!("{prefix}.d2h_bytes"), self.d2h_bytes);
        reg.counter(&format!("{prefix}.corrections"), self.corrections);
        reg.counter(
            &format!("{prefix}.corrector_iterations"),
            self.corrector_iterations,
        );
        reg.gauge(&format!("{prefix}.factor_seconds"), self.factor_seconds);
        reg.gauge(&format!("{prefix}.backsub_seconds"), self.backsub_seconds);
        reg.gauge(&format!("{prefix}.kernel_seconds"), self.kernel_seconds);
        reg.gauge(&format!("{prefix}.overhead_seconds"), self.overhead_seconds);
        reg.gauge(&format!("{prefix}.transfer_seconds"), self.transfer_seconds);
        reg.gauge(&format!("{prefix}.wall_seconds"), self.wall_clock_seconds());
        reg.gauge(&format!("{prefix}.overlap_savings"), self.overlap_savings());
        self.fault.record_metrics(reg, &format!("{prefix}.fault"));
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  evaluations           {:>12}", self.evaluations)?;
        writeln!(f, "  batches               {:>12}", self.batches)?;
        writeln!(f, "  kernel seconds        {:>12.3e}", self.kernel_seconds)?;
        writeln!(
            f,
            "  overhead seconds      {:>12.3e}",
            self.overhead_seconds
        )?;
        writeln!(
            f,
            "  transfer seconds      {:>12.3e}",
            self.transfer_seconds
        )?;
        writeln!(
            f,
            "  h2d / d2h bytes       {:>12} / {}",
            self.h2d_bytes, self.d2h_bytes
        )?;
        if self.corrections > 0 {
            writeln!(
                f,
                "  fused corrections     {:>12} ({} iterations)",
                self.corrections, self.corrector_iterations
            )?;
            writeln!(
                f,
                "  factor / backsub s    {:>12.3e} / {:.3e}",
                self.factor_seconds, self.backsub_seconds
            )?;
        }
        writeln!(
            f,
            "  wall-clock seconds    {:>12.3e}",
            self.wall_clock_seconds()
        )?;
        write!(
            f,
            "  throughput (evals/s)  {:>12.3e}",
            self.throughput_evals_per_sec()
        )
    }
}

/// Consult `injector` (if any) for the next modeled operation; on a
/// strike, charge the serialized time of the operations already
/// completed this round trip (`elapsed`) plus the fault's detection
/// latency to the wall clock — the honest cost of a failed round trip —
/// and surface the typed error. Shared by the single-point and batched
/// engines.
pub(crate) fn inject(
    injector: &mut Option<FaultInjector>,
    stats: &mut PipelineStats,
    device: &DeviceSpec,
    class: OpClass,
    op_seconds: f64,
    elapsed: f64,
    trace: &TraceSink,
) -> Result<(), BatchError> {
    if let Some(inj) = injector.as_mut() {
        if let Some(fe) = inj.check(class, device, op_seconds) {
            // The detection window starts where the struck operation
            // would have: after the ops already completed this round
            // trip, on this device's clock.
            trace.lane(Lane::Fault).emit(
                SpanKind::Detect,
                stats.wall_seconds + elapsed,
                fe.detection_seconds,
                5,
                &[
                    ("device", MetaValue::U64(fe.device as u64)),
                    ("op", MetaValue::U64(fe.op_index)),
                ],
            );
            stats.fault.faults += 1;
            stats.fault.recovery_seconds += fe.detection_seconds;
            stats.wall_seconds += elapsed + fe.detection_seconds;
            return Err(BatchError::Fault(fe));
        }
    }
    Ok(())
}

/// The three-kernel GPU evaluator of the paper, on the simulated device.
pub struct GpuEvaluator<R: Real> {
    device: DeviceSpec,
    opts: GpuOptions,
    shape: UniformShape,
    global: GlobalMem<Complex<R>>,
    constant: ConstantMemory,
    vars: BufferId,
    out: BufferId,
    k1: CommonFactorKernel,
    k1_scratch: CommonFactorFromScratch,
    k2: SpeelpenningKernel,
    k3: SumKernel,
    stats: PipelineStats,
    last_reports: Vec<LaunchReport>,
    injector: Option<FaultInjector>,
}

impl<R: Real> GpuEvaluator<R> {
    /// Validate, encode and upload `system`; run one throw-away
    /// evaluation so every configuration error surfaces here rather
    /// than inside `evaluate`.
    pub fn new(system: &System<R>, opts: GpuOptions) -> Result<Self, SetupError> {
        let device = opts.device.clone();
        let mut constant = ConstantMemory::new(&device);
        let enc = EncodedSupports::upload(system, &mut constant, opts.encoding)?;
        let shape = enc.shape;
        let mut global = GlobalMem::new();
        let vars = global.alloc(shape.n);
        let cf = global.alloc(shape.total_monomials());
        let coeffs = global.alloc(shape.total_monomials() * (shape.k + 1));
        let mons = global.alloc(mons_len(&shape));
        let out = global.alloc(shape.outputs());
        global.host_write(coeffs, 0, &build_coeffs(system, &shape));
        let injector = opts
            .fault
            .map(|f| FaultInjector::new(f.plan, f.device_index));
        let mut me = GpuEvaluator {
            device,
            shape,
            vars,
            out,
            injector,
            k1: CommonFactorKernel { enc, vars, out: cf },
            k1_scratch: CommonFactorFromScratch { enc, vars, out: cf },
            k2: SpeelpenningKernel {
                enc,
                vars,
                common_factors: cf,
                coeffs,
                mons,
            },
            k3: SumKernel { shape, mons, out },
            global,
            constant,
            stats: PipelineStats::default(),
            last_reports: Vec::new(),
            opts,
        };
        // Validation pass at the origin: exercises all three launches.
        // The injector is disarmed here, so the probe cannot fault; the
        // trace sink is detached so the probe leaves no spans behind.
        let sink = std::mem::take(&mut me.opts.trace);
        let probe = vec![Complex::<R>::one(); shape.n];
        me.try_evaluate(&probe).map_err(|e| match e {
            BatchError::Launch(l) => SetupError::Launch(l),
            other => unreachable!("disarmed validation probe cannot fail otherwise: {other}"),
        })?;
        me.stats = PipelineStats::default();
        me.set_fault_armed(true);
        me.opts.trace = sink;
        Ok(me)
    }

    /// Arm or disarm fault injection (no-op without a configured
    /// [`GpuOptions::fault`]). Construction probes run disarmed;
    /// fleet-level calibration probes disarm around their own work.
    pub fn set_fault_armed(&mut self, armed: bool) {
        if let Some(inj) = self.injector.as_mut() {
            if armed {
                inj.arm();
            } else {
                inj.disarm();
            }
        }
    }

    pub fn shape(&self) -> UniformShape {
        self.shape
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Modeled-cost statistics accumulated so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PipelineStats::default();
    }

    /// Launch reports of the most recent evaluation (kernel 1, 2, 3).
    pub fn last_reports(&self) -> &[LaunchReport] {
        &self.last_reports
    }

    /// Bytes of constant memory in use (the capacity the paper's §4
    /// discussion revolves around).
    pub fn constant_bytes_used(&self) -> usize {
        self.constant.used()
    }

    /// Evaluate at `x` with typed errors: dimension violations,
    /// launch failures and injected faults all surface as
    /// [`BatchError`] values — the non-panicking sibling of
    /// [`SystemEvaluator::evaluate`]. A faulted round trip delivers no
    /// results but charges the completed operations plus the fault's
    /// detection latency to the modeled wall clock.
    pub fn try_evaluate(&mut self, x: &[Complex<R>]) -> Result<SystemEval<R>, BatchError> {
        let shape = self.shape;
        if x.len() != shape.n {
            return Err(BatchError::DimensionMismatch {
                point: 0,
                got: x.len(),
                expected: shape.n,
            });
        }
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let h2d = transfer_seconds(&self.device, shape.n * elem);
        // This device's clock before the round trip — the origin of the
        // spans emitted below.
        let wall0 = self.stats.wall_seconds;
        let mut elapsed = 0.0;
        self.fault_check(OpClass::HostToDevice, h2d, elapsed)?;
        self.global.host_write(self.vars, 0, x);
        elapsed += h2d;
        let mut transfer = h2d;

        let monomial_cfg = LaunchConfig::cover(shape.total_monomials(), self.opts.block_dim);
        let output_cfg = LaunchConfig::cover(shape.outputs(), self.opts.block_dim);
        // Clear before launching (reusing the vector's storage) so a
        // failed launch leaves no stale reports behind.
        self.last_reports.clear();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r1 = if self.opts.from_scratch_cf {
            launch(
                &self.device,
                &self.k1_scratch,
                monomial_cfg,
                &mut self.global,
                &self.constant,
                self.opts.launch,
            )?
        } else {
            launch(
                &self.device,
                &self.k1,
                monomial_cfg,
                &mut self.global,
                &self.constant,
                self.opts.launch,
            )?
        };
        elapsed += r1.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r2 = launch(
            &self.device,
            &self.k2,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r2.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r3 = launch(
            &self.device,
            &self.k3,
            output_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r3.timing.total_seconds();

        let d2h = transfer_seconds(&self.device, shape.outputs() * elem);
        self.fault_check(OpClass::DeviceToHost, d2h, elapsed)?;
        transfer += d2h;
        // `host_read` is a zero-copy borrow of the simulated buffer;
        // unpack straight into the result without a staging copy.
        let raw = self.global.host_read(self.out);
        let mut eval = SystemEval::zeros_rect(shape.rows, shape.n);
        for p in 0..shape.rows {
            eval.values[p] = raw[q_value(p)];
            for v in 0..shape.n {
                eval.jacobian[(p, v)] = raw[q_deriv(shape.rows, p, v)];
            }
        }

        self.stats.evaluations += 1;
        self.stats.batches += 1;
        self.stats.transfer_seconds += transfer;
        self.stats.h2d_bytes += (shape.n * elem) as u64;
        self.stats.d2h_bytes += (shape.outputs() * elem) as u64;
        // Reuse the report vector's storage instead of allocating a
        // fresh `vec![r1, r2, r3]` on every evaluation (this method is
        // the hot loop of Newton correction and path tracking); it was
        // cleared before the launches.
        self.last_reports.push(r1);
        self.last_reports.push(r2);
        self.last_reports.push(r3);
        for r in &self.last_reports {
            self.stats.counters += r.counters;
            self.stats.kernel_seconds += r.timing.kernel_seconds;
            self.stats.overhead_seconds += r.timing.overhead_seconds;
            // Single-point round trips have nothing to overlap with:
            // the wall clock is the serialized sum.
            self.stats.wall_seconds += r.timing.total_seconds();
        }
        self.stats.wall_seconds += transfer;

        if self.opts.trace.enabled() {
            let tr = &self.opts.trace;
            tr.lane(Lane::H2D)
                .emit(SpanKind::Upload, wall0, h2d, 4, &[]);
            let mut t = wall0 + h2d;
            for r in &self.last_reports {
                let d = r.timing.total_seconds();
                tr.lane(Lane::Compute).emit(SpanKind::Launch, t, d, 4, &[]);
                t += d;
            }
            tr.lane(Lane::D2H).emit(SpanKind::Download, t, d2h, 4, &[]);
            tr.emit(
                SpanKind::Batch,
                wall0,
                self.stats.wall_seconds - wall0,
                3,
                &[("points", MetaValue::U64(1))],
            );
        }
        Ok(eval)
    }

    fn fault_check(
        &mut self,
        class: OpClass,
        op_seconds: f64,
        elapsed: f64,
    ) -> Result<(), BatchError> {
        inject(
            &mut self.injector,
            &mut self.stats,
            &self.device,
            class,
            op_seconds,
            elapsed,
            &self.opts.trace,
        )
    }
}

impl<R: Real> SystemEvaluator<R> for GpuEvaluator<R> {
    fn dim(&self) -> usize {
        self.shape.n
    }

    /// Evaluate at `x`. Configuration errors were ruled out by the
    /// validation pass in [`GpuEvaluator::new`]; use
    /// [`GpuEvaluator::try_evaluate`] to handle injected faults as
    /// typed errors instead of panics.
    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        expect_batch(self.try_evaluate(x))
    }

    fn name(&self) -> &str {
        "gpu-sim"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for GpuEvaluator<R> {
    /// The loop accepts any batch size — but each point still costs a
    /// full round trip (three launches, two transfers); batching here
    /// amortizes nothing (`EngineCaps::batched` is `false`).
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    /// Loops the single-point pipeline.
    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        points.iter().map(|x| self.evaluate(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{
        random_point, random_system, AdEvaluator, BenchmarkParams, NaiveEvaluator,
    };

    fn params(n: usize, m: usize, k: usize, d: u16, seed: u64) -> BenchmarkParams {
        BenchmarkParams { n, m, k, d, seed }
    }

    #[test]
    fn gpu_matches_cpu_ad_bit_for_bit_in_double() {
        // Same algorithm, same operation order: results must be
        // *identical*, not merely close.
        for p in [
            params(4, 3, 2, 2, 1),
            params(8, 5, 3, 4, 2),
            params(32, 4, 9, 2, 3),
            params(32, 4, 16, 10, 4),
            params(33, 3, 5, 3, 5), // n not a multiple of the block
        ] {
            let sys = random_system::<f64>(&p);
            let mut gpu = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
            let mut ad = AdEvaluator::new(sys).unwrap();
            let x = random_point::<f64>(p.n, p.seed ^ 0xFEED);
            let a = gpu.evaluate(&x);
            let b = ad.evaluate(&x);
            assert_eq!(a.values, b.values, "values differ for {p:?}");
            assert_eq!(
                a.jacobian.as_slice(),
                b.jacobian.as_slice(),
                "jacobians differ for {p:?}"
            );
        }
    }

    #[test]
    fn gpu_matches_naive_oracle_numerically() {
        let p = params(12, 6, 4, 5, 9);
        let sys = random_system::<f64>(&p);
        let mut gpu = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let mut naive = NaiveEvaluator::new(sys);
        let x = random_point::<f64>(p.n, 44);
        let a = gpu.evaluate(&x);
        let b = naive.evaluate(&x);
        assert!(a.max_difference(&b) < 1e-11, "{:e}", a.max_difference(&b));
    }

    #[test]
    fn double_double_pipeline_works() {
        use polygpu_qd::Dd;
        let p = params(6, 3, 3, 3, 13);
        let sys = random_system::<f64>(&p);
        let sys_dd = sys.convert::<Dd>();
        let mut gpu = GpuEvaluator::new(&sys_dd, GpuOptions::default()).unwrap();
        let mut ad = AdEvaluator::new(sys_dd.clone()).unwrap();
        let x = random_point::<f64>(6, 3);
        let x_dd: Vec<Complex<Dd>> = x.iter().map(|z| z.convert()).collect();
        let a = gpu.evaluate(&x_dd);
        let b = ad.evaluate(&x_dd);
        assert_eq!(a.values, b.values, "dd values must match bitwise too");
    }

    #[test]
    fn no_divergence_and_stats_accumulate() {
        let p = params(32, 22, 9, 2, 7);
        let sys = random_system::<f64>(&p);
        let mut gpu = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let x = random_point::<f64>(32, 1);
        let _ = gpu.evaluate(&x);
        let _ = gpu.evaluate(&x);
        let s = gpu.stats();
        assert_eq!(s.evaluations, 2);
        assert_eq!(s.counters.divergent_segments, 0);
        assert!(s.kernel_seconds > 0.0);
        assert!(s.overhead_seconds > 0.0);
        assert!(s.transfer_seconds > 0.0);
        assert!(s.seconds_per_eval() > 0.0);
        assert_eq!(gpu.last_reports().len(), 3);
        gpu.reset_stats();
        assert_eq!(gpu.stats().evaluations, 0);
    }

    #[test]
    fn from_scratch_ablation_gives_same_values() {
        let p = params(16, 4, 4, 6, 17);
        let sys = random_system::<f64>(&p);
        let mut a = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let mut b = GpuEvaluator::new(
            &sys,
            GpuOptions {
                from_scratch_cf: true,
                ..Default::default()
            },
        )
        .unwrap();
        let x = random_point::<f64>(16, 2);
        let ra = a.evaluate(&x);
        let rb = b.evaluate(&x);
        // Same math, different op order in the powers: equal to rounding.
        assert!(ra.max_difference(&rb) < 1e-12);
        // The ablation diverges; the paper's kernel does not.
        assert!(b.stats().counters.divergent_segments > 0);
        assert_eq!(a.stats().counters.divergent_segments, 0);
    }

    #[test]
    fn compact_encoding_same_results() {
        let p = params(10, 4, 3, 8, 23);
        let sys = random_system::<f64>(&p);
        let mut direct = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let mut compact = GpuEvaluator::new(
            &sys,
            GpuOptions {
                encoding: EncodingKind::Compact,
                ..Default::default()
            },
        )
        .unwrap();
        let x = random_point::<f64>(10, 5);
        assert_eq!(direct.evaluate(&x).values, compact.evaluate(&x).values);
        assert!(compact.constant_bytes_used() < direct.constant_bytes_used());
    }

    #[test]
    fn oversized_system_fails_at_setup_not_evaluate() {
        // E3: the 2,048-monomial k=16 system must be rejected here.
        let p = params(32, 64, 16, 10, 3);
        let sys = random_system::<f64>(&p);
        let err = match GpuEvaluator::new(&sys, GpuOptions::default()) {
            Ok(_) => panic!("2,048-monomial k=16 system must not fit"),
            Err(e) => e,
        };
        assert!(
            matches!(err, SetupError::Encode(EncodeError::Constant(_))),
            "{err}"
        );
    }
}
