//! The batched evaluation engine for **ragged** (sparse) systems on the
//! packed exponent-key encoding.
//!
//! Structurally this is [`BatchGpuEvaluator`](crate::batch::BatchGpuEvaluator)
//! with the uniform encoding swapped for [`PackedSupports`] and the
//! dense kernels for their ragged variants
//! ([`crate::kernels::sparse`]). The per-point floating-point programs
//! are identical to the CPU sparse reference
//! ([`polygpu_polysys::SparseAdEvaluator`]), so results are
//! **bit-for-bit equal** to the reference in every precision — the same
//! determinism contract the dense engines carry, extended to ragged
//! supports.
//!
//! The timing model is the serialized batched schedule (one upload,
//! three launches, one download); the dense engine's stream-overlap
//! ablation is deliberately not duplicated here.

use crate::batch::{expect_batch, BatchError};
use crate::correct::{
    drive_correct, CombineMap, CorrectCharge, CorrectOps, CorrectParams, CorrectStatus, FLAG_BYTES,
};
use crate::kernels::sparse::{
    SparseBatchLayout, SparseCommonFactorKernel, SparseSpeelpenningKernel, SparseSumKernel,
};
use crate::layout::coeffs::build_sparse_coeffs;
use crate::layout::mons::{q_deriv, q_value};
use crate::layout::packed::PackedSupports;
use crate::pipeline::{inject, GpuOptions, PipelineStats, SetupError};
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_obs::{Lane, MetaValue, SpanKind, TraceSink};
use polygpu_polysys::{BatchSystemEvaluator, SparseShape, System, SystemEval, SystemEvaluator};

/// The batched three-kernel evaluator for ragged systems. Device
/// buffers are sized for `capacity` points at construction; any batch
/// of `1..=capacity` points evaluates with one round trip.
pub struct SparseBatchGpuEvaluator<R: Real> {
    device: DeviceSpec,
    opts: GpuOptions,
    shape: SparseShape,
    layout: SparseBatchLayout,
    global: GlobalMem<Complex<R>>,
    constant: ConstantMemory,
    vars: BufferId,
    out: BufferId,
    k1: SparseCommonFactorKernel,
    k2: SparseSpeelpenningKernel,
    k3: SparseSumKernel,
    stats: PipelineStats,
    last_reports: Vec<LaunchReport>,
    vars_scratch: Vec<Complex<R>>,
    injector: Option<FaultInjector>,
}

impl<R: Real> SparseBatchGpuEvaluator<R> {
    /// Validate, encode and upload `system` (uniform or ragged), sizing
    /// the device buffers for batches of up to `capacity` points; runs
    /// one throw-away evaluation so every configuration error surfaces
    /// here rather than inside `evaluate_batch`.
    pub fn new(system: &System<R>, capacity: usize, opts: GpuOptions) -> Result<Self, SetupError> {
        let mut constant = ConstantMemory::new(&opts.device);
        let sup = PackedSupports::upload(system, &mut constant)?;
        Self::from_packed(system, sup, constant, capacity, opts)
    }

    /// Assemble an engine from supports **already resident** in
    /// `constant` — the ragged sibling of
    /// [`BatchGpuEvaluator::from_encoded`](crate::batch::BatchGpuEvaluator::from_encoded).
    pub fn from_packed(
        system: &System<R>,
        sup: PackedSupports,
        constant: ConstantMemory,
        capacity: usize,
        opts: GpuOptions,
    ) -> Result<Self, SetupError> {
        assert!(capacity >= 1, "batch capacity must be at least 1");
        let device = opts.device.clone();
        let shape = sup.shape;
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let layout = SparseBatchLayout::new(
            &shape,
            capacity,
            opts.block_dim,
            elem,
            device.coalesce_segment,
        );
        let mut global = GlobalMem::new();
        let vars = global.alloc(capacity * layout.vars_stride);
        let cf = global.alloc(capacity * layout.cf_stride);
        let coeffs = global.alloc(shape.total_monomials * (shape.max_k + 1));
        let mons = global.alloc(capacity * layout.mons_stride);
        let out = global.alloc(capacity * layout.out_stride);
        global.host_write(coeffs, 0, &build_sparse_coeffs(system, &shape));
        let injector = opts
            .fault
            .map(|f| FaultInjector::new(f.plan, f.device_index));
        let mut me = SparseBatchGpuEvaluator {
            device,
            shape,
            layout,
            vars,
            out,
            injector,
            k1: SparseCommonFactorKernel {
                sup,
                vars,
                out: cf,
                layout,
            },
            k2: SparseSpeelpenningKernel {
                sup,
                vars,
                common_factors: cf,
                coeffs,
                mons,
                layout,
            },
            k3: SparseSumKernel {
                shape,
                mons,
                out,
                layout,
            },
            global,
            constant,
            stats: PipelineStats::default(),
            last_reports: Vec::new(),
            vars_scratch: Vec::new(),
            opts,
        };
        // Validation pass (see `BatchGpuEvaluator::from_encoded`): one
        // point exercises every per-block launch-validity constraint.
        // The injector starts disarmed and the sink is detached, so the
        // probe neither faults nor leaves spans behind.
        let probe = vec![vec![Complex::<R>::one(); shape.n]];
        let sink = std::mem::take(&mut me.opts.trace);
        me.try_evaluate_batch(&probe).map_err(|e| match e {
            BatchError::Launch(l) => SetupError::Launch(l),
            other => unreachable!("validation probe is within the batch contract: {other}"),
        })?;
        me.stats = PipelineStats::default();
        me.set_fault_armed(true);
        me.opts.trace = sink;
        Ok(me)
    }

    /// Replace this engine's trace sink.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.opts.trace = sink;
    }

    /// This engine's current trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.opts.trace
    }

    /// Arm or disarm fault injection (no-op without a configured
    /// [`GpuOptions::fault`]).
    pub fn set_fault_armed(&mut self, armed: bool) {
        if let Some(inj) = self.injector.as_mut() {
            if armed {
                inj.arm();
            } else {
                inj.disarm();
            }
        }
    }

    pub fn shape(&self) -> SparseShape {
        self.shape
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Largest batch one call accepts.
    pub fn capacity(&self) -> usize {
        self.layout.capacity
    }

    /// Per-point strides and block counts of the batched buffers.
    pub fn layout(&self) -> SparseBatchLayout {
        self.layout
    }

    /// Modeled-cost statistics accumulated so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PipelineStats::default();
    }

    /// Launch reports of the most recent batch (kernel 1, 2, 3).
    pub fn last_reports(&self) -> &[LaunchReport] {
        &self.last_reports
    }

    /// Bytes of constant memory this system's supports occupy.
    pub fn constant_bytes_used(&self) -> usize {
        self.k1.sup.constant_bytes()
    }

    /// Device bytes the batched buffers occupy.
    pub fn allocated_bytes(&self) -> usize {
        self.global.allocated_bytes()
    }

    /// Evaluate the system and Jacobian at every point of the batch
    /// with one set of three launches. Same contract and typed errors
    /// as the dense batched engine.
    pub fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let shape = self.shape;
        let p = points.len();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > self.layout.capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity: self.layout.capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != shape.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: shape.n,
                });
            }
        }
        self.vars_scratch.clear();
        self.vars_scratch
            .resize(p * self.layout.vars_stride, Complex::zero());
        for (i, x) in points.iter().enumerate() {
            let base = i * self.layout.vars_stride;
            self.vars_scratch[base..base + shape.n].copy_from_slice(x);
        }
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let h2d = transfer_seconds(&self.device, p * shape.n * elem);
        let wall0 = self.stats.wall_seconds;
        let mut elapsed = 0.0;
        self.fault_check(OpClass::HostToDevice, h2d, elapsed)?;
        self.global.host_write(self.vars, 0, &self.vars_scratch);
        elapsed += h2d;
        let mut transfer = h2d;

        let monomial_cfg = self.layout.monomial_cfg(p, &shape, self.opts.block_dim);
        let output_cfg = self.layout.output_cfg(p, &shape, self.opts.block_dim);
        self.last_reports.clear();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r1 = launch(
            &self.device,
            &self.k1,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r1.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r2 = launch(
            &self.device,
            &self.k2,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r2.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r3 = launch(
            &self.device,
            &self.k3,
            output_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r3.timing.total_seconds();

        let d2h = transfer_seconds(&self.device, p * shape.outputs() * elem);
        self.fault_check(OpClass::DeviceToHost, d2h, elapsed)?;
        transfer += d2h;
        let raw = self.global.host_read(self.out);
        let mut evals = Vec::with_capacity(p);
        for i in 0..p {
            let base = i * self.layout.out_stride;
            let mut eval = SystemEval::zeros_rect(shape.rows, shape.n);
            for q in 0..shape.rows {
                eval.values[q] = raw[base + q_value(q)];
                for v in 0..shape.n {
                    eval.jacobian[(q, v)] = raw[base + q_deriv(shape.rows, q, v)];
                }
            }
            evals.push(eval);
        }

        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.stats.h2d_bytes += (p * shape.n * elem) as u64;
        self.stats.d2h_bytes += (p * shape.outputs() * elem) as u64;
        self.last_reports.push(r1);
        self.last_reports.push(r2);
        self.last_reports.push(r3);
        let mut kernel_total = 0.0;
        for r in &self.last_reports {
            self.stats.counters += r.counters;
            kernel_total += r.timing.kernel_seconds;
        }
        self.stats.kernel_seconds += kernel_total;

        // Serialized accounting: one upload, three launches, one
        // download, summed.
        let overhead = 3.0 * self.device.launch_overhead;
        self.stats.overhead_seconds += overhead;
        self.stats.transfer_seconds += transfer;
        self.stats.wall_seconds += transfer + kernel_total + overhead;
        if self.opts.trace.enabled() {
            let tr = &self.opts.trace;
            tr.lane(Lane::H2D)
                .emit(SpanKind::Upload, wall0, h2d, 4, &[]);
            let mut t = wall0 + h2d;
            for r in &self.last_reports {
                let d = r.timing.total_seconds();
                tr.lane(Lane::Compute).emit(SpanKind::Launch, t, d, 4, &[]);
                t += d;
            }
            tr.lane(Lane::D2H).emit(SpanKind::Download, t, d2h, 4, &[]);
        }
        self.opts.trace.emit(
            SpanKind::Batch,
            wall0,
            self.stats.wall_seconds - wall0,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        Ok(evals)
    }

    /// Single-point evaluation as a batch of one, with typed errors.
    pub fn try_evaluate(&mut self, x: &[Complex<R>]) -> Result<SystemEval<R>, BatchError> {
        let mut out = self.try_evaluate_batch(std::slice::from_ref(&x.to_vec()))?;
        Ok(out.pop().expect("batch of one returns one result"))
    }

    /// Fused device-resident Newton correction — the ragged sibling of
    /// [`BatchGpuEvaluator::try_correct_batch`](crate::batch::BatchGpuEvaluator::try_correct_batch):
    /// one iterate upload, per-iteration evaluate/factor/back-substitute
    /// on the device with only the `O(P)` flag download, one endpoint
    /// download. Endpoints are bit-identical to the host corrector.
    pub fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        let shape = self.shape;
        let p = points.len();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > self.layout.capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity: self.layout.capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != shape.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: shape.n,
                });
            }
        }
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let wall0 = self.stats.wall_seconds;

        let h2d = transfer_seconds(&self.device, p * shape.n * elem);
        self.fault_check(OpClass::HostToDevice, h2d, 0.0)?;
        self.stats.transfer_seconds += h2d;
        self.stats.h2d_bytes += (p * shape.n * elem) as u64;
        self.stats.wall_seconds += h2d;
        if self.opts.trace.enabled() {
            self.opts
                .trace
                .lane(Lane::H2D)
                .emit(SpanKind::Upload, wall0, h2d, 4, &[]);
        }

        let mut scratch: Vec<Vec<Complex<R>>> = points.to_vec();
        let statuses = drive_correct(&mut SparseResidentOps(self), combine, &mut scratch, params)?;

        let d2h = transfer_seconds(&self.device, p * shape.n * elem);
        self.fault_check(OpClass::DeviceToHost, d2h, 0.0)?;
        self.stats.transfer_seconds += d2h;
        self.stats.d2h_bytes += (p * shape.n * elem) as u64;
        let dl0 = self.stats.wall_seconds;
        self.stats.wall_seconds += d2h;
        if self.opts.trace.enabled() {
            self.opts
                .trace
                .lane(Lane::D2H)
                .emit(SpanKind::Download, dl0, d2h, 4, &[]);
        }

        for (dst, src) in points.iter_mut().zip(scratch) {
            *dst = src;
        }
        self.stats.corrections += p as u64;
        self.stats.corrector_iterations +=
            statuses.iter().map(|s| s.iterations as u64).sum::<u64>();
        self.opts.trace.emit(
            SpanKind::Correct,
            wall0,
            self.stats.wall_seconds - wall0,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        Ok(statuses)
    }

    /// One evaluation round of the fused corrector against the
    /// resident live iterates (staging models a device-side gather;
    /// no PCIe traffic).
    fn eval_resident(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let shape = self.shape;
        let p = points.len();
        self.vars_scratch.clear();
        self.vars_scratch
            .resize(p * self.layout.vars_stride, Complex::zero());
        for (i, x) in points.iter().enumerate() {
            let base = i * self.layout.vars_stride;
            self.vars_scratch[base..base + shape.n].copy_from_slice(x);
        }
        let wall0 = self.stats.wall_seconds;
        let mut elapsed = 0.0;
        self.global.host_write(self.vars, 0, &self.vars_scratch);

        let monomial_cfg = self.layout.monomial_cfg(p, &shape, self.opts.block_dim);
        let output_cfg = self.layout.output_cfg(p, &shape, self.opts.block_dim);
        self.last_reports.clear();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r1 = launch(
            &self.device,
            &self.k1,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r1.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r2 = launch(
            &self.device,
            &self.k2,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r2.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r3 = launch(
            &self.device,
            &self.k3,
            output_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r3.timing.total_seconds();

        let raw = self.global.host_read(self.out);
        let mut evals = Vec::with_capacity(p);
        for i in 0..p {
            let base = i * self.layout.out_stride;
            let mut eval = SystemEval::zeros_rect(shape.rows, shape.n);
            for q in 0..shape.rows {
                eval.values[q] = raw[base + q_value(q)];
                for v in 0..shape.n {
                    eval.jacobian[(q, v)] = raw[base + q_deriv(shape.rows, q, v)];
                }
            }
            evals.push(eval);
        }

        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.last_reports.push(r1);
        self.last_reports.push(r2);
        self.last_reports.push(r3);
        let mut kernel_total = 0.0;
        for r in &self.last_reports {
            self.stats.counters += r.counters;
            kernel_total += r.timing.kernel_seconds;
        }
        self.stats.kernel_seconds += kernel_total;
        self.stats.overhead_seconds += 3.0 * self.device.launch_overhead;
        self.stats.wall_seconds += elapsed;
        if self.opts.trace.enabled() {
            let tr = &self.opts.trace;
            let mut t = wall0;
            for r in &self.last_reports {
                let d = r.timing.total_seconds();
                tr.lane(Lane::Compute).emit(SpanKind::Launch, t, d, 4, &[]);
                t += d;
            }
        }
        Ok(evals)
    }

    /// Charge one modeled operation of the fused corrector loop (see
    /// the dense engine's `charge_correct`).
    fn charge_correct(&mut self, ev: CorrectCharge) -> Result<(), BatchError> {
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        match ev {
            CorrectCharge::FactorSolve { count } => {
                let n = self.shape.n;
                let fac = lu_factor_cost(&self.device, n, count, elem);
                let bs = backsub_cost(&self.device, n, count, elem);
                let ft = fac.timing.total_seconds();
                let bt = bs.timing.total_seconds();
                self.fault_check(OpClass::Kernel, ft, 0.0)?;
                let t0 = self.stats.wall_seconds;
                self.stats.counters += fac.counters;
                self.stats.kernel_seconds += fac.timing.kernel_seconds;
                self.stats.overhead_seconds += fac.timing.overhead_seconds;
                self.stats.factor_seconds += fac.timing.kernel_seconds;
                self.stats.wall_seconds += ft;
                if self.opts.trace.enabled() {
                    self.opts
                        .trace
                        .lane(Lane::Compute)
                        .emit(SpanKind::Factor, t0, ft, 4, &[]);
                }
                self.fault_check(OpClass::Kernel, bt, 0.0)?;
                let t1 = self.stats.wall_seconds;
                self.stats.counters += bs.counters;
                self.stats.kernel_seconds += bs.timing.kernel_seconds;
                self.stats.overhead_seconds += bs.timing.overhead_seconds;
                self.stats.backsub_seconds += bs.timing.kernel_seconds;
                self.stats.wall_seconds += bt;
                if self.opts.trace.enabled() {
                    self.opts
                        .trace
                        .lane(Lane::Compute)
                        .emit(SpanKind::Backsub, t1, bt, 4, &[]);
                }
            }
            CorrectCharge::Flags { count } => {
                let bytes = count * FLAG_BYTES;
                let d2h = transfer_seconds(&self.device, bytes);
                self.fault_check(OpClass::DeviceToHost, d2h, 0.0)?;
                let t0 = self.stats.wall_seconds;
                self.stats.transfer_seconds += d2h;
                self.stats.d2h_bytes += bytes as u64;
                self.stats.wall_seconds += d2h;
                if self.opts.trace.enabled() {
                    self.opts
                        .trace
                        .lane(Lane::D2H)
                        .emit(SpanKind::Download, t0, d2h, 4, &[]);
                }
            }
        }
        Ok(())
    }

    fn fault_check(
        &mut self,
        class: OpClass,
        op_seconds: f64,
        elapsed: f64,
    ) -> Result<(), BatchError> {
        inject(
            &mut self.injector,
            &mut self.stats,
            &self.device,
            class,
            op_seconds,
            elapsed,
            &self.opts.trace,
        )
    }
}

impl<R: Real> SystemEvaluator<R> for SparseBatchGpuEvaluator<R> {
    fn dim(&self) -> usize {
        self.shape.n
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        expect_batch(self.try_evaluate(x))
    }

    fn name(&self) -> &str {
        "gpu-sim-sparse-batch"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for SparseBatchGpuEvaluator<R> {
    fn max_batch(&self) -> usize {
        self.layout.capacity
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        expect_batch(self.try_evaluate_batch(points))
    }
}

/// The [`CorrectOps`] view of a [`SparseBatchGpuEvaluator`] during a
/// fused device-resident correction (see the dense `ResidentOps`).
struct SparseResidentOps<'a, R: Real>(&'a mut SparseBatchGpuEvaluator<R>);

impl<R: Real> CorrectOps<R> for SparseResidentOps<'_, R> {
    fn eval(
        &mut self,
        points: &[Vec<Complex<R>>],
        _indices: &[usize],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        self.0.eval_resident(points)
    }

    fn charge(&mut self, ev: CorrectCharge) -> Result<(), BatchError> {
        self.0.charge_correct(ev)
    }
}

/// The single-point ragged pipeline: a capacity-1 batched engine looped
/// point by point — what [`Backend::Gpu`](crate::engine::Backend::Gpu)
/// builds for a ragged system under the packed encoding.
pub struct SparseGpuEvaluator<R: Real>(SparseBatchGpuEvaluator<R>);

impl<R: Real> SparseGpuEvaluator<R> {
    pub fn new(system: &System<R>, opts: GpuOptions) -> Result<Self, SetupError> {
        Ok(SparseGpuEvaluator(SparseBatchGpuEvaluator::new(
            system, 1, opts,
        )?))
    }

    pub fn stats(&self) -> PipelineStats {
        self.0.stats()
    }

    pub fn reset_stats(&mut self) {
        self.0.reset_stats()
    }

    pub fn shape(&self) -> SparseShape {
        self.0.shape()
    }

    pub fn constant_bytes_used(&self) -> usize {
        self.0.constant_bytes_used()
    }

    /// The wrapped capacity-1 batch engine — how the unified trait's
    /// device-resident corrector forwards point-by-point.
    pub(crate) fn inner_mut(&mut self) -> &mut SparseBatchGpuEvaluator<R> {
        &mut self.0
    }

    /// Loop the typed single-point path so contract violations and
    /// injected faults surface as [`BatchError`] values.
    pub fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        if points.is_empty() {
            return Err(BatchError::Empty);
        }
        points.iter().map(|x| self.0.try_evaluate(x)).collect()
    }

    pub fn try_evaluate(&mut self, x: &[Complex<R>]) -> Result<SystemEval<R>, BatchError> {
        self.0.try_evaluate(x)
    }
}

impl<R: Real> SystemEvaluator<R> for SparseGpuEvaluator<R> {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        expect_batch(self.0.try_evaluate(x))
    }

    fn name(&self) -> &str {
        "gpu-sim-sparse"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for SparseGpuEvaluator<R> {
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        expect_batch(self.try_evaluate_batch(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::{
        random_points, random_sparse_system, Monomial, Polynomial, SparseAdEvaluator,
        SparseBenchmarkParams, Term,
    };

    /// A deliberately ragged system: mixed per-monomial k (including a
    /// constant term), mixed per-equation m.
    fn ragged() -> System<f64> {
        let p0 = Polynomial::new(vec![
            Term {
                coeff: C64::from_f64(1.5, -0.5),
                monomial: Monomial::new(vec![(0, 2), (2, 1)]).unwrap(),
            },
            Term {
                coeff: C64::from_f64(-2.0, 1.0),
                monomial: Monomial::var(1),
            },
            Term {
                coeff: C64::from_f64(3.0, 0.25),
                monomial: Monomial::constant(),
            },
        ]);
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::from_f64(0.75, 2.0),
            monomial: Monomial::new(vec![(0, 1), (1, 3), (2, 2)]).unwrap(),
        }]);
        let p2 = Polynomial::new(vec![
            Term {
                coeff: C64::from_f64(-1.0, 0.0),
                monomial: Monomial::new(vec![(2, 4)]).unwrap(),
            },
            Term {
                coeff: C64::from_f64(0.5, 0.5),
                monomial: Monomial::new(vec![(0, 1), (1, 1)]).unwrap(),
            },
        ]);
        System::new(3, vec![p0, p1, p2]).unwrap()
    }

    #[test]
    fn ragged_batch_bitwise_equals_cpu_sparse_reference() {
        let sys = ragged();
        let mut cpu = SparseAdEvaluator::new(sys.clone());
        let points = random_points::<f64>(3, 7, 0xBEEF);
        let mut gpu = SparseBatchGpuEvaluator::new(&sys, 7, GpuOptions::default()).unwrap();
        let got = gpu.evaluate_batch(&points);
        for (i, x) in points.iter().enumerate() {
            let want = cpu.evaluate(x);
            assert_eq!(got[i].values, want.values, "values, point {i}");
            assert_eq!(
                got[i].jacobian.as_slice(),
                want.jacobian.as_slice(),
                "jacobian, point {i}"
            );
        }
    }

    #[test]
    fn random_sparse_families_match_reference_bitwise() {
        for seed in [1u64, 2, 3] {
            let params = SparseBenchmarkParams {
                n: 6,
                m_min: 1,
                m_max: 5,
                k_min: 0,
                k_max: 4,
                d: 3,
                seed,
            };
            let sys = random_sparse_system::<f64>(&params);
            let mut cpu = SparseAdEvaluator::new(sys.clone());
            let points = random_points::<f64>(6, 5, seed ^ 0xFEED);
            let mut gpu = SparseBatchGpuEvaluator::new(&sys, 5, GpuOptions::default()).unwrap();
            let got = gpu.evaluate_batch(&points);
            for (i, x) in points.iter().enumerate() {
                let want = cpu.evaluate(x);
                assert_eq!(got[i].values, want.values, "seed {seed}, point {i}");
                assert_eq!(
                    got[i].jacobian.as_slice(),
                    want.jacobian.as_slice(),
                    "seed {seed}, point {i}"
                );
            }
        }
    }

    #[test]
    fn ragged_matches_reference_in_double_double() {
        use polygpu_qd::Dd;
        let sys = ragged().convert::<Dd>();
        let mut cpu = SparseAdEvaluator::new(sys.clone());
        let points: Vec<Vec<Complex<Dd>>> = random_points::<f64>(3, 4, 11)
            .into_iter()
            .map(|x| x.into_iter().map(|z| z.convert()).collect())
            .collect();
        let mut gpu = SparseBatchGpuEvaluator::new(&sys, 4, GpuOptions::default()).unwrap();
        let got = gpu.evaluate_batch(&points);
        for (i, x) in points.iter().enumerate() {
            let want = cpu.evaluate(x);
            assert_eq!(got[i].values, want.values, "dd values, point {i}");
            assert_eq!(
                got[i].jacobian.as_slice(),
                want.jacobian.as_slice(),
                "dd jacobian, point {i}"
            );
        }
    }

    #[test]
    fn single_point_wrapper_matches_batch_and_reports_typed_errors() {
        let sys = ragged();
        let mut single = SparseGpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let mut batch = SparseBatchGpuEvaluator::new(&sys, 4, GpuOptions::default()).unwrap();
        let points = random_points::<f64>(3, 4, 21);
        let a = single.evaluate_batch(&points);
        let b = batch.evaluate_batch(&points);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.values, y.values, "point {i}");
            assert_eq!(x.jacobian.as_slice(), y.jacobian.as_slice(), "point {i}");
        }
        assert_eq!(
            single.try_evaluate_batch(&[]).unwrap_err(),
            BatchError::Empty
        );
        let short = vec![Complex::<f64>::one(); 2];
        assert_eq!(
            single.try_evaluate(&short).unwrap_err(),
            BatchError::DimensionMismatch {
                point: 0,
                got: 2,
                expected: 3
            }
        );
        assert_eq!(
            batch
                .try_evaluate_batch(&random_points::<f64>(3, 5, 1))
                .unwrap_err(),
            BatchError::CapacityExceeded {
                points: 5,
                capacity: 4
            }
        );
    }

    /// A uniform system evaluated through the sparse pipeline matches
    /// the dense batched engine bit for bit — the shared-op-order
    /// invariant across the dense/sparse split.
    #[test]
    fn uniform_system_through_sparse_pipeline_matches_dense_bitwise() {
        use crate::batch::BatchGpuEvaluator;
        use polygpu_polysys::{random_system, BenchmarkParams};
        let prm = BenchmarkParams {
            n: 8,
            m: 5,
            k: 3,
            d: 4,
            seed: 2,
        };
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 6, 33);
        let mut dense = BatchGpuEvaluator::new(&sys, 6, GpuOptions::default()).unwrap();
        let mut sparse = SparseBatchGpuEvaluator::new(&sys, 6, GpuOptions::default()).unwrap();
        let a = dense.evaluate_batch(&points);
        let b = sparse.evaluate_batch(&points);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.values, y.values, "point {i}");
            assert_eq!(x.jacobian.as_slice(), y.jacobian.as_slice(), "point {i}");
        }
    }

    /// Reused buffers must not leak state between evaluations: a batch,
    /// then a different batch, then the first again — all bit-stable.
    #[test]
    fn buffer_reuse_is_stateless() {
        let sys = ragged();
        let mut gpu = SparseBatchGpuEvaluator::new(&sys, 4, GpuOptions::default()).unwrap();
        let p1 = random_points::<f64>(3, 4, 1);
        let p2 = random_points::<f64>(3, 2, 2);
        let first = gpu.evaluate_batch(&p1);
        let _ = gpu.evaluate_batch(&p2);
        let again = gpu.evaluate_batch(&p1);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.values, b.values);
            assert_eq!(a.jacobian.as_slice(), b.jacobian.as_slice());
        }
        let s = gpu.stats();
        assert_eq!(s.evaluations, 10);
        assert_eq!(s.batches, 3);
        assert!(s.seconds_per_eval() > 0.0);
    }
}
