//! Constant-memory encoding of **ragged** supports: packed exponent
//! keys plus per-monomial headers.
//!
//! The uniform encodings derive every decode parameter from the
//! `UniformShape`, so they store nothing but the factor streams. A
//! ragged system has no such shape: each monomial carries its own
//! variable count `k_g` and owner `(p, j)`. [`PackedSupports`] stores
//! one `u32` header per monomial — `k` in the low 8 bits, the equation
//! index `p` in the next 12, the within-equation slot `j` in the top
//! 12 — alongside the same radix exponent keys the uniform
//! [`EncodingKind::Packed`](crate::layout::encoding::EncodingKind)
//! uses, strided uniformly at `words_per_monomial` words (sized by the
//! system-wide `max_k`) so the kernels index keys without a prefix sum.
//! The header fields cap ragged systems at 4,096 rows, 4,096 monomials
//! per equation and 255 variables per monomial; violations reject with
//! a typed [`EncodeError::SupportTooLarge`] at encode time.

use crate::layout::encoding::{packed_geometry, EncodeError, PackedGeometry};
use polygpu_complex::Real;
use polygpu_gpusim::prelude::*;
use polygpu_polysys::{SparseShape, System};

/// Header-field limits (12 / 12 / 8 bits).
pub const MAX_ROWS: usize = 4096;
pub const MAX_M: usize = 4096;
pub const MAX_K: usize = 255;

/// A ragged system's supports resident in constant memory: one header
/// word and `words_per_monomial` key words per monomial, in term order
/// (equation-major, the ragged analogue of the paper's `Sm` order).
#[derive(Debug, Clone, Copy)]
pub struct PackedSupports {
    pub shape: SparseShape,
    pub geo: PackedGeometry,
    headers: ConstId,
    keys: ConstId,
}

/// Bytes of constant memory the ragged packed encoding of `shape`
/// requires: 4 header bytes plus the key words per monomial.
pub fn sparse_packed_bytes(shape: &SparseShape) -> usize {
    let geo = packed_geometry(shape.n, shape.d as usize, shape.max_k);
    4 * shape.total_monomials + geo.key_bytes(shape.total_monomials)
}

impl PackedSupports {
    /// Validate and upload the (possibly ragged) supports of `system`.
    pub fn upload<R: Real>(
        system: &System<R>,
        constant: &mut ConstantMemory,
    ) -> Result<Self, EncodeError> {
        let shape = system.sparse_shape();
        if shape.rows > MAX_ROWS {
            return Err(EncodeError::SupportTooLarge {
                what: "rows",
                got: shape.rows,
                limit: MAX_ROWS,
            });
        }
        if shape.max_m > MAX_M {
            return Err(EncodeError::SupportTooLarge {
                what: "monomials per equation",
                got: shape.max_m,
                limit: MAX_M,
            });
        }
        if shape.max_k > MAX_K {
            return Err(EncodeError::SupportTooLarge {
                what: "variables per monomial",
                got: shape.max_k,
                limit: MAX_K,
            });
        }
        let geo = packed_geometry(shape.n, shape.d as usize, shape.max_k);
        let width = geo.bits_pos + geo.bits_exp;
        let mut headers = Vec::with_capacity(4 * shape.total_monomials);
        let mut keys = Vec::with_capacity(geo.key_bytes(shape.total_monomials));
        for (p, poly) in system.polys().iter().enumerate() {
            for (j, term) in poly.terms().iter().enumerate() {
                let factors = term.monomial.factors();
                let header = factors.len() as u32 | ((p as u32) << 8) | ((j as u32) << 20);
                headers.extend_from_slice(&header.to_le_bytes());
                let mut words = vec![0u64; geo.words_per_monomial];
                for (i, &(v, e)) in factors.iter().enumerate() {
                    let key = v as u64 | (((e - 1) as u64) << geo.bits_pos);
                    words[i / geo.factors_per_word] |= key << ((i % geo.factors_per_word) * width);
                }
                for w in words {
                    keys.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        let headers = constant.alloc(&headers)?;
        let keys = constant.alloc(&keys)?;
        Ok(PackedSupports {
            shape,
            geo,
            headers,
            keys,
        })
    }

    /// Bytes of constant memory this encoding occupies.
    pub fn constant_bytes(&self) -> usize {
        self.headers.len() + self.keys.len()
    }

    /// The two constant-memory regions (`headers`, `keys`) — freed by a
    /// residency layer when the system is unloaded.
    pub fn regions(&self) -> (ConstId, ConstId) {
        (self.headers, self.keys)
    }

    /// Device-side header read of monomial `g`: returns
    /// `(k, p, j)` — its variable count, equation and slot. One `u32`
    /// constant load plus three field extracts.
    #[inline]
    pub fn read_header<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
    ) -> (usize, usize, usize) {
        let header = t.cload_u32(self.headers, g);
        t.iops(3);
        (
            (header & 0xFF) as usize,
            ((header >> 8) & 0xFFF) as usize,
            (header >> 20) as usize,
        )
    }

    /// Device-side read of factor `i` of monomial `g`: returns
    /// `(variable, exponent − 1)`. One `u64` constant load plus the
    /// key-select and two field extracts.
    #[inline]
    pub fn read_factor<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
        i: usize,
    ) -> (usize, usize) {
        let word = t.cload_u64(
            self.keys,
            g * self.geo.words_per_monomial + i / self.geo.factors_per_word,
        );
        t.iops(3);
        let key =
            word >> ((i % self.geo.factors_per_word) * (self.geo.bits_pos + self.geo.bits_exp));
        let var = (key & ((1u64 << self.geo.bits_pos) - 1)) as usize;
        let em1 = ((key >> self.geo.bits_pos) & ((1u64 << self.geo.bits_exp) - 1)) as usize;
        (var, em1)
    }

    /// Variable position of factor `i` of monomial `g` only.
    #[inline]
    pub fn read_position<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
        i: usize,
    ) -> usize {
        let word = t.cload_u64(
            self.keys,
            g * self.geo.words_per_monomial + i / self.geo.factors_per_word,
        );
        t.iops(2);
        let key =
            word >> ((i % self.geo.factors_per_word) * (self.geo.bits_pos + self.geo.bits_exp));
        (key & ((1u64 << self.geo.bits_pos) - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::{
        random_sparse_system, Monomial, Polynomial, SparseBenchmarkParams, Term,
    };

    fn ragged() -> System<f64> {
        let p0 = Polynomial::new(vec![
            Term {
                coeff: C64::one(),
                monomial: Monomial::new(vec![(0, 2), (1, 1)]).unwrap(),
            },
            Term {
                coeff: C64::one(),
                monomial: Monomial::var(1),
            },
            Term {
                coeff: C64::from_f64(3.0, 0.0),
                monomial: Monomial::constant(),
            },
        ]);
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 1), (1, 3)]).unwrap(),
        }]);
        System::new(2, vec![p0, p1]).unwrap()
    }

    #[test]
    fn upload_round_trips_headers_and_factors() {
        let sys = ragged();
        let dev = DeviceSpec::tesla_c2050();
        let mut cm = ConstantMemory::new(&dev);
        let sup = PackedSupports::upload(&sys, &mut cm).unwrap();
        assert_eq!(
            sup.constant_bytes(),
            sparse_packed_bytes(&sys.sparse_shape())
        );
        assert_eq!(cm.used(), sup.constant_bytes());

        #[allow(clippy::type_complexity)] // test probe: (k, p, j, factors) per monomial
        struct Probe {
            sup: PackedSupports,
            want: Vec<(usize, usize, usize, Vec<(usize, usize)>)>,
        }
        impl Kernel<C64> for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn shared_elems(&self, _b: u32) -> usize {
                0
            }
            fn run_block(&self, blk: &mut BlockCtx<'_, C64>) {
                blk.threads(|t| {
                    if t.tid() != 0 {
                        return;
                    }
                    for (g, (k, p, j, factors)) in self.want.iter().enumerate() {
                        assert_eq!(self.sup.read_header(t, g), (*k, *p, *j));
                        for (i, &(v, em1)) in factors.iter().enumerate() {
                            assert_eq!(self.sup.read_factor(t, g, i), (v, em1));
                            assert_eq!(self.sup.read_position(t, g, i), v);
                        }
                    }
                });
            }
        }
        let want = vec![
            (2, 0, 0, vec![(0usize, 1usize), (1, 0)]),
            (1, 0, 1, vec![(1, 0)]),
            (0, 0, 2, vec![]),
            (2, 1, 0, vec![(0, 0), (1, 2)]),
        ];
        let mut global = GlobalMem::<C64>::new();
        launch(
            &dev,
            &Probe { sup, want },
            LaunchConfig::cover(1, 32),
            &mut global,
            &cm,
            LaunchOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn sizing_beats_a_direct_equivalent_on_sparse_families() {
        // The ragged Table-1 cousin: even with the 4-byte headers the
        // packed footprint undercuts what a direct encoding of the
        // padded uniform hull would cost.
        let sys = random_sparse_system::<f64>(&SparseBenchmarkParams::table1_sparse(1));
        let shape = sys.sparse_shape();
        let packed = sparse_packed_bytes(&shape);
        let padded_direct = shape.rows * shape.max_m * 2 * shape.max_k;
        assert!(
            packed * 2 <= padded_direct,
            "packed {packed} vs padded direct {padded_direct}"
        );
    }

    #[test]
    fn header_caps_reject_typed() {
        // 4,097 rows of one linear monomial each exceeds the p field.
        let polys: Vec<Polynomial<f64>> = (0..4097)
            .map(|v| {
                Polynomial::new(vec![Term {
                    coeff: C64::one(),
                    monomial: Monomial::var((v % 4097) as u16),
                }])
            })
            .collect();
        let sys = System::new(4097, polys).unwrap();
        let dev = DeviceSpec::tesla_c2050();
        let mut cm = ConstantMemory::new(&dev);
        let err = PackedSupports::upload(&sys, &mut cm).unwrap_err();
        assert_eq!(
            err,
            EncodeError::SupportTooLarge {
                what: "rows",
                got: 4097,
                limit: MAX_ROWS
            }
        );
        assert_eq!(cm.used(), 0, "rejected upload leaves no allocation");
    }
}
