//! Device memory layouts: constant-memory support encoding, the
//! derivative-major `Coeffs` array, and the summation-friendly `Mons`
//! array.

pub mod coeffs;
pub mod encoding;
pub mod mons;
