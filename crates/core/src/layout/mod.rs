//! Device memory layouts: constant-memory support encodings (uniform
//! and ragged packed-key), the derivative-major `Coeffs` array, and the
//! summation-friendly `Mons` array.

pub mod coeffs;
pub mod encoding;
pub mod mons;
pub mod packed;
