//! Constant-memory encoding of the system's supports: the `Positions`
//! and `Exponents` arrays of the paper (§3.1).
//!
//! The **direct** encoding is the paper's: one `u8` per variable
//! position ("a position of a variable from 0 to 255") and one `u8`
//! per exponent, stored as `exponent − 1` ("giving us opportunity to
//! work with variables appearing in degrees up to 255"). Its capacity
//! wall — `2·k` bytes per monomial against the 65,536-byte constant
//! memory — is what stopped the paper at 1,536 monomials (§4).
//!
//! The **compact** encoding implements the paper's proposed future work
//! ("more compact encodings for storing the positions and exponents…
//! so to be working with higher dimensions"): exponents are
//! nibble-packed (two per byte, requiring `d <= 16`), cutting the
//! per-monomial cost from `2k` to `1.5k` bytes at the price of a couple
//! of integer decode operations per access — which, as the paper
//! predicts, are dominated by the multiplications that follow.

use polygpu_complex::Real;
use polygpu_gpusim::prelude::*;
use polygpu_polysys::{System, SystemError, UniformShape};
use std::fmt;

/// Which support encoding to place in constant memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingKind {
    /// The paper's layout: `u8` position + `u8` (exponent − 1) per
    /// variable.
    #[default]
    Direct,
    /// Nibble-packed exponents (`d <= 16`): the paper's proposed
    /// compression.
    Compact,
}

/// Errors encoding a system's supports.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// The system failed the uniform-shape validation.
    Shape(SystemError),
    /// A variable index does not fit the `u8` position field.
    PositionTooLarge { var: usize },
    /// An exponent does not fit the encoding's field.
    ExponentTooLarge { exp: usize, limit: usize },
    /// Constant memory exhausted — the paper's observed failure mode at
    /// 2,048 monomials.
    Constant(ConstantOverflow),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Shape(e) => write!(f, "shape: {e}"),
            EncodeError::PositionTooLarge { var } => {
                write!(f, "variable index {var} exceeds the u8 position field")
            }
            EncodeError::ExponentTooLarge { exp, limit } => {
                write!(f, "exponent {exp} exceeds the encoding limit {limit}")
            }
            EncodeError::Constant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<ConstantOverflow> for EncodeError {
    fn from(e: ConstantOverflow) -> Self {
        EncodeError::Constant(e)
    }
}

/// The system's supports resident in constant memory, plus the shape.
///
/// Monomials are indexed in the paper's `Sm` order: monomial `j` of
/// polynomial `p` has global index `g = p·m + j`.
#[derive(Debug, Clone, Copy)]
pub struct EncodedSupports {
    pub kind: EncodingKind,
    pub shape: UniformShape,
    positions: ConstId,
    exponents: ConstId,
}

impl EncodedSupports {
    /// Bytes of constant memory the encoding of `shape` requires.
    pub fn bytes_needed(shape: &UniformShape, kind: EncodingKind) -> usize {
        let entries = shape.total_monomials() * shape.k;
        match kind {
            EncodingKind::Direct => 2 * entries,
            EncodingKind::Compact => entries + entries.div_ceil(2),
        }
    }

    /// Validate and upload the supports of `system` into `constant`.
    pub fn upload<R: Real>(
        system: &System<R>,
        constant: &mut ConstantMemory,
        kind: EncodingKind,
    ) -> Result<Self, EncodeError> {
        let shape = system.uniform_shape().map_err(EncodeError::Shape)?;
        let exp_limit = match kind {
            EncodingKind::Direct => 256usize, // stores exp-1 in u8
            EncodingKind::Compact => 16,      // stores exp-1 in a nibble
        };
        let entries = shape.total_monomials() * shape.k;
        let mut positions = Vec::with_capacity(entries);
        let mut exponents = Vec::with_capacity(entries);
        for poly in system.polys() {
            for term in poly.terms() {
                for &(v, e) in term.monomial.factors() {
                    if v as usize > 255 {
                        return Err(EncodeError::PositionTooLarge { var: v as usize });
                    }
                    if e as usize > exp_limit {
                        return Err(EncodeError::ExponentTooLarge {
                            exp: e as usize,
                            limit: exp_limit,
                        });
                    }
                    positions.push(v as u8);
                    exponents.push((e - 1) as u8);
                }
            }
        }
        let (positions, exponents) = match kind {
            EncodingKind::Direct => (constant.alloc(&positions)?, constant.alloc(&exponents)?),
            EncodingKind::Compact => {
                let mut packed = vec![0u8; entries.div_ceil(2)];
                for (i, &e) in exponents.iter().enumerate() {
                    if i % 2 == 0 {
                        packed[i / 2] |= e & 0x0F;
                    } else {
                        packed[i / 2] |= (e & 0x0F) << 4;
                    }
                }
                (constant.alloc(&positions)?, constant.alloc(&packed)?)
            }
        };
        Ok(EncodedSupports {
            kind,
            shape,
            positions,
            exponents,
        })
    }

    /// Bytes of constant memory **this encoding** occupies (its own
    /// positions + exponents regions only — not the whole arena, which
    /// may hold other resident systems too).
    pub fn constant_bytes(&self) -> usize {
        self.positions.len() + self.exponents.len()
    }

    /// The two constant-memory regions this encoding occupies
    /// (`positions`, `exponents`) — what a residency session hands back
    /// to [`ConstantMemory::free`] when it unloads the system.
    pub fn regions(&self) -> (ConstId, ConstId) {
        (self.positions, self.exponents)
    }

    /// Device-side read of factor `j` (0-based) of monomial `g`:
    /// returns `(variable, exponent - 1)`. Performs the constant loads
    /// and decode integer ops through the thread context so the
    /// simulator charges them.
    #[inline]
    pub fn read_factor<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
        j: usize,
    ) -> (usize, usize) {
        let idx = g * self.shape.k + j;
        let var = t.cload_u8(self.positions, idx) as usize;
        let em1 = match self.kind {
            EncodingKind::Direct => t.cload_u8(self.exponents, idx) as usize,
            EncodingKind::Compact => {
                let byte = t.cload_u8(self.exponents, idx / 2);
                // Nibble select: shift + mask, charged as 2 integer ops
                // (the decode cost the paper reasons about).
                t.iops(2);
                if idx.is_multiple_of(2) {
                    (byte & 0x0F) as usize
                } else {
                    (byte >> 4) as usize
                }
            }
        };
        (var, em1)
    }

    /// Variable position only (used where the exponent is not needed,
    /// e.g. kernel 2's Speelpenning stage: "the array Positions … is
    /// used in this kernel as well").
    #[inline]
    pub fn read_position<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
        j: usize,
    ) -> usize {
        t.cload_u8(self.positions, g * self.shape.k + j) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{random_system, BenchmarkParams};

    fn params(n: usize, m: usize, k: usize, d: u16) -> BenchmarkParams {
        BenchmarkParams {
            n,
            m,
            k,
            d,
            seed: 5,
        }
    }

    #[test]
    fn bytes_needed_matches_paper_arithmetic() {
        // Paper §3.1: "for dimension 30 we would have 900 monomials,
        // with a need of 900 × 2 × 15 <= 30,000 bytes".
        let shape = UniformShape {
            n: 30,
            rows: 30,
            m: 30,
            k: 15,
            d: 5,
        };
        assert_eq!(
            EncodedSupports::bytes_needed(&shape, EncodingKind::Direct),
            27_000
        );
        // "for dimension 40 we would have 1,600 monomials, with a need
        // of 1,600 × 2 × 20 = 64,000 bytes".
        let shape40 = UniformShape {
            n: 40,
            rows: 40,
            m: 40,
            k: 20,
            d: 5,
        };
        assert_eq!(
            EncodedSupports::bytes_needed(&shape40, EncodingKind::Direct),
            64_000
        );
        // Compact: 1.5 bytes per entry.
        assert_eq!(
            EncodedSupports::bytes_needed(&shape40, EncodingKind::Compact),
            48_000
        );
    }

    #[test]
    fn capacity_wall_at_2048_monomials_k16() {
        // E3: 2,048 monomials at k=16 need exactly 65,536 bytes of
        // payload, which cannot fit alongside the reserved region.
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&params(32, 64, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        let err = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap_err();
        assert!(matches!(err, EncodeError::Constant(_)), "{err}");
        // 1,536 monomials fit (Table 2's largest point).
        let sys = random_system::<f64>(&params(32, 48, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        assert!(EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).is_ok());
    }

    #[test]
    fn compact_encoding_lifts_the_wall() {
        // X1: the same 2,048-monomial system fits with nibble packing:
        // 2048*16*1.5 = 49,152 bytes.
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&params(32, 64, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Compact).unwrap();
        assert_eq!(cm.used(), 49_152);
        assert_eq!(enc.shape.total_monomials(), 2048);
    }

    #[test]
    fn compact_rejects_large_exponents() {
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&BenchmarkParams {
            n: 8,
            m: 2,
            k: 2,
            d: 30,
            seed: 1,
        });
        // d up to 30 -> exponent-1 up to 29 > 15.
        let mut cm = ConstantMemory::new(&dev);
        let r = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Compact);
        assert!(matches!(r, Err(EncodeError::ExponentTooLarge { .. })));
        // Direct handles it.
        let mut cm = ConstantMemory::new(&dev);
        assert!(EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).is_ok());
    }

    #[test]
    fn non_uniform_rejected() {
        use polygpu_complex::C64;
        use polygpu_polysys::{Monomial, Polynomial, System, Term};
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 1), (1, 1)]).unwrap(),
        }]);
        let p2 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 2)]).unwrap(),
        }]);
        let sys = System::new(2, vec![p1, p2]).unwrap();
        let dev = DeviceSpec::tesla_c2050();
        let mut cm = ConstantMemory::new(&dev);
        let r = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct);
        assert!(matches!(r, Err(EncodeError::Shape(_))));
    }
}
