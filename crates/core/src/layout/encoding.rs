//! Constant-memory encoding of the system's supports: the `Positions`
//! and `Exponents` arrays of the paper (§3.1).
//!
//! The **direct** encoding is the paper's: one `u8` per variable
//! position ("a position of a variable from 0 to 255") and one `u8`
//! per exponent, stored as `exponent − 1` ("giving us opportunity to
//! work with variables appearing in degrees up to 255"). Its capacity
//! wall — `2·k` bytes per monomial against the 65,536-byte constant
//! memory — is what stopped the paper at 1,536 monomials (§4).
//!
//! The **compact** encoding implements the paper's proposed future work
//! ("more compact encodings for storing the positions and exponents…
//! so to be working with higher dimensions"): exponents are
//! nibble-packed (two per byte, requiring `d <= 16`), cutting the
//! per-monomial cost from `2k` to `1.5k` bytes at the price of a couple
//! of integer decode operations per access — which, as the paper
//! predicts, are dominated by the multiplications that follow.
//!
//! The **packed** encoding takes that idea to its limit: each factor's
//! `(position, exponent − 1)` pair becomes one radix key of
//! `⌈log₂ n⌉ + ⌈log₂ d⌉` bits and consecutive keys are bit-packed into
//! little-endian `u64` words ([`packed_geometry`]). All decode
//! parameters derive from the shape, so no header is stored; the
//! device-side decode (one `u64` constant load plus shift/mask integer
//! ops per factor) is charged honestly through the thread context. For
//! the paper's Table 1 shape (`n = 32, k = 9, d = 2`) a monomial costs
//! 8 bytes against the direct encoding's 18 — a 2.25× footprint cut —
//! and the 2,048-monomial `k = 16, d = 10` system that overflows the
//! direct encoding fits in 49,152 bytes.

use polygpu_complex::Real;
use polygpu_gpusim::prelude::*;
use polygpu_polysys::{System, SystemError, UniformShape};
use std::fmt;

/// Which support encoding to place in constant memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingKind {
    /// The paper's layout: `u8` position + `u8` (exponent − 1) per
    /// variable.
    #[default]
    Direct,
    /// Nibble-packed exponents (`d <= 16`): the paper's proposed
    /// compression.
    Compact,
    /// Radix exponent keys bit-packed into `u64` words: each factor
    /// costs `⌈log₂ n⌉ + ⌈log₂ d⌉` bits instead of 16. The only
    /// encoding that also expresses **ragged** supports (via the
    /// header-carrying [`PackedSupports`](crate::layout::packed::PackedSupports)
    /// layout); on uniform shapes it stays header-free and the dense
    /// kernels decode it in place, bit-identically to `Direct`.
    Packed,
}

/// Smallest field width (in bits, at least 1) that represents every
/// value in `0..=max_value`.
pub(crate) fn bits_for(max_value: usize) -> usize {
    ((usize::BITS - max_value.leading_zeros()) as usize).max(1)
}

/// Decode parameters of the packed exponent-key encoding — a pure
/// function of `(n, d, k)`, so nothing but the keys themselves is
/// stored. Each factor's key is `position | (exponent − 1) << bits_pos`;
/// consecutive keys of one monomial fill little-endian `u64` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedGeometry {
    /// Bits of the position field: `⌈log₂ n⌉` (min 1).
    pub bits_pos: usize,
    /// Bits of the exponent field: `⌈log₂ d⌉` (min 1); stores `e − 1`.
    pub bits_exp: usize,
    /// Whole keys per 64-bit word.
    pub factors_per_word: usize,
    /// Words per monomial: `⌈k / factors_per_word⌉`.
    pub words_per_monomial: usize,
}

impl PackedGeometry {
    /// Key-payload bytes for `total` monomials.
    pub fn key_bytes(&self, total: usize) -> usize {
        total * self.words_per_monomial * 8
    }
}

/// Packed-key geometry for supports of dimension `n`, maximal exponent
/// `d` and (maximal) `k` variables per monomial. `Var` is `u16`, so
/// `bits_pos <= 16` and `bits_exp <= 16`: a key always fits a word.
pub fn packed_geometry(n: usize, d: usize, k: usize) -> PackedGeometry {
    let bits_pos = bits_for(n.saturating_sub(1));
    let bits_exp = bits_for(d.saturating_sub(1));
    let factors_per_word = 64 / (bits_pos + bits_exp);
    PackedGeometry {
        bits_pos,
        bits_exp,
        factors_per_word,
        words_per_monomial: k.div_ceil(factors_per_word),
    }
}

/// Errors encoding a system's supports.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// The system failed the uniform-shape validation.
    Shape(SystemError),
    /// A variable index does not fit the `u8` position field.
    PositionTooLarge { var: usize },
    /// An exponent does not fit the encoding's field.
    ExponentTooLarge { exp: usize, limit: usize },
    /// A ragged support exceeds a packed-header field (`rows` and
    /// per-equation monomial counts carry 12 bits, variable counts 8).
    SupportTooLarge {
        what: &'static str,
        got: usize,
        limit: usize,
    },
    /// Constant memory exhausted — the paper's observed failure mode at
    /// 2,048 monomials.
    Constant(ConstantOverflow),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Shape(e) => write!(f, "shape: {e}"),
            EncodeError::PositionTooLarge { var } => {
                write!(f, "variable index {var} exceeds the u8 position field")
            }
            EncodeError::ExponentTooLarge { exp, limit } => {
                write!(f, "exponent {exp} exceeds the encoding limit {limit}")
            }
            EncodeError::SupportTooLarge { what, got, limit } => {
                write!(f, "{what} {got} exceeds the packed-header limit {limit}")
            }
            EncodeError::Constant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<ConstantOverflow> for EncodeError {
    fn from(e: ConstantOverflow) -> Self {
        EncodeError::Constant(e)
    }
}

/// The system's supports resident in constant memory, plus the shape.
///
/// Monomials are indexed in the paper's `Sm` order: monomial `j` of
/// polynomial `p` has global index `g = p·m + j`.
#[derive(Debug, Clone, Copy)]
pub struct EncodedSupports {
    pub kind: EncodingKind,
    pub shape: UniformShape,
    positions: ConstId,
    exponents: ConstId,
}

impl EncodedSupports {
    /// Bytes of constant memory the encoding of `shape` requires.
    pub fn bytes_needed(shape: &UniformShape, kind: EncodingKind) -> usize {
        let entries = shape.total_monomials() * shape.k;
        match kind {
            EncodingKind::Direct => 2 * entries,
            EncodingKind::Compact => entries + entries.div_ceil(2),
            EncodingKind::Packed => packed_geometry(shape.n, shape.d as usize, shape.k)
                .key_bytes(shape.total_monomials()),
        }
    }

    /// Validate and upload the supports of `system` into `constant`.
    pub fn upload<R: Real>(
        system: &System<R>,
        constant: &mut ConstantMemory,
        kind: EncodingKind,
    ) -> Result<Self, EncodeError> {
        let shape = system.uniform_shape().map_err(EncodeError::Shape)?;
        // The packed fields are sized by the shape itself (`bits_pos`
        // from n, `bits_exp` from the observed d), so only the
        // byte-wide encodings carry fixed field limits.
        let (pos_limit, exp_limit) = match kind {
            EncodingKind::Direct => (255usize, 256usize), // stores exp-1 in u8
            EncodingKind::Compact => (255, 16),           // stores exp-1 in a nibble
            EncodingKind::Packed => (usize::MAX, usize::MAX),
        };
        let entries = shape.total_monomials() * shape.k;
        let mut flat = Vec::with_capacity(entries);
        for poly in system.polys() {
            for term in poly.terms() {
                for &(v, e) in term.monomial.factors() {
                    if v as usize > pos_limit {
                        return Err(EncodeError::PositionTooLarge { var: v as usize });
                    }
                    if e as usize > exp_limit {
                        return Err(EncodeError::ExponentTooLarge {
                            exp: e as usize,
                            limit: exp_limit,
                        });
                    }
                    flat.push((v as usize, (e - 1) as usize));
                }
            }
        }
        let (positions, exponents) = match kind {
            EncodingKind::Direct => {
                let pos: Vec<u8> = flat.iter().map(|&(v, _)| v as u8).collect();
                let exp: Vec<u8> = flat.iter().map(|&(_, e)| e as u8).collect();
                (constant.alloc(&pos)?, constant.alloc(&exp)?)
            }
            EncodingKind::Compact => {
                let pos: Vec<u8> = flat.iter().map(|&(v, _)| v as u8).collect();
                let mut packed = vec![0u8; entries.div_ceil(2)];
                for (i, &(_, e)) in flat.iter().enumerate() {
                    if i % 2 == 0 {
                        packed[i / 2] |= (e as u8) & 0x0F;
                    } else {
                        packed[i / 2] |= ((e as u8) & 0x0F) << 4;
                    }
                }
                (constant.alloc(&pos)?, constant.alloc(&packed)?)
            }
            EncodingKind::Packed => {
                let geo = packed_geometry(shape.n, shape.d as usize, shape.k);
                let mut keys =
                    Vec::with_capacity(shape.total_monomials() * geo.words_per_monomial * 8);
                for mon in flat.chunks(shape.k) {
                    let mut words = vec![0u64; geo.words_per_monomial];
                    for (j, &(v, em1)) in mon.iter().enumerate() {
                        let key = v as u64 | ((em1 as u64) << geo.bits_pos);
                        words[j / geo.factors_per_word] |=
                            key << ((j % geo.factors_per_word) * (geo.bits_pos + geo.bits_exp));
                    }
                    for w in words {
                        keys.extend_from_slice(&w.to_le_bytes());
                    }
                }
                // Keys live in the `exponents` region; `positions` is a
                // zero-length placeholder (free of an empty region is a
                // no-op, so `regions()` round-trips unchanged).
                (constant.alloc(&[])?, constant.alloc(&keys)?)
            }
        };
        Ok(EncodedSupports {
            kind,
            shape,
            positions,
            exponents,
        })
    }

    /// Bytes of constant memory **this encoding** occupies (its own
    /// positions + exponents regions only — not the whole arena, which
    /// may hold other resident systems too).
    pub fn constant_bytes(&self) -> usize {
        self.positions.len() + self.exponents.len()
    }

    /// The two constant-memory regions this encoding occupies
    /// (`positions`, `exponents`) — what a residency session hands back
    /// to [`ConstantMemory::free`] when it unloads the system.
    pub fn regions(&self) -> (ConstId, ConstId) {
        (self.positions, self.exponents)
    }

    /// Device-side read of factor `j` (0-based) of monomial `g`:
    /// returns `(variable, exponent - 1)`. Performs the constant loads
    /// and decode integer ops through the thread context so the
    /// simulator charges them.
    #[inline]
    pub fn read_factor<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
        j: usize,
    ) -> (usize, usize) {
        let idx = g * self.shape.k + j;
        match self.kind {
            EncodingKind::Direct => {
                let var = t.cload_u8(self.positions, idx) as usize;
                let em1 = t.cload_u8(self.exponents, idx) as usize;
                (var, em1)
            }
            EncodingKind::Compact => {
                let var = t.cload_u8(self.positions, idx) as usize;
                let byte = t.cload_u8(self.exponents, idx / 2);
                // Nibble select: shift + mask, charged as 2 integer ops
                // (the decode cost the paper reasons about).
                t.iops(2);
                let em1 = if idx.is_multiple_of(2) {
                    (byte & 0x0F) as usize
                } else {
                    (byte >> 4) as usize
                };
                (var, em1)
            }
            EncodingKind::Packed => {
                let geo = packed_geometry(self.shape.n, self.shape.d as usize, self.shape.k);
                let word = t.cload_u64(
                    self.exponents,
                    g * geo.words_per_monomial + j / geo.factors_per_word,
                );
                // Key select + two field extracts: charged as 3 integer
                // ops on top of the word load.
                t.iops(3);
                let key = word >> ((j % geo.factors_per_word) * (geo.bits_pos + geo.bits_exp));
                let var = (key & ((1u64 << geo.bits_pos) - 1)) as usize;
                let em1 = ((key >> geo.bits_pos) & ((1u64 << geo.bits_exp) - 1)) as usize;
                (var, em1)
            }
        }
    }

    /// Variable position only (used where the exponent is not needed,
    /// e.g. kernel 2's Speelpenning stage: "the array Positions … is
    /// used in this kernel as well").
    #[inline]
    pub fn read_position<T: DeviceValue>(
        &self,
        t: &mut ThreadCtx<'_, T>,
        g: usize,
        j: usize,
    ) -> usize {
        match self.kind {
            EncodingKind::Direct | EncodingKind::Compact => {
                t.cload_u8(self.positions, g * self.shape.k + j) as usize
            }
            EncodingKind::Packed => {
                let geo = packed_geometry(self.shape.n, self.shape.d as usize, self.shape.k);
                let word = t.cload_u64(
                    self.exponents,
                    g * geo.words_per_monomial + j / geo.factors_per_word,
                );
                // Key select + position mask.
                t.iops(2);
                let key = word >> ((j % geo.factors_per_word) * (geo.bits_pos + geo.bits_exp));
                (key & ((1u64 << geo.bits_pos) - 1)) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{random_system, BenchmarkParams};

    fn params(n: usize, m: usize, k: usize, d: u16) -> BenchmarkParams {
        BenchmarkParams {
            n,
            m,
            k,
            d,
            seed: 5,
        }
    }

    #[test]
    fn bytes_needed_matches_paper_arithmetic() {
        // Paper §3.1: "for dimension 30 we would have 900 monomials,
        // with a need of 900 × 2 × 15 <= 30,000 bytes".
        let shape = UniformShape {
            n: 30,
            rows: 30,
            m: 30,
            k: 15,
            d: 5,
        };
        assert_eq!(
            EncodedSupports::bytes_needed(&shape, EncodingKind::Direct),
            27_000
        );
        // "for dimension 40 we would have 1,600 monomials, with a need
        // of 1,600 × 2 × 20 = 64,000 bytes".
        let shape40 = UniformShape {
            n: 40,
            rows: 40,
            m: 40,
            k: 20,
            d: 5,
        };
        assert_eq!(
            EncodedSupports::bytes_needed(&shape40, EncodingKind::Direct),
            64_000
        );
        // Compact: 1.5 bytes per entry.
        assert_eq!(
            EncodedSupports::bytes_needed(&shape40, EncodingKind::Compact),
            48_000
        );
    }

    #[test]
    fn capacity_wall_at_2048_monomials_k16() {
        // E3: 2,048 monomials at k=16 need exactly 65,536 bytes of
        // payload, which cannot fit alongside the reserved region.
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&params(32, 64, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        let err = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap_err();
        assert!(matches!(err, EncodeError::Constant(_)), "{err}");
        // 1,536 monomials fit (Table 2's largest point).
        let sys = random_system::<f64>(&params(32, 48, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        assert!(EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).is_ok());
    }

    #[test]
    fn compact_encoding_lifts_the_wall() {
        // X1: the same 2,048-monomial system fits with nibble packing:
        // 2048*16*1.5 = 49,152 bytes.
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&params(32, 64, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Compact).unwrap();
        assert_eq!(cm.used(), 49_152);
        assert_eq!(enc.shape.total_monomials(), 2048);
    }

    #[test]
    fn packed_geometry_matches_hand_arithmetic() {
        // Table 1 shape: n = 32 -> 5 position bits, d = 2 -> 1 exponent
        // bit, 6-bit keys, 10 per word, k = 9 -> one word = 8 bytes per
        // monomial (the direct encoding spends 18).
        let g = packed_geometry(32, 2, 9);
        assert_eq!((g.bits_pos, g.bits_exp), (5, 1));
        assert_eq!(g.factors_per_word, 10);
        assert_eq!(g.words_per_monomial, 1);
        let t1 = UniformShape {
            n: 32,
            rows: 32,
            m: 22,
            k: 9,
            d: 2,
        };
        let direct = EncodedSupports::bytes_needed(&t1, EncodingKind::Direct);
        let packed = EncodedSupports::bytes_needed(&t1, EncodingKind::Packed);
        assert_eq!(direct, 704 * 18);
        assert_eq!(packed, 704 * 8);
        assert!(direct as f64 / packed as f64 >= 2.0);

        // Table 2 shape: 5 + 4 = 9-bit keys, 7 per word, k = 16 -> 3
        // words = 24 bytes per monomial; 2,048 monomials fit in 49,152
        // bytes where the direct encoding needs 65,536.
        let g2 = packed_geometry(32, 10, 16);
        assert_eq!((g2.bits_pos, g2.bits_exp), (5, 4));
        assert_eq!(g2.factors_per_word, 7);
        assert_eq!(g2.words_per_monomial, 3);
        let t2 = UniformShape {
            n: 32,
            rows: 32,
            m: 64,
            k: 16,
            d: 10,
        };
        assert_eq!(
            EncodedSupports::bytes_needed(&t2, EncodingKind::Direct),
            65_536
        );
        assert_eq!(
            EncodedSupports::bytes_needed(&t2, EncodingKind::Packed),
            49_152
        );
    }

    #[test]
    fn packed_encoding_fits_where_direct_overflows() {
        // The 2,048-monomial k = 16 wall again (E3), lifted by packing.
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&params(32, 64, 16, 10));
        let mut cm = ConstantMemory::new(&dev);
        let err = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap_err();
        assert!(matches!(err, EncodeError::Constant(_)), "{err}");
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Packed).unwrap();
        assert_eq!(cm.used(), 49_152);
        assert_eq!(enc.constant_bytes(), 49_152);
        // The placeholder positions region is empty; freeing both
        // regions drains the arena.
        let (pos, keys) = enc.regions();
        assert_eq!(pos.len(), 0);
        assert_eq!(keys.len(), 49_152);
        cm.free(pos);
        cm.free(keys);
        assert_eq!(cm.used(), 0);
    }

    #[test]
    fn packed_round_trips_factors_bit_exactly() {
        // Decode through a real thread context must reproduce exactly
        // what the direct encoding stores, factor by factor.
        use polygpu_complex::C64;
        let dev = DeviceSpec::tesla_c2050();
        for p in [
            params(32, 4, 9, 2),
            params(32, 4, 16, 10),
            params(7, 3, 2, 5),
        ] {
            let sys = random_system::<f64>(&p);
            struct Probe {
                a: EncodedSupports,
                b: EncodedSupports,
            }
            impl Kernel<C64> for Probe {
                fn name(&self) -> &str {
                    "probe"
                }
                fn shared_elems(&self, _b: u32) -> usize {
                    0
                }
                fn run_block(&self, blk: &mut BlockCtx<'_, C64>) {
                    let shape = self.a.shape;
                    blk.threads(|t| {
                        if t.tid() != 0 {
                            return;
                        }
                        for g in 0..shape.total_monomials() {
                            for j in 0..shape.k {
                                assert_eq!(
                                    self.a.read_factor(t, g, j),
                                    self.b.read_factor(t, g, j),
                                    "factor ({g}, {j})"
                                );
                                assert_eq!(
                                    self.a.read_position(t, g, j),
                                    self.b.read_position(t, g, j)
                                );
                            }
                        }
                    });
                }
            }
            // Both encodings share one arena so one launch sees both.
            let mut cm = ConstantMemory::new(&dev);
            let a = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).unwrap();
            let b = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Packed).unwrap();
            let mut global = GlobalMem::<C64>::new();
            launch(
                &dev,
                &Probe { a, b },
                LaunchConfig::cover(1, 32),
                &mut global,
                &cm,
                LaunchOptions::default(),
            )
            .unwrap();
        }
    }

    #[test]
    fn compact_boundary_exponent_16_encodes_17_rejects() {
        // Satellite: the nibble stores exp − 1, so 16 is the exact cap —
        // it must encode (as 15), and 17 must reject typed, never
        // truncate.
        use polygpu_complex::C64;
        use polygpu_polysys::{Monomial, Polynomial, System, Term};
        let dev = DeviceSpec::tesla_c2050();
        let at = |e: u16| {
            let p0 = Polynomial::new(vec![Term {
                coeff: C64::one(),
                monomial: Monomial::new(vec![(0, e)]).unwrap(),
            }]);
            let p1 = Polynomial::new(vec![Term {
                coeff: C64::one(),
                monomial: Monomial::new(vec![(1, e)]).unwrap(),
            }]);
            System::new(2, vec![p0, p1]).unwrap()
        };
        let mut cm = ConstantMemory::new(&dev);
        let enc = EncodedSupports::upload(&at(16), &mut cm, EncodingKind::Compact).unwrap();
        assert_eq!(enc.shape.d, 16);
        let mut cm = ConstantMemory::new(&dev);
        let err = EncodedSupports::upload(&at(17), &mut cm, EncodingKind::Compact).unwrap_err();
        assert_eq!(err, EncodeError::ExponentTooLarge { exp: 17, limit: 16 });
        // Nothing was left allocated by the rejected upload's positions.
        assert_eq!(cm.used(), 0);
        // Direct and packed both take the same system.
        let mut cm = ConstantMemory::new(&dev);
        assert!(EncodedSupports::upload(&at(17), &mut cm, EncodingKind::Direct).is_ok());
        let mut cm = ConstantMemory::new(&dev);
        assert!(EncodedSupports::upload(&at(17), &mut cm, EncodingKind::Packed).is_ok());
    }

    #[test]
    fn compact_rejects_large_exponents() {
        let dev = DeviceSpec::tesla_c2050();
        let sys = random_system::<f64>(&BenchmarkParams {
            n: 8,
            m: 2,
            k: 2,
            d: 30,
            seed: 1,
        });
        // d up to 30 -> exponent-1 up to 29 > 15.
        let mut cm = ConstantMemory::new(&dev);
        let r = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Compact);
        assert!(matches!(r, Err(EncodeError::ExponentTooLarge { .. })));
        // Direct handles it.
        let mut cm = ConstantMemory::new(&dev);
        assert!(EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct).is_ok());
    }

    #[test]
    fn non_uniform_rejected() {
        use polygpu_complex::C64;
        use polygpu_polysys::{Monomial, Polynomial, System, Term};
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 1), (1, 1)]).unwrap(),
        }]);
        let p2 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 2)]).unwrap(),
        }]);
        let sys = System::new(2, vec![p1, p2]).unwrap();
        let dev = DeviceSpec::tesla_c2050();
        let mut cm = ConstantMemory::new(&dev);
        let r = EncodedSupports::upload(&sys, &mut cm, EncodingKind::Direct);
        assert!(matches!(r, Err(EncodeError::Shape(_))));
    }
}
