//! The `Mons` global-memory layout (paper §3.3).
//!
//! Kernel 2 writes the evaluated, coefficient-multiplied monomials and
//! monomial derivatives into `Mons`; kernel 3 reads them back with
//! perfectly coalesced accesses. The array represents `n² + n`
//! summations (the `n` polynomial values plus the `n × n` Jacobian
//! entries) of exactly `m` terms each:
//!
//! * element `j · (n² + n) + q` is the `j`-th additive term of combined
//!   polynomial `q`;
//! * `q ∈ 0..n` are the system values `f_q`;
//! * `q = n·(1 + v) + p` is `∂f_p/∂x_v` ("the second n elements are the
//!   derivatives of the first monomials with respect to x1, …").
//!
//! Slots for derivatives with respect to variables *absent* from a
//! monomial are never written; the buffer is zero-initialized once and
//! those `(n² + n)·m − n·m·(k + 1)` zero slots "represent the zero
//! monomial derivatives", letting kernel 3 add exactly `m` terms with
//! no branching.
//!
//! The layout generalizes to **rectangular row blocks** (a device's
//! share of a row-sharded system): with `rows` polynomials in `n`
//! variables there are `rows·n + rows` combined polynomials, and the
//! stride between consecutive derivative groups is `rows` instead of
//! `n`. Square systems (`rows == n`) reproduce the paper's indices
//! exactly.

use polygpu_polysys::UniformShape;

/// Total length of the `Mons` array: `(rows·n + rows) · m`.
#[inline]
pub fn mons_len(shape: &UniformShape) -> usize {
    shape.outputs() * shape.m
}

/// Number of *meaningful* (written) entries: `rows·m·(k+1)`. The rest
/// stay zero.
#[inline]
pub fn mons_written(shape: &UniformShape) -> usize {
    shape.total_monomials() * (shape.k + 1)
}

/// Combined-polynomial index of the system value `f_p`.
#[inline]
pub fn q_value(p: usize) -> usize {
    p
}

/// Combined-polynomial index of the Jacobian entry `∂f_p/∂x_v`, where
/// `rows` is the number of polynomials in the (possibly rectangular)
/// block — `n` for the paper's square systems.
#[inline]
pub fn q_deriv(rows: usize, p: usize, v: usize) -> usize {
    rows * (1 + v) + p
}

/// `Mons` element index for the `j`-th term of combined polynomial `q`.
#[inline]
pub fn term_slot(shape: &UniformShape, j: usize, q: usize) -> usize {
    debug_assert!(j < shape.m && q < shape.outputs());
    j * shape.outputs() + q
}

/// Decompose a combined-polynomial index back into what it denotes —
/// used by tests and by the host-side result unpacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinedIndex {
    /// `f_p`.
    Value { p: usize },
    /// `∂f_p/∂x_v`.
    Deriv { p: usize, v: usize },
}

#[inline]
pub fn decompose_q(rows: usize, q: usize) -> CombinedIndex {
    if q < rows {
        CombinedIndex::Value { p: q }
    } else {
        let r = q - rows;
        CombinedIndex::Deriv {
            p: r % rows,
            v: r / rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> UniformShape {
        UniformShape::square(32, 22, 9, 2)
    }

    #[test]
    fn paper_sizes() {
        let s = shape();
        // (n^2 + n) * m
        assert_eq!(mons_len(&s), (32 * 32 + 32) * 22);
        // n*m*(k+1) meaningful entries
        assert_eq!(mons_written(&s), 32 * 22 * 10);
        assert!(mons_written(&s) < mons_len(&s));
    }

    #[test]
    fn q_round_trips() {
        let n = 32;
        for p in 0..n {
            assert_eq!(decompose_q(n, q_value(p)), CombinedIndex::Value { p });
            for v in 0..n {
                assert_eq!(
                    decompose_q(n, q_deriv(n, p, v)),
                    CombinedIndex::Deriv { p, v }
                );
            }
        }
    }

    #[test]
    fn q_indices_are_a_bijection_onto_outputs() {
        let n = 7;
        let mut seen = vec![false; n * n + n];
        for p in 0..n {
            seen[q_value(p)] = true;
            for v in 0..n {
                seen[q_deriv(n, p, v)] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some q never produced");
    }

    #[test]
    fn rectangular_q_indices_are_a_bijection_onto_outputs() {
        // A 3-row block of a 7-variable system: 3 + 3·7 combined
        // polynomials, every slot produced exactly once.
        let (rows, n) = (3usize, 7usize);
        let mut seen = vec![false; rows * n + rows];
        for p in 0..rows {
            assert!(!seen[q_value(p)]);
            seen[q_value(p)] = true;
            for v in 0..n {
                let q = q_deriv(rows, p, v);
                assert!(!seen[q], "q {q} produced twice");
                seen[q] = true;
                assert_eq!(decompose_q(rows, q), CombinedIndex::Deriv { p, v });
            }
        }
        assert!(seen.iter().all(|&b| b), "some q never produced");
    }

    #[test]
    fn kernel3_reads_are_unit_stride_in_q() {
        // For a fixed term j, consecutive q map to consecutive slots:
        // the coalescing property of kernel 3.
        let s = shape();
        for j in 0..s.m {
            for q in 0..s.outputs() - 1 {
                assert_eq!(term_slot(&s, j, q + 1), term_slot(&s, j, q) + 1);
            }
        }
    }

    #[test]
    fn kernel2_writes_are_scattered_across_terms() {
        // For one monomial (fixed j), different q are adjacent, but the
        // thread's k+1 writes go to q values n apart: the uncoalesced
        // side of the paper's §3.3 tradeoff.
        let s = shape();
        let a = term_slot(&s, 3, q_deriv(32, 5, 0));
        let b = term_slot(&s, 3, q_deriv(32, 5, 1));
        assert_eq!(b - a, 32);
    }
}
