//! The `Coeffs` global-memory layout (paper §3.3).
//!
//! All `n·m·(k+1)` coefficients of the system *and its Jacobian* are
//! stored derivative-portion-major so that warp `j`-th-coefficient
//! reads are coalesced:
//!
//! * portion `j ∈ 0..k`: the coefficient of the derivative of monomial
//!   `g` (in `Sm` order) with respect to its `j`-th *own* variable —
//!   numerically `c_g · a_j` where `a_j` is that variable's exponent
//!   (the factor is folded in host-side because "the information about
//!   positions of variables and their exponents does not change along
//!   the path tracking");
//! * portion `k`: the plain coefficients `c_g` of the system.
//!
//! Element index: `portion · (n·m) + g`.

use polygpu_complex::{Complex, Real};
use polygpu_polysys::{System, UniformShape};

/// Build the `Coeffs` array contents for a uniform system.
///
/// Returns a vector of length `n·m·(k+1)` in the layout above.
pub fn build_coeffs<R: Real>(system: &System<R>, shape: &UniformShape) -> Vec<Complex<R>> {
    let total = shape.total_monomials();
    let mut coeffs = vec![Complex::<R>::zero(); total * (shape.k + 1)];
    let mut g = 0usize;
    for poly in system.polys() {
        for term in poly.terms() {
            for (j, &(_, e)) in term.monomial.factors().iter().enumerate() {
                coeffs[j * total + g] = term.coeff.scale(R::from_u32(e as u32));
            }
            coeffs[shape.k * total + g] = term.coeff;
            g += 1;
        }
    }
    coeffs
}

/// Index of the coefficient for derivative-portion `j` (or the value
/// portion `j == k`) of monomial `g`.
#[inline]
pub fn coeff_index(shape: &UniformShape, portion: usize, g: usize) -> usize {
    debug_assert!(portion <= shape.k);
    debug_assert!(g < shape.total_monomials());
    portion * shape.total_monomials() + g
}

/// Build the `Coeffs` array for a **ragged** system: the same
/// derivative-portion-major layout with `max_k + 1` portions. A
/// monomial with `k_g` variables fills portions `0..k_g` (derivative
/// coefficients `c · a_j`) and the value portion `max_k`; the portions
/// in between stay zero and are never read.
///
/// Returns a vector of length `total · (max_k + 1)`.
pub fn build_sparse_coeffs<R: Real>(
    system: &System<R>,
    shape: &polygpu_polysys::SparseShape,
) -> Vec<Complex<R>> {
    let total = shape.total_monomials;
    let mut coeffs = vec![Complex::<R>::zero(); total * (shape.max_k + 1)];
    let mut g = 0usize;
    for poly in system.polys() {
        for term in poly.terms() {
            for (j, &(_, e)) in term.monomial.factors().iter().enumerate() {
                coeffs[j * total + g] = term.coeff.scale(R::from_u32(e as u32));
            }
            coeffs[shape.max_k * total + g] = term.coeff;
            g += 1;
        }
    }
    coeffs
}

/// Index into the sparse `Coeffs` array: derivative portion `i < k_g`
/// or the value portion `i == max_k` of monomial `g`.
#[inline]
pub fn sparse_coeff_index(total: usize, portion: usize, g: usize) -> usize {
    portion * total + g
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_system, BenchmarkParams};

    #[test]
    fn layout_places_value_coeffs_last() {
        let params = BenchmarkParams {
            n: 4,
            m: 3,
            k: 2,
            d: 3,
            seed: 11,
        };
        let sys = random_system::<f64>(&params);
        let shape = sys.uniform_shape().unwrap();
        let coeffs = build_coeffs(&sys, &shape);
        assert_eq!(coeffs.len(), 4 * 3 * 3);
        let total = shape.total_monomials();
        let mut g = 0;
        for poly in sys.polys() {
            for term in poly.terms() {
                // value portion holds the raw coefficient
                assert_eq!(coeffs[coeff_index(&shape, shape.k, g)], term.coeff);
                // derivative portions hold c * a_j
                for (j, &(_, e)) in term.monomial.factors().iter().enumerate() {
                    let expect = term.coeff.scale(e as f64);
                    assert_eq!(coeffs[j * total + g], expect, "monomial {g} portion {j}");
                }
                g += 1;
            }
        }
    }

    #[test]
    fn derivative_coefficients_fold_exponent() {
        use polygpu_polysys::{Monomial, Polynomial, System, Term};
        // f0 = 2 * x0^3 * x1 : d/dx0 coefficient must be 6, d/dx1 must be 2.
        let p0 = Polynomial::new(vec![Term {
            coeff: C64::from_f64(2.0, 0.0),
            monomial: Monomial::new(vec![(0, 3), (1, 1)]).unwrap(),
        }]);
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::from_f64(5.0, 0.0),
            monomial: Monomial::new(vec![(0, 1), (1, 2)]).unwrap(),
        }]);
        let sys = System::new(2, vec![p0, p1]).unwrap();
        let shape = sys.uniform_shape().unwrap();
        let coeffs = build_coeffs(&sys, &shape);
        // monomial g = 0 (poly 0)
        assert_eq!(coeffs[coeff_index(&shape, 0, 0)], C64::from_f64(6.0, 0.0));
        assert_eq!(coeffs[coeff_index(&shape, 1, 0)], C64::from_f64(2.0, 0.0));
        assert_eq!(coeffs[coeff_index(&shape, 2, 0)], C64::from_f64(2.0, 0.0));
        // monomial g = 1 (poly 1): d/dx0 -> 5, d/dx1 -> 10, value -> 5
        assert_eq!(coeffs[coeff_index(&shape, 0, 1)], C64::from_f64(5.0, 0.0));
        assert_eq!(coeffs[coeff_index(&shape, 1, 1)], C64::from_f64(10.0, 0.0));
        assert_eq!(coeffs[coeff_index(&shape, 2, 1)], C64::from_f64(5.0, 0.0));
    }

    #[test]
    fn consecutive_monomials_are_adjacent_within_a_portion() {
        // The coalescing property: for fixed portion, monomial index g
        // maps to consecutive elements.
        let shape = UniformShape {
            n: 32,
            rows: 32,
            m: 22,
            k: 9,
            d: 2,
        };
        let total = shape.total_monomials();
        for portion in 0..=shape.k {
            for g in 0..total - 1 {
                assert_eq!(
                    coeff_index(&shape, portion, g + 1),
                    coeff_index(&shape, portion, g) + 1
                );
            }
        }
    }
}
