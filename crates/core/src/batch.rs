//! The batched multi-point evaluation engine: the system and its
//! Jacobian at `P` points with **one** set of three kernel launches and
//! **one** transfer in each direction.
//!
//! The single-point pipeline pays three launch overheads and two PCIe
//! latencies *per evaluation* — exactly the fixed costs that dominate
//! path tracking, where thousands of corrector steps run across many
//! concurrent paths. Following the batching design of the authors'
//! follow-up work on GPU Newton's method, this engine lays the grid out
//! point-major ([`LaunchConfig::cover_batch`]): `P × inner` blocks,
//! where each block runs the *identical* program of its single-point
//! counterpart against its point's pitched region of the batched
//! buffers. Consequences:
//!
//! * launch overhead and PCIe latency are amortized `P`-fold (the
//!   modeled `overhead_seconds`/`transfer_seconds` per evaluation drop
//!   accordingly — see `PipelineStats::overhead_transfer_per_eval`);
//! * results are **bit-for-bit identical** to `P` single-point
//!   evaluations (same operations in the same order per point), so the
//!   paper's determinism guarantees extend to batches unchanged;
//! * a `P = 1` batch degenerates to the single-point pipeline's launch
//!   counters exactly.

use crate::correct::{
    drive_correct, CombineMap, CorrectCharge, CorrectOps, CorrectParams, CorrectStatus, FLAG_BYTES,
};
use crate::kernels::batch::{
    BatchCommonFactorFromScratch, BatchCommonFactorKernel, BatchLayout, BatchSpeelpenningKernel,
    BatchSumKernel,
};
use crate::layout::coeffs::build_coeffs;
use crate::layout::encoding::EncodedSupports;
use crate::layout::mons::{q_deriv, q_value};
use crate::pipeline::{inject, GpuOptions, PipelineStats, SetupError};
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::obs::emit_timeline;
use polygpu_gpusim::prelude::*;
use polygpu_gpusim::stream::pipeline_timeline;
use polygpu_obs::{Lane, MetaValue, SpanKind, TraceSink};
use polygpu_polysys::{BatchSystemEvaluator, System, SystemEval, SystemEvaluator, UniformShape};
use std::fmt;

/// A batch call violated the engine's contract, or a launch failed.
///
/// The capacity contract: a [`BatchGpuEvaluator`] sizes its device
/// buffers for `capacity` points at construction, so one call accepts
/// `1..=capacity` points, each of dimension `n`. Violations surface
/// here as typed errors instead of panics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatchError {
    /// `points.len()` exceeds the construction-time capacity.
    CapacityExceeded { points: usize, capacity: usize },
    /// The batch was empty.
    Empty,
    /// Point `point` has `got` coordinates; the system has dimension
    /// `expected`.
    DimensionMismatch {
        point: usize,
        got: usize,
        expected: usize,
    },
    /// A kernel launch failed (post-validation this indicates a broken
    /// internal invariant).
    Launch(LaunchError),
    /// An injected fault struck a modeled operation; the detection
    /// latency was charged to the wall clock and no results were
    /// delivered. See `polygpu_gpusim::fault`.
    Fault(FaultError),
    /// Fleet recovery was exhausted: after retries and failover
    /// re-planning, `lost` of the fleet's `devices` devices are gone
    /// and the policy forbids the CPU-reference fallback.
    DegradedFleet { devices: usize, lost: usize },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::CapacityExceeded { points, capacity } => {
                write!(f, "batch of {points} points exceeds capacity {capacity}")
            }
            BatchError::Empty => write!(f, "batch is empty"),
            BatchError::DimensionMismatch {
                point,
                got,
                expected,
            } => write!(
                f,
                "point {point} has dimension {got}, system has dimension {expected}"
            ),
            BatchError::Launch(e) => write!(f, "launch failed: {e}"),
            BatchError::Fault(e) => write!(f, "{e}"),
            BatchError::DegradedFleet { devices, lost } => write!(
                f,
                "fleet degraded: {lost} of {devices} devices lost and recovery exhausted"
            ),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaunchError> for BatchError {
    fn from(e: LaunchError) -> Self {
        BatchError::Launch(e)
    }
}

impl From<FaultError> for BatchError {
    fn from(e: FaultError) -> Self {
        BatchError::Fault(e)
    }
}

/// The batched three-kernel evaluator on the simulated device.
///
/// Device buffers are sized for `capacity` points at construction; any
/// batch of `1..=capacity` points evaluates with one round trip.
pub struct BatchGpuEvaluator<R: Real> {
    device: DeviceSpec,
    opts: GpuOptions,
    shape: UniformShape,
    layout: BatchLayout,
    global: GlobalMem<Complex<R>>,
    constant: ConstantMemory,
    vars: BufferId,
    out: BufferId,
    k1: BatchCommonFactorKernel,
    k1_scratch: BatchCommonFactorFromScratch,
    k2: BatchSpeelpenningKernel,
    k3: BatchSumKernel,
    stats: PipelineStats,
    last_reports: Vec<LaunchReport>,
    /// Reusable host staging for the batched point upload.
    vars_scratch: Vec<Complex<R>>,
    injector: Option<FaultInjector>,
}

impl<R: Real> BatchGpuEvaluator<R> {
    /// Validate, encode and upload `system`, sizing the device buffers
    /// for batches of up to `capacity` points; runs one throw-away
    /// full-capacity evaluation so every configuration error surfaces
    /// here rather than inside `evaluate_batch`.
    pub fn new(system: &System<R>, capacity: usize, opts: GpuOptions) -> Result<Self, SetupError> {
        let mut constant = ConstantMemory::new(&opts.device);
        let enc = EncodedSupports::upload(system, &mut constant, opts.encoding)?;
        Self::from_encoded(system, enc, constant, capacity, opts)
    }

    /// Assemble an engine from supports that are **already resident** in
    /// `constant` (which may hold other systems' encodings too — the
    /// basis of multi-system residency, see `engine::Session`). The
    /// arena is taken by value: it snapshots the shared constant memory
    /// at load time, so this engine's offsets stay valid no matter what
    /// is loaded later.
    pub fn from_encoded(
        system: &System<R>,
        enc: EncodedSupports,
        constant: ConstantMemory,
        capacity: usize,
        opts: GpuOptions,
    ) -> Result<Self, SetupError> {
        assert!(capacity >= 1, "batch capacity must be at least 1");
        let device = opts.device.clone();
        let shape = enc.shape;
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let layout = BatchLayout::new(
            &shape,
            capacity,
            opts.block_dim,
            elem,
            device.coalesce_segment,
        );
        let mut global = GlobalMem::new();
        let vars = global.alloc(capacity * layout.vars_stride);
        let cf = global.alloc(capacity * layout.cf_stride);
        let coeffs = global.alloc(shape.total_monomials() * (shape.k + 1));
        let mons = global.alloc(capacity * layout.mons_stride);
        let out = global.alloc(capacity * layout.out_stride);
        global.host_write(coeffs, 0, &build_coeffs(system, &shape));
        let injector = opts
            .fault
            .map(|f| FaultInjector::new(f.plan, f.device_index));
        let mut me = BatchGpuEvaluator {
            device,
            shape,
            layout,
            vars,
            out,
            injector,
            k1: BatchCommonFactorKernel {
                enc,
                vars,
                out: cf,
                layout,
            },
            k1_scratch: BatchCommonFactorFromScratch {
                enc,
                vars,
                out: cf,
                layout,
            },
            k2: BatchSpeelpenningKernel {
                enc,
                vars,
                common_factors: cf,
                coeffs,
                mons,
                layout,
            },
            k3: BatchSumKernel {
                shape,
                mons,
                out,
                layout,
            },
            global,
            constant,
            stats: PipelineStats::default(),
            last_reports: Vec::new(),
            vars_scratch: Vec::new(),
            opts,
        };
        // Validation pass: exercises all three batched launches. One
        // point suffices — every launch-validity constraint (shared
        // memory, occupancy, block limits) is per block, and a larger
        // point-major grid only adds more identical blocks.
        let probe = vec![vec![Complex::<R>::one(); shape.n]];
        // The injector is disarmed during construction, so the probe
        // cannot fault; the trace sink is detached so the probe leaves
        // no spans behind.
        let sink = std::mem::take(&mut me.opts.trace);
        me.try_evaluate_batch(&probe).map_err(|e| match e {
            BatchError::Launch(l) => SetupError::Launch(l),
            other => unreachable!("validation probe is within the batch contract: {other}"),
        })?;
        me.stats = PipelineStats::default();
        me.set_fault_armed(true);
        me.opts.trace = sink;
        Ok(me)
    }

    /// Replace this engine's trace sink — how the cluster detaches
    /// tracing around calibration probes and retargets per-device sinks
    /// after failover rebuilds.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.opts.trace = sink;
    }

    /// This engine's current trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.opts.trace
    }

    /// Arm or disarm fault injection (no-op without a configured
    /// [`GpuOptions::fault`]). Disarmed operations neither fault nor
    /// advance the schedule, so calibration probes leave the fault
    /// schedule seen by user work untouched.
    pub fn set_fault_armed(&mut self, armed: bool) {
        if let Some(inj) = self.injector.as_mut() {
            if armed {
                inj.arm();
            } else {
                inj.disarm();
            }
        }
    }

    pub fn shape(&self) -> UniformShape {
        self.shape
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Largest batch one call accepts.
    pub fn capacity(&self) -> usize {
        self.layout.capacity
    }

    /// Per-point strides and block counts of the batched buffers.
    pub fn layout(&self) -> BatchLayout {
        self.layout
    }

    /// Modeled-cost statistics accumulated so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PipelineStats::default();
    }

    /// Launch reports of the most recent batch (kernel 1, 2, 3).
    pub fn last_reports(&self) -> &[LaunchReport] {
        &self.last_reports
    }

    /// Bytes of constant memory **this system's** supports occupy
    /// (shared by all points). Deliberately not the whole arena: a
    /// session-resident engine's arena snapshot also holds the systems
    /// loaded before it (see `engine::Session`), which are accounted
    /// to their own engines.
    pub fn constant_bytes_used(&self) -> usize {
        self.k1.enc.constant_bytes()
    }

    /// Evaluate the system and Jacobian at every point of the batch
    /// with one set of three launches.
    ///
    /// Contract: `1 <= points.len() <= self.capacity()` and every point
    /// has dimension `n`; violations return a typed [`BatchError`]
    /// without touching device state.
    pub fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let shape = self.shape;
        let p = points.len();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > self.layout.capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity: self.layout.capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != shape.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: shape.n,
                });
            }
        }
        // Stage all points into one pitched upload buffer (reused
        // across calls) and ship them in a single transfer.
        self.vars_scratch.clear();
        self.vars_scratch
            .resize(p * self.layout.vars_stride, Complex::zero());
        for (i, x) in points.iter().enumerate() {
            let base = i * self.layout.vars_stride;
            self.vars_scratch[base..base + shape.n].copy_from_slice(x);
        }
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let h2d = transfer_seconds(&self.device, p * shape.n * elem);
        // This device's clock before the round trip — the origin of the
        // spans emitted below.
        let wall0 = self.stats.wall_seconds;
        let mut elapsed = 0.0;
        self.fault_check(OpClass::HostToDevice, h2d, elapsed)?;
        self.global.host_write(self.vars, 0, &self.vars_scratch);
        elapsed += h2d;
        let mut transfer = h2d;

        let monomial_cfg = self.layout.monomial_cfg(p, &shape, self.opts.block_dim);
        let output_cfg = self.layout.output_cfg(p, &shape, self.opts.block_dim);
        // Clear before launching (reusing the vector's storage) so a
        // failed launch leaves no stale reports behind.
        self.last_reports.clear();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r1 = if self.opts.from_scratch_cf {
            launch(
                &self.device,
                &self.k1_scratch,
                monomial_cfg,
                &mut self.global,
                &self.constant,
                self.opts.launch,
            )?
        } else {
            launch(
                &self.device,
                &self.k1,
                monomial_cfg,
                &mut self.global,
                &self.constant,
                self.opts.launch,
            )?
        };
        elapsed += r1.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r2 = launch(
            &self.device,
            &self.k2,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r2.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r3 = launch(
            &self.device,
            &self.k3,
            output_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r3.timing.total_seconds();

        // One transfer brings all P·(n² + n) results back.
        let d2h = transfer_seconds(&self.device, p * shape.outputs() * elem);
        self.fault_check(OpClass::DeviceToHost, d2h, elapsed)?;
        transfer += d2h;
        let raw = self.global.host_read(self.out);
        let mut evals = Vec::with_capacity(p);
        for i in 0..p {
            let base = i * self.layout.out_stride;
            let mut eval = SystemEval::zeros_rect(shape.rows, shape.n);
            for q in 0..shape.rows {
                eval.values[q] = raw[base + q_value(q)];
                for v in 0..shape.n {
                    eval.jacobian[(q, v)] = raw[base + q_deriv(shape.rows, q, v)];
                }
            }
            evals.push(eval);
        }

        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.stats.h2d_bytes += (p * shape.n * elem) as u64;
        self.stats.d2h_bytes += (p * shape.outputs() * elem) as u64;
        self.last_reports.push(r1);
        self.last_reports.push(r2);
        self.last_reports.push(r3);
        let mut kernel_total = 0.0;
        for r in &self.last_reports {
            self.stats.counters += r.counters;
            kernel_total += r.timing.kernel_seconds;
        }
        self.stats.kernel_seconds += kernel_total;

        let chunks = match self.opts.overlap_chunks {
            Some(c) => c.clamp(1, p),
            None => self.planned_overlap_chunks(p, kernel_total),
        };
        if chunks <= 1 {
            // Original fully-serialized accounting: one upload, three
            // launches, one download, summed.
            let overhead = 3.0 * self.device.launch_overhead;
            self.stats.overhead_seconds += overhead;
            self.stats.transfer_seconds += transfer;
            self.stats.wall_seconds += transfer + kernel_total + overhead;
            if self.opts.trace.enabled() {
                let tr = &self.opts.trace;
                tr.lane(Lane::H2D)
                    .emit(SpanKind::Upload, wall0, h2d, 4, &[]);
                let mut t = wall0 + h2d;
                for r in &self.last_reports {
                    let d = r.timing.total_seconds();
                    tr.lane(Lane::Compute).emit(SpanKind::Launch, t, d, 4, &[]);
                    t += d;
                }
                tr.lane(Lane::D2H).emit(SpanKind::Download, t, d2h, 4, &[]);
            }
        } else {
            // Stream-overlap model: the batch is split into `chunks`
            // near-equal slices; each slice's upload, three launches and
            // download are scheduled on a double-buffered timeline, so
            // transfers hide under the kernels of neighboring slices.
            // Splitting pays per-chunk PCIe latency and per-chunk launch
            // overhead — both charged honestly below.
            let (h2d, compute, d2h) = self.chunk_durations(p, chunks, kernel_total);
            let tl = pipeline_timeline(&h2d, &compute, &d2h, 2);
            self.stats.overhead_seconds += 3.0 * chunks as f64 * self.device.launch_overhead;
            self.stats.transfer_seconds += h2d.iter().sum::<f64>() + d2h.iter().sum::<f64>();
            self.stats.wall_seconds += tl.elapsed_seconds();
            emit_timeline(&self.opts.trace, &tl, wall0, 4);
        }
        self.opts.trace.emit(
            SpanKind::Batch,
            wall0,
            self.stats.wall_seconds - wall0,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        Ok(evals)
    }

    /// Per-chunk upload/compute/download durations for a `p`-point batch
    /// split into `chunks` near-equal slices — the inputs of both the
    /// overlap timeline and the adaptive chunk-count search.
    fn chunk_durations(
        &self,
        p: usize,
        chunks: usize,
        kernel_total: f64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let shape = self.shape;
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let base = p / chunks;
        let extra = p % chunks;
        let mut h2d = Vec::with_capacity(chunks);
        let mut compute = Vec::with_capacity(chunks);
        let mut d2h = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let pc = base + usize::from(c < extra);
            h2d.push(transfer_seconds(&self.device, pc * shape.n * elem));
            compute.push(3.0 * self.device.launch_overhead + kernel_total * pc as f64 / p as f64);
            d2h.push(transfer_seconds(&self.device, pc * shape.outputs() * elem));
        }
        (h2d, compute, d2h)
    }

    /// The chunk count the adaptive mode (`overlap_chunks: None`) picks
    /// for a `p`-point batch whose three kernels take `kernel_total`
    /// modeled seconds: the candidate whose double-buffered timeline has
    /// the smallest modeled makespan. A single chunk (the serialized
    /// schedule) is always a candidate, so the adaptive schedule is
    /// **never worse than `overlap_chunks = 1`**; the search balances
    /// overlap gains against the per-chunk PCIe latency and launch
    /// overhead that splitting pays.
    pub fn planned_overlap_chunks(&self, p: usize, kernel_total: f64) -> usize {
        let mut best = (1usize, f64::INFINITY);
        for &c in &[1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
            if c > p {
                break;
            }
            let (h2d, compute, d2h) = self.chunk_durations(p, c, kernel_total);
            let makespan = pipeline_timeline(&h2d, &compute, &d2h, 2).elapsed_seconds();
            // Strict improvement required: ties go to fewer chunks.
            if makespan < best.1 {
                best = (c, makespan);
            }
        }
        best.0
    }

    /// Single-point evaluation as a batch of one, with contract
    /// violations (wrong dimension; a capacity of zero cannot occur)
    /// surfacing as typed [`BatchError`]s instead of aborting — the
    /// non-panicking sibling of [`SystemEvaluator::evaluate`].
    pub fn try_evaluate(&mut self, x: &[Complex<R>]) -> Result<SystemEval<R>, BatchError> {
        let mut out = self.try_evaluate_batch(std::slice::from_ref(&x.to_vec()))?;
        Ok(out.pop().expect("batch of one returns one result"))
    }

    /// Fused device-resident Newton correction: upload the iterates
    /// once, then per iteration evaluate → factor → back-substitute →
    /// update entirely on the (simulated) device, downloading only the
    /// `O(P)` convergence-flag vector ([`FLAG_BYTES`] per live point);
    /// the corrected endpoints come back in one final transfer.
    ///
    /// Endpoints and statuses are **bit-identical** to the host
    /// corrector (the trait default of
    /// [`crate::engine::AnyEvaluator::try_correct_batch`]): both run
    /// [`drive_correct`], which factors through the shared
    /// [`polygpu_complex::lu`] routine — same pivoting order, same
    /// arithmetic, different cost charges. The factor and
    /// back-substitution launches are costed by
    /// `polygpu_gpusim::linalg` ([`lu_factor_cost`]/[`backsub_cost`])
    /// and are subject to fault injection like every other modeled
    /// kernel; a fault aborts the call with `points` untouched, so a
    /// retry replays bit-identically.
    pub fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        let shape = self.shape;
        let p = points.len();
        if p == 0 {
            return Err(BatchError::Empty);
        }
        if p > self.layout.capacity {
            return Err(BatchError::CapacityExceeded {
                points: p,
                capacity: self.layout.capacity,
            });
        }
        for (i, x) in points.iter().enumerate() {
            if x.len() != shape.n {
                return Err(BatchError::DimensionMismatch {
                    point: i,
                    got: x.len(),
                    expected: shape.n,
                });
            }
        }
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let wall0 = self.stats.wall_seconds;

        // One upload makes the iterates device-resident.
        let h2d = transfer_seconds(&self.device, p * shape.n * elem);
        self.fault_check(OpClass::HostToDevice, h2d, 0.0)?;
        self.stats.transfer_seconds += h2d;
        self.stats.h2d_bytes += (p * shape.n * elem) as u64;
        self.stats.wall_seconds += h2d;
        if self.opts.trace.enabled() {
            self.opts
                .trace
                .lane(Lane::H2D)
                .emit(SpanKind::Upload, wall0, h2d, 4, &[]);
        }

        // The driver mutates scratch; the caller's points are only
        // committed on full success, so a mid-call fault leaves them
        // untouched and a retried call replays bit-identically.
        let mut scratch: Vec<Vec<Complex<R>>> = points.to_vec();
        let statuses = drive_correct(&mut ResidentOps(self), combine, &mut scratch, params)?;

        // One download brings the corrected endpoints home.
        let d2h = transfer_seconds(&self.device, p * shape.n * elem);
        self.fault_check(OpClass::DeviceToHost, d2h, 0.0)?;
        self.stats.transfer_seconds += d2h;
        self.stats.d2h_bytes += (p * shape.n * elem) as u64;
        let dl0 = self.stats.wall_seconds;
        self.stats.wall_seconds += d2h;
        if self.opts.trace.enabled() {
            self.opts
                .trace
                .lane(Lane::D2H)
                .emit(SpanKind::Download, dl0, d2h, 4, &[]);
        }

        for (dst, src) in points.iter_mut().zip(scratch) {
            *dst = src;
        }
        self.stats.corrections += p as u64;
        self.stats.corrector_iterations +=
            statuses.iter().map(|s| s.iterations as u64).sum::<u64>();
        self.opts.trace.emit(
            SpanKind::Correct,
            wall0,
            self.stats.wall_seconds - wall0,
            3,
            &[("points", MetaValue::U64(p as u64))],
        );
        Ok(statuses)
    }

    /// One evaluation round of the fused corrector: the three batched
    /// kernels against the **resident** live iterates. Staging the
    /// compacted live subset into the pitched vars buffer models a
    /// device-side gather (no PCIe traffic); results are decoded from
    /// the simulated global memory without a download — only
    /// [`Self::charge_correct`]'s flag read crosses the bus.
    fn eval_resident(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        let shape = self.shape;
        let p = points.len();
        self.vars_scratch.clear();
        self.vars_scratch
            .resize(p * self.layout.vars_stride, Complex::zero());
        for (i, x) in points.iter().enumerate() {
            let base = i * self.layout.vars_stride;
            self.vars_scratch[base..base + shape.n].copy_from_slice(x);
        }
        let wall0 = self.stats.wall_seconds;
        let mut elapsed = 0.0;
        self.global.host_write(self.vars, 0, &self.vars_scratch);

        let monomial_cfg = self.layout.monomial_cfg(p, &shape, self.opts.block_dim);
        let output_cfg = self.layout.output_cfg(p, &shape, self.opts.block_dim);
        self.last_reports.clear();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r1 = if self.opts.from_scratch_cf {
            launch(
                &self.device,
                &self.k1_scratch,
                monomial_cfg,
                &mut self.global,
                &self.constant,
                self.opts.launch,
            )?
        } else {
            launch(
                &self.device,
                &self.k1,
                monomial_cfg,
                &mut self.global,
                &self.constant,
                self.opts.launch,
            )?
        };
        elapsed += r1.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r2 = launch(
            &self.device,
            &self.k2,
            monomial_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r2.timing.total_seconds();
        self.fault_check(OpClass::Kernel, self.device.launch_overhead, elapsed)?;
        let r3 = launch(
            &self.device,
            &self.k3,
            output_cfg,
            &mut self.global,
            &self.constant,
            self.opts.launch,
        )?;
        elapsed += r3.timing.total_seconds();

        let raw = self.global.host_read(self.out);
        let mut evals = Vec::with_capacity(p);
        for i in 0..p {
            let base = i * self.layout.out_stride;
            let mut eval = SystemEval::zeros_rect(shape.rows, shape.n);
            for q in 0..shape.rows {
                eval.values[q] = raw[base + q_value(q)];
                for v in 0..shape.n {
                    eval.jacobian[(q, v)] = raw[base + q_deriv(shape.rows, q, v)];
                }
            }
            evals.push(eval);
        }

        self.stats.evaluations += p as u64;
        self.stats.batches += 1;
        self.last_reports.push(r1);
        self.last_reports.push(r2);
        self.last_reports.push(r3);
        let mut kernel_total = 0.0;
        for r in &self.last_reports {
            self.stats.counters += r.counters;
            kernel_total += r.timing.kernel_seconds;
        }
        self.stats.kernel_seconds += kernel_total;
        self.stats.overhead_seconds += 3.0 * self.device.launch_overhead;
        self.stats.wall_seconds += elapsed;
        if self.opts.trace.enabled() {
            let tr = &self.opts.trace;
            let mut t = wall0;
            for r in &self.last_reports {
                let d = r.timing.total_seconds();
                tr.lane(Lane::Compute).emit(SpanKind::Launch, t, d, 4, &[]);
                t += d;
            }
        }
        Ok(evals)
    }

    /// Charge one modeled operation of the fused corrector loop: the
    /// batched LU-factor + back-substitution launches, or the per-round
    /// convergence-flag download.
    fn charge_correct(&mut self, ev: CorrectCharge) -> Result<(), BatchError> {
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        match ev {
            CorrectCharge::FactorSolve { count } => {
                let n = self.shape.n;
                let fac = lu_factor_cost(&self.device, n, count, elem);
                let bs = backsub_cost(&self.device, n, count, elem);
                let ft = fac.timing.total_seconds();
                let bt = bs.timing.total_seconds();
                self.fault_check(OpClass::Kernel, ft, 0.0)?;
                let t0 = self.stats.wall_seconds;
                self.stats.counters += fac.counters;
                self.stats.kernel_seconds += fac.timing.kernel_seconds;
                self.stats.overhead_seconds += fac.timing.overhead_seconds;
                self.stats.factor_seconds += fac.timing.kernel_seconds;
                self.stats.wall_seconds += ft;
                if self.opts.trace.enabled() {
                    self.opts
                        .trace
                        .lane(Lane::Compute)
                        .emit(SpanKind::Factor, t0, ft, 4, &[]);
                }
                self.fault_check(OpClass::Kernel, bt, 0.0)?;
                let t1 = self.stats.wall_seconds;
                self.stats.counters += bs.counters;
                self.stats.kernel_seconds += bs.timing.kernel_seconds;
                self.stats.overhead_seconds += bs.timing.overhead_seconds;
                self.stats.backsub_seconds += bs.timing.kernel_seconds;
                self.stats.wall_seconds += bt;
                if self.opts.trace.enabled() {
                    self.opts
                        .trace
                        .lane(Lane::Compute)
                        .emit(SpanKind::Backsub, t1, bt, 4, &[]);
                }
            }
            CorrectCharge::Flags { count } => {
                let bytes = count * FLAG_BYTES;
                let d2h = transfer_seconds(&self.device, bytes);
                self.fault_check(OpClass::DeviceToHost, d2h, 0.0)?;
                let t0 = self.stats.wall_seconds;
                self.stats.transfer_seconds += d2h;
                self.stats.d2h_bytes += bytes as u64;
                self.stats.wall_seconds += d2h;
                if self.opts.trace.enabled() {
                    self.opts
                        .trace
                        .lane(Lane::D2H)
                        .emit(SpanKind::Download, t0, d2h, 4, &[]);
                }
            }
        }
        Ok(())
    }

    /// Modeled kernel seconds of the most recent batch (the adaptive
    /// chunk search input; exposed for tests and benches).
    pub fn last_kernel_seconds(&self) -> f64 {
        self.last_reports
            .iter()
            .map(|r| r.timing.kernel_seconds)
            .sum()
    }

    /// Device bytes the batched buffers occupy (grows with capacity).
    pub fn allocated_bytes(&self) -> usize {
        self.global.allocated_bytes()
    }

    fn fault_check(
        &mut self,
        class: OpClass,
        op_seconds: f64,
        elapsed: f64,
    ) -> Result<(), BatchError> {
        inject(
            &mut self.injector,
            &mut self.stats,
            &self.device,
            class,
            op_seconds,
            elapsed,
            &self.opts.trace,
        )
    }
}

/// [`CorrectOps`] view of a [`BatchGpuEvaluator`] during a fused
/// device-resident correction: evaluation rounds run against the
/// resident iterates (no per-iteration transfers), and the
/// factor/back-substitution/flag operations are charged through the
/// engine's cost model and fault schedule.
struct ResidentOps<'a, R: Real>(&'a mut BatchGpuEvaluator<R>);

impl<R: Real> CorrectOps<R> for ResidentOps<'_, R> {
    fn eval(
        &mut self,
        points: &[Vec<Complex<R>>],
        _indices: &[usize],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        self.0.eval_resident(points)
    }

    fn charge(&mut self, ev: CorrectCharge) -> Result<(), BatchError> {
        self.0.charge_correct(ev)
    }
}

/// Unwrap a batch result at the panicking trait boundary. The
/// `SystemEvaluator`/`BatchSystemEvaluator` traits return values, not
/// `Result`s, so a contract violation reaching them is a **caller
/// bug** — but the typed error is always reachable first through
/// `try_evaluate`/`try_evaluate_batch`, which propagate [`BatchError`]s
/// without aborting (what the conformance suite exercises). Every
/// evaluator in the workspace funnels its trait boundary through this
/// one helper.
pub fn expect_batch<T>(result: Result<T, BatchError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => panic!("batch contract violated (use try_evaluate_batch to handle this): {e}"),
    }
}

impl<R: Real> SystemEvaluator<R> for BatchGpuEvaluator<R> {
    fn dim(&self) -> usize {
        self.shape.n
    }

    /// Single-point evaluation as a batch of one — the panicking trait
    /// boundary over [`BatchGpuEvaluator::try_evaluate`], which returns
    /// the typed error instead.
    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        expect_batch(self.try_evaluate(x))
    }

    fn name(&self) -> &str {
        "gpu-sim-batch"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for BatchGpuEvaluator<R> {
    fn max_batch(&self) -> usize {
        self.layout.capacity
    }

    /// Panicking trait boundary over
    /// [`BatchGpuEvaluator::try_evaluate_batch`] (the trait contract
    /// makes violations caller bugs); use the `try_` method to handle
    /// [`BatchError`] values instead.
    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        expect_batch(self.try_evaluate_batch(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::encoding::EncodingKind;
    use crate::pipeline::GpuEvaluator;
    use polygpu_polysys::{random_point, random_points, random_system, BenchmarkParams};

    fn params(n: usize, m: usize, k: usize, d: u16, seed: u64) -> BenchmarkParams {
        BenchmarkParams { n, m, k, d, seed }
    }

    /// Batch-of-P results must be bit-for-bit equal to P single-point
    /// evaluations — including shapes where neither P, n·m nor n²+n is
    /// a multiple of the block size.
    #[test]
    fn batch_bitwise_equals_singles_in_double() {
        for (p, prm) in [
            (5, params(4, 3, 2, 2, 1)),
            (3, params(8, 5, 3, 4, 2)),
            (7, params(33, 3, 5, 3, 5)),  // n·m = 99, outputs = 1122
            (13, params(32, 4, 9, 2, 3)), // odd batch against block 32
        ] {
            let sys = random_system::<f64>(&prm);
            let points = random_points::<f64>(prm.n, p, prm.seed ^ 0xFEED);
            let mut batch = BatchGpuEvaluator::new(&sys, p, GpuOptions::default()).unwrap();
            let mut single = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
            let got = batch.evaluate_batch(&points);
            assert_eq!(got.len(), p);
            for (i, x) in points.iter().enumerate() {
                let want = single.evaluate(x);
                assert_eq!(got[i].values, want.values, "values, point {i} of {prm:?}");
                assert_eq!(
                    got[i].jacobian.as_slice(),
                    want.jacobian.as_slice(),
                    "jacobian, point {i} of {prm:?}"
                );
            }
        }
    }

    #[test]
    fn batch_bitwise_equals_singles_in_double_double() {
        use polygpu_qd::Dd;
        let prm = params(6, 3, 3, 3, 13);
        let sys = random_system::<f64>(&prm).convert::<Dd>();
        let points: Vec<Vec<Complex<Dd>>> = random_points::<f64>(6, 5, 21)
            .into_iter()
            .map(|x| x.into_iter().map(|z| z.convert()).collect())
            .collect();
        let mut batch = BatchGpuEvaluator::new(&sys, 5, GpuOptions::default()).unwrap();
        let mut single = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let got = batch.evaluate_batch(&points);
        for (i, x) in points.iter().enumerate() {
            let want = single.evaluate(x);
            assert_eq!(
                got[i].values, want.values,
                "dd values must match bitwise, point {i}"
            );
            assert_eq!(
                got[i].jacobian.as_slice(),
                want.jacobian.as_slice(),
                "dd jacobian must match bitwise, point {i}"
            );
        }
    }

    /// A batch of one degenerates to the original pipeline: identical
    /// per-launch counters, kernel seconds, overhead and transfers.
    #[test]
    fn p1_batch_degenerates_to_single_point_pipeline() {
        let prm = params(33, 3, 5, 3, 5); // deliberately off the block grid
        let sys = random_system::<f64>(&prm);
        let x = random_point::<f64>(33, 77);
        let mut batch = BatchGpuEvaluator::new(&sys, 1, GpuOptions::default()).unwrap();
        let mut single = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();
        let got = batch.evaluate_batch(std::slice::from_ref(&x));
        let want = single.evaluate(&x);
        assert_eq!(got[0].values, want.values);
        let (bs, ss) = (batch.stats(), single.stats());
        assert_eq!(bs.evaluations, 1);
        assert_eq!(bs.batches, 1);
        assert_eq!(
            bs.counters, ss.counters,
            "P=1 counters must be the single-point counters"
        );
        assert_eq!(bs.kernel_seconds, ss.kernel_seconds);
        assert_eq!(bs.overhead_seconds, ss.overhead_seconds);
        assert_eq!(bs.transfer_seconds, ss.transfer_seconds);
        assert_eq!(batch.last_reports().len(), 3);
        for (br, sr) in batch.last_reports().iter().zip(single.last_reports()) {
            assert_eq!(br.config.grid_dim, sr.config.grid_dim);
            assert_eq!(br.counters, sr.counters);
        }
    }

    /// The acceptance criterion: at P = 64, the modeled fixed cost
    /// (launch overhead + PCIe transfer) per evaluation is at least
    /// 10x lower than 64 single-point evaluations, and the outputs are
    /// bit-for-bit the same.
    #[test]
    fn p64_amortizes_overhead_and_transfer_10x() {
        let prm = params(32, 4, 9, 2, 3);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(32, 64, 99);
        let mut batch = BatchGpuEvaluator::new(&sys, 64, GpuOptions::default()).unwrap();
        let mut single = GpuEvaluator::new(&sys, GpuOptions::default()).unwrap();

        let got = batch.evaluate_batch(&points);
        let mut want = Vec::with_capacity(64);
        for x in &points {
            want.push(single.evaluate(x));
        }
        for i in 0..64 {
            assert_eq!(got[i].values, want[i].values, "point {i}");
            assert_eq!(
                got[i].jacobian.as_slice(),
                want[i].jacobian.as_slice(),
                "point {i}"
            );
        }

        let (bs, ss) = (batch.stats(), single.stats());
        assert_eq!(bs.evaluations, 64);
        assert_eq!(ss.evaluations, 64);
        assert_eq!(bs.batches, 1);
        assert_eq!(ss.batches, 64);
        let batch_fixed = bs.overhead_transfer_per_eval();
        let single_fixed = ss.overhead_transfer_per_eval();
        assert!(
            single_fixed >= 10.0 * batch_fixed,
            "amortization too weak: single {single_fixed:.3e} s/eval vs batch {batch_fixed:.3e} s/eval ({}x)",
            single_fixed / batch_fixed
        );
        // Throughput must improve accordingly.
        assert!(bs.throughput_evals_per_sec() > ss.throughput_evals_per_sec());
    }

    #[test]
    fn batch_supports_ablation_and_compact_options() {
        let prm = params(16, 4, 4, 6, 17);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(16, 4, 5);
        for opts in [
            GpuOptions {
                from_scratch_cf: true,
                ..Default::default()
            },
            GpuOptions {
                encoding: EncodingKind::Compact,
                ..Default::default()
            },
        ] {
            let mut batch = BatchGpuEvaluator::new(&sys, 4, opts.clone()).unwrap();
            let mut single = GpuEvaluator::new(&sys, opts).unwrap();
            let got = batch.evaluate_batch(&points);
            for (i, x) in points.iter().enumerate() {
                let want = single.evaluate(x);
                assert_eq!(got[i].values, want.values, "point {i}");
            }
        }
    }

    #[test]
    fn partial_batches_and_stat_accounting() {
        let prm = params(8, 5, 3, 4, 2);
        let sys = random_system::<f64>(&prm);
        let mut batch = BatchGpuEvaluator::new(&sys, 16, GpuOptions::default()).unwrap();
        let points = random_points::<f64>(8, 16, 4);
        // Partial batch below capacity.
        let r = batch.evaluate_batch(&points[..5]);
        assert_eq!(r.len(), 5);
        // Single-point path through the SystemEvaluator interface.
        let one = batch.evaluate(&points[0]);
        assert_eq!(
            one.values, r[0].values,
            "batch reuse must not corrupt results"
        );
        let s = batch.stats();
        assert_eq!(s.evaluations, 6);
        assert_eq!(s.batches, 2);
        assert!(s.throughput_evals_per_sec() > 0.0);
        assert!(s.seconds_per_eval() > 0.0);
        assert_eq!(
            s.counters.divergent_segments, 0,
            "batched kernels stay uniform"
        );
        batch.reset_stats();
        assert_eq!(batch.stats().evaluations, 0);
        assert_eq!(batch.max_batch(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_batch_panics() {
        let prm = params(4, 3, 2, 2, 1);
        let sys = random_system::<f64>(&prm);
        let mut batch = BatchGpuEvaluator::new(&sys, 2, GpuOptions::default()).unwrap();
        let points = random_points::<f64>(4, 3, 9);
        let _ = batch.evaluate_batch(&points);
    }

    /// Contract violations surface as typed errors from the `try_`
    /// path, leaving the engine usable.
    #[test]
    fn contract_violations_return_typed_errors() {
        let prm = params(4, 3, 2, 2, 1);
        let sys = random_system::<f64>(&prm);
        let mut batch = BatchGpuEvaluator::new(&sys, 2, GpuOptions::default()).unwrap();
        let points = random_points::<f64>(4, 3, 9);
        assert_eq!(
            batch.try_evaluate_batch(&points).unwrap_err(),
            BatchError::CapacityExceeded {
                points: 3,
                capacity: 2
            }
        );
        assert_eq!(
            batch.try_evaluate_batch(&[]).unwrap_err(),
            BatchError::Empty
        );
        let short = vec![vec![Complex::<f64>::one(); 3]];
        assert_eq!(
            batch.try_evaluate_batch(&short).unwrap_err(),
            BatchError::DimensionMismatch {
                point: 0,
                got: 3,
                expected: 4
            }
        );
        // The engine still works after rejected calls, and rejected
        // calls cost nothing in the model.
        assert_eq!(batch.stats().evaluations, 0);
        let ok = batch.try_evaluate_batch(&points[..2]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    /// Stream overlap is a timing-model transformation only: results
    /// stay bit-identical while the modeled wall clock drops below the
    /// serialized sum by the overlap saving.
    #[test]
    fn overlap_keeps_results_and_shaves_wall_clock() {
        let prm = params(32, 4, 9, 2, 3);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(32, 64, 99);
        let mut serial = BatchGpuEvaluator::new(&sys, 64, GpuOptions::default()).unwrap();
        let mut overlapped = BatchGpuEvaluator::new(
            &sys,
            64,
            GpuOptions {
                overlap_chunks: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        let a = serial.evaluate_batch(&points);
        let b = overlapped.evaluate_batch(&points);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.values, y.values, "point {i}");
            assert_eq!(x.jacobian.as_slice(), y.jacobian.as_slice(), "point {i}");
        }
        let (ss, os) = (serial.stats(), overlapped.stats());
        assert_eq!(ss.counters, os.counters, "same launches, same counters");
        assert_eq!(ss.kernel_seconds, os.kernel_seconds);
        // Serialized accounting: wall == sum (up to summation-order
        // rounding), no savings.
        assert!((ss.wall_clock_seconds() - ss.total_seconds()).abs() < 1e-15);
        assert!(ss.overlap_savings() < 1e-15);
        // Overlapped: wall < its own serialized sum, savings positive,
        // and the wall clock beats the non-overlapped wall clock even
        // though chunking pays extra PCIe latency and launch overhead.
        assert!(os.wall_clock_seconds() < os.total_seconds());
        assert!(os.overlap_savings() > 0.0);
        assert!(
            os.wall_clock_seconds() < ss.wall_clock_seconds(),
            "overlap must win at P = 64: {} vs {}",
            os.wall_clock_seconds(),
            ss.wall_clock_seconds()
        );
        assert!(os.throughput_evals_per_sec() > ss.throughput_evals_per_sec());
    }

    /// `overlap_chunks` beyond the point count degenerates gracefully
    /// (clamped to P), and a P = 1 overlapped batch matches the serial
    /// wall clock.
    #[test]
    fn overlap_clamps_to_batch_size() {
        let prm = params(8, 5, 3, 4, 2);
        let sys = random_system::<f64>(&prm);
        let opts = GpuOptions {
            overlap_chunks: Some(16),
            ..Default::default()
        };
        let mut batch = BatchGpuEvaluator::new(&sys, 4, opts).unwrap();
        let mut serial = BatchGpuEvaluator::new(&sys, 4, GpuOptions::default()).unwrap();
        let points = random_points::<f64>(8, 1, 4);
        let _ = batch.evaluate_batch(&points);
        let _ = serial.evaluate_batch(&points);
        assert_eq!(
            batch.stats().wall_clock_seconds(),
            serial.stats().wall_clock_seconds(),
            "a single point has nothing to overlap with"
        );
    }

    /// Adaptive chunking (`overlap_chunks: None`) keeps results
    /// bit-identical and never schedules worse than a single chunk —
    /// the serialized schedule is always among the candidates.
    #[test]
    fn adaptive_overlap_never_worse_than_one_chunk() {
        for (p, prm) in [
            (1, params(8, 5, 3, 4, 2)),    // nothing to overlap
            (5, params(8, 5, 3, 4, 2)),    // latency-bound small batch
            (64, params(32, 4, 9, 2, 3)),  // kernel-bound Table-1 shape
            (256, params(32, 4, 9, 2, 3)), // large batch
        ] {
            let sys = random_system::<f64>(&prm);
            let points = random_points::<f64>(prm.n, p, 99);
            let mut serial = BatchGpuEvaluator::new(&sys, p, GpuOptions::default()).unwrap();
            let mut adaptive = BatchGpuEvaluator::new(
                &sys,
                p,
                GpuOptions {
                    overlap_chunks: None,
                    ..Default::default()
                },
            )
            .unwrap();
            let a = serial.evaluate_batch(&points);
            let b = adaptive.evaluate_batch(&points);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.values, y.values, "P = {p}, point {i}");
                assert_eq!(
                    x.jacobian.as_slice(),
                    y.jacobian.as_slice(),
                    "P = {p}, point {i}"
                );
            }
            let (ss, aa) = (serial.stats(), adaptive.stats());
            assert!(
                aa.wall_clock_seconds() <= ss.wall_clock_seconds() * (1.0 + 1e-12),
                "adaptive schedule worse than 1 chunk at P = {p}: {} vs {}",
                aa.wall_clock_seconds(),
                ss.wall_clock_seconds()
            );
            let planned = adaptive.planned_overlap_chunks(p, adaptive.last_kernel_seconds());
            assert!(planned >= 1 && planned <= p.max(1), "P = {p}: {planned}");
        }
    }

    /// On a kernel-bound batch the adaptive mode actually overlaps: it
    /// picks more than one chunk and beats the serialized wall clock.
    #[test]
    fn adaptive_overlap_beats_serial_when_kernels_dominate() {
        let prm = params(32, 4, 9, 2, 3);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(32, 64, 99);
        let mut serial = BatchGpuEvaluator::new(&sys, 64, GpuOptions::default()).unwrap();
        let mut adaptive = BatchGpuEvaluator::new(
            &sys,
            64,
            GpuOptions {
                overlap_chunks: None,
                ..Default::default()
            },
        )
        .unwrap();
        let _ = serial.evaluate_batch(&points);
        let _ = adaptive.evaluate_batch(&points);
        let planned = adaptive.planned_overlap_chunks(64, adaptive.last_kernel_seconds());
        assert!(planned > 1, "kernel-bound batch must split: {planned}");
        assert!(
            adaptive.stats().wall_clock_seconds() < serial.stats().wall_clock_seconds(),
            "adaptive must beat serial here"
        );
        assert!(adaptive.stats().overlap_savings() > 0.0);
    }

    /// A rectangular row block evaluates exactly its rows of the full
    /// system — bit for bit, values and Jacobian rows alike. This is
    /// the kernel-level invariant row sharding rests on: each row's
    /// arithmetic touches only its own supports and coefficients.
    #[test]
    fn rectangular_row_block_matches_full_system_rows_bitwise() {
        let prm = params(8, 5, 3, 4, 2);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 6, 11);
        let mut full = BatchGpuEvaluator::new(&sys, 6, GpuOptions::default()).unwrap();
        let want = full.evaluate_batch(&points);
        for rows in [vec![0usize, 1, 2], vec![3, 4, 5, 6, 7], vec![5], vec![7, 2]] {
            let block = sys.row_block(&rows);
            let mut shard = BatchGpuEvaluator::new(&block, 6, GpuOptions::default()).unwrap();
            assert_eq!(shard.shape().rows, rows.len());
            assert_eq!(shard.shape().n, 8);
            let got = shard.evaluate_batch(&points);
            for (i, eval) in got.iter().enumerate() {
                assert_eq!(eval.values.len(), rows.len());
                for (local, &global) in rows.iter().enumerate() {
                    assert_eq!(
                        eval.values[local], want[i].values[global],
                        "value row {global}, point {i}"
                    );
                    for v in 0..8 {
                        assert_eq!(
                            eval.jacobian[(local, v)],
                            want[i].jacobian[(global, v)],
                            "jacobian ({global}, {v}), point {i}"
                        );
                    }
                }
            }
        }
    }

    /// The non-panicking single-point path propagates typed errors —
    /// what lets the conformance suite exercise contract violations
    /// without aborting the process.
    #[test]
    fn try_evaluate_propagates_typed_errors() {
        let prm = params(4, 3, 2, 2, 1);
        let sys = random_system::<f64>(&prm);
        let mut batch = BatchGpuEvaluator::new(&sys, 2, GpuOptions::default()).unwrap();
        let short = vec![Complex::<f64>::one(); 3];
        assert_eq!(
            batch.try_evaluate(&short).unwrap_err(),
            BatchError::DimensionMismatch {
                point: 0,
                got: 3,
                expected: 4
            }
        );
        // The engine stays usable and the rejected call cost nothing.
        assert_eq!(batch.stats().evaluations, 0);
        let x = random_points::<f64>(4, 1, 9).pop().unwrap();
        let ok = batch.try_evaluate(&x).unwrap();
        assert_eq!(ok.values.len(), 4);
    }

    #[test]
    fn oversized_system_fails_at_setup() {
        let prm = params(32, 64, 16, 10, 3);
        let sys = random_system::<f64>(&prm);
        assert!(BatchGpuEvaluator::new(&sys, 8, GpuOptions::default()).is_err());
    }
}
