//! The fused **correct** operation: evaluate → factor → solve → update,
//! with the iterates resident on the (simulated) device.
//!
//! The host corrector pays a full value + Jacobian download and a
//! point upload every Newton iteration — PCIe latency, not compute,
//! dominates the inner loop. Verschelde–Yu run the entire Newton step
//! on the device; this module models that regime: one upload of the
//! iterates at the start, one download of the endpoints at the end,
//! and per iteration only an `O(P)` convergence-flag/residual-norm
//! vector crosses the bus ([`FLAG_BYTES`] per point).
//!
//! The numeric core is [`drive_correct`]: a batched Newton driver with
//! **exactly** the per-point semantics of `newton()` in
//! `polygpu-homotopy` (same [`polygpu_complex::lu`] factorization,
//! same pivoting order, same stop conditions), shared by the host and
//! device-resident paths so endpoints are bit-identical by
//! construction. What differs between the modes is only *where the
//! cost model charges the work*: the host path charges full round
//! trips through `try_evaluate_batch`; the device-resident path
//! (`BatchGpuEvaluator::try_correct_batch` and its sparse sibling)
//! charges the batched factor/back-substitution kernel entries of
//! `polygpu_gpusim::linalg` and the flag download.

use crate::batch::BatchError;
use polygpu_complex::lu::lu_decompose;
use polygpu_complex::{Complex, Real};
use polygpu_polysys::SystemEval;

/// Where the corrector's linear solves run — and, since the device is
/// simulated, where their cost is charged.
///
/// Endpoints are **bit-identical** between the modes: both execute the
/// same arithmetic in the same order through [`drive_correct`]. What
/// changes is the modeled traffic: `Host` pays a full value/Jacobian
/// round trip per Newton iteration, `DeviceResident` downloads only
/// the `O(P)` convergence-flag vector per iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CorrectorMode {
    /// Classic loop: download values + Jacobians, LU-solve on the
    /// host, upload the corrected points.
    #[default]
    Host,
    /// Fused on-device loop: evaluate, factor, back-substitute and
    /// update without leaving the device; per iteration only the
    /// convergence flags cross the bus.
    DeviceResident,
}

/// Modeled device→host bytes per point of one convergence-flag
/// download: a residual norm (`f64`) plus a packed
/// converged/step-size flag word.
pub const FLAG_BYTES: usize = 16;

/// Tolerances and limits of one fused corrector call — the corrector
/// slice of `NewtonParams`, with the `StepTol` relaxation explicit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectParams {
    /// Converged when the residual max-norm drops below this.
    pub residual_tol: f64,
    /// Stop when the Newton update's max-norm drops below this.
    pub step_tol: f64,
    /// On a `StepTol` stop, `converged` is declared against
    /// `residual_tol * step_tol_relax` — a stalled step near the root
    /// still counts. `1.0` disables the relaxation.
    pub step_tol_relax: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for CorrectParams {
    fn default() -> Self {
        CorrectParams {
            residual_tol: 1e-12,
            step_tol: 1e-14,
            step_tol_relax: 1e3,
            max_iters: 20,
        }
    }
}

/// Why one point's correction stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectStop {
    /// Residual max-norm under `residual_tol`.
    ResidualTol,
    /// Newton update max-norm under `step_tol`.
    StepTol,
    /// Iteration cap reached.
    MaxIters,
    /// The Jacobian factorization failed (typed singular, including
    /// NaN-poisoned pivots).
    Singular,
}

/// Per-point outcome of a fused corrector call.
///
/// Invariant: `residuals` holds one entry per evaluation of this
/// point — `residuals.len() == iterations + 1` on **every** stop
/// reason, and `residuals.last()` is the residual of the returned
/// iterate.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectStatus {
    /// Did the point converge under the declared tolerance?
    pub converged: bool,
    /// Newton updates applied.
    pub iterations: usize,
    /// Residual max-norm after each evaluation.
    pub residuals: Vec<f64>,
    /// Max-norm of the last Newton update (0 if none was applied).
    pub last_step: f64,
    /// Why the iteration stopped.
    pub stop: CorrectStop,
}

/// Post-evaluation hook: rewrite a raw system evaluation into the
/// function the corrector actually iterates on. The homotopy layer
/// uses this to combine `γ(1−t)·g(x) + t·f(x)` from the engine's
/// `f`-evaluation; plain root-finding uses [`IdentityCombine`].
///
/// `index` is the point's position in the original batch (stable
/// across rounds, so per-point state like each path's `t` can be
/// looked up), `x` the *current* iterate.
pub trait CombineMap<R: Real> {
    fn apply(&mut self, index: usize, x: &[Complex<R>], eval: &mut SystemEval<R>);
}

/// Correct against the evaluated system itself.
pub struct IdentityCombine;

impl<R: Real> CombineMap<R> for IdentityCombine {
    fn apply(&mut self, _index: usize, _x: &[Complex<R>], _eval: &mut SystemEval<R>) {}
}

/// Re-bases the indices seen by an inner [`CombineMap`] — how a
/// sub-batch dispatched to one device of a cluster (or a
/// point-at-a-time forwarding engine) keeps reporting original batch
/// positions.
pub struct OffsetCombine<'a, R: Real> {
    pub inner: &'a mut dyn CombineMap<R>,
    pub offset: usize,
}

impl<R: Real> CombineMap<R> for OffsetCombine<'_, R> {
    fn apply(&mut self, index: usize, x: &[Complex<R>], eval: &mut SystemEval<R>) {
        self.inner.apply(index + self.offset, x, eval);
    }
}

/// One modeled device operation of the fused loop, reported by
/// [`drive_correct`] to its [`CorrectOps`] for cost charging. The
/// driver's numeric results never depend on what `charge` does — only
/// the cost model and fault schedule do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectCharge {
    /// Batched LU factorization + back-substitution of `count` live
    /// Jacobians.
    FactorSolve { count: usize },
    /// Download of `count` convergence-flag words
    /// ([`FLAG_BYTES`] each).
    Flags { count: usize },
}

/// What [`drive_correct`] needs from an engine: batched evaluation of
/// the live iterates, plus a cost hook for the factor/solve and
/// flag-download steps. One trait object (rather than two closures)
/// so a single `&mut` engine can serve both roles.
pub trait CorrectOps<R: Real> {
    /// Evaluate the live points (`indices[i]` is `points[i]`'s
    /// position in the original batch).
    fn eval(
        &mut self,
        points: &[Vec<Complex<R>>],
        indices: &[usize],
    ) -> Result<Vec<SystemEval<R>>, BatchError>;

    /// Charge one modeled device operation. The host path's default
    /// charges nothing (its evaluation round trips already carry the
    /// full cost).
    fn charge(&mut self, _ev: CorrectCharge) -> Result<(), BatchError> {
        Ok(())
    }
}

/// Residual / step-size norm: `max_i |v_i|`, measured in `f64` like
/// every tolerance in the workspace.
pub fn max_norm<R: Real>(v: &[Complex<R>]) -> f64 {
    v.iter().map(|z| z.abs().to_f64()).fold(0.0, f64::max)
}

#[derive(Clone, Copy)]
enum Phase {
    Iterating,
    /// A sub-`step_tol` update was applied at `iterations`; evaluate
    /// the updated iterate next round, then stop on `StepTol`.
    FinalCheck {
        iterations: usize,
    },
    /// The iteration cap was hit with the point still live; evaluate
    /// the final iterate next round, then stop on `MaxIters` — the
    /// returned residual always describes the returned point.
    MaxItersCheck,
    Done,
}

struct PointState {
    phase: Phase,
    iterations: usize,
    residuals: Vec<f64>,
    last_step: f64,
    done: Option<(bool, CorrectStop)>,
}

impl PointState {
    fn finish(&mut self, converged: bool, iterations: usize, stop: CorrectStop) {
        self.phase = Phase::Done;
        self.iterations = iterations;
        self.done = Some((converged, stop));
    }
}

/// Batched Newton correction of `points` in place, with per-point
/// semantics exactly matching the scalar `newton()` of
/// `polygpu-homotopy` (same LU, same pivoting, same stop logic — the
/// basis of the workspace-wide bit-identity guarantee).
///
/// Each round: evaluate every live point (one batched call), report a
/// [`CorrectCharge::FactorSolve`] for the still-unconverged subset,
/// factor/solve/update them host-side, then report a
/// [`CorrectCharge::Flags`] download for the round's convergence
/// flags. Any error from `ops` aborts the whole call; `points` may
/// hold partially-updated scratch in that case, so callers that can
/// retry must call on a scratch copy and commit on success (as the
/// engine wrappers do).
pub fn drive_correct<R: Real>(
    ops: &mut dyn CorrectOps<R>,
    combine: &mut dyn CombineMap<R>,
    points: &mut [Vec<Complex<R>>],
    params: &CorrectParams,
) -> Result<Vec<CorrectStatus>, BatchError> {
    let mut states: Vec<PointState> = points
        .iter()
        .map(|_| PointState {
            phase: Phase::Iterating,
            iterations: 0,
            residuals: Vec::new(),
            last_step: 0.0,
            done: None,
        })
        .collect();
    let mut live_idx: Vec<usize> = Vec::with_capacity(points.len());
    let mut live_pts: Vec<Vec<Complex<R>>> = Vec::with_capacity(points.len());
    let mut factor_idx: Vec<usize> = Vec::with_capacity(points.len());

    for iter in 0..=params.max_iters {
        live_idx.clear();
        live_pts.clear();
        for (i, st) in states.iter_mut().enumerate() {
            if matches!(st.phase, Phase::Iterating) && iter == params.max_iters {
                // Out of iterations: one more evaluation so the
                // reported residual describes the returned iterate.
                st.phase = Phase::MaxItersCheck;
            }
            if !matches!(st.phase, Phase::Done) {
                live_idx.push(i);
                live_pts.push(points[i].clone());
            }
        }
        if live_idx.is_empty() {
            break;
        }

        let mut evals = ops.eval(&live_pts, &live_idx)?;

        // Pass A: residuals and stop checks on the fresh evaluations.
        factor_idx.clear();
        for (k, &i) in live_idx.iter().enumerate() {
            combine.apply(i, &points[i], &mut evals[k]);
            let resid = max_norm(&evals[k].values);
            let st = &mut states[i];
            st.residuals.push(resid);
            match st.phase {
                Phase::FinalCheck { iterations } => {
                    let ok = resid < params.residual_tol * params.step_tol_relax;
                    st.finish(ok, iterations, CorrectStop::StepTol);
                }
                Phase::MaxItersCheck => {
                    st.finish(false, params.max_iters, CorrectStop::MaxIters);
                }
                Phase::Iterating => {
                    if resid < params.residual_tol {
                        st.finish(true, iter, CorrectStop::ResidualTol);
                    } else {
                        factor_idx.push(k);
                    }
                }
                Phase::Done => unreachable!("done points are not evaluated"),
            }
        }

        // Batched factor + solve of the still-live Jacobians.
        if !factor_idx.is_empty() {
            ops.charge(CorrectCharge::FactorSolve {
                count: factor_idx.len(),
            })?;
            for &k in &factor_idx {
                let i = live_idx[k];
                let ev = &evals[k];
                let rhs: Vec<Complex<R>> = ev.values.iter().map(|v| -*v).collect();
                let st = &mut states[i];
                match lu_decompose(ev.jacobian.clone()).and_then(|f| f.solve(&rhs)) {
                    Err(_) => st.finish(false, iter, CorrectStop::Singular),
                    Ok(dx) => {
                        for (xi, di) in points[i].iter_mut().zip(&dx) {
                            *xi += *di;
                        }
                        st.iterations = iter + 1;
                        st.last_step = max_norm(&dx);
                        if st.last_step < params.step_tol {
                            st.phase = Phase::FinalCheck {
                                iterations: iter + 1,
                            };
                        }
                    }
                }
            }
        }

        // This round's convergence flags come back to the host.
        ops.charge(CorrectCharge::Flags {
            count: live_idx.len(),
        })?;
    }

    Ok(states
        .into_iter()
        .map(|st| {
            let (converged, stop) = st.done.expect("every point reaches a stop by max_iters");
            CorrectStatus {
                converged,
                iterations: st.iterations,
                residuals: st.residuals,
                last_step: st.last_step,
                stop,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::SystemEval;

    /// `f(x, y) = (x² − 1, y² − 4)` — roots at (±1, ±2).
    struct Quad;

    impl Quad {
        fn eval(&self, x: &[C64]) -> SystemEval<f64> {
            let mut ev = SystemEval::zeros(2);
            ev.values[0] = x[0] * x[0] - Complex::from_f64(1.0, 0.0);
            ev.values[1] = x[1] * x[1] - Complex::from_f64(4.0, 0.0);
            ev.jacobian[(0, 0)] = x[0].scale(2.0);
            ev.jacobian[(1, 1)] = x[1].scale(2.0);
            ev
        }
    }

    struct QuadOps {
        sys: Quad,
        rounds: usize,
        charges: Vec<CorrectCharge>,
    }

    impl CorrectOps<f64> for QuadOps {
        fn eval(
            &mut self,
            points: &[Vec<C64>],
            _indices: &[usize],
        ) -> Result<Vec<SystemEval<f64>>, BatchError> {
            self.rounds += 1;
            Ok(points.iter().map(|x| self.sys.eval(x)).collect())
        }

        fn charge(&mut self, ev: CorrectCharge) -> Result<(), BatchError> {
            self.charges.push(ev);
            Ok(())
        }
    }

    /// The scalar reference: `newton()`'s exact control flow (with the
    /// `MaxIters` final evaluation) against one point.
    fn scalar_newton(sys: &Quad, x0: &[C64], p: &CorrectParams) -> (Vec<C64>, CorrectStatus) {
        let mut x = x0.to_vec();
        let mut residuals = Vec::new();
        let mut last_step = 0.0;
        for iter in 0..p.max_iters {
            let ev = sys.eval(&x);
            let resid = max_norm(&ev.values);
            residuals.push(resid);
            if resid < p.residual_tol {
                return (
                    x,
                    CorrectStatus {
                        converged: true,
                        iterations: iter,
                        residuals,
                        last_step,
                        stop: CorrectStop::ResidualTol,
                    },
                );
            }
            let rhs: Vec<C64> = ev.values.iter().map(|v| -*v).collect();
            let dx = match lu_decompose(ev.jacobian.clone()).and_then(|f| f.solve(&rhs)) {
                Ok(dx) => dx,
                Err(_) => {
                    return (
                        x,
                        CorrectStatus {
                            converged: false,
                            iterations: iter,
                            residuals,
                            last_step,
                            stop: CorrectStop::Singular,
                        },
                    )
                }
            };
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += *di;
            }
            last_step = max_norm(&dx);
            if last_step < p.step_tol {
                let resid = max_norm(&sys.eval(&x).values);
                residuals.push(resid);
                return (
                    x,
                    CorrectStatus {
                        converged: resid < p.residual_tol * p.step_tol_relax,
                        iterations: iter + 1,
                        residuals,
                        last_step,
                        stop: CorrectStop::StepTol,
                    },
                );
            }
        }
        let resid = max_norm(&sys.eval(&x).values);
        residuals.push(resid);
        (
            x,
            CorrectStatus {
                converged: false,
                iterations: p.max_iters,
                residuals,
                last_step,
                stop: CorrectStop::MaxIters,
            },
        )
    }

    fn params(max_iters: usize) -> CorrectParams {
        CorrectParams {
            residual_tol: 1e-12,
            step_tol: 1e-14,
            step_tol_relax: 1e3,
            max_iters,
        }
    }

    #[test]
    fn matches_scalar_newton_bit_for_bit() {
        // Mixed batch: fast converger, slow converger, and one that
        // exhausts the cap — exercising every phase transition.
        let starts: Vec<Vec<C64>> = vec![
            vec![C64::from_f64(1.1, 0.1), C64::from_f64(2.2, -0.1)],
            vec![C64::from_f64(5.0, 3.0), C64::from_f64(-7.0, 1.0)],
            vec![C64::from_f64(100.0, 50.0), C64::from_f64(-80.0, 60.0)],
        ];
        for max_iters in [0usize, 1, 3, 25] {
            let p = params(max_iters);
            let mut pts = starts.clone();
            let mut ops = QuadOps {
                sys: Quad,
                rounds: 0,
                charges: Vec::new(),
            };
            let stats = drive_correct(&mut ops, &mut IdentityCombine, &mut pts, &p).unwrap();
            for (i, s) in starts.iter().enumerate() {
                let (rx, rs) = scalar_newton(&Quad, s, &p);
                assert_eq!(pts[i], rx, "endpoint point {i}, max_iters {max_iters}");
                assert_eq!(stats[i], rs, "status point {i}, max_iters {max_iters}");
            }
        }
    }

    #[test]
    fn residual_invariant_on_every_stop_reason() {
        // Singular start: x = 0 zeroes the first Jacobian row.
        let starts: Vec<Vec<C64>> = vec![
            vec![C64::from_f64(1.0, 0.0), C64::from_f64(2.0, 0.0)], // instant ResidualTol
            vec![C64::from_f64(1.5, 0.0), C64::from_f64(2.5, 0.0)], // converges
            vec![C64::from_f64(0.0, 0.0), C64::from_f64(2.0, 0.0)], // Singular
            vec![C64::from_f64(1e8, 1e8), C64::from_f64(1e8, -1e8)], // MaxIters
        ];
        let p = params(4);
        let mut pts = starts.clone();
        let mut ops = QuadOps {
            sys: Quad,
            rounds: 0,
            charges: Vec::new(),
        };
        let stats = drive_correct(&mut ops, &mut IdentityCombine, &mut pts, &p).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for (i, st) in stats.iter().enumerate() {
            seen.insert(format!("{:?}", st.stop));
            assert_eq!(
                st.residuals.len(),
                st.iterations + 1,
                "point {i}: one residual per evaluation ({:?})",
                st.stop
            );
            let last = *st.residuals.last().unwrap();
            let fresh = max_norm(&Quad.eval(&pts[i]).values);
            assert!(
                last == fresh || (last.is_nan() && fresh.is_nan()),
                "point {i}: last residual describes the returned point"
            );
        }
        assert!(seen.contains("ResidualTol"));
        assert!(seen.contains("Singular"));
        assert!(seen.contains("MaxIters"));
    }

    #[test]
    fn charges_shrink_with_the_live_set() {
        let mut pts = vec![
            vec![C64::from_f64(1.0, 0.0), C64::from_f64(2.0, 0.0)], // done at round 0
            vec![C64::from_f64(1.2, 0.3), C64::from_f64(2.4, -0.2)],
        ];
        let p = params(30);
        let mut ops = QuadOps {
            sys: Quad,
            rounds: 0,
            charges: Vec::new(),
        };
        drive_correct(&mut ops, &mut IdentityCombine, &mut pts, &p).unwrap();
        // Round 0 factors only the unconverged point.
        assert_eq!(
            ops.charges[0],
            CorrectCharge::FactorSolve { count: 1 },
            "{:?}",
            ops.charges
        );
        assert_eq!(ops.charges[1], CorrectCharge::Flags { count: 2 });
        // Later rounds only carry the live point.
        assert!(ops.charges[2..].iter().all(|c| matches!(
            c,
            CorrectCharge::FactorSolve { count: 1 } | CorrectCharge::Flags { count: 1 }
        )));
    }

    #[test]
    fn offset_combine_rebases_indices() {
        struct Recorder(Vec<usize>);
        impl CombineMap<f64> for Recorder {
            fn apply(&mut self, index: usize, _x: &[C64], _eval: &mut SystemEval<f64>) {
                self.0.push(index);
            }
        }
        let mut rec = Recorder(Vec::new());
        let mut off = OffsetCombine {
            inner: &mut rec,
            offset: 7,
        };
        let mut ev = SystemEval::zeros(1);
        off.apply(0, &[C64::one()], &mut ev);
        off.apply(2, &[C64::one()], &mut ev);
        assert_eq!(rec.0, vec![7, 9]);
    }
}
