//! The unified engine API: one builder, one evaluator trait, and
//! multi-system device residency.
//!
//! The paper's pipeline is one stage of a homotopy run; follow-on work
//! (GPU Newton in double-double/quad-double, polyhedral path tracking)
//! switches precisions, batch shapes and device counts *mid-run*. This
//! module puts one surface over every evaluator in the workspace:
//!
//! * [`Engine::builder`] — a fluent, validated builder that selects a
//!   [`Backend`] (CPU reference, single-point GPU, batched GPU, or a
//!   multi-device cluster via a [`ClusterProvider`]), a precision (the
//!   `Real` generic of [`EngineBuilder::build`]), and tuning (stream
//!   overlap, encoding, block size) — subsuming the previous
//!   `GpuOptions`/`ClusterOptions` construction sprawl;
//! * [`AnyEvaluator`] — the object-safe trait every backend implements:
//!   single-point and batched evaluation, typed-error batching, and
//!   capacity/statistics/capability queries, so drivers hold a
//!   `Box<dyn AnyEvaluator<R>>` and never name a concrete engine;
//! * [`Session`] — multi-system residency: several encoded systems
//!   share one device's constant-memory budget with explicit
//!   accounting, so successive homotopy stages switch systems for a
//!   modeled command-queue round trip instead of paying full setup.
//!
//! Every backend reachable from the builder produces **bit-identical**
//! results for the same points: batching, sharding and scheduling are
//! performance transformations, never numerical ones.
//!
//! ```
//! use polygpu_core::engine::{Backend, Engine};
//! use polygpu_polysys::{random_point, random_system, BenchmarkParams, SystemEvaluator};
//!
//! let params = BenchmarkParams { n: 8, m: 4, k: 3, d: 2, seed: 1 };
//! let system = random_system::<f64>(&params);
//! let x = random_point::<f64>(8, 2);
//!
//! // The same builder spec, three backends — results are bit-identical.
//! let mut cpu = Engine::builder().backend(Backend::CpuReference).build(&system).unwrap();
//! let mut gpu = Engine::builder().backend(Backend::Gpu).build(&system).unwrap();
//! let mut batch = Engine::builder()
//!     .backend(Backend::GpuBatch { capacity: 16 })
//!     .build(&system)
//!     .unwrap();
//! let want = cpu.evaluate(&x);
//! assert_eq!(gpu.evaluate(&x).values, want.values);
//! assert_eq!(batch.evaluate(&x).values, want.values);
//! // Capability and modeled-cost queries through the same trait:
//! assert!(batch.caps().capacity >= 16);
//! assert!(gpu.engine_stats().kernel_seconds > 0.0);
//! ```

use crate::batch::{BatchError, BatchGpuEvaluator};
use crate::correct::{
    drive_correct, CombineMap, CorrectOps, CorrectParams, CorrectStatus, OffsetCombine,
};
use crate::layout::encoding::{EncodedSupports, EncodingKind};
use crate::layout::packed::sparse_packed_bytes;
use crate::pipeline::{FaultConfig, GpuEvaluator, GpuOptions, PipelineStats, SetupError};
use crate::sparse::{SparseBatchGpuEvaluator, SparseGpuEvaluator};
use polygpu_complex::{Complex, Real};
use polygpu_gpusim::prelude::*;
use polygpu_gpusim::stream::TransferPath;
use polygpu_obs::{TraceSink, Tracer, Track};
use polygpu_polysys::{
    loop_evaluate_batch, AdEvaluator, BatchSystemEvaluator, SparseAdEvaluator, SparseShape, System,
    SystemError, SystemEval, SystemEvaluator, UniformShape,
};
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

// ---------------------------------------------------------------------
// The unified evaluator trait
// ---------------------------------------------------------------------

/// Static description of an engine's shape and placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCaps {
    /// Backend name (`"cpu-reference"`, `"gpu"`, `"gpu-batch"`,
    /// `"cluster"`).
    pub backend: &'static str,
    /// Devices the engine spans (0 for a pure-CPU engine).
    pub devices: usize,
    /// Largest batch one `evaluate_batch` call accepts (summed over
    /// devices for a cluster).
    pub capacity: usize,
    /// Largest batch one *device* absorbs in a single round trip
    /// (`capacity` again for single-device engines; the tightest
    /// device's capacity for a heterogeneous cluster; unbounded —
    /// `usize::MAX` — for engines whose batch merely loops).
    pub per_device_capacity: usize,
    /// Whether a batch amortizes fixed costs (one round trip for many
    /// points) or merely loops the single-point path.
    pub batched: bool,
    /// Bytes of device constant memory the encoded system occupies
    /// (summed over devices; 0 for CPU).
    pub constant_bytes: usize,
}

impl EngineCaps {
    /// The slot-front size a capacity-aware scheduler should run:
    /// `devices × per-device capacity`, clamped to the engine's actual
    /// batch `capacity` (saturating; effectively unbounded for
    /// loop-batching engines, so callers clamp to their path count).
    /// The clamp matters for **row-sharded** clusters, whose devices
    /// all see every point: their point capacity does not scale with
    /// `D`, so the front must not either. This is what
    /// `SlotPolicy::Auto` in `polygpu-homotopy` resolves to.
    pub fn auto_slots(&self) -> usize {
        self.devices
            .max(1)
            .saturating_mul(self.per_device_capacity)
            .min(self.capacity)
    }
}

/// The static admission surface of a builder spec: everything a serving
/// layer needs to decide — *before* building an engine or touching a
/// device — whether a request can ever fit the fleet the spec
/// describes. Obtained from [`EngineBuilder::admission_budget`].
///
/// Admission math is deliberately conservative: it sizes the encoding
/// against the **worst-case even row split** on row-sharded clusters
/// and the **tightest surviving device** under degradation, so a
/// request it admits can always be loaded, while a request it rejects
/// is rejected free (no arena bytes, no modeled time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionBudget {
    /// Backend name (`"gpu"`, `"gpu-batch"`, `"cluster"`, …).
    pub backend: &'static str,
    /// Constant-memory budget of each device in the fleet, in fleet
    /// index order (one entry for single-device backends).
    pub device_constant_budgets: Vec<usize>,
    /// Points one device absorbs per round trip.
    pub per_device_capacity: usize,
    /// The support encoding requests are sized against.
    pub encoding: EncodingKind,
    /// Whether the system's rows are sharded across devices (each
    /// device holds only its rows' supports) or every device encodes
    /// the whole system.
    pub rows_sharded: bool,
}

impl AdmissionBudget {
    /// Devices in the (undegraded) fleet.
    pub fn devices(&self) -> usize {
        self.device_constant_budgets.len()
    }

    /// Constant bytes `shape` requires on the most loaded device when
    /// the fleet has `devices` survivors: the whole encoding on
    /// unsharded backends, the largest even row slice when rows are
    /// sharded. Returns `usize::MAX` for `devices == 0` (nothing can
    /// be admitted to an empty fleet).
    pub fn bytes_needed_per_device(&self, shape: &UniformShape, devices: usize) -> usize {
        if devices == 0 {
            return usize::MAX;
        }
        let mut slice = *shape;
        if self.rows_sharded {
            slice.rows = shape.rows.div_ceil(devices);
        }
        EncodedSupports::bytes_needed(&slice, self.encoding)
    }

    /// Whether `shape` can *ever* fit a fleet of `surviving` devices
    /// (each starting empty): its per-device slice must fit the
    /// tightest surviving budget. Survivor identity is unknown at
    /// admission time, so the check uses the smallest budget in the
    /// fleet — conservative, never optimistic.
    pub fn fits(&self, shape: &UniformShape, surviving: usize) -> bool {
        let surviving = surviving.min(self.devices());
        let tightest = self
            .device_constant_budgets
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        self.bytes_needed_per_device(shape, surviving) <= tightest
    }

    /// Constant bytes a (possibly ragged) `shape` requires on the most
    /// loaded device when the fleet has `devices` survivors — the
    /// sparse generalization of [`Self::bytes_needed_per_device`].
    /// Uniform shapes size exactly like their `UniformShape`; ragged
    /// shapes size by the packed ragged encoding under
    /// [`EncodingKind::Packed`] and are unencodable (`usize::MAX`)
    /// under the dense encodings. Row-sharded slices bound the slice's
    /// monomial count by `slice_rows · max_m` — conservative, never
    /// optimistic.
    pub fn sparse_bytes_needed_per_device(&self, shape: &SparseShape, devices: usize) -> usize {
        if devices == 0 {
            return usize::MAX;
        }
        let mut slice = *shape;
        if self.rows_sharded {
            slice.rows = shape.rows.div_ceil(devices);
            slice.total_monomials = shape.total_monomials.min(slice.rows * shape.max_m);
        }
        if slice.uniform {
            let uniform = UniformShape {
                n: slice.n,
                rows: slice.rows,
                m: slice.max_m,
                k: slice.max_k,
                d: slice.d,
            };
            EncodedSupports::bytes_needed(&uniform, self.encoding)
        } else if self.encoding == EncodingKind::Packed {
            sparse_packed_bytes(&slice)
        } else {
            usize::MAX
        }
    }

    /// Whether a (possibly ragged) `shape` can ever fit a fleet of
    /// `surviving` devices — the sparse generalization of
    /// [`Self::fits`].
    pub fn sparse_fits(&self, shape: &SparseShape, surviving: usize) -> bool {
        let surviving = surviving.min(self.devices());
        let tightest = self
            .device_constant_budgets
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        self.sparse_bytes_needed_per_device(shape, surviving) <= tightest
    }
}

/// The object-safe union of every evaluator in the workspace: single
/// and batched evaluation plus capacity, statistics and capability
/// queries. Built by [`Engine::builder`]; held as
/// `Box<dyn AnyEvaluator<R>>` (or borrowed as `&mut dyn
/// AnyEvaluator<R>`) by the homotopy drivers, which accept any backend
/// through it.
///
/// Point-wise results are **bit-identical across implementations** of
/// the same system: `evaluate_batch(points)[i] == evaluate(&points[i])`
/// bit for bit, whichever backend computed them.
///
/// ```
/// use polygpu_core::engine::{AnyEvaluator, Backend, Engine};
/// use polygpu_polysys::{random_points, random_system, BenchmarkParams};
/// use polygpu_polysys::{BatchSystemEvaluator, SystemEvaluator};
///
/// let sys = random_system::<f64>(&BenchmarkParams { n: 6, m: 3, k: 2, d: 2, seed: 3 });
/// let mut engine: Box<dyn AnyEvaluator<f64>> = Engine::builder()
///     .backend(Backend::GpuBatch { capacity: 8 })
///     .build(&sys)
///     .unwrap();
/// let points = random_points::<f64>(6, 5, 7);
/// let batch = engine.try_evaluate_batch(&points).unwrap();
/// assert_eq!(batch.len(), 5);
/// // The batch equals the single-point path bit for bit.
/// assert_eq!(engine.evaluate(&points[0]).values, batch[0].values);
/// assert_eq!(engine.caps().backend, "gpu-batch");
/// ```
pub trait AnyEvaluator<R: Real>: BatchSystemEvaluator<R> {
    /// Typed-error batched evaluation: contract violations (empty
    /// batch, over-capacity, wrong dimension) come back as
    /// [`BatchError`] values instead of panics, and cost nothing.
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError>;

    /// Typed-error single-point evaluation: the non-panicking sibling
    /// of [`SystemEvaluator::evaluate`], as a batch of one.
    fn try_evaluate(&mut self, x: &[Complex<R>]) -> Result<SystemEval<R>, BatchError> {
        let mut out = self.try_evaluate_batch(std::slice::from_ref(&x.to_vec()))?;
        Ok(out.pop().expect("batch of one returns one result"))
    }

    /// Fused Newton correction of `points` in place: evaluate →
    /// factor → solve → update until each point stops (see
    /// [`crate::correct`]). The default is the **host** corrector —
    /// every iteration is a full `try_evaluate_batch` round trip
    /// (chunked to capacity) with the linear solve on the host.
    /// Batched device engines override this with the device-resident
    /// loop, which charges the on-device factor/back-substitution
    /// kernels and only the `O(P)` flag download per iteration — with
    /// bit-identical endpoints, since both run
    /// [`crate::correct::drive_correct`].
    ///
    /// On `Err` the contents of `points` are unspecified (the
    /// overrides guarantee untouched inputs; the host default may have
    /// applied updates) — retry from the caller's own copy.
    fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        struct HostOps<'a, R: Real, E: AnyEvaluator<R> + ?Sized>(&'a mut E, PhantomData<R>);
        impl<R: Real, E: AnyEvaluator<R> + ?Sized> CorrectOps<R> for HostOps<'_, R, E> {
            fn eval(
                &mut self,
                points: &[Vec<Complex<R>>],
                _indices: &[usize],
            ) -> Result<Vec<SystemEval<R>>, BatchError> {
                let cap = self.0.caps().capacity.max(1);
                if points.len() <= cap {
                    return self.0.try_evaluate_batch(points);
                }
                let mut out = Vec::with_capacity(points.len());
                for chunk in points.chunks(cap) {
                    out.extend(self.0.try_evaluate_batch(chunk)?);
                }
                Ok(out)
            }
        }
        drive_correct(&mut HostOps(self, PhantomData), combine, points, params)
    }

    /// Modeled-cost statistics accumulated so far (all zero for
    /// engines with no device model, e.g. the CPU reference).
    fn engine_stats(&self) -> PipelineStats;

    /// Reset the accumulated statistics.
    fn reset_engine_stats(&mut self);

    /// Static capability description of this engine.
    fn caps(&self) -> EngineCaps;
}

/// Shared dimension validation for loop-batching engines.
fn validate_batch<R: Real>(n: usize, points: &[Vec<Complex<R>>]) -> Result<(), BatchError> {
    if points.is_empty() {
        return Err(BatchError::Empty);
    }
    for (i, x) in points.iter().enumerate() {
        if x.len() != n {
            return Err(BatchError::DimensionMismatch {
                point: i,
                got: x.len(),
                expected: n,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Backend implementations of AnyEvaluator
// ---------------------------------------------------------------------

/// The CPU algorithm behind [`CpuReferenceEngine`]: uniform systems
/// run the paper's AD evaluator (bit-identical to the dense device
/// backends); ragged systems run the sparse AD evaluator
/// (bit-identical to the packed-encoding device backends).
enum CpuAlgo<R: Real> {
    Ad(AdEvaluator<R>),
    Sparse(SparseAdEvaluator<R>),
}

/// The sequential CPU reference (the paper's one-core algorithm) behind
/// the unified interface: no device model, unlimited batch capacity,
/// bit-identical to the GPU backends on every system they accept —
/// uniform systems through the paper's AD algorithm, ragged systems
/// through its sparse generalization (the reference of the packed
/// pipeline).
pub struct CpuReferenceEngine<R: Real> {
    inner: CpuAlgo<R>,
    evaluations: u64,
    batches: u64,
}

impl<R: Real> CpuReferenceEngine<R> {
    pub fn new(system: &System<R>) -> Result<Self, SystemError> {
        let inner = match AdEvaluator::new(system.clone()) {
            Ok(ad) => CpuAlgo::Ad(ad),
            Err(SystemError::NotUniform(_)) => {
                CpuAlgo::Sparse(SparseAdEvaluator::new(system.clone()))
            }
            Err(e) => return Err(e),
        };
        Ok(CpuReferenceEngine {
            inner,
            evaluations: 0,
            batches: 0,
        })
    }

    fn eval_inner(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        match &mut self.inner {
            CpuAlgo::Ad(e) => e.evaluate(x),
            CpuAlgo::Sparse(e) => e.evaluate(x),
        }
    }
}

impl<R: Real> SystemEvaluator<R> for CpuReferenceEngine<R> {
    fn dim(&self) -> usize {
        match &self.inner {
            CpuAlgo::Ad(e) => e.dim(),
            CpuAlgo::Sparse(e) => e.dim(),
        }
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        self.evaluations += 1;
        self.batches += 1;
        self.eval_inner(x)
    }

    fn name(&self) -> &str {
        "cpu-reference"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for CpuReferenceEngine<R> {
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        self.evaluations += points.len() as u64;
        self.batches += 1;
        match &mut self.inner {
            CpuAlgo::Ad(e) => loop_evaluate_batch(e, points),
            CpuAlgo::Sparse(e) => loop_evaluate_batch(e, points),
        }
    }
}

impl<R: Real> AnyEvaluator<R> for CpuReferenceEngine<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        validate_batch(self.dim(), points)?;
        Ok(self.evaluate_batch(points))
    }

    fn engine_stats(&self) -> PipelineStats {
        PipelineStats {
            evaluations: self.evaluations,
            batches: self.batches,
            ..Default::default()
        }
    }

    fn reset_engine_stats(&mut self) {
        self.evaluations = 0;
        self.batches = 0;
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "cpu-reference",
            devices: 0,
            capacity: usize::MAX,
            per_device_capacity: usize::MAX,
            batched: false,
            constant_bytes: 0,
        }
    }
}

impl<R: Real> AnyEvaluator<R> for GpuEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        validate_batch(self.dim(), points)?;
        // Loop the typed single-point path so injected faults surface
        // as `BatchError::Fault` values, never as panics.
        points
            .iter()
            .map(|x| GpuEvaluator::try_evaluate(self, x))
            .collect()
    }

    fn engine_stats(&self) -> PipelineStats {
        self.stats()
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "gpu",
            devices: 1,
            capacity: usize::MAX,
            per_device_capacity: usize::MAX,
            batched: false,
            constant_bytes: self.constant_bytes_used(),
        }
    }
}

impl<R: Real> AnyEvaluator<R> for BatchGpuEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        BatchGpuEvaluator::try_evaluate_batch(self, points)
    }

    fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        BatchGpuEvaluator::try_correct_batch(self, points, combine, params)
    }

    fn engine_stats(&self) -> PipelineStats {
        self.stats()
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "gpu-batch",
            devices: 1,
            capacity: self.capacity(),
            per_device_capacity: self.capacity(),
            batched: true,
            constant_bytes: self.constant_bytes_used(),
        }
    }
}

impl<R: Real> AnyEvaluator<R> for SparseGpuEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        validate_batch(self.dim(), points)?;
        SparseGpuEvaluator::try_evaluate_batch(self, points)
    }

    fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        validate_batch(self.dim(), points)?;
        // The inner capacity-1 batch engine runs the fused loop point
        // by point; a scratch copy keeps a mid-batch fault from
        // committing a partially-corrected prefix.
        let mut scratch: Vec<Vec<Complex<R>>> = points.to_vec();
        let mut out = Vec::with_capacity(points.len());
        for (i, p) in scratch.iter_mut().enumerate() {
            let one = std::slice::from_mut(p);
            let st = self.inner_mut().try_correct_batch(
                one,
                &mut OffsetCombine {
                    inner: combine,
                    offset: i,
                },
                params,
            )?;
            out.extend(st);
        }
        for (dst, src) in points.iter_mut().zip(scratch) {
            *dst = src;
        }
        Ok(out)
    }

    fn engine_stats(&self) -> PipelineStats {
        self.stats()
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "gpu",
            devices: 1,
            capacity: usize::MAX,
            per_device_capacity: usize::MAX,
            batched: false,
            constant_bytes: self.constant_bytes_used(),
        }
    }
}

impl<R: Real> AnyEvaluator<R> for SparseBatchGpuEvaluator<R> {
    fn try_evaluate_batch(
        &mut self,
        points: &[Vec<Complex<R>>],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        SparseBatchGpuEvaluator::try_evaluate_batch(self, points)
    }

    fn try_correct_batch(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        SparseBatchGpuEvaluator::try_correct_batch(self, points, combine, params)
    }

    fn engine_stats(&self) -> PipelineStats {
        self.stats()
    }

    fn reset_engine_stats(&mut self) {
        self.reset_stats();
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "gpu-batch",
            devices: 1,
            capacity: self.capacity(),
            per_device_capacity: self.capacity(),
            batched: true,
            constant_bytes: self.constant_bytes_used(),
        }
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Which evaluator the builder constructs.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// The paper's sequential algorithm on the host — the bit-exact
    /// reference every device backend is checked against.
    CpuReference,
    /// The paper's single-point three-kernel pipeline on one simulated
    /// device.
    Gpu,
    /// The batched multi-point engine: up to `capacity` points per
    /// round trip on one simulated device.
    GpuBatch { capacity: usize },
    /// One batched engine per device, work split by `shard` — the
    /// *points* of each batch ([`ShardMode::Points`]) or the *rows* of
    /// the system ([`ShardMode::Rows`], for systems whose encoding
    /// exceeds one device's constant memory). Requires a
    /// [`ClusterProvider`]; available out of the box through the
    /// `polygpu` facade or `polygpu-cluster`.
    Cluster {
        devices: Vec<DeviceSpec>,
        shard: ShardMode,
    },
}

/// What a cluster backend shards across its devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Shard the **points**: every device encodes the whole system and
    /// evaluates its share of each batch. Capacity scales with `D`;
    /// the system must fit every single device.
    Points { policy: ClusterPolicy },
    /// Shard the **system's equations** (rows of the Jacobian): each
    /// device encodes only its rows' supports into its own constant
    /// memory, every device sees every point, and per-point results
    /// are gathered with a modeled inter-device transfer. Lifts the
    /// constant-memory wall ~`D`-fold; capacity does **not** scale
    /// with `D`.
    Rows { policy: SystemShardPolicy },
}

impl Default for ShardMode {
    /// Point sharding with the default policy — the scale-out mode for
    /// systems that fit one device.
    fn default() -> Self {
        ShardMode::Points {
            policy: ClusterPolicy::default(),
        }
    }
}

impl From<ClusterPolicy> for ShardMode {
    fn from(policy: ClusterPolicy) -> Self {
        ShardMode::Points { policy }
    }
}

impl From<SystemShardPolicy> for ShardMode {
    fn from(policy: SystemShardPolicy) -> Self {
        ShardMode::Rows { policy }
    }
}

/// How a cluster backend splits batches across devices (mirrored onto
/// the cluster crate's `ShardPolicy` by its provider).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterPolicy {
    /// Point `i` to device `i mod D`.
    RoundRobin,
    /// Contiguous shards proportional to device capacity.
    #[default]
    CapacityProportional,
    /// Deterministic work-stealing in `chunk`-point units.
    WorkStealing { chunk: usize },
}

/// How [`ShardMode::Rows`] partitions the system's equations across
/// devices. Plans are pure functions of `(rows, D)` — never of
/// coefficients or points — so the same system always shards the same
/// way and results merge deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SystemShardPolicy {
    /// Near-equal contiguous row blocks (largest remainder first):
    /// device `d` gets rows `[d·⌈rows/D⌉ …)` — the balanced default.
    #[default]
    Contiguous,
    /// Row `i` to device `i mod D`.
    RoundRobin,
}

/// Validated builder failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A batch capacity (per engine or per device) of zero.
    ZeroCapacity,
    /// A cluster backend with an empty device list.
    NoDevices,
    /// `block_dim` is zero or exceeds the device's block limit.
    BlockDim { got: u32, max: u32 },
    /// `overlap_chunks` was explicitly set to zero (use `None` /
    /// [`EngineBuilder::adaptive_overlap`] for the adaptive mode).
    ZeroOverlapChunks,
    /// A work-stealing policy with a zero chunk size.
    ZeroStealChunk,
    /// The system failed CPU-side validation (not square / not
    /// uniform).
    System(SystemError),
    /// The system does not fit the device (encoding or launch limits).
    Setup(SetupError),
    /// The spec selects [`Backend::Cluster`] but this builder has no
    /// [`ClusterProvider`]; use `polygpu::Engine::builder()` (the
    /// facade) or `polygpu_cluster::engine_builder()`.
    ClusterUnavailable,
    /// [`EngineBuilder::session`] requires a single-device GPU backend.
    SessionBackend { backend: &'static str },
    /// [`EngineBuilder::cluster_spec`] requires [`Backend::Cluster`].
    NotCluster { backend: &'static str },
    /// Injected faults took out too many devices for the fleet to
    /// carry out the build or load.
    DegradedFleet {
        /// Devices the fleet was configured with.
        devices: usize,
        /// Devices lost or excluded by faults.
        lost: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroCapacity => write!(f, "batch capacity must be at least 1"),
            BuildError::NoDevices => write!(f, "cluster backend needs at least one device"),
            BuildError::BlockDim { got, max } => {
                write!(f, "block_dim {got} outside the device limit 1..={max}")
            }
            BuildError::ZeroOverlapChunks => write!(
                f,
                "overlap_chunks must be at least 1 (or adaptive for model-picked chunking)"
            ),
            BuildError::ZeroStealChunk => {
                write!(f, "work-stealing chunk size must be at least 1")
            }
            BuildError::System(e) => write!(f, "system validation: {e}"),
            BuildError::Setup(e) => write!(f, "device setup: {e}"),
            BuildError::ClusterUnavailable => write!(
                f,
                "cluster backend requested but no ClusterProvider is installed \
                 (use polygpu::Engine::builder() or polygpu_cluster::engine_builder())"
            ),
            BuildError::SessionBackend { backend } => write!(
                f,
                "sessions need a single-device GPU backend, got {backend}"
            ),
            BuildError::NotCluster { backend } => {
                write!(f, "cluster_spec needs the Cluster backend, got {backend}")
            }
            BuildError::DegradedFleet { devices, lost } => write!(
                f,
                "fleet degraded: {lost} of {devices} devices lost during setup"
            ),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::System(e) => Some(e),
            BuildError::Setup(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SetupError> for BuildError {
    fn from(e: SetupError) -> Self {
        BuildError::Setup(e)
    }
}

impl From<SystemError> for BuildError {
    fn from(e: SystemError) -> Self {
        BuildError::System(e)
    }
}

/// Everything a [`ClusterProvider`] needs to assemble a cluster
/// evaluator: the validated device list, shard mode, per-device
/// capacity and the base per-device options. Also the seam a
/// cluster-level session builds from (see
/// [`EngineBuilder::cluster_spec`]).
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub devices: Vec<DeviceSpec>,
    pub shard: ShardMode,
    pub per_device_capacity: usize,
    /// How row-sharded gathers cross between devices (ignored by
    /// point sharding, which never moves results between devices).
    pub gather: TransferPath,
    /// Per-device options (`device` — and the fault config's fleet
    /// index — are replaced per spec entry by the provider).
    pub base: GpuOptions,
    /// How the fleet recovers from injected faults: retry with modeled
    /// backoff, fail over onto survivors, then degrade (typed error or
    /// CPU-reference fallback).
    pub recovery: RecoveryPolicy,
}

/// Constructs the [`Backend::Cluster`] evaluator. The core crate sits
/// below the cluster crate in the layer stack, so the concrete
/// multi-device engine is injected: `polygpu-cluster` provides the
/// `Sharded` provider and the `polygpu` facade installs it by default.
///
/// Providers are `Clone` so a spec (and the [`EngineBuilder`] holding
/// it) can be re-provisioned per precision pass — both shipped
/// providers are zero-sized.
pub trait ClusterProvider: Clone {
    fn build<R: Real>(
        &self,
        system: &System<R>,
        spec: &ClusterSpec,
    ) -> Result<Box<dyn AnyEvaluator<R>>, BuildError>;
}

/// The default provider at the core layer: no cluster backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCluster;

impl ClusterProvider for NoCluster {
    fn build<R: Real>(
        &self,
        _system: &System<R>,
        _spec: &ClusterSpec,
    ) -> Result<Box<dyn AnyEvaluator<R>>, BuildError> {
        Err(BuildError::ClusterUnavailable)
    }
}

/// Namespace for the unified builder entry points.
pub struct Engine;

impl Engine {
    /// A builder with the core backends (CPU reference, GPU, batched
    /// GPU). The cluster backend needs [`Engine::builder_with`] and a
    /// [`ClusterProvider`] — or use the `polygpu` facade, whose
    /// `Engine::builder()` installs one.
    pub fn builder() -> EngineBuilder {
        Engine::builder_with(NoCluster)
    }

    /// A builder with every backend, cluster construction delegated to
    /// `provider`.
    pub fn builder_with<P: ClusterProvider>(provider: P) -> EngineBuilder<P> {
        EngineBuilder {
            backend: Backend::Gpu,
            device: DeviceSpec::tesla_c2050(),
            block_dim: 32,
            encoding: EncodingKind::Direct,
            from_scratch_cf: false,
            overlap_chunks: None,
            per_device_capacity: 64,
            gather: TransferPath::default(),
            launch: LaunchOptions::default(),
            fault: None,
            recovery: RecoveryPolicy::default(),
            trace: TraceSink::noop(),
            provider,
        }
    }
}

/// Fluent, validated engine construction — one entry point for every
/// backend and precision. The builder itself is precision-free: the
/// same spec builds `f64` and double-double engines (see
/// [`EngineBuilder::build`]), which is how precision escalation
/// re-requests a higher-precision engine without rebuilding options by
/// hand.
#[derive(Debug, Clone)]
pub struct EngineBuilder<P: ClusterProvider = NoCluster> {
    backend: Backend,
    device: DeviceSpec,
    block_dim: u32,
    encoding: EncodingKind,
    from_scratch_cf: bool,
    overlap_chunks: Option<usize>,
    per_device_capacity: usize,
    gather: TransferPath,
    launch: LaunchOptions,
    fault: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    trace: TraceSink,
    provider: P,
}

impl<P: ClusterProvider> EngineBuilder<P> {
    /// Select the backend (default: [`Backend::Gpu`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Device spec for the single-device backends (default: the
    /// paper's Tesla C2050). Cluster devices travel in the
    /// [`Backend::Cluster`] variant instead.
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Threads per block (default 32, the paper's figure).
    pub fn block_dim(mut self, block_dim: u32) -> Self {
        self.block_dim = block_dim;
        self
    }

    /// Constant-memory support encoding (default direct; compact lifts
    /// the paper's 2,048-monomial wall; packed additionally encodes
    /// **ragged** supports — per-monomial variable counts, constants
    /// included — that the uniform layouts reject typed).
    ///
    /// ```
    /// use polygpu_core::engine::{Backend, Engine};
    /// use polygpu_core::EncodingKind;
    /// use polygpu_polysys::{random_sparse_system, SparseBenchmarkParams};
    ///
    /// let sparse = random_sparse_system::<f64>(&SparseBenchmarkParams {
    ///     n: 4, m_min: 1, m_max: 3, k_min: 0, k_max: 3, d: 3, seed: 5,
    /// });
    /// let spec = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
    /// // The paper's Direct layout cannot express ragged supports…
    /// assert!(spec.clone().build(&sparse).is_err());
    /// // …the packed exponent-key encoding runs them bit-identically.
    /// let mut engine = spec.encoding(EncodingKind::Packed).build(&sparse).unwrap();
    /// assert!(engine.caps().constant_bytes > 0);
    /// ```
    pub fn encoding(mut self, encoding: EncodingKind) -> Self {
        self.encoding = encoding;
        self
    }

    /// Use the from-scratch common-factor kernel (ablation A1).
    pub fn from_scratch_cf(mut self, yes: bool) -> Self {
        self.from_scratch_cf = yes;
        self
    }

    /// Fix the stream-overlap chunk count (must be ≥ 1; `1` is the
    /// fully serialized schedule). Unset (the default), each batch
    /// picks its chunk count adaptively from the modeled
    /// kernel/transfer ratio and never schedules worse than one chunk.
    pub fn overlap_chunks(mut self, chunks: usize) -> Self {
        self.overlap_chunks = Some(chunks);
        self
    }

    /// Return to the default adaptive overlap chunking.
    pub fn adaptive_overlap(mut self) -> Self {
        self.overlap_chunks = None;
        self
    }

    /// Per-device batch capacity for the cluster backend (default 64;
    /// the single-device batch capacity lives in
    /// [`Backend::GpuBatch`]).
    pub fn per_device_capacity(mut self, capacity: usize) -> Self {
        self.per_device_capacity = capacity;
        self
    }

    /// How row-sharded gathers move results between devices (default
    /// host-staged D2H + H2D; peer-to-peer single hops when the
    /// modeled fleet supports them). Ignored by every backend except
    /// [`ShardMode::Rows`] clusters.
    pub fn gather_path(mut self, gather: TransferPath) -> Self {
        self.gather = gather;
        self
    }

    /// Host-side launch options (write-conflict checking, host
    /// parallelism) — the last `GpuOptions` knob, so the builder fully
    /// subsumes direct options construction.
    pub fn launch(mut self, launch: LaunchOptions) -> Self {
        self.launch = launch;
        self
    }

    /// Inject deterministic faults from this seeded plan into every
    /// modeled device the backend spans (each device draws a
    /// decorrelated schedule keyed on its fleet index). Default: no
    /// injection. Faults surface as typed `BatchError::Fault` values
    /// through `try_evaluate_batch`; cluster backends recover per
    /// [`EngineBuilder::recovery`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Fleet recovery policy for cluster backends: retries with
    /// modeled exponential backoff, then failover re-planning, then —
    /// if permitted — the bit-identical CPU-reference fallback.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Install a [`Tracer`]: every engine built from this spec emits
    /// its device-op spans (uploads, launches, downloads, fault
    /// windows) into it, timestamped on the **modeled** clock. The
    /// default is a no-op sink; installing one changes no modeled
    /// timing or numeric result.
    ///
    /// ```
    /// use polygpu_core::engine::{Backend, Engine};
    /// use polygpu_obs::CollectingTracer;
    /// use polygpu_polysys::{random_point, random_system, BenchmarkParams};
    /// use std::sync::Arc;
    ///
    /// let params = BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed: 1 };
    /// let system = random_system::<f64>(&params);
    /// let tracer = Arc::new(CollectingTracer::new());
    /// let mut engine = Engine::builder()
    ///     .backend(Backend::GpuBatch { capacity: 2 })
    ///     .tracer(tracer.clone())
    ///     .build::<f64>(&system)
    ///     .unwrap();
    /// engine.try_evaluate(&random_point::<f64>(2, 7)).unwrap();
    /// assert!(!tracer.spans().is_empty(), "device ops were recorded");
    /// ```
    pub fn tracer(self, tracer: Arc<dyn Tracer>) -> Self {
        self.trace_sink(TraceSink::new(tracer))
    }

    /// Install an already-targeted [`TraceSink`] — the seam the solver
    /// uses to thread one request-level sink (possibly rebased for an
    /// escalation pass) into the engines it builds.
    pub fn trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The per-device options this spec resolves to (shared by every
    /// backend that models a device).
    fn gpu_options(&self, device: DeviceSpec) -> GpuOptions {
        GpuOptions {
            device,
            block_dim: self.block_dim,
            encoding: self.encoding,
            from_scratch_cf: self.from_scratch_cf,
            overlap_chunks: self.overlap_chunks,
            launch: self.launch,
            fault: self.fault.map(|plan| FaultConfig {
                plan,
                device_index: 0,
            }),
            // Single-device engines are device 0 of their track space;
            // cluster providers retarget per fleet index.
            trace: self.trace.on(Track::Device(0)),
        }
    }

    /// Validate the spec without building anything.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.overlap_chunks == Some(0) {
            return Err(BuildError::ZeroOverlapChunks);
        }
        let check_block = |device: &DeviceSpec| -> Result<(), BuildError> {
            if self.block_dim == 0 || self.block_dim > device.max_threads_per_block {
                return Err(BuildError::BlockDim {
                    got: self.block_dim,
                    max: device.max_threads_per_block,
                });
            }
            Ok(())
        };
        match &self.backend {
            Backend::CpuReference => Ok(()),
            Backend::Gpu => check_block(&self.device),
            Backend::GpuBatch { capacity } => {
                if *capacity == 0 {
                    return Err(BuildError::ZeroCapacity);
                }
                check_block(&self.device)
            }
            Backend::Cluster { devices, shard } => {
                if devices.is_empty() {
                    return Err(BuildError::NoDevices);
                }
                if self.per_device_capacity == 0 {
                    return Err(BuildError::ZeroCapacity);
                }
                if matches!(
                    shard,
                    ShardMode::Points {
                        policy: ClusterPolicy::WorkStealing { chunk: 0 }
                    }
                ) {
                    return Err(BuildError::ZeroStealChunk);
                }
                for d in devices {
                    check_block(d)?;
                }
                Ok(())
            }
        }
    }

    /// The validated [`ClusterSpec`] this builder describes — the seam
    /// through which cluster-level constructs outside the core crate
    /// (the row-sharded cluster session in `polygpu-cluster`, say) are
    /// assembled from the same spec the [`ClusterProvider`] receives.
    /// Errors unless the backend is [`Backend::Cluster`].
    pub fn cluster_spec(&self) -> Result<ClusterSpec, BuildError> {
        self.validate()?;
        match &self.backend {
            Backend::Cluster { devices, shard } => Ok(ClusterSpec {
                devices: devices.clone(),
                shard: *shard,
                per_device_capacity: self.per_device_capacity,
                gather: self.gather,
                base: self.gpu_options(self.device.clone()),
                recovery: self.recovery,
            }),
            Backend::CpuReference => Err(BuildError::NotCluster {
                backend: "cpu-reference",
            }),
            Backend::Gpu => Err(BuildError::NotCluster { backend: "gpu" }),
            Backend::GpuBatch { .. } => Err(BuildError::NotCluster {
                backend: "gpu-batch",
            }),
        }
    }

    /// The [`AdmissionBudget`] this spec resolves to — the free,
    /// device-untouched sizing surface a serving layer admits against.
    /// Errors only when the spec itself is invalid.
    pub fn admission_budget(&self) -> Result<AdmissionBudget, BuildError> {
        self.validate()?;
        let (backend, budgets, rows_sharded) = match &self.backend {
            Backend::CpuReference => ("cpu-reference", vec![usize::MAX], false),
            Backend::Gpu => ("gpu", vec![self.device.constant_budget()], false),
            Backend::GpuBatch { .. } => ("gpu-batch", vec![self.device.constant_budget()], false),
            Backend::Cluster { devices, shard } => (
                "cluster",
                devices.iter().map(|d| d.constant_budget()).collect(),
                matches!(shard, ShardMode::Rows { .. }),
            ),
        };
        let per_device_capacity = match &self.backend {
            Backend::CpuReference => usize::MAX,
            Backend::Gpu => 1,
            Backend::GpuBatch { capacity } => *capacity,
            Backend::Cluster { .. } => self.per_device_capacity,
        };
        Ok(AdmissionBudget {
            backend,
            device_constant_budgets: budgets,
            per_device_capacity,
            encoding: self.encoding,
            rows_sharded,
        })
    }

    /// Build the selected backend for `system` in precision `R`. The
    /// spec is reusable: call again with the same system converted to a
    /// higher precision to escalate without re-describing the engine.
    pub fn build<R: Real>(
        &self,
        system: &System<R>,
    ) -> Result<Box<dyn AnyEvaluator<R>>, BuildError> {
        self.validate()?;
        // Ragged systems have no uniform shape, so the dense pipelines
        // cannot encode them; under the packed encoding they route to
        // the sparse pipelines instead (uniform systems stay on the
        // dense pipelines whatever the encoding — including `Packed`,
        // which the uniform encoder handles header-free). Under a dense
        // encoding a ragged system still fails with the existing typed
        // shape error.
        let ragged = matches!(system.uniform_shape(), Err(SystemError::NotUniform(_)))
            && self.encoding == EncodingKind::Packed;
        match &self.backend {
            Backend::CpuReference => Ok(Box::new(CpuReferenceEngine::new(system)?)),
            Backend::Gpu if ragged => Ok(Box::new(SparseGpuEvaluator::new(
                system,
                self.gpu_options(self.device.clone()),
            )?)),
            Backend::Gpu => Ok(Box::new(GpuEvaluator::new(
                system,
                self.gpu_options(self.device.clone()),
            )?)),
            Backend::GpuBatch { capacity } if ragged => Ok(Box::new(SparseBatchGpuEvaluator::new(
                system,
                *capacity,
                self.gpu_options(self.device.clone()),
            )?)),
            Backend::GpuBatch { capacity } => Ok(Box::new(BatchGpuEvaluator::new(
                system,
                *capacity,
                self.gpu_options(self.device.clone()),
            )?)),
            Backend::Cluster { devices, shard } => {
                let spec = ClusterSpec {
                    devices: devices.clone(),
                    shard: *shard,
                    per_device_capacity: self.per_device_capacity,
                    gather: self.gather,
                    base: self.gpu_options(self.device.clone()),
                    recovery: self.recovery,
                };
                self.provider.build(system, &spec)
            }
        }
    }

    /// Open a multi-system residency [`Session`] on this spec's device.
    /// Requires a single-device GPU backend ([`Backend::Gpu`] gets
    /// capacity 1, [`Backend::GpuBatch`] its capacity).
    pub fn session<R: Real>(&self) -> Result<Session<R>, BuildError> {
        self.validate()?;
        let capacity = match &self.backend {
            Backend::Gpu => 1,
            Backend::GpuBatch { capacity } => *capacity,
            Backend::CpuReference => {
                return Err(BuildError::SessionBackend {
                    backend: "cpu-reference",
                })
            }
            Backend::Cluster { .. } => {
                return Err(BuildError::SessionBackend { backend: "cluster" })
            }
        };
        Ok(Session::new(
            self.gpu_options(self.device.clone()),
            capacity,
        ))
    }
}

// ---------------------------------------------------------------------
// Multi-system residency
// ---------------------------------------------------------------------

/// Handle to a system resident in a [`Session`] (or in a cluster-level
/// session built on the same accounting, e.g.
/// `polygpu_cluster::ClusterSession`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemId(usize);

impl SystemId {
    /// Mint a handle from a raw resident index — for session
    /// implementations outside this crate. Handles are only meaningful
    /// against the session that issued them.
    pub fn new(index: usize) -> Self {
        SystemId(index)
    }

    /// The raw resident index this handle names.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One row of a session's residency table.
#[derive(Debug, Clone)]
pub struct ResidencyRow {
    pub label: String,
    pub monomials: usize,
    /// Constant-memory bytes this system's supports occupy.
    pub constant_bytes: usize,
    /// Modeled one-time setup cost (encode upload + coefficient upload
    /// + validation probe).
    pub setup_seconds: f64,
    /// Times this system was made active.
    pub activations: u64,
}

/// Modeled setup-cost accounting of a session, against the re-encoding
/// baseline (tearing the device state down and re-uploading the system
/// at every stage — what a run without residency pays).
#[derive(Debug, Clone, Copy)]
pub struct SessionAmortization {
    /// Homotopy stages executed (activations, including each system's
    /// first).
    pub stages: u64,
    /// Modeled seconds the session actually paid: one setup per
    /// resident system plus one switch per system change.
    pub session_seconds: f64,
    /// Modeled seconds the same stage sequence would pay re-encoding
    /// the active system at every stage.
    pub reencode_seconds: f64,
    /// Steady-state per-stage ratio: the *cheapest* resident system's
    /// full setup cost over the switch cost — what each stage saves
    /// once its system is resident. The acceptance bar is ≥ 5.
    pub steady_state_ratio: f64,
}

impl SessionAmortization {
    /// Cumulative ratio over the whole stage sequence (approaches the
    /// steady-state ratio as stages grow).
    pub fn cumulative_ratio(&self) -> f64 {
        if self.session_seconds > 0.0 {
            self.reencode_seconds / self.session_seconds
        } else {
            1.0
        }
    }
}

struct Resident<R: Real> {
    engine: BatchGpuEvaluator<R>,
    label: String,
    monomials: usize,
    constant_bytes: usize,
    setup_seconds: f64,
    activations: u64,
    /// The two constant-arena regions this system's encoding occupies —
    /// returned to the arena on [`Session::unload`].
    regions: (ConstId, ConstId),
}

/// Multi-system device residency: several encoded systems share one
/// device's constant memory, so successive homotopy stages switch
/// between them for a modeled command-queue round trip
/// ([`Session::switch_seconds`]) instead of re-paying the full setup
/// (supports upload, coefficient upload, validation probe).
///
/// The constant-memory budget is enforced **jointly**: loading a system
/// whose supports do not fit next to the already-resident ones fails
/// with the same typed error the paper's 2,048-monomial experiment
/// produces, and [`Session::constant_bytes_used`] reports the shared
/// arena's occupancy. Evaluation results are bit-identical to a
/// standalone engine of the same spec — residency is pure setup-cost
/// amortization.
pub struct Session<R: Real> {
    opts: GpuOptions,
    capacity: usize,
    /// The shared constant-memory arena (joint budget accounting).
    arena: ConstantMemory,
    /// Residency slots, indexed by [`SystemId`]; `None` = unloaded.
    /// Slots are never reused, so a stale id can only name an evicted
    /// system (a panic), never silently alias a different one.
    residents: Vec<Option<Resident<R>>>,
    active: Option<usize>,
    stages: u64,
    switches: u64,
    evictions: u64,
    session_seconds: f64,
    reencode_seconds: f64,
}

impl<R: Real> Session<R> {
    fn new(opts: GpuOptions, capacity: usize) -> Self {
        Session {
            arena: ConstantMemory::new(&opts.device),
            opts,
            capacity,
            residents: Vec::new(),
            active: None,
            stages: 0,
            switches: 0,
            evictions: 0,
            session_seconds: 0.0,
            reencode_seconds: 0.0,
        }
    }

    /// Modeled one-time setup cost of making `shape` resident: supports
    /// upload, coefficient upload, and the three-launch validation
    /// probe with its point/result transfers.
    fn modeled_setup_seconds(&self, shape: &UniformShape) -> f64 {
        let device = &self.opts.device;
        let elem = <Complex<R> as DeviceValue>::DEVICE_BYTES;
        let supports = EncodedSupports::bytes_needed(shape, self.opts.encoding);
        let coeffs = shape.total_monomials() * (shape.k + 1) * elem;
        transfer_seconds(device, supports)
            + transfer_seconds(device, coeffs)
            + 3.0 * device.launch_overhead
            + transfer_seconds(device, shape.n * elem)
            + transfer_seconds(device, shape.outputs() * elem)
    }

    /// Modeled cost of switching the active system: one command-queue
    /// round trip rebinding the kernels' constant-memory offsets —
    /// nothing is re-uploaded, because every resident system's
    /// supports already live in constant memory.
    pub fn switch_seconds(&self) -> f64 {
        self.opts.device.pcie_latency
    }

    /// Encode and upload `system` into the shared constant arena and
    /// assemble its engine, charging the modeled full setup cost once.
    /// Fails (typed) when the system does not fit the remaining
    /// constant-memory budget next to the already-resident systems.
    pub fn load(&mut self, label: &str, system: &System<R>) -> Result<SystemId, BuildError> {
        // Joint-budget check before touching the arena, so a rejected
        // load leaves no partial allocation behind.
        let shape = system.uniform_shape()?;
        let needed = EncodedSupports::bytes_needed(&shape, self.opts.encoding);
        if self.arena.used() + needed > self.arena.budget() {
            return Err(BuildError::Setup(SetupError::Encode(
                crate::layout::encoding::EncodeError::Constant(ConstantOverflow {
                    requested_total: self.arena.used() + needed,
                    budget: self.arena.budget(),
                }),
            )));
        }
        let enc = EncodedSupports::upload(system, &mut self.arena, self.opts.encoding)
            .map_err(|e| BuildError::Setup(SetupError::Encode(e)))?;
        let constant_bytes = enc.constant_bytes();
        let regions = enc.regions();
        // The engine snapshots the shared arena at its own load point;
        // its constant offsets are stable against later loads.
        let engine = BatchGpuEvaluator::from_encoded(
            system,
            enc,
            self.arena.clone(),
            self.capacity,
            self.opts.clone(),
        )?;
        let setup_seconds = self.modeled_setup_seconds(&shape);
        self.session_seconds += setup_seconds;
        self.residents.push(Some(Resident {
            engine,
            label: label.to_string(),
            monomials: shape.total_monomials(),
            constant_bytes,
            setup_seconds,
            activations: 0,
            regions,
        }));
        Ok(SystemId(self.residents.len() - 1))
    }

    /// Unload `id`: its constant-memory regions return to the shared
    /// arena (reusable by later loads) and its slot is cleared. The
    /// active system is deactivated if it was `id`. Returns `false`
    /// when `id` was already unloaded. Panics on an id this session
    /// never issued.
    pub fn unload(&mut self, id: SystemId) -> bool {
        let idx = id.0;
        assert!(idx < self.residents.len(), "unknown SystemId");
        let Some(r) = self.residents[idx].take() else {
            return false;
        };
        self.arena.free(r.regions.0);
        self.arena.free(r.regions.1);
        if self.active == Some(idx) {
            self.active = None;
        }
        self.evictions += 1;
        true
    }

    /// Whether `id` is still resident (not unloaded).
    pub fn is_resident(&self, id: SystemId) -> bool {
        self.residents.get(id.0).is_some_and(|r| r.is_some())
    }

    /// Unloads performed over the session's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Residency pressure: resident constant bytes over the device
    /// budget, in `[0, 1]`. A cache evicts when a prospective load
    /// would push this past `1`.
    pub fn residency_pressure(&self) -> f64 {
        if self.arena.budget() == 0 {
            return 0.0;
        }
        self.arena.used() as f64 / self.arena.budget() as f64
    }

    /// Make `id` the active system (one modeled command-queue round
    /// trip when it changes, free when it is already active) and
    /// borrow its evaluator for the stage. Every call is one "stage"
    /// in the amortization accounting.
    ///
    /// `id` must come from **this** session's [`Session::load`]
    /// (handles are not transferable between sessions); an id this
    /// session never issued is a caller bug and panics.
    pub fn activate(&mut self, id: SystemId) -> &mut dyn AnyEvaluator<R> {
        let idx = id.0;
        assert!(idx < self.residents.len(), "unknown SystemId");
        assert!(
            self.residents[idx].is_some(),
            "SystemId was unloaded from this session"
        );
        self.stages += 1;
        self.reencode_seconds += self.residents[idx]
            .as_ref()
            .expect("resident")
            .setup_seconds;
        if self.active != Some(idx) {
            if self.active.is_some() {
                self.switches += 1;
                self.session_seconds += self.switch_seconds();
            }
            self.active = Some(idx);
        }
        let r = self.residents[idx].as_mut().expect("resident");
        r.activations += 1;
        &mut r.engine
    }

    /// The active system's evaluator, if any (no stage is charged).
    pub fn active(&mut self) -> Option<&mut dyn AnyEvaluator<R>> {
        let idx = self.active?;
        let r = self.residents[idx].as_mut()?;
        Some(&mut r.engine as &mut dyn AnyEvaluator<R>)
    }

    /// Systems currently resident.
    pub fn resident_count(&self) -> usize {
        self.residents.iter().flatten().count()
    }

    /// Bytes of the shared constant arena in use (all residents).
    pub fn constant_bytes_used(&self) -> usize {
        self.arena.used()
    }

    /// The device's constant-memory budget.
    pub fn constant_budget(&self) -> usize {
        self.arena.budget()
    }

    /// The residency table (one row per resident system).
    pub fn residency(&self) -> Vec<ResidencyRow> {
        self.residents
            .iter()
            .flatten()
            .map(|r| ResidencyRow {
                label: r.label.clone(),
                monomials: r.monomials,
                constant_bytes: r.constant_bytes,
                setup_seconds: r.setup_seconds,
                activations: r.activations,
            })
            .collect()
    }

    /// Modeled setup-cost accounting against the re-encoding baseline.
    pub fn amortization(&self) -> SessionAmortization {
        let min_setup = self
            .residents
            .iter()
            .flatten()
            .map(|r| r.setup_seconds)
            .fold(f64::INFINITY, f64::min);
        let switch = self.switch_seconds();
        SessionAmortization {
            stages: self.stages,
            session_seconds: self.session_seconds,
            reencode_seconds: self.reencode_seconds,
            steady_state_ratio: if self.resident_count() == 0 || switch <= 0.0 {
                1.0
            } else {
                min_setup / switch
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{random_point, random_points, random_system, BenchmarkParams};

    fn params(n: usize, m: usize, k: usize, d: u16, seed: u64) -> BenchmarkParams {
        BenchmarkParams { n, m, k, d, seed }
    }

    /// `unwrap_err` without requiring `Debug` on the boxed evaluator.
    fn err_of<T>(r: Result<T, BuildError>) -> BuildError {
        match r {
            Ok(_) => panic!("expected a build error"),
            Err(e) => e,
        }
    }

    #[test]
    fn builder_validates_specs() {
        let sys = random_system::<f64>(&params(4, 3, 2, 2, 1));
        let err = err_of(
            Engine::builder()
                .backend(Backend::GpuBatch { capacity: 0 })
                .build(&sys),
        );
        assert!(matches!(err, BuildError::ZeroCapacity), "{err}");

        let err = err_of(
            Engine::builder()
                .backend(Backend::Cluster {
                    devices: vec![],
                    shard: ClusterPolicy::RoundRobin.into(),
                })
                .build(&sys),
        );
        assert!(matches!(err, BuildError::NoDevices), "{err}");

        let err = err_of(Engine::builder().block_dim(0).build(&sys));
        assert!(matches!(err, BuildError::BlockDim { got: 0, .. }), "{err}");
        let err = err_of(Engine::builder().block_dim(4096).build(&sys));
        assert!(
            matches!(
                err,
                BuildError::BlockDim {
                    got: 4096,
                    max: 1024
                }
            ),
            "{err}"
        );

        let err = err_of(
            Engine::builder()
                .overlap_chunks(0)
                .backend(Backend::GpuBatch { capacity: 4 })
                .build(&sys),
        );
        assert!(matches!(err, BuildError::ZeroOverlapChunks), "{err}");

        let err = err_of(
            Engine::builder()
                .backend(Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050()],
                    shard: ClusterPolicy::WorkStealing { chunk: 0 }.into(),
                })
                .build(&sys),
        );
        assert!(matches!(err, BuildError::ZeroStealChunk), "{err}");

        // The core builder has no cluster provider.
        let err = err_of(
            Engine::builder()
                .backend(Backend::Cluster {
                    devices: vec![DeviceSpec::tesla_c2050()],
                    shard: ShardMode::default(),
                })
                .build(&sys),
        );
        assert!(matches!(err, BuildError::ClusterUnavailable), "{err}");

        // Device-capacity failures surface as Setup errors.
        let big = random_system::<f64>(&params(32, 64, 16, 10, 3));
        let err = err_of(Engine::builder().build(&big));
        assert!(matches!(err, BuildError::Setup(_)), "{err}");
        // And every variant prints through Display + Error.
        let e: Box<dyn std::error::Error> = Box::new(err);
        assert!(e.to_string().contains("device setup"));
        assert!(e.source().is_some());
    }

    #[test]
    fn backends_are_bit_identical_through_one_spec() {
        let prm = params(8, 4, 3, 2, 5);
        let sys = random_system::<f64>(&prm);
        let points = random_points::<f64>(8, 6, 11);
        let builder = Engine::builder();
        let mut engines: Vec<Box<dyn AnyEvaluator<f64>>> = vec![
            builder
                .clone()
                .backend(Backend::CpuReference)
                .build(&sys)
                .unwrap(),
            builder.clone().backend(Backend::Gpu).build(&sys).unwrap(),
            builder
                .clone()
                .backend(Backend::GpuBatch { capacity: 6 })
                .build(&sys)
                .unwrap(),
        ];
        let want = engines[0].try_evaluate_batch(&points).unwrap();
        for engine in engines.iter_mut().skip(1) {
            let got = engine.try_evaluate_batch(&points).unwrap();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                let name = engine.caps().backend;
                assert_eq!(g.values, w.values, "{name}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "{name}, point {i}"
                );
            }
        }
    }

    #[test]
    fn trait_reports_caps_stats_and_typed_errors() {
        let sys = random_system::<f64>(&params(6, 3, 2, 2, 9));
        let mut engine: Box<dyn AnyEvaluator<f64>> = Engine::builder()
            .backend(Backend::GpuBatch { capacity: 4 })
            .build(&sys)
            .unwrap();
        assert_eq!(engine.caps().backend, "gpu-batch");
        assert_eq!(engine.caps().capacity, 4);
        assert_eq!(engine.max_batch(), 4);
        assert!(engine.caps().batched);
        assert!(engine.caps().constant_bytes > 0);

        let points = random_points::<f64>(6, 5, 3);
        assert!(matches!(
            AnyEvaluator::try_evaluate_batch(&mut *engine, &points),
            Err(BatchError::CapacityExceeded { .. })
        ));
        assert!(matches!(
            AnyEvaluator::try_evaluate_batch(&mut *engine, &[]),
            Err(BatchError::Empty)
        ));
        let ok = AnyEvaluator::try_evaluate_batch(&mut *engine, &points[..4]).unwrap();
        assert_eq!(ok.len(), 4);
        assert_eq!(engine.engine_stats().evaluations, 4);
        engine.reset_engine_stats();
        assert_eq!(engine.engine_stats().evaluations, 0);

        // The CPU engine reports through the same surface.
        let mut cpu: Box<dyn AnyEvaluator<f64>> = Engine::builder()
            .backend(Backend::CpuReference)
            .build(&sys)
            .unwrap();
        assert_eq!(cpu.caps().devices, 0);
        let _ = cpu.evaluate(&points[0]);
        assert_eq!(cpu.engine_stats().evaluations, 1);
        assert!(matches!(
            AnyEvaluator::try_evaluate_batch(&mut *cpu, &[vec![]]),
            Err(BatchError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dd_engine_from_the_same_spec() {
        use polygpu_qd::Dd;
        let prm = params(6, 3, 3, 3, 13);
        let sys = random_system::<f64>(&prm);
        let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
        let mut f64_engine = builder.build(&sys).unwrap();
        let mut dd_engine = builder.build(&sys.convert::<Dd>()).unwrap();
        let x = random_point::<f64>(6, 3);
        let x_dd: Vec<Complex<Dd>> = x.iter().map(|z| z.convert()).collect();
        let a = f64_engine.evaluate(&x);
        let b = dd_engine.evaluate(&x_dd);
        // The dd run refines the f64 run: equal after rounding back.
        for (va, vb) in a.values.iter().zip(&b.values) {
            let vb64: Complex<f64> = Complex::from_f64(vb.re.to_f64(), vb.im.to_f64());
            assert!((*va - vb64).abs() < 1e-12);
        }
    }

    #[test]
    fn session_switches_cheaper_than_reencoding() {
        let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
        let mut session = builder.session::<f64>().unwrap();
        let sys_a = random_system::<f64>(&params(8, 4, 3, 2, 1));
        let sys_b = random_system::<f64>(&params(8, 6, 4, 3, 2));
        let sys_c = random_system::<f64>(&params(8, 3, 2, 2, 3));
        let a = session.load("stage-a", &sys_a).unwrap();
        let b = session.load("stage-b", &sys_b).unwrap();
        let c = session.load("stage-c", &sys_c).unwrap();
        assert_eq!(session.resident_count(), 3);
        let expected_bytes: usize = session.residency().iter().map(|r| r.constant_bytes).sum();
        assert_eq!(session.constant_bytes_used(), expected_bytes);
        assert!(session.constant_bytes_used() <= session.constant_budget());

        // Drive four rounds of three homotopy stages.
        let points = random_points::<f64>(8, 4, 7);
        for _ in 0..4 {
            for id in [a, b, c] {
                let engine = session.activate(id);
                let evals = engine.try_evaluate_batch(&points).unwrap();
                assert_eq!(evals.len(), 4);
            }
        }
        let am = session.amortization();
        assert_eq!(am.stages, 12);
        // The acceptance bar: once resident, a stage costs >= 5x less
        // than re-encoding its system.
        assert!(
            am.steady_state_ratio >= 5.0,
            "steady-state amortization too weak: {:.2}x",
            am.steady_state_ratio
        );
        assert!(am.cumulative_ratio() > 1.0, "{am:?}");
        assert!(am.reencode_seconds > am.session_seconds);

        // Residency is bit-identical to a standalone engine of the
        // same spec, even after switching back and forth.
        let mut standalone = builder.build(&sys_b).unwrap();
        let want = standalone.try_evaluate_batch(&points).unwrap();
        let got = session.activate(b).try_evaluate_batch(&points).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.values, w.values);
            assert_eq!(g.jacobian.as_slice(), w.jacobian.as_slice());
        }
        // A resident engine reports its *own* constant footprint, not
        // the whole shared arena it snapshot.
        let row_b_bytes = session.residency()[1].constant_bytes;
        assert_eq!(session.activate(b).caps().constant_bytes, row_b_bytes);
    }

    #[test]
    fn session_enforces_joint_constant_budget() {
        let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 2 });
        let mut session = builder.session::<f64>().unwrap();
        // One 1,536-monomial k = 16 system fits (Table 2's largest
        // point)…
        let big = random_system::<f64>(&params(32, 48, 16, 10, 1));
        session.load("big", &big).unwrap();
        // …but a second one next to it exceeds the shared budget, with
        // the same typed error the paper's 2,048-monomial wall hits.
        let err = match session.load("too-much", &big) {
            Ok(_) => panic!("two 1,536-monomial systems cannot co-reside"),
            Err(e) => e,
        };
        assert!(
            matches!(
                err,
                BuildError::Setup(SetupError::Encode(
                    crate::layout::encoding::EncodeError::Constant(_)
                ))
            ),
            "{err}"
        );
        // The failed load costs nothing and leaves the session usable.
        assert_eq!(session.resident_count(), 1);
        let x = random_point::<f64>(32, 5);
        let id = SystemId(0);
        let _ = session.activate(id).evaluate(&x);
    }

    #[test]
    fn session_requires_a_gpu_backend() {
        let err = match Engine::builder()
            .backend(Backend::CpuReference)
            .session::<f64>()
        {
            Ok(_) => panic!("cpu backend must not open a session"),
            Err(e) => e,
        };
        assert!(matches!(err, BuildError::SessionBackend { .. }), "{err}");
    }
}
