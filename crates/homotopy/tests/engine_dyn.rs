//! Object safety of the unified engine surface: every homotopy driver
//! (`newton`, `track`, `track_lockstep`, `track_queue`) accepts
//! `&mut dyn AnyEvaluator<R>` / `Box<dyn AnyEvaluator<R>>` built by
//! `Engine::builder()`, and the trajectories are **bit-identical** to
//! the concrete-type runs the drivers were originally written against.

use polygpu_complex::C64;
use polygpu_core::engine::{AnyEvaluator, Backend, Engine};
use polygpu_homotopy::lockstep::{track_lockstep, BatchHomotopy};
use polygpu_homotopy::newton::{newton, NewtonParams};
use polygpu_homotopy::queue::track_queue;
use polygpu_homotopy::start::StartSystem;
use polygpu_homotopy::tracker::{track, TrackParams};
use polygpu_homotopy::Homotopy;
use polygpu_polysys::{random_point, random_system, AdEvaluator, BenchmarkParams, System};

fn fixture() -> (System<f64>, StartSystem, Vec<Vec<C64>>) {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    };
    let sys = random_system::<f64>(&params);
    let start = StartSystem::uniform(2, 2);
    let starts: Vec<Vec<C64>> = (0..4u128).map(|i| start.solution_by_index(i)).collect();
    (sys, start, starts)
}

/// `newton` over `&mut dyn AnyEvaluator<f64>`: identical iterates to
/// the concrete CPU evaluator.
#[test]
fn newton_accepts_dyn_any_evaluator() {
    let params = BenchmarkParams {
        n: 8,
        m: 4,
        k: 3,
        d: 2,
        seed: 11,
    };
    let sys = random_system::<f64>(&params);
    let x0 = random_point::<f64>(8, 5);
    let np = NewtonParams {
        max_iters: 4,
        ..Default::default()
    };
    let mut want_eval = AdEvaluator::new(sys.clone()).unwrap();
    let want = newton(&mut want_eval, &x0, np);
    for backend in [
        Backend::CpuReference,
        Backend::Gpu,
        Backend::GpuBatch { capacity: 4 },
    ] {
        let mut engine = Engine::builder().backend(backend).build(&sys).unwrap();
        let dyn_ref: &mut dyn AnyEvaluator<f64> = &mut *engine;
        let got = newton(dyn_ref, &x0, np);
        let name = engine.caps().backend;
        assert_eq!(got.x, want.x, "iterates, backend {name}");
        assert_eq!(got.residuals, want.residuals, "residuals, backend {name}");
        assert_eq!(got.stop, want.stop, "stop, backend {name}");
    }
}

/// `track` with a boxed engine as the homotopy target endpoint.
#[test]
fn track_accepts_boxed_engines() {
    let (sys, start, starts) = fixture();
    let params = TrackParams::default();
    let mut want_h =
        Homotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys.clone()).unwrap(), 7);
    let want = track(&mut want_h, &starts[0], params);
    for backend in [
        Backend::CpuReference,
        Backend::Gpu,
        Backend::GpuBatch { capacity: 4 },
    ] {
        let engine: Box<dyn AnyEvaluator<f64>> =
            Engine::builder().backend(backend).build(&sys).unwrap();
        let mut h = Homotopy::with_random_gamma(start.clone(), engine, 7);
        let got = track(&mut h, &starts[0], params);
        assert_eq!(got.outcome, want.outcome);
        assert_eq!(got.end().x, want.end().x, "bit-identical endpoint");
        assert_eq!(got.corrector_iterations, want.corrector_iterations);
    }
}

/// `track_lockstep` and `track_queue` with `&mut dyn AnyEvaluator`
/// endpoints in the batch homotopy — through the batched GPU backend,
/// bit-identical to the CPU reference run.
#[test]
fn multi_path_drivers_accept_dyn_endpoints() {
    let (sys, start, starts) = fixture();
    let params = TrackParams::default();

    let mut cpu_h =
        BatchHomotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys.clone()).unwrap(), 7);
    let want_lockstep = track_lockstep(&mut cpu_h, &starts, params);
    let mut cpu_h2 =
        BatchHomotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys.clone()).unwrap(), 7);
    let want_queue = track_queue(&mut cpu_h2, &starts, params, 3);

    for backend in [Backend::CpuReference, Backend::GpuBatch { capacity: 8 }] {
        let mut engine = Engine::builder()
            .backend(backend.clone())
            .build(&sys)
            .unwrap();
        {
            let dyn_f: &mut dyn AnyEvaluator<f64> = &mut *engine;
            let mut h = BatchHomotopy::with_random_gamma(start.clone(), dyn_f, 7);
            let got = track_lockstep(&mut h, &starts, params);
            for (i, (g, w)) in got.paths.iter().zip(&want_lockstep.paths).enumerate() {
                assert_eq!(g.outcome, w.outcome, "lockstep path {i}");
                assert_eq!(g.x, w.x, "lockstep endpoint {i}");
            }
            assert_eq!(got.rounds, want_lockstep.rounds);
        }
        engine.reset_engine_stats();
        {
            let dyn_f: &mut dyn AnyEvaluator<f64> = &mut *engine;
            let mut h = BatchHomotopy::with_random_gamma(start.clone(), dyn_f, 7);
            let got = track_queue(&mut h, &starts, params, 3);
            for (i, (g, w)) in got.paths.iter().zip(&want_queue.paths).enumerate() {
                assert_eq!(g.outcome, w.outcome, "queue path {i}");
                assert_eq!(g.x, w.x, "queue endpoint {i}");
                assert_eq!(g.t, w.t, "queue final t {i}");
            }
            assert_eq!(got.stats.steps_accepted, want_queue.stats.steps_accepted);
            assert_eq!(
                got.stats.corrector_iterations,
                want_queue.stats.corrector_iterations
            );
        }
        // The engine really did the work through the trait object.
        assert!(engine.engine_stats().evaluations > 0);
    }
}
