//! Lockstep tracking against the batched GPU engine: the whole
//! multi-path trajectory must be bit-for-bit the trajectory obtained
//! with the CPU reference evaluator, because the batched pipeline is
//! bit-exact per point and the lockstep driver is deterministic.

use polygpu_complex::C64;
use polygpu_core::pipeline::GpuOptions;
use polygpu_core::BatchGpuEvaluator;
use polygpu_homotopy::lockstep::{
    newton_batch, newton_batch_counted, track_lockstep, BatchHomotopy,
};
use polygpu_homotopy::newton::NewtonParams;
use polygpu_homotopy::start::StartSystem;
use polygpu_homotopy::tracker::TrackParams;
use polygpu_polysys::{random_points, random_system, AdEvaluator, BenchmarkParams};

fn fixture() -> (polygpu_polysys::System<f64>, StartSystem, Vec<Vec<C64>>) {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 3,
    };
    let sys = random_system::<f64>(&params);
    let start = StartSystem::uniform(2, 2);
    let starts: Vec<Vec<C64>> = (0..4u128).map(|i| start.solution_by_index(i)).collect();
    (sys, start, starts)
}

#[test]
fn lockstep_gpu_trajectories_equal_cpu_trajectories_bitwise() {
    let (sys, start, starts) = fixture();
    let params = TrackParams::default();

    let gpu = BatchGpuEvaluator::new(&sys, starts.len(), GpuOptions::default()).unwrap();
    let mut h_gpu = BatchHomotopy::with_random_gamma(start.clone(), gpu, 7);
    let r_gpu = track_lockstep(&mut h_gpu, &starts, params);

    let cpu = AdEvaluator::new(sys).unwrap();
    let mut h_cpu = BatchHomotopy::with_random_gamma(start, cpu, 7);
    let r_cpu = track_lockstep(&mut h_cpu, &starts, params);

    assert_eq!(r_gpu.rounds, r_cpu.rounds);
    assert_eq!(r_gpu.steps_accepted, r_cpu.steps_accepted);
    assert_eq!(r_gpu.steps_rejected, r_cpu.steps_rejected);
    assert_eq!(r_gpu.corrector_iterations, r_cpu.corrector_iterations);
    for (i, (a, b)) in r_gpu.paths.iter().zip(&r_cpu.paths).enumerate() {
        assert_eq!(a.outcome, b.outcome, "outcome, path {i}");
        assert_eq!(a.t, b.t, "final t, path {i}");
        assert_eq!(a.x, b.x, "endpoint must be bit-identical, path {i}");
    }

    // The batched engine amortized its round trips: far fewer batches
    // than evaluations.
    let stats = h_gpu.f.stats();
    assert!(stats.batches > 0);
    assert!(
        stats.evaluations > stats.batches,
        "batching never amortized: {} evaluations in {} batches",
        stats.evaluations,
        stats.batches
    );
    assert!(stats.throughput_evals_per_sec() > 0.0);
}

#[test]
fn gpu_newton_batch_corrector_matches_cpu() {
    let params = BenchmarkParams {
        n: 8,
        m: 5,
        k: 3,
        d: 2,
        seed: 21,
    };
    let sys = random_system::<f64>(&params);
    let starts = random_points::<f64>(8, 6, 13);
    let np = NewtonParams {
        max_iters: 4,
        ..Default::default()
    };
    let mut gpu = BatchGpuEvaluator::new(&sys, 6, GpuOptions::default()).unwrap();
    let mut cpu = AdEvaluator::new(sys.clone()).unwrap();
    let a = newton_batch(&mut gpu, &starts, np);
    let b = newton_batch(&mut cpu, &starts, np);
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ra.x, rb.x, "path {i}");
        assert_eq!(ra.residuals, rb.residuals, "path {i}");
        assert_eq!(ra.stop, rb.stop, "path {i}");
    }

    // A capacity smaller than the front: results are unchanged (the
    // batch is chunked) and the round-trip counter reflects the
    // chunking — two device batches per lockstep iteration here.
    let mut small = BatchGpuEvaluator::new(&sys, 3, GpuOptions::default()).unwrap();
    let mut rounds = 0usize;
    let c = newton_batch_counted(&mut small, &starts, np, &mut rounds);
    let max_iter_rounds = c.iter().map(|r| r.residuals.len()).max().unwrap();
    for (i, (rc, rb)) in c.iter().zip(&b).enumerate() {
        assert_eq!(rc.x, rb.x, "chunked path {i}");
        assert_eq!(rc.residuals, rb.residuals, "chunked path {i}");
    }
    assert!(
        rounds >= 2 * max_iter_rounds,
        "chunked corrector must count one round trip per chunk: {rounds} rounds for {max_iter_rounds} iterations"
    );
    assert_eq!(rounds, small.stats().batches as usize);
}
