//! Device-resident corrector drivers: the Newton loop without the
//! per-iteration round trip.
//!
//! The host-mode schedulers download every corrector iteration's
//! values and Jacobians, solve on the host, and upload the updated
//! iterates — O(P·n²) modeled traffic per iteration. The drivers here
//! instead hand the whole corrector to the engine's fused
//! [`try_correct_batch`](AnyEvaluator::try_correct_batch) (evaluate →
//! factor → solve → update, all resident), so the per-iteration
//! download shrinks to the O(P) convergence-flag/residual vector.
//!
//! The homotopy combination `H(x, t) = γ(1−t)·G(x) + t·F(x)` is folded
//! into the fused loop through a [`HomotopyCombine`]: the engine
//! evaluates the target `F` (the expensive, modeled part), and the
//! analytic start system `G` is combined in with arithmetic identical
//! to [`BatchHomotopy::eval_batch_at`](crate::lockstep::BatchHomotopy) —
//! so endpoints are **bit-identical** to the host-mode corrector; only
//! the modeled transfer traffic differs.

use crate::fallible::{retry_round, FaultReport, TryBatchEvaluator};
use crate::lu::lu_decompose;
use crate::newton::{NewtonParams, NewtonResult, StopReason};
use crate::queue::{PathQueue, QueueResult, QueueStats};
use crate::tracker::{PathPoint, TrackOutcome, TrackParams, TrackResult};
use polygpu_complex::{Complex, Real};
use polygpu_core::engine::{AnyEvaluator, EngineCaps};
use polygpu_core::{
    BatchError, CombineMap, CorrectParams, CorrectStatus, CorrectStop, RecoveryPolicy,
};
use polygpu_obs::{MetaValue, SpanKind, TraceSink};
use polygpu_polysys::{SystemEval, SystemEvaluator};

use crate::lockstep::{BatchHomotopy, LockstepPath};

/// The engine surface the resident drivers need beyond batched
/// evaluation: capability introspection and the fused corrector. Both
/// engine handle shapes the callers hold qualify — the solver's owned
/// `Box<dyn AnyEvaluator>` and the serve layer's reborrowed
/// `&mut dyn AnyEvaluator` into a resident fleet.
pub trait ResidentEngine<R: Real>: TryBatchEvaluator<R> {
    fn engine_caps(&self) -> EngineCaps;
    fn try_correct_fused(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError>;
}

impl<R: Real> ResidentEngine<R> for Box<dyn AnyEvaluator<R>> {
    fn engine_caps(&self) -> EngineCaps {
        self.as_ref().caps()
    }

    fn try_correct_fused(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        self.as_mut().try_correct_batch(points, combine, params)
    }
}

impl<R: Real> ResidentEngine<R> for &mut dyn AnyEvaluator<R> {
    fn engine_caps(&self) -> EngineCaps {
        (**self).caps()
    }

    fn try_correct_fused(
        &mut self,
        points: &mut [Vec<Complex<R>>],
        combine: &mut dyn CombineMap<R>,
        params: &CorrectParams,
    ) -> Result<Vec<CorrectStatus>, BatchError> {
        (**self).try_correct_batch(points, combine, params)
    }
}

/// Folds the analytic start system into the engine's fused corrector:
/// the engine evaluates `F` resident; this map turns each raw
/// `F`-evaluation into the homotopy evaluation `H(·, t)` at that
/// point's `t`, with per-element arithmetic identical to
/// [`BatchHomotopy::combine`](crate::lockstep::BatchHomotopy) — the
/// basis of the host/device bit-identity contract.
pub struct HomotopyCombine<'a, R: Real, G: SystemEvaluator<R>> {
    /// The start system `G`, evaluated analytically on the host (free
    /// in the cost model, exactly as in the host-mode drivers).
    pub g: &'a mut G,
    pub gamma: Complex<R>,
    /// One `t` per point of the fused call, indexed by batch position.
    pub ts: &'a [R],
}

impl<R: Real, G: SystemEvaluator<R>> CombineMap<R> for HomotopyCombine<'_, R, G> {
    fn apply(&mut self, index: usize, x: &[Complex<R>], eval: &mut SystemEval<R>) {
        let t = self.ts[index];
        let ge = self.g.evaluate(x);
        let one_minus_t = R::one() - t;
        let gscale = self.gamma.scale(one_minus_t);
        let n = eval.values.len();
        for i in 0..n {
            eval.values[i] = gscale * ge.values[i] + eval.values[i].scale(t);
        }
        for i in 0..n {
            for j in 0..n {
                eval.jacobian[(i, j)] =
                    gscale * ge.jacobian[(i, j)] + eval.jacobian[(i, j)].scale(t);
            }
        }
    }
}

/// The corrector tolerances in the engine's shape.
pub fn correct_params(p: &NewtonParams) -> CorrectParams {
    CorrectParams {
        residual_tol: p.residual_tol,
        step_tol: p.step_tol,
        step_tol_relax: p.step_tol_relax,
        max_iters: p.max_iters,
    }
}

/// A fused-corrector verdict in the host corrector's result shape
/// (`x` is the committed iterate the engine handed back).
pub fn status_to_newton<R: Real>(x: Vec<Complex<R>>, s: CorrectStatus) -> NewtonResult<R> {
    NewtonResult {
        x,
        converged: s.converged,
        iterations: s.iterations,
        residuals: s.residuals,
        last_step: s.last_step,
        stop: match s.stop {
            CorrectStop::ResidualTol => StopReason::ResidualTol,
            CorrectStop::StepTol => StopReason::StepTol,
            CorrectStop::MaxIters => StopReason::MaxIters,
            CorrectStop::Singular => StopReason::SingularJacobian,
        },
    }
}

/// Run the engine's fused corrector over `points` at per-point `ts`,
/// chunked by the engine's batch capacity, with round-level fault
/// retry. Each chunk commits its iterates only on success, so a retry
/// replays the faulted chunk bit for bit; chunks already committed are
/// never re-run. `batch_rounds` counts fused calls issued (including
/// retried attempts, matching the host drivers' convention).
pub fn correct_resident<R, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    points: &mut [Vec<Complex<R>>],
    ts: &[R],
    corrector: &NewtonParams,
    batch_rounds: &mut usize,
    recovery: &RecoveryPolicy,
    fault: &mut FaultReport,
) -> Result<Vec<CorrectStatus>, BatchError>
where
    R: Real,
    EG: TryBatchEvaluator<R> + SystemEvaluator<R>,
    EF: ResidentEngine<R>,
{
    assert_eq!(points.len(), ts.len(), "one t per point");
    let cparams = correct_params(corrector);
    let cap = h.f.engine_caps().capacity.max(1);
    let gamma = h.gamma;
    let mut out = Vec::with_capacity(points.len());
    let mut base = 0usize;
    while base < points.len() {
        let end = (base + cap).min(points.len());
        let g = &mut h.g;
        let f = &mut h.f;
        let mut combine = HomotopyCombine {
            g,
            gamma,
            ts: &ts[base..end],
        };
        let chunk = &mut points[base..end];
        let statuses = retry_round(recovery, fault, || {
            *batch_rounds += 1;
            f.try_correct_fused(chunk, &mut combine, &cparams)
        })?;
        out.extend(statuses);
        base = end;
    }
    Ok(out)
}

/// [`crate::tracker::track`] with the corrector fused on the engine:
/// the predictor is the usual host-side Euler solve (one batched
/// evaluation of one point), the corrector one fused
/// [`correct_resident`] call per attempt. Control flow and arithmetic
/// replicate `track` exactly, so the endpoint is bit-identical to the
/// host tracker's; only the modeled transfer traffic differs.
pub fn track_resident<R, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    x0: &[Complex<R>],
    params: &TrackParams,
    batch_rounds: &mut usize,
    recovery: &RecoveryPolicy,
    fault: &mut FaultReport,
) -> Result<TrackResult<R>, BatchError>
where
    R: Real,
    EG: TryBatchEvaluator<R> + SystemEvaluator<R>,
    EF: ResidentEngine<R>,
{
    let mut points = vec![PathPoint {
        t: 0.0,
        x: x0.to_vec(),
    }];
    let mut x = x0.to_vec();
    let mut t = 0.0f64;
    let mut dt = params.initial_dt;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut corrector_iters = 0usize;

    let done = |outcome, points, accepted, rejected, corrector_iters| TrackResult {
        outcome,
        points,
        steps_accepted: accepted,
        steps_rejected: rejected,
        corrector_iterations: corrector_iters,
    };

    for _ in 0..params.max_steps {
        if t >= 1.0 {
            return Ok(done(
                TrackOutcome::Success,
                points,
                accepted,
                rejected,
                corrector_iters,
            ));
        }
        let dt_clamped = dt.min(1.0 - t);
        // Euler predictor: J_H dx = -dH/dt, x_pred = x + dx * dt.
        let (eval, dt_vec) = {
            let xs = std::slice::from_ref(&x);
            retry_round(recovery, fault, || {
                *batch_rounds += 1;
                h.try_eval_batch_at(xs, R::from_f64(t))
            })?
            .pop()
            .expect("batch of one returns one result")
        };
        let rhs: Vec<Complex<R>> = dt_vec.iter().map(|v| -*v).collect();
        let dxdt = match lu_decompose(eval.jacobian).and_then(|lu| lu.solve(&rhs)) {
            Ok(d) => d,
            Err(_) => {
                return Ok(done(
                    TrackOutcome::SingularJacobian {
                        at_t: format!("{t:.6}"),
                    },
                    points,
                    accepted,
                    rejected,
                    corrector_iters,
                ))
            }
        };
        let x_pred: Vec<Complex<R>> = x
            .iter()
            .zip(&dxdt)
            .map(|(xi, di)| *xi + di.scale(R::from_f64(dt_clamped)))
            .collect();
        // Fused Newton corrector at t + dt.
        let t_new = t + dt_clamped;
        let mut pred = [x_pred];
        let status = correct_resident(
            h,
            &mut pred,
            &[R::from_f64(t_new)],
            &params.corrector,
            batch_rounds,
            recovery,
            fault,
        )?
        .pop()
        .expect("batch of one returns one status");
        let [corrected] = pred;
        corrector_iters += status.iterations;
        if status.converged {
            x = corrected;
            t = t_new;
            points.push(PathPoint { t, x: x.clone() });
            accepted += 1;
            if status.iterations <= params.easy_iters {
                dt = (dt * params.grow).min(params.max_dt);
            }
        } else {
            rejected += 1;
            dt *= 0.5;
            if dt < params.min_dt {
                return Ok(done(
                    TrackOutcome::StepUnderflow {
                        at_t: format!("{t:.6}"),
                    },
                    points,
                    accepted,
                    rejected,
                    corrector_iters,
                ));
            }
        }
    }
    Ok(done(
        TrackOutcome::StepLimit,
        points,
        accepted,
        rejected,
        corrector_iters,
    ))
}

/// One queue slot of [`track_queue_resident`]: a path with its own `t`
/// and adaptive step size, exactly the per-path tracker's state.
struct ResidentSlot<R> {
    path: usize,
    x: Vec<Complex<R>>,
    t: f64,
    dt: f64,
    attempts: usize,
}

/// [`crate::queue::track_queue`] with the corrector fused on the
/// engine: a refilling slot front where each round runs **one** batched
/// predictor over the occupied slots and **one** fused corrector call
/// over their predicted points (each at its own `t`), instead of one
/// host round trip per Newton iteration. Per path, control flow and
/// arithmetic replicate [`crate::tracker::track`] exactly, so the
/// endpoints are bit-identical to the host queue scheduler's — the
/// round structure (and with it the occupancy statistics) legitimately
/// differs, because a whole corrector run now fits in one round.
pub fn track_queue_resident<R, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    slots: usize,
    recovery: &RecoveryPolicy,
    trace: &TraceSink,
) -> Result<(QueueResult<R>, FaultReport), BatchError>
where
    R: Real,
    EG: TryBatchEvaluator<R> + SystemEvaluator<R>,
    EF: ResidentEngine<R>,
{
    let mut fault = FaultReport::default();
    let n_paths = starts.len();
    let slots = slots.max(1).min(n_paths.max(1));
    let mut queue = PathQueue::from_starts(starts);
    let mut front: Vec<Option<ResidentSlot<R>>> = (0..slots)
        .map(|_| {
            queue.pop().map(|(i, x0)| ResidentSlot {
                path: i,
                x: x0,
                t: 0.0,
                dt: params.initial_dt,
                attempts: 0,
            })
        })
        .collect();
    let mut results: Vec<Option<LockstepPath<R>>> = (0..n_paths).map(|_| None).collect();

    let mut rounds = 0usize;
    let mut batch_rounds = 0usize;
    let mut refills = 0usize;
    let mut point_rounds = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut corrector_iters = 0usize;

    loop {
        let occupied: Vec<usize> = (0..slots).filter(|&s| front[s].is_some()).collect();
        if occupied.is_empty() {
            break;
        }
        rounds += 1;
        point_rounds += occupied.len();
        let wall0 = h.f.modeled_wall_seconds() + fault.backoff_seconds;
        let retried0 = fault.retried_rounds;
        let backoff0 = fault.backoff_seconds;

        // Batched Euler predictor at each slot's own (x, t).
        let mut points: Vec<Vec<Complex<R>>> = Vec::with_capacity(occupied.len());
        let mut ts: Vec<R> = Vec::with_capacity(occupied.len());
        for &s in &occupied {
            let slot = front[s].as_ref().expect("occupied");
            points.push(slot.x.clone());
            ts.push(R::from_f64(slot.t));
        }
        let cap = h.max_batch().max(1);
        let hev = retry_round(recovery, &mut fault, || {
            let mut hev = Vec::with_capacity(points.len());
            let mut base = 0usize;
            while base < points.len() {
                let end = (base + cap).min(points.len());
                batch_rounds += 1;
                hev.extend(h.try_eval_batch_at_each(&points[base..end], &ts[base..end])?);
                base = end;
            }
            Ok(hev)
        })?;

        // Predict; a singular Jacobian retires the path, as in `track`.
        let mut attempt_slots: Vec<usize> = Vec::with_capacity(occupied.len());
        let mut preds: Vec<Vec<Complex<R>>> = Vec::with_capacity(occupied.len());
        let mut ts_new: Vec<R> = Vec::with_capacity(occupied.len());
        let mut dts_clamped: Vec<f64> = Vec::with_capacity(occupied.len());
        for (&s, (eval, dt_vec)) in occupied.iter().zip(hev) {
            let slot = front[s].as_mut().expect("occupied");
            let dt_clamped = slot.dt.min(1.0 - slot.t);
            let t_new = slot.t + dt_clamped;
            let rhs: Vec<Complex<R>> = dt_vec.iter().map(|v| -*v).collect();
            match lu_decompose(eval.jacobian).and_then(|lu| lu.solve(&rhs)) {
                Ok(dxdt) => {
                    preds.push(
                        slot.x
                            .iter()
                            .zip(&dxdt)
                            .map(|(xi, di)| *xi + di.scale(R::from_f64(dt_clamped)))
                            .collect(),
                    );
                    attempt_slots.push(s);
                    ts_new.push(R::from_f64(t_new));
                    dts_clamped.push(dt_clamped);
                }
                Err(_) => {
                    results[slot.path] = Some(LockstepPath {
                        outcome: TrackOutcome::SingularJacobian {
                            at_t: format!("{:.6}", slot.t),
                        },
                        x: std::mem::take(&mut slot.x),
                        t: slot.t,
                    });
                    front[s] = None;
                }
            }
        }

        // One fused corrector call for every surviving attempt, each
        // point at its own t_new.
        let statuses = correct_resident(
            h,
            &mut preds,
            &ts_new,
            &params.corrector,
            &mut batch_rounds,
            recovery,
            &mut fault,
        )?;

        if trace.enabled() {
            let retried = fault.retried_rounds - retried0;
            let backoff = fault.backoff_seconds - backoff0;
            if retried > 0 {
                trace.emit(
                    SpanKind::Retry,
                    wall0,
                    0.0,
                    3,
                    &[("attempts", MetaValue::U64(retried))],
                );
            }
            if backoff > 0.0 {
                trace.emit(SpanKind::Backoff, wall0, backoff, 3, &[]);
            }
            let wall1 = h.f.modeled_wall_seconds() + fault.backoff_seconds;
            trace.emit(
                SpanKind::Round,
                wall0,
                wall1 - wall0,
                2,
                &[
                    ("round", MetaValue::U64(rounds as u64 - 1)),
                    ("slots", MetaValue::U64(occupied.len() as u64)),
                ],
            );
        }

        // Verdicts: exactly `track`'s post-corrector step control.
        for (((s, y), status), &dt_clamped) in attempt_slots
            .into_iter()
            .zip(preds)
            .zip(&statuses)
            .zip(&dts_clamped)
        {
            let slot = front[s].as_mut().expect("occupied");
            corrector_iters += status.iterations;
            if status.converged {
                slot.x = y;
                slot.t += dt_clamped;
                accepted += 1;
                if status.iterations <= params.easy_iters {
                    slot.dt = (slot.dt * params.grow).min(params.max_dt);
                }
            } else {
                rejected += 1;
                slot.dt *= 0.5;
            }
            slot.attempts += 1;
            let outcome = if !status.converged && slot.dt < params.min_dt {
                Some(TrackOutcome::StepUnderflow {
                    at_t: format!("{:.6}", slot.t),
                })
            } else if slot.t >= 1.0 {
                Some(if slot.attempts < params.max_steps {
                    TrackOutcome::Success
                } else {
                    TrackOutcome::StepLimit
                })
            } else if slot.attempts >= params.max_steps {
                Some(TrackOutcome::StepLimit)
            } else {
                None
            };
            if let Some(outcome) = outcome {
                results[slot.path] = Some(LockstepPath {
                    outcome,
                    x: std::mem::take(&mut slot.x),
                    t: slot.t,
                });
                front[s] = None;
            }
        }

        // Refill freed slots so the next round runs at full occupancy.
        for slot in front.iter_mut() {
            if slot.is_none() {
                if let Some((i, x0)) = queue.pop() {
                    *slot = Some(ResidentSlot {
                        path: i,
                        x: x0,
                        t: 0.0,
                        dt: params.initial_dt,
                        attempts: 0,
                    });
                    refills += 1;
                }
            }
        }
    }

    Ok((
        QueueResult {
            paths: results
                .into_iter()
                .map(|p| p.expect("every queued path retires with an outcome"))
                .collect(),
            stats: QueueStats {
                rounds,
                batch_rounds,
                refills,
                point_rounds,
                slots,
                steps_accepted: accepted,
                steps_rejected: rejected,
                corrector_iterations: corrector_iters,
            },
        },
        fault,
    ))
}
