//! Lockstep multi-path tracking over a batched evaluator.
//!
//! The classical tracker ([`crate::tracker::track`]) evaluates the
//! homotopy **once per corrector iteration per path** — the
//! per-evaluation launch overhead and PCIe latency of the single-point
//! pipeline are paid thousands of times per path. This module drives
//! `P` paths **in lockstep**: every predictor and every Newton
//! corrector iteration gathers the points of all live paths into one
//! [`BatchSystemEvaluator::evaluate_batch`] call, so a batched engine
//! (e.g. `polygpu_core::BatchGpuEvaluator`) amortizes its fixed costs
//! across the whole front of paths.
//!
//! Batching is a performance transformation only: each path's
//! arithmetic is identical to what the per-path corrector would do, so
//! with a bit-exact batch evaluator the lockstep trajectories are
//! **bit-for-bit** the trajectories of the same algorithm run against
//! CPU references (which batch by looping).

use crate::fallible::{retry_round, FaultReport, Infallible, TryBatchEvaluator};
use crate::homotopy::random_gamma;
use crate::lu::lu_decompose;
use crate::newton::{NewtonParams, NewtonResult, StopReason};
use crate::tracker::{TrackOutcome, TrackParams};
use polygpu_complex::{Complex, Real};
use polygpu_core::{BatchError, RecoveryPolicy};
use polygpu_obs::{MetaValue, SpanKind, TraceSink};
use polygpu_polysys::{BatchSystemEvaluator, SystemEval, SystemEvaluator};

fn max_norm<R: Real>(v: &[Complex<R>]) -> f64 {
    v.iter().map(|z| z.abs().to_f64()).fold(0.0, f64::max)
}

/// Lockstep Newton's method: iterate all starting points together,
/// feeding every iteration's live iterates into one batched
/// evaluation (chunked by [`BatchSystemEvaluator::max_batch`]).
///
/// Per point, the control flow and arithmetic replicate
/// [`crate::newton::newton`] exactly, so `newton_batch(eval, xs, p)[i]`
/// equals `newton(eval_i, &xs[i], p)` bit for bit whenever the batch
/// evaluator is point-wise bit-exact.
pub fn newton_batch<R: Real, E: BatchSystemEvaluator<R> + ?Sized>(
    eval: &mut E,
    starts: &[Vec<Complex<R>>],
    params: NewtonParams,
) -> Vec<NewtonResult<R>> {
    newton_batch_counted(eval, starts, params, &mut 0)
}

/// [`newton_batch`] that also counts the batched device round trips it
/// issues into `batch_rounds` (one per `evaluate_batch` call,
/// including `max_batch` chunking) — the quantity the lockstep tracker
/// reports.
pub fn newton_batch_counted<R: Real, E: BatchSystemEvaluator<R> + ?Sized>(
    eval: &mut E,
    starts: &[Vec<Complex<R>>],
    params: NewtonParams,
    batch_rounds: &mut usize,
) -> Vec<NewtonResult<R>> {
    newton_batch_recovering(
        &mut Infallible(&mut *eval),
        starts,
        params,
        batch_rounds,
        &RecoveryPolicy::none(),
        &mut FaultReport::default(),
    )
    .expect("infallible evaluators cannot fault; fault-injecting engines go through newton_batch_recovering")
}

/// [`newton_batch_counted`] over a fallible evaluator: each iteration
/// round's batched evaluation retries under `recovery` (path state is
/// committed only after a round's evaluations arrive, so a retry
/// replays the affected round bit for bit), and an unrecoverable
/// fault surfaces as a typed [`BatchError`] — never a panic.
pub fn newton_batch_recovering<R: Real, E: TryBatchEvaluator<R> + ?Sized>(
    eval: &mut E,
    starts: &[Vec<Complex<R>>],
    params: NewtonParams,
    batch_rounds: &mut usize,
    recovery: &RecoveryPolicy,
    fault: &mut FaultReport,
) -> Result<Vec<NewtonResult<R>>, BatchError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Phase {
        /// Needs a regular iteration evaluation.
        Iterating,
        /// Converged by step size; needs the final residual check.
        FinalCheck,
        /// Out of iterations; needs one last evaluation so the
        /// reported residual describes the returned iterate.
        MaxItersCheck,
        Done,
    }

    struct PathState<R> {
        x: Vec<Complex<R>>,
        phase: Phase,
        iterations: usize,
        residuals: Vec<f64>,
        last_step: f64,
        stop: Option<(bool, StopReason)>,
    }

    let mut paths: Vec<PathState<R>> = starts
        .iter()
        .map(|x0| PathState {
            x: x0.clone(),
            phase: Phase::Iterating,
            iterations: 0,
            residuals: Vec::with_capacity(params.max_iters + 1),
            last_step: f64::INFINITY,
            stop: None,
        })
        .collect();

    for iter in 0..=params.max_iters {
        // `newton` performs exactly `max_iters` regular iterations; a
        // path still iterating when they are exhausted gets one more
        // evaluation (no update) so its reported residual describes
        // the returned iterate — the same final evaluation `newton`
        // performs on its MaxIters exit.
        if iter == params.max_iters {
            for path in paths.iter_mut() {
                if path.phase == Phase::Iterating {
                    path.phase = Phase::MaxItersCheck;
                }
            }
        }
        let live: Vec<usize> = (0..paths.len())
            .filter(|&i| paths[i].phase != Phase::Done)
            .collect();
        if live.is_empty() {
            break;
        }
        let evals = retry_round(recovery, fault, || {
            try_evaluate_chunked(eval, &live, &paths, |p| &p.x, batch_rounds)
        })?;
        for (&i, e) in live.iter().zip(evals) {
            let path = &mut paths[i];
            let resid = max_norm(&e.values);
            path.residuals.push(resid);
            if path.phase == Phase::FinalCheck {
                path.stop = Some((
                    resid < params.residual_tol * params.step_tol_relax,
                    StopReason::StepTol,
                ));
                path.phase = Phase::Done;
                continue;
            }
            if path.phase == Phase::MaxItersCheck {
                path.iterations = params.max_iters;
                path.stop = Some((false, StopReason::MaxIters));
                path.phase = Phase::Done;
                continue;
            }
            if resid < params.residual_tol {
                path.iterations = iter;
                path.stop = Some((true, StopReason::ResidualTol));
                path.phase = Phase::Done;
                continue;
            }
            let rhs: Vec<Complex<R>> = e.values.iter().map(|v| -*v).collect();
            let dx = match lu_decompose(e.jacobian).and_then(|lu| lu.solve(&rhs)) {
                Ok(dx) => dx,
                Err(_) => {
                    path.iterations = iter;
                    path.stop = Some((false, StopReason::SingularJacobian));
                    path.phase = Phase::Done;
                    continue;
                }
            };
            for (xi, di) in path.x.iter_mut().zip(&dx) {
                *xi += *di;
            }
            path.last_step = max_norm(&dx);
            if path.last_step < params.step_tol {
                path.iterations = iter + 1;
                path.phase = Phase::FinalCheck;
            }
        }
    }

    Ok(paths
        .into_iter()
        .map(|p| {
            let (converged, stop) = p.stop.unwrap_or((false, StopReason::MaxIters));
            NewtonResult {
                x: p.x,
                converged,
                iterations: p.iterations,
                residuals: p.residuals,
                last_step: p.last_step,
                stop,
            }
        })
        .collect())
}

/// Evaluate `live` paths' points through `eval`, splitting into chunks
/// of at most `eval.max_batch()` points; faults surface as values.
fn try_evaluate_chunked<R: Real, E, P, F>(
    eval: &mut E,
    live: &[usize],
    paths: &[P],
    point_of: F,
    batch_rounds: &mut usize,
) -> Result<Vec<SystemEval<R>>, BatchError>
where
    E: TryBatchEvaluator<R> + ?Sized,
    F: Fn(&P) -> &Vec<Complex<R>>,
{
    let cap = eval.max_batch().max(1);
    let mut out = Vec::with_capacity(live.len());
    for chunk in live.chunks(cap) {
        let points: Vec<Vec<Complex<R>>> =
            chunk.iter().map(|&i| point_of(&paths[i]).clone()).collect();
        *batch_rounds += 1;
        out.extend(eval.try_batch(&points)?);
    }
    Ok(out)
}

/// A homotopy whose endpoints are batch evaluators, for lockstep
/// tracking.
pub struct BatchHomotopy<R: Real, EG, EF> {
    /// Start system `G` (solutions known at `t = 0`).
    pub g: EG,
    /// Target system `F` (sought at `t = 1`).
    pub f: EF,
    /// The gamma constant.
    pub gamma: Complex<R>,
}

impl<R: Real, EG: BatchSystemEvaluator<R>, EF: BatchSystemEvaluator<R>> BatchHomotopy<R, EG, EF> {
    pub fn new(g: EG, f: EF, gamma: Complex<R>) -> Self {
        assert_eq!(
            g.dim(),
            f.dim(),
            "homotopy endpoints must agree in dimension"
        );
        BatchHomotopy { g, f, gamma }
    }

    /// Gamma from an angle seed; the same seed yields the same paths as
    /// [`crate::homotopy::Homotopy::with_random_gamma`].
    pub fn with_random_gamma(g: EG, f: EF, seed: u64) -> Self {
        Self::new(g, f, random_gamma(seed))
    }

    pub fn dim(&self) -> usize {
        self.g.dim()
    }

    /// Largest batch the underlying evaluators accept together.
    pub fn max_batch(&self) -> usize {
        self.g.max_batch().min(self.f.max_batch())
    }

    /// `H(·, t)` values and Jacobians at every point, plus `∂H/∂t`,
    /// from **one** batched evaluation of `G` and one of `F`. The
    /// per-point combination arithmetic is identical to
    /// [`crate::homotopy::Homotopy::eval_at`].
    pub fn eval_batch_at(
        &mut self,
        points: &[Vec<Complex<R>>],
        t: R,
    ) -> Vec<(SystemEval<R>, Vec<Complex<R>>)> {
        self.eval_batch_at_each(points, &vec![t; points.len()])
    }

    /// Like [`BatchHomotopy::eval_batch_at`], but with a **per-point**
    /// `t` — the evaluation the path-queue scheduler needs, where every
    /// slot tracks its own front position. The device part (`G` and `F`
    /// evaluations) is `t`-independent, so mixed-`t` batches still cost
    /// one batched round trip per endpoint; only the host-side
    /// combination differs per point, with arithmetic identical to
    /// [`crate::homotopy::Homotopy::eval_at`] at that point's `t`.
    pub fn eval_batch_at_each(
        &mut self,
        points: &[Vec<Complex<R>>],
        ts: &[R],
    ) -> Vec<(SystemEval<R>, Vec<Complex<R>>)> {
        assert_eq!(points.len(), ts.len(), "one t per point");
        let ges = self.g.evaluate_batch(points);
        let fes = self.f.evaluate_batch(points);
        self.combine(ges, fes, ts)
    }

    /// The per-point combination of endpoint evaluations into
    /// `H(·, t)` values, Jacobians and `∂H/∂t` — shared by the
    /// infallible and fallible evaluation paths so they are identical
    /// arithmetic by construction.
    pub(crate) fn combine(
        &self,
        ges: Vec<SystemEval<R>>,
        fes: Vec<SystemEval<R>>,
        ts: &[R],
    ) -> Vec<(SystemEval<R>, Vec<Complex<R>>)> {
        let n = self.dim();
        ges.into_iter()
            .zip(fes)
            .zip(ts)
            .map(|((ge, fe), &t)| {
                let one_minus_t = R::one() - t;
                let gscale = self.gamma.scale(one_minus_t);
                let mut values = Vec::with_capacity(n);
                let mut dt = Vec::with_capacity(n);
                for i in 0..n {
                    values.push(gscale * ge.values[i] + fe.values[i].scale(t));
                    dt.push(fe.values[i] - self.gamma * ge.values[i]);
                }
                let mut jacobian = fe.jacobian;
                for i in 0..n {
                    for j in 0..n {
                        jacobian[(i, j)] = gscale * ge.jacobian[(i, j)] + jacobian[(i, j)].scale(t);
                    }
                }
                (SystemEval { values, jacobian }, dt)
            })
            .collect()
    }

    /// View the homotopy at fixed `t` as a batch evaluator (for the
    /// lockstep Newton corrector).
    pub fn at(&mut self, t: R) -> BatchHomotopyAt<'_, R, EG, EF> {
        BatchHomotopyAt { h: self, t }
    }
}

/// [`BatchSystemEvaluator`] adapter for `H(·, t)` at fixed `t`.
pub struct BatchHomotopyAt<'h, R: Real, EG, EF> {
    pub(crate) h: &'h mut BatchHomotopy<R, EG, EF>,
    pub(crate) t: R,
}

impl<'h, R: Real, EG: BatchSystemEvaluator<R>, EF: BatchSystemEvaluator<R>> SystemEvaluator<R>
    for BatchHomotopyAt<'h, R, EG, EF>
{
    fn dim(&self) -> usize {
        self.h.dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        self.h
            .eval_batch_at(std::slice::from_ref(&x.to_vec()), self.t)
            .pop()
            .expect("batch of one returns one result")
            .0
    }

    fn name(&self) -> &str {
        "batch-homotopy-at-t"
    }
}

impl<'h, R: Real, EG: BatchSystemEvaluator<R>, EF: BatchSystemEvaluator<R>> BatchSystemEvaluator<R>
    for BatchHomotopyAt<'h, R, EG, EF>
{
    fn max_batch(&self) -> usize {
        self.h.max_batch()
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        self.h
            .eval_batch_at(points, self.t)
            .into_iter()
            .map(|(eval, _)| eval)
            .collect()
    }
}

/// Endpoint of one lockstep path.
#[derive(Debug, Clone)]
pub struct LockstepPath<R> {
    pub outcome: TrackOutcome,
    /// Last accepted point.
    pub x: Vec<Complex<R>>,
    /// `t` of the last accepted point (1.0 on success).
    pub t: f64,
}

impl<R> LockstepPath<R> {
    pub fn success(&self) -> bool {
        self.outcome == TrackOutcome::Success
    }
}

/// Result of a lockstep multi-path run.
#[derive(Debug, Clone)]
pub struct LockstepResult<R> {
    /// Per-path endpoints, in start order.
    pub paths: Vec<LockstepPath<R>>,
    /// Predictor-corrector rounds taken (accepted + rejected).
    pub rounds: usize,
    pub steps_accepted: usize,
    pub steps_rejected: usize,
    /// Total corrector iterations summed over paths.
    pub corrector_iterations: usize,
    /// Batched device round trips issued (predictor + corrector); the
    /// single-path tracker would have issued one per path per
    /// evaluation instead.
    pub batch_rounds: usize,
    /// Sum over rounds of live paths — against `rounds × paths` this
    /// exposes the shrinking-front occupancy decay the path queue
    /// ([`crate::queue::track_queue`]) exists to fix.
    pub point_rounds: usize,
}

impl<R: Real> LockstepResult<R> {
    pub fn successes(&self) -> usize {
        self.paths.iter().filter(|p| p.success()).count()
    }

    /// The run's scheduling statistics in the shared
    /// [`QueueStats`](crate::queue::QueueStats) shape (the lockstep
    /// front never refills; its slot count is the path count).
    pub fn stats(&self) -> crate::queue::QueueStats {
        crate::queue::QueueStats {
            rounds: self.rounds,
            batch_rounds: self.batch_rounds,
            refills: 0,
            point_rounds: self.point_rounds,
            slots: self.paths.len(),
            steps_accepted: self.steps_accepted,
            steps_rejected: self.steps_rejected,
            corrector_iterations: self.corrector_iterations,
        }
    }
}

/// Track all `starts` through `h` **in lockstep**: one shared `t`
/// front, one shared adaptive step size, and every evaluation batched
/// across the live paths.
///
/// Step control mirrors the single-path tracker, applied to the front
/// as a whole: a round is accepted only when *every* live path's
/// corrector converges (then `t` advances and the step may grow); on
/// any failure the whole round is rejected and the step halves. When
/// the step underflows `min_dt`, the paths whose correctors failed are
/// retired with [`TrackOutcome::StepUnderflow`] and the survivors
/// continue from the floor.
pub fn track_lockstep<R: Real, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
) -> LockstepResult<R>
where
    EG: BatchSystemEvaluator<R>,
    EF: BatchSystemEvaluator<R>,
{
    let mut fh = BatchHomotopy {
        g: Infallible(&mut h.g),
        f: Infallible(&mut h.f),
        gamma: h.gamma,
    };
    let (r, _) = track_lockstep_recovering(&mut fh, starts, params, &RecoveryPolicy::none())
        .expect("infallible evaluators cannot fault; fault-injecting engines go through track_lockstep_recovering");
    r
}

/// [`track_lockstep`] over fallible evaluators: every batched round
/// (predictor or corrector iteration) retries under `recovery` with
/// modeled backoff. Path state is committed only after a round's
/// evaluations return, so the live front *is* the checkpoint: a retry
/// replays only the faulted round, and a recovered run's trajectories
/// are **bit-identical** to the fault-free run (the engine's modeled
/// wall clock alone pays for the recovery). An unrecoverable fault
/// surfaces as a typed [`BatchError`] alongside what was spent
/// ([`FaultReport`]) — never a panic.
pub fn track_lockstep_recovering<R: Real, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    recovery: &RecoveryPolicy,
) -> Result<(LockstepResult<R>, FaultReport), BatchError>
where
    EG: TryBatchEvaluator<R>,
    EF: TryBatchEvaluator<R>,
{
    track_lockstep_recovering_traced(h, starts, params, recovery, &TraceSink::noop())
}

/// [`track_lockstep_recovering`] with scheduler-round spans: each
/// predictor-corrector round emits a [`SpanKind::Round`] on the sink's
/// track, timestamped by the target evaluator's modeled wall clock plus
/// the accumulated backoff, with retry/backoff spans when the round
/// recovered from a fault. A no-op sink makes this exactly
/// [`track_lockstep_recovering`].
pub fn track_lockstep_recovering_traced<R: Real, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    recovery: &RecoveryPolicy,
    trace: &TraceSink,
) -> Result<(LockstepResult<R>, FaultReport), BatchError>
where
    EG: TryBatchEvaluator<R>,
    EF: TryBatchEvaluator<R>,
{
    let corrector = params.corrector;
    track_lockstep_recovering_traced_with(
        h,
        starts,
        params,
        recovery,
        trace,
        &mut |h, pts, t_new, batch_rounds, fault| {
            let mut at = h.at(t_new);
            newton_batch_recovering(&mut at, pts, corrector, batch_rounds, recovery, fault)
        },
    )
}

/// [`track_lockstep_recovering_traced`] with the corrector abstracted
/// out: `correct` runs one whole Newton corrector over the predicted
/// points at `t_new` (counting batched calls into its `&mut usize` and
/// faults into its [`FaultReport`]) and returns one [`NewtonResult`]
/// per point, in order. The default corrector is the host lockstep
/// Newton ([`newton_batch_recovering`]); the device-resident solve
/// layer passes the engine's fused corrector instead — both produce
/// bit-identical results, so the tracking control flow here never
/// depends on which one runs.
pub fn track_lockstep_recovering_traced_with<R: Real, EG, EF, C>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    recovery: &RecoveryPolicy,
    trace: &TraceSink,
    correct: &mut C,
) -> Result<(LockstepResult<R>, FaultReport), BatchError>
where
    EG: TryBatchEvaluator<R>,
    EF: TryBatchEvaluator<R>,
    C: FnMut(
        &mut BatchHomotopy<R, EG, EF>,
        &[Vec<Complex<R>>],
        R,
        &mut usize,
        &mut FaultReport,
    ) -> Result<Vec<NewtonResult<R>>, BatchError>,
{
    let mut fault = FaultReport::default();
    let n_paths = starts.len();
    let mut xs: Vec<Vec<Complex<R>>> = starts.to_vec();
    let mut outcomes: Vec<Option<TrackOutcome>> = vec![None; n_paths];
    let mut retired_t: Vec<f64> = vec![0.0; n_paths];
    let mut live: Vec<usize> = (0..n_paths).collect();
    let mut t = 0.0f64;
    let mut dt = params.initial_dt;
    let mut rounds = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut corrector_iters = 0usize;
    let mut batch_rounds = 0usize;
    let mut point_rounds = 0usize;

    while !live.is_empty() && t < 1.0 && rounds < params.max_steps {
        rounds += 1;
        point_rounds += live.len();
        let dt_clamped = dt.min(1.0 - t);
        let t_new = t + dt_clamped;
        // The scheduler's modeled clock: the target engine's wall plus
        // every backoff second charged so far.
        let wall0 = h.f.modeled_wall_seconds() + fault.backoff_seconds;
        let retried0 = fault.retried_rounds;
        let backoff0 = fault.backoff_seconds;

        // Batched Euler predictor: J_H dx = -dH/dt at (x_i, t).
        let live_points: Vec<Vec<Complex<R>>> = live.iter().map(|&i| xs[i].clone()).collect();
        let cap = h.max_batch().max(1);
        let hev = retry_round(recovery, &mut fault, || {
            let mut hev = Vec::with_capacity(live_points.len());
            for chunk in live_points.chunks(cap) {
                batch_rounds += 1;
                hev.extend(h.try_eval_batch_at(chunk, R::from_f64(t))?);
            }
            Ok(hev)
        })?;
        let mut preds: Vec<(usize, Vec<Complex<R>>)> = Vec::with_capacity(live.len());
        let mut singular: Vec<usize> = Vec::new();
        for (&i, (eval, dt_vec)) in live.iter().zip(hev) {
            let rhs: Vec<Complex<R>> = dt_vec.iter().map(|v| -*v).collect();
            let dxdt = match lu_decompose(eval.jacobian).and_then(|lu| lu.solve(&rhs)) {
                Ok(d) => d,
                Err(_) => {
                    singular.push(i);
                    continue;
                }
            };
            let x_pred: Vec<Complex<R>> = xs[i]
                .iter()
                .zip(&dxdt)
                .map(|(xi, di)| *xi + di.scale(R::from_f64(dt_clamped)))
                .collect();
            preds.push((i, x_pred));
        }
        for i in singular {
            outcomes[i] = Some(TrackOutcome::SingularJacobian {
                at_t: format!("{t:.6}"),
            });
            retired_t[i] = t;
            live.retain(|&j| j != i);
        }
        if preds.is_empty() {
            break;
        }

        // Lockstep batched Newton corrector at t + dt. The predicted
        // points move into the corrector's input instead of being
        // cloned again.
        let (pred_idx, pred_points): (Vec<usize>, Vec<Vec<Complex<R>>>) = preds.into_iter().unzip();
        let results: Vec<NewtonResult<R>> = correct(
            h,
            &pred_points,
            R::from_f64(t_new),
            &mut batch_rounds,
            &mut fault,
        )?;
        corrector_iters += results.iter().map(|r| r.iterations).sum::<usize>();
        if trace.enabled() {
            let retried = fault.retried_rounds - retried0;
            let backoff = fault.backoff_seconds - backoff0;
            if retried > 0 {
                trace.emit(
                    SpanKind::Retry,
                    wall0,
                    0.0,
                    3,
                    &[("attempts", MetaValue::U64(retried))],
                );
            }
            if backoff > 0.0 {
                trace.emit(SpanKind::Backoff, wall0, backoff, 3, &[]);
            }
            let wall1 = h.f.modeled_wall_seconds() + fault.backoff_seconds;
            trace.emit(
                SpanKind::Round,
                wall0,
                wall1 - wall0,
                2,
                &[
                    ("round", MetaValue::U64(rounds as u64 - 1)),
                    ("slots", MetaValue::U64(live.len() as u64)),
                ],
            );
        }

        if results.iter().all(|r| r.converged) {
            for (&i, r) in pred_idx.iter().zip(&results) {
                xs[i] = r.x.clone();
            }
            t = t_new;
            accepted += 1;
            if results.iter().all(|r| r.iterations <= params.easy_iters) {
                dt = (dt * params.grow).min(params.max_dt);
            }
        } else {
            rejected += 1;
            dt *= 0.5;
            if dt < params.min_dt {
                // Retire the paths that failed; survivors continue at
                // the step floor.
                for (&i, r) in pred_idx.iter().zip(&results) {
                    if !r.converged {
                        outcomes[i] = Some(TrackOutcome::StepUnderflow {
                            at_t: format!("{t:.6}"),
                        });
                        retired_t[i] = t;
                        live.retain(|&j| j != i);
                    }
                }
                dt = params.min_dt;
            }
        }
    }

    let paths = (0..n_paths)
        .map(|i| {
            let outcome = outcomes[i].clone().unwrap_or(if t >= 1.0 {
                TrackOutcome::Success
            } else {
                TrackOutcome::StepLimit
            });
            let t_i = if outcomes[i].is_none() {
                t
            } else {
                retired_t[i]
            };
            LockstepPath {
                outcome,
                x: xs[i].clone(),
                t: t_i,
            }
        })
        .collect();

    Ok((
        LockstepResult {
            paths,
            rounds,
            steps_accepted: accepted,
            steps_rejected: rejected,
            corrector_iterations: corrector_iters,
            batch_rounds,
            point_rounds,
        },
        fault,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homotopy::Homotopy;
    use crate::newton::{newton, ShiftedEvaluator};
    use crate::start::StartSystem;
    use crate::tracker::{track, TrackParams};
    use polygpu_complex::C64;
    use polygpu_polysys::{
        random_point, random_points, random_system, AdEvaluator, BenchmarkParams, NaiveEvaluator,
        SystemEvaluator,
    };

    #[test]
    fn newton_batch_is_bitwise_identical_to_per_point_newton() {
        let params = BenchmarkParams {
            n: 6,
            m: 4,
            k: 3,
            d: 3,
            seed: 77,
        };
        let sys = random_system::<f64>(&params);
        let root = random_point::<f64>(6, 5);
        // Mix of easy starts (near the root) and hopeless ones, so the
        // batch exercises ResidualTol, StepTol and MaxIters together.
        let mut starts: Vec<Vec<C64>> = (0..4)
            .map(|s| {
                root.iter()
                    .enumerate()
                    .map(|(i, z)| *z + C64::from_f64(1e-3 * (i + s) as f64, -1e-3))
                    .collect()
            })
            .collect();
        starts.push(vec![C64::from_f64(50.0, 50.0); 6]);
        let np = crate::newton::NewtonParams {
            max_iters: 8,
            ..Default::default()
        };

        let mut batch = ShiftedEvaluator::with_root(AdEvaluator::new(sys.clone()).unwrap(), &root);
        let batched = newton_batch(&mut batch, &starts, np);

        for (i, x0) in starts.iter().enumerate() {
            let mut single =
                ShiftedEvaluator::with_root(AdEvaluator::new(sys.clone()).unwrap(), &root);
            let want = newton(&mut single, x0, np);
            let got = &batched[i];
            assert_eq!(got.x, want.x, "iterate, path {i}");
            assert_eq!(got.converged, want.converged, "converged, path {i}");
            assert_eq!(got.iterations, want.iterations, "iterations, path {i}");
            assert_eq!(got.residuals, want.residuals, "residuals, path {i}");
            assert_eq!(got.stop, want.stop, "stop reason, path {i}");
        }
    }

    #[test]
    fn lockstep_tracks_all_paths_of_a_small_system() {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 3,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let starts: Vec<Vec<C64>> = (0..4u128).map(|i| start.solution_by_index(i)).collect();
        let mut h = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            7,
        );
        let r = track_lockstep(&mut h, &starts, TrackParams::default());
        assert_eq!(r.paths.len(), 4);
        assert!(
            r.successes() >= 2,
            "only {}/4 lockstep paths finished",
            r.successes()
        );
        assert!(r.steps_accepted > 0);
        assert!(r.corrector_iterations >= r.steps_accepted);
        assert!(r.batch_rounds > 0);
        // Endpoints satisfy the target system.
        let mut check = NaiveEvaluator::new(sys);
        for (i, p) in r.paths.iter().enumerate() {
            if p.success() {
                assert!((p.t - 1.0).abs() < 1e-12);
                let resid = check.evaluate(&p.x).residual_norm();
                assert!(resid < 1e-8, "path {i}: endpoint residual {resid:e}");
            }
        }
    }

    #[test]
    fn lockstep_batches_fewer_round_trips_than_per_path_tracking() {
        // The point of the exercise: the number of batched device round
        // trips must be far below the per-path evaluation count a
        // single-point pipeline would pay.
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 11,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let starts: Vec<Vec<C64>> = (0..4u128).map(|i| start.solution_by_index(i)).collect();
        let mut h = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            5,
        );
        let r = track_lockstep(&mut h, &starts, TrackParams::default());
        // Per-path evaluations the classical tracker would have done on
        // the device (predictor + corrector iterations), summed.
        let mut per_path_evals = 0usize;
        for x0 in &starts {
            let f = AdEvaluator::new(sys.clone()).unwrap();
            let mut h1 = Homotopy::with_random_gamma(start.clone(), f, 5);
            let tr = track(&mut h1, x0, TrackParams::default());
            per_path_evals += tr.corrector_iterations + tr.steps_accepted + tr.steps_rejected;
        }
        assert!(
            r.batch_rounds < per_path_evals,
            "lockstep issued {} round trips vs {} per-path evaluations",
            r.batch_rounds,
            per_path_evals
        );
    }

    #[test]
    fn impossible_tolerance_underflows_and_retires_paths() {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 3,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let starts: Vec<Vec<C64>> = (0..2u128).map(|i| start.solution_by_index(i)).collect();
        let mut h =
            BatchHomotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys).unwrap(), 11);
        let r = track_lockstep(
            &mut h,
            &starts,
            TrackParams {
                corrector: crate::newton::NewtonParams {
                    residual_tol: 1e-300,
                    step_tol: 1e-300,
                    max_iters: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(r.successes(), 0);
        assert!(r.steps_rejected > 0);
        assert!(r.paths.iter().all(|p| matches!(
            p.outcome,
            TrackOutcome::StepUnderflow { .. } | TrackOutcome::StepLimit
        )));
    }

    #[test]
    fn batch_homotopy_matches_single_homotopy_pointwise() {
        let params = BenchmarkParams {
            n: 3,
            m: 2,
            k: 2,
            d: 2,
            seed: 19,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(3, 3);
        let points = random_points::<f64>(3, 4, 9);
        let mut hb = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            42,
        );
        let mut h1 = Homotopy::with_random_gamma(start, AdEvaluator::new(sys).unwrap(), 42);
        assert_eq!(hb.gamma, h1.gamma, "same seed, same gamma, same paths");
        let t = 0.37;
        let batch = hb.eval_batch_at(&points, t);
        for (x, (got, got_dt)) in points.iter().zip(batch) {
            let want = h1.eval_at(x, t);
            assert_eq!(got.values, want.eval.values);
            assert_eq!(got.jacobian.as_slice(), want.eval.jacobian.as_slice());
            assert_eq!(got_dt, want.dt);
        }
    }
}
