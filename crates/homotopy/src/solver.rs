//! A blackbox solve driver: track every total-degree path and collect
//! the distinct finite solutions.
//!
//! This is the workflow the paper's evaluation engine sits inside
//! ("homotopy continuation methods have led to efficient numerical
//! solvers of polynomial systems"): start from all `∏ dᵢ` solutions of
//! `G(x) = xᵢ^{dᵢ} − 1`, track each path of
//! `H = γ(1−t)G + tF` to `t = 1`, polish with Newton, deduplicate.
//!
//! The evaluator for `F` is supplied by a factory closure, so the same
//! driver runs against the CPU references or a fresh simulated-GPU
//! pipeline per path.

use crate::homotopy::Homotopy;
use crate::newton::{newton, NewtonParams};
use crate::start::StartSystem;
use crate::tracker::{track, TrackOutcome, TrackParams};
use polygpu_complex::{Complex, Real};
use polygpu_polysys::SystemEvaluator;

/// Solve configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolveParams {
    pub tracking: TrackParams,
    /// End-game polish at `t = 1`.
    pub polish: NewtonParams,
    /// Two endpoints closer than this (max-norm) are the same root.
    pub dedup_tol: f64,
    /// Deterministic seed for the gamma trick.
    pub gamma_seed: u64,
    /// Cap on the number of paths (safety valve for high Bézout
    /// numbers); `None` tracks all.
    pub max_paths: Option<u128>,
}

impl Default for SolveParams {
    fn default() -> Self {
        SolveParams {
            tracking: TrackParams::default(),
            polish: NewtonParams {
                residual_tol: 1e-12,
                step_tol: 1e-14,
                max_iters: 10,
                ..NewtonParams::default()
            },
            dedup_tol: 1e-6,
            gamma_seed: 0x9E37,
            max_paths: None,
        }
    }
}

/// One found solution.
#[derive(Debug, Clone)]
pub struct Root<R> {
    pub x: Vec<Complex<R>>,
    /// Residual after polishing.
    pub residual: f64,
    /// How many paths ended at this root (over-counts mean either a
    /// singular root or path crossing).
    pub multiplicity_hint: usize,
}

/// Solve outcome.
#[derive(Debug, Clone)]
pub struct SolveResult<R> {
    pub roots: Vec<Root<R>>,
    pub paths_tracked: usize,
    pub paths_finished: usize,
    pub paths_failed: usize,
    /// Total corrector iterations over all paths (each one evaluation
    /// of the system and Jacobian plus one linear solve).
    pub corrector_iterations: usize,
}

/// Track all paths of `target` (built per path by `make_eval`) from the
/// total-degree start system with the given per-equation `degrees`.
pub fn solve_total_degree<R, E, F>(
    degrees: Vec<u32>,
    mut make_eval: F,
    params: SolveParams,
) -> SolveResult<R>
where
    R: Real,
    E: SystemEvaluator<R>,
    F: FnMut() -> E,
{
    let start = StartSystem::new(degrees);
    let n_paths = params.max_paths.map_or(start.solution_count(), |cap| {
        start.solution_count().min(cap)
    });
    let mut result = SolveResult {
        roots: Vec::new(),
        paths_tracked: 0,
        paths_finished: 0,
        paths_failed: 0,
        corrector_iterations: 0,
    };
    for idx in 0..n_paths {
        let x0: Vec<Complex<R>> = start.solution_by_index(idx);
        let mut h = Homotopy::with_random_gamma(start.clone(), make_eval(), params.gamma_seed);
        let tr = track(&mut h, &x0, params.tracking);
        result.paths_tracked += 1;
        result.corrector_iterations += tr.corrector_iterations;
        if tr.outcome != TrackOutcome::Success {
            result.paths_failed += 1;
            continue;
        }
        result.paths_finished += 1;
        // Polish at t = 1 against the target itself.
        let mut target = make_eval();
        let polished = newton(&mut target, &tr.end().x, params.polish);
        result.corrector_iterations += polished.iterations;
        let residual = polished.residuals.last().copied().unwrap_or(f64::INFINITY);
        if !polished.converged {
            result.paths_failed += 1;
            result.paths_finished -= 1;
            continue;
        }
        register_root(&mut result.roots, polished.x, residual, params.dedup_tol);
    }
    result
}

fn register_root<R: Real>(roots: &mut Vec<Root<R>>, x: Vec<Complex<R>>, residual: f64, tol: f64) {
    for r in roots.iter_mut() {
        let dist =
            r.x.iter()
                .zip(&x)
                .map(|(a, b)| (*a - *b).abs().to_f64())
                .fold(0.0, f64::max);
        if dist < tol {
            r.multiplicity_hint += 1;
            if residual < r.residual {
                r.x = x;
                r.residual = residual;
            }
            return;
        }
    }
    roots.push(Root {
        x,
        residual,
        multiplicity_hint: 1,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::{parse_system, NaiveEvaluator};

    #[test]
    fn solves_univariate_quadratic() {
        // x^2 - 1 = 0 viewed as a 1-dim system: roots +1 and -1.
        let sys = parse_system::<f64>("x0^2 - 1").unwrap();
        let result = solve_total_degree(
            vec![2],
            || NaiveEvaluator::new(sys.clone()),
            SolveParams::default(),
        );
        assert_eq!(result.paths_tracked, 2);
        assert_eq!(result.roots.len(), 2, "{result:?}");
        let mut reals: Vec<f64> = result.roots.iter().map(|r| r.x[0].re).collect();
        reals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((reals[0] + 1.0).abs() < 1e-9);
        assert!((reals[1] - 1.0).abs() < 1e-9);
        for r in &result.roots {
            assert!(r.residual < 1e-11);
        }
    }

    #[test]
    fn solves_2x2_intersection_of_conics() {
        // x0^2 + x1^2 - 5 = 0, x0*x1 - 2 = 0: solutions (±1, ±2), (±2, ±1).
        let sys = parse_system::<f64>("x0^2 + x1^2 - 5; x0*x1 - 2").unwrap();
        let result = solve_total_degree(
            vec![2, 2],
            || NaiveEvaluator::new(sys.clone()),
            SolveParams::default(),
        );
        assert_eq!(result.paths_tracked, 4);
        assert_eq!(
            result.roots.len(),
            4,
            "expected 4 distinct roots: {result:?}"
        );
        for root in &result.roots {
            let (a, b) = (root.x[0], root.x[1]);
            assert!((a * a + b * b - C64::from_f64(5.0, 0.0)).abs() < 1e-8);
            assert!((a * b - C64::from_f64(2.0, 0.0)).abs() < 1e-8);
            // All solutions of this system are real.
            assert!(a.im.abs() < 1e-8 && b.im.abs() < 1e-8);
        }
    }

    #[test]
    fn max_paths_caps_work() {
        let sys = parse_system::<f64>("x0^2 - 1").unwrap();
        let result = solve_total_degree(
            vec![2],
            || NaiveEvaluator::new(sys.clone()),
            SolveParams {
                max_paths: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(result.paths_tracked, 1);
    }

    #[test]
    fn duplicate_endpoints_merge() {
        // x^2 = 0 has the double root 0: both paths land there.
        let sys = parse_system::<f64>("x0^2").unwrap();
        let mut params = SolveParams::default();
        // A singular root: loosen the polish to accept slow convergence.
        params.polish.residual_tol = 1e-8;
        params.tracking.corrector.residual_tol = 1e-8;
        let result = solve_total_degree(vec![2], || NaiveEvaluator::new(sys.clone()), params);
        if result.roots.len() == 1 {
            assert_eq!(result.roots[0].multiplicity_hint, 2);
            assert!(result.roots[0].x[0].abs() < 1e-3);
        }
        // (Paths to singular roots may also fail near t=1; either
        // outcome is acceptable, but nothing may panic.)
    }
}
