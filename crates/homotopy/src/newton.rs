//! Newton's method over any [`SystemEvaluator`].
//!
//! "The evaluation of a polynomial system and its Jacobian matrix is a
//! computationally intensive stage in Newton's method to approximate an
//! isolated solution" (§1). This module is deliberately evaluator-
//! agnostic so the same corrector runs against the CPU reference or the
//! simulated-GPU pipeline.

use crate::lu::lu_decompose;
use polygpu_complex::{Complex, Real};
use polygpu_polysys::{SystemEval, SystemEvaluator};

/// Convergence controls.
#[derive(Debug, Clone, Copy)]
pub struct NewtonParams {
    /// Stop when the residual max-norm drops below this.
    pub residual_tol: f64,
    /// Stop when the update max-norm drops below this.
    pub step_tol: f64,
    /// On a [`StopReason::StepTol`] exit, `converged` is declared
    /// against `residual_tol * step_tol_relax` rather than
    /// `residual_tol` itself: a stalled update near the root means the
    /// iterate has stopped improving, so demanding the full tolerance
    /// would misreport an essentially-converged point. The factor is
    /// explicit so callers choose the relaxation (set `1.0` to disable
    /// it); the default keeps the historical `1e3`.
    pub step_tol_relax: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for NewtonParams {
    fn default() -> Self {
        NewtonParams {
            residual_tol: 1e-12,
            step_tol: 1e-14,
            step_tol_relax: 1e3,
            max_iters: 20,
        }
    }
}

/// Outcome of a Newton run.
#[derive(Debug, Clone)]
pub struct NewtonResult<R> {
    /// Final iterate.
    pub x: Vec<Complex<R>>,
    pub converged: bool,
    pub iterations: usize,
    /// Residual max-norm after each evaluation (including the initial
    /// point).
    pub residuals: Vec<f64>,
    /// Max-norm of the last Newton update.
    pub last_step: f64,
    /// Why the run stopped.
    pub stop: StopReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    ResidualTol,
    StepTol,
    MaxIters,
    SingularJacobian,
}

fn max_norm<R: Real>(v: &[Complex<R>]) -> f64 {
    v.iter().map(|z| z.abs().to_f64()).fold(0.0, f64::max)
}

/// Run Newton's method from `x0`.
pub fn newton<R: Real, E: SystemEvaluator<R> + ?Sized>(
    eval: &mut E,
    x0: &[Complex<R>],
    params: NewtonParams,
) -> NewtonResult<R> {
    let mut x = x0.to_vec();
    let mut residuals = Vec::with_capacity(params.max_iters + 1);
    let mut last_step = f64::INFINITY;
    for iter in 0..params.max_iters {
        let SystemEval { values, jacobian } = eval.evaluate(&x);
        let resid = max_norm(&values);
        residuals.push(resid);
        if resid < params.residual_tol {
            return NewtonResult {
                x,
                converged: true,
                iterations: iter,
                residuals,
                last_step,
                stop: StopReason::ResidualTol,
            };
        }
        let rhs: Vec<Complex<R>> = values.iter().map(|v| -*v).collect();
        let dx = match lu_decompose(jacobian).and_then(|lu| lu.solve(&rhs)) {
            Ok(dx) => dx,
            Err(_) => {
                return NewtonResult {
                    x,
                    converged: false,
                    iterations: iter,
                    residuals,
                    last_step,
                    stop: StopReason::SingularJacobian,
                }
            }
        };
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += *di;
        }
        last_step = max_norm(&dx);
        if last_step < params.step_tol {
            let final_resid = max_norm(&eval.evaluate(&x).values);
            residuals.push(final_resid);
            return NewtonResult {
                converged: final_resid < params.residual_tol * params.step_tol_relax,
                x,
                iterations: iter + 1,
                residuals,
                last_step,
                stop: StopReason::StepTol,
            };
        }
    }
    // Out of iterations with the last update applied: evaluate the
    // final iterate so the reported residual describes the returned
    // `x` (and `residuals` keeps one entry per evaluation on every
    // stop reason).
    let final_resid = max_norm(&eval.evaluate(&x).values);
    residuals.push(final_resid);
    NewtonResult {
        x,
        converged: false,
        iterations: params.max_iters,
        residuals,
        last_step,
        stop: StopReason::MaxIters,
    }
}

/// An evaluator shifted by a constant: `G(x) = F(x) − c` with the same
/// Jacobian. `shifted(F, F(s))` has an exact root at `s` — the standard
/// trick for building test problems with known solutions.
pub struct ShiftedEvaluator<R, E> {
    pub inner: E,
    pub shift: Vec<Complex<R>>,
}

impl<R: Real, E: SystemEvaluator<R>> ShiftedEvaluator<R, E> {
    /// Shift `inner` so that `root` becomes an exact solution.
    pub fn with_root(mut inner: E, root: &[Complex<R>]) -> Self {
        let shift = inner.evaluate(root).values;
        ShiftedEvaluator { inner, shift }
    }
}

impl<R: Real, E: SystemEvaluator<R>> SystemEvaluator<R> for ShiftedEvaluator<R, E> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        let mut e = self.inner.evaluate(x);
        for (v, s) in e.values.iter_mut().zip(&self.shift) {
            *v -= *s;
        }
        e
    }

    fn name(&self) -> &str {
        "shifted"
    }
}

impl<R: Real, E: polygpu_polysys::BatchSystemEvaluator<R>> polygpu_polysys::BatchSystemEvaluator<R>
    for ShiftedEvaluator<R, E>
{
    fn max_batch(&self) -> usize {
        self.inner.max_batch()
    }

    /// One inner batch, each result shifted — so a batched engine's
    /// amortization carries through the shift.
    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        let mut evals = self.inner.evaluate_batch(points);
        for e in evals.iter_mut() {
            for (v, s) in e.values.iter_mut().zip(&self.shift) {
                *v -= *s;
            }
        }
        evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_point, random_system, AdEvaluator, BenchmarkParams};

    fn perturbed(x: &[C64], eps: f64) -> Vec<C64> {
        x.iter()
            .enumerate()
            .map(|(i, z)| *z + C64::from_f64(eps * (i as f64 + 1.0), -eps))
            .collect()
    }

    #[test]
    fn converges_quadratically_to_known_root() {
        let params = BenchmarkParams {
            n: 6,
            m: 4,
            k: 3,
            d: 3,
            seed: 77,
        };
        let sys = random_system::<f64>(&params);
        let root = random_point::<f64>(6, 5);
        let mut f = ShiftedEvaluator::with_root(AdEvaluator::new(sys).unwrap(), &root);
        let x0 = perturbed(&root, 1e-3);
        let r = newton(&mut f, &x0, NewtonParams::default());
        assert!(
            r.converged,
            "stopped with {:?} after {:?}",
            r.stop, r.residuals
        );
        let err: f64 =
            r.x.iter()
                .zip(&root)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
        assert!(err < 1e-10, "distance to root {err:e}");
        // Quadratic convergence: few iterations from 1e-3 away.
        assert!(r.iterations <= 6, "{} iterations", r.iterations);
    }

    #[test]
    fn reports_nonconvergence_from_far_away() {
        let params = BenchmarkParams {
            n: 4,
            m: 3,
            k: 2,
            d: 4,
            seed: 3,
        };
        let sys = random_system::<f64>(&params);
        let root = random_point::<f64>(4, 9);
        let mut f = ShiftedEvaluator::with_root(AdEvaluator::new(sys).unwrap(), &root);
        let x0 = vec![C64::from_f64(50.0, 50.0); 4];
        let r = newton(
            &mut f,
            &x0,
            NewtonParams {
                max_iters: 3,
                ..Default::default()
            },
        );
        assert!(!r.converged);
        assert_eq!(r.stop, StopReason::MaxIters);
    }

    #[test]
    fn residual_history_is_recorded() {
        let params = BenchmarkParams {
            n: 4,
            m: 2,
            k: 2,
            d: 2,
            seed: 13,
        };
        let sys = random_system::<f64>(&params);
        let root = random_point::<f64>(4, 21);
        let mut f = ShiftedEvaluator::with_root(AdEvaluator::new(sys).unwrap(), &root);
        let r = newton(&mut f, &perturbed(&root, 1e-4), NewtonParams::default());
        assert!(r.residuals.len() >= 2);
        // Residuals should be (weakly) decreasing for this easy case.
        for w in r.residuals.windows(2) {
            assert!(w[1] <= w[0] * 1.01, "{:?}", r.residuals);
        }
    }

    #[test]
    fn shifted_evaluator_has_exact_root() {
        let params = BenchmarkParams {
            n: 5,
            m: 3,
            k: 2,
            d: 3,
            seed: 1,
        };
        let sys = random_system::<f64>(&params);
        let root = random_point::<f64>(5, 2);
        let mut f = ShiftedEvaluator::with_root(AdEvaluator::new(sys).unwrap(), &root);
        let e = f.evaluate(&root);
        assert_eq!(e.residual_norm(), 0.0, "root must be exact by construction");
    }

    /// On every stop reason the residual history must describe the
    /// returned iterate: one entry per evaluation (`iterations + 1`)
    /// and the last entry equal to the residual of the returned `x`.
    /// MaxIters used to return the updated iterate without evaluating
    /// it, leaving `residuals.last()` describing the *previous* point.
    #[test]
    fn residual_history_matches_returned_point_on_every_stop() {
        struct Diag {
            singular_after: Option<usize>,
            calls: usize,
        }
        impl SystemEvaluator<f64> for Diag {
            fn dim(&self) -> usize {
                2
            }
            fn evaluate(&mut self, x: &[C64]) -> SystemEval<f64> {
                self.calls += 1;
                let poison = self.singular_after.is_some_and(|k| self.calls > k);
                // F_i = x_i^2 - i^2, diagonal Jacobian 2 x_i (zeroed
                // out after `singular_after` calls to force Singular).
                let values: Vec<C64> = x
                    .iter()
                    .enumerate()
                    .map(|(i, z)| *z * *z - C64::from_f64(((i + 1) * (i + 1)) as f64, 0.0))
                    .collect();
                let mut jacobian = polygpu_complex::CMat::zeros(2, 2);
                for (i, z) in x.iter().enumerate() {
                    jacobian[(i, i)] = if poison {
                        C64::from_f64(0.0, 0.0)
                    } else {
                        z.scale(2.0)
                    };
                }
                SystemEval { values, jacobian }
            }
            fn name(&self) -> &str {
                "diag"
            }
        }

        let check = |r: &NewtonResult<f64>, f: &mut Diag, stop: StopReason| {
            assert_eq!(r.stop, stop);
            assert_eq!(
                r.residuals.len(),
                r.iterations + 1,
                "{stop:?}: one residual per evaluation"
            );
            let actual = max_norm(&f.evaluate(&r.x).values);
            let last = *r.residuals.last().unwrap();
            assert!(
                (last - actual).abs() <= 1e-15 * actual.max(1.0),
                "{stop:?}: residuals.last() = {last:e} but returned x has residual {actual:e}"
            );
        };

        let x0 = vec![C64::from_f64(5.0, 0.1), C64::from_f64(-7.0, 0.2)];

        // ResidualTol: generous budget, easy basin.
        let mut f = Diag {
            singular_after: None,
            calls: 0,
        };
        let r = newton(&mut f, &x0, NewtonParams::default());
        assert!(r.converged);
        check(&r, &mut f, StopReason::ResidualTol);

        // MaxIters: cut the budget before convergence.
        let mut f = Diag {
            singular_after: None,
            calls: 0,
        };
        let r = newton(
            &mut f,
            &x0,
            NewtonParams {
                max_iters: 2,
                ..Default::default()
            },
        );
        assert!(!r.converged);
        check(&r, &mut f, StopReason::MaxIters);

        // StepTol: an update below step_tol triggers the final
        // evaluation; a huge step_tol fires it on the first update.
        let mut f = Diag {
            singular_after: None,
            calls: 0,
        };
        let r = newton(
            &mut f,
            &x0,
            NewtonParams {
                residual_tol: 0.0,
                step_tol: 1e9,
                ..Default::default()
            },
        );
        check(&r, &mut f, StopReason::StepTol);

        // SingularJacobian: poison the Jacobian after the first call.
        let mut f = Diag {
            singular_after: Some(1),
            calls: 0,
        };
        let r = newton(&mut f, &x0, NewtonParams::default());
        assert!(!r.converged);
        // Reset poisoning so `check` re-evaluates the genuine residual.
        f.singular_after = None;
        check(&r, &mut f, StopReason::SingularJacobian);
    }

    #[test]
    fn double_double_newton_reaches_dd_accuracy() {
        use polygpu_qd::Dd;
        let params = BenchmarkParams {
            n: 4,
            m: 3,
            k: 2,
            d: 2,
            seed: 55,
        };
        let sys = random_system::<f64>(&params).convert::<Dd>();
        let root = random_point::<Dd>(4, 8);
        let mut f = ShiftedEvaluator::with_root(AdEvaluator::new(sys).unwrap(), &root);
        let x0: Vec<Complex<Dd>> = root
            .iter()
            .map(|z| *z + Complex::from_f64(1e-5, 1e-5))
            .collect();
        let r = newton(
            &mut f,
            &x0,
            NewtonParams {
                residual_tol: 1e-28,
                step_tol: 1e-30,
                max_iters: 30,
                ..Default::default()
            },
        );
        assert!(r.converged, "{:?}", r.residuals);
        assert!(
            *r.residuals.last().unwrap() < 1e-28,
            "dd Newton should reach ~1e-28, got {:e}",
            r.residuals.last().unwrap()
        );
    }
}
