//! Dense complex LU decomposition with partial pivoting — re-exported
//! from [`polygpu_complex::lu`].
//!
//! The implementation moved next to [`polygpu_complex::CMat`] so the
//! simulated device-resident corrector in `polygpu-core` (which models
//! the factorization as an on-device kernel but executes the identical
//! arithmetic host-side) and this crate's host-side Newton/tracker code
//! share one routine: identical pivoting order, bit-identical
//! endpoints, by construction. This module remains as the historical
//! import path.

pub use polygpu_complex::lu::{lu_decompose, solve, LuError, LuFactors, SingularMatrix};
