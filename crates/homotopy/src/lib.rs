//! # polygpu-homotopy — Newton's method and homotopy continuation
//!
//! The application layer the paper accelerates (§1): polynomial
//! homotopy continuation tracks solution paths of
//! `H(x, t) = γ(1−t)·G(x) + t·F(x)` with a predictor-corrector scheme
//! whose inner loop — Newton's method — spends its time evaluating the
//! system and its Jacobian. Everything here is generic over
//! [`polygpu_polysys::SystemEvaluator`], so the corrector runs
//! identically against the CPU reference evaluators or the simulated
//! GPU pipeline of `polygpu-core`.
//!
//! The one entry point is [`solve::Solver::solve`]: a
//! [`solve::SolveRequest`] picks the scheduler
//! (per-path / lockstep / queue) and the precision policy (fixed or
//! escalate-on-failure), the [`solve::Solver`] owns an engine spec and
//! provisions backends per precision, and every combination returns
//! the same [`solve::SolveReport`] shape. The underlying drivers
//! (`newton`, `track`, `track_lockstep`, `track_queue`) remain public
//! — `solve()` replays them bit for bit — and all accept the unified
//! engine surface as a trait object (`&mut dyn AnyEvaluator<R>` or
//! `Box<dyn AnyEvaluator<R>>` from
//! `polygpu_core::engine::Engine::builder()`).
//!
//! ```
//! use polygpu_homotopy::prelude::*;
//! use polygpu_polysys::{random_system, AdEvaluator, BenchmarkParams};
//! use polygpu_complex::C64;
//!
//! // Track one path of a small random system from its start system.
//! let sys = random_system::<f64>(&BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed: 42 });
//! let start = StartSystem::uniform(2, 2);
//! let x0: Vec<C64> = start.solution_by_index(0);
//! let target = AdEvaluator::new(sys).unwrap();
//! let mut h = Homotopy::with_random_gamma(start, target, 7);
//! let result = track(&mut h, &x0, TrackParams::default());
//! assert!(!result.points.is_empty());
//! ```

pub mod escalate;
pub mod fallible;
pub mod homotopy;
pub mod lockstep;
pub mod lu;
pub mod newton;
pub mod quality;
pub mod queue;
pub mod resident;
pub mod solve;
pub mod solver;
pub mod start;
pub mod tracker;

/// The commonly-needed surface in one import.
pub mod prelude {
    pub use crate::escalate::{
        track_escalating, track_escalating_engine, EscalatedTrack, UsedPrecision,
    };
    pub use crate::fallible::{FaultReport, TryBatchEvaluator};
    pub use crate::homotopy::{Homotopy, HomotopyAt, HomotopyEval};
    pub use crate::lockstep::{
        newton_batch, newton_batch_counted, newton_batch_recovering, track_lockstep,
        track_lockstep_recovering, BatchHomotopy, BatchHomotopyAt, LockstepPath, LockstepResult,
    };
    pub use crate::lu::{lu_decompose, solve, LuError, LuFactors, SingularMatrix};
    pub use crate::newton::{newton, NewtonParams, NewtonResult, ShiftedEvaluator, StopReason};
    pub use crate::quality::{quality_up_ladder, Precision, QualityUp};
    pub use crate::queue::{
        track_queue, track_queue_recovering, PathQueue, QueueResult, QueueStats, SlotPolicy,
    };
    pub use crate::resident::{
        correct_resident, track_queue_resident, track_resident, HomotopyCombine, ResidentEngine,
    };
    pub use crate::solve::{
        PathEndpoint, PathReport, PrecisionPolicy, Scheduler, SchedulerKind, SchedulerRun,
        SolveError, SolveReport, SolveRequest, Solver, StartGroup, StartKind, StartSelection,
    };
    pub use crate::solver::{solve_total_degree, Root, SolveParams, SolveResult};
    pub use crate::start::{AnyStart, StartSystem};
    pub use crate::tracker::{track, PathPoint, TrackOutcome, TrackParams, TrackResult};
    pub use polygpu_core::CorrectorMode;
}

pub use prelude::*;
