//! The convex-combination homotopy `H(x, t) = γ(1−t)·G(x) + t·F(x)`.
//!
//! `γ` is a random complex constant on the unit circle: with
//! probability one the homotopy paths are free of singularities for
//! `t ∈ [0, 1)` (the classical "gamma trick" of homotopy continuation).

use polygpu_complex::{Complex, Real};
use polygpu_polysys::{SystemEval, SystemEvaluator};

/// The deterministic random gamma used by `with_random_gamma` (shared
/// with the lockstep batch homotopy so the same seed describes the same
/// paths): any angle bounded away from 0 mod tau works; derive one from
/// the seed with a splitmix step.
pub fn random_gamma<R: Real>(seed: u64) -> Complex<R> {
    let z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0x2545F4914F6CDD1D);
    let angle = 0.3 + (z >> 11) as f64 / (1u64 << 53) as f64 * 5.5;
    Complex::unit_from_angle(angle)
}

/// A homotopy between two evaluators of the same dimension.
pub struct Homotopy<R: Real, EG, EF> {
    /// Start system `G` (solutions known at `t = 0`).
    pub g: EG,
    /// Target system `F` (sought at `t = 1`).
    pub f: EF,
    /// The gamma constant.
    pub gamma: Complex<R>,
}

/// `H` and `∂H/∂t` at one `(x, t)`.
pub struct HomotopyEval<R> {
    /// Values and Jacobian of `H(·, t)` at `x`.
    pub eval: SystemEval<R>,
    /// `∂H/∂t = F(x) − γ·G(x)`.
    pub dt: Vec<Complex<R>>,
}

impl<R: Real, EG: SystemEvaluator<R>, EF: SystemEvaluator<R>> Homotopy<R, EG, EF> {
    /// Build with an explicit gamma (pass a random unit complex; see
    /// [`Homotopy::with_random_gamma`]).
    pub fn new(g: EG, f: EF, gamma: Complex<R>) -> Self {
        assert_eq!(
            g.dim(),
            f.dim(),
            "homotopy endpoints must agree in dimension"
        );
        Homotopy { g, f, gamma }
    }

    /// Gamma from an angle seed (deterministic).
    pub fn with_random_gamma(g: EG, f: EF, seed: u64) -> Self {
        Self::new(g, f, random_gamma(seed))
    }

    pub fn dim(&self) -> usize {
        self.g.dim()
    }

    /// Evaluate `H`, its Jacobian, and `∂H/∂t` at `(x, t)`.
    pub fn eval_at(&mut self, x: &[Complex<R>], t: R) -> HomotopyEval<R> {
        let n = self.dim();
        let ge = self.g.evaluate(x);
        let fe = self.f.evaluate(x);
        let one_minus_t = R::one() - t;
        let gscale = self.gamma.scale(one_minus_t);
        let mut values = Vec::with_capacity(n);
        let mut dt = Vec::with_capacity(n);
        for i in 0..n {
            values.push(gscale * ge.values[i] + fe.values[i].scale(t));
            dt.push(fe.values[i] - self.gamma * ge.values[i]);
        }
        let mut jacobian = fe.jacobian;
        for i in 0..n {
            for j in 0..n {
                jacobian[(i, j)] = gscale * ge.jacobian[(i, j)] + jacobian[(i, j)].scale(t);
            }
        }
        HomotopyEval {
            eval: SystemEval { values, jacobian },
            dt,
        }
    }

    /// View the homotopy at fixed `t` as a [`SystemEvaluator`] (for the
    /// Newton corrector).
    pub fn at(&mut self, t: R) -> HomotopyAt<'_, R, EG, EF> {
        HomotopyAt { h: self, t }
    }
}

/// [`SystemEvaluator`] adapter for `H(·, t)` at fixed `t`.
pub struct HomotopyAt<'h, R: Real, EG, EF> {
    h: &'h mut Homotopy<R, EG, EF>,
    t: R,
}

impl<'h, R: Real, EG: SystemEvaluator<R>, EF: SystemEvaluator<R>> SystemEvaluator<R>
    for HomotopyAt<'h, R, EG, EF>
{
    fn dim(&self) -> usize {
        self.h.dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        self.h.eval_at(x, self.t).eval
    }

    fn name(&self) -> &str {
        "homotopy-at-t"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::start::StartSystem;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_point, random_system, AdEvaluator, BenchmarkParams};

    fn target() -> AdEvaluator<f64> {
        let params = BenchmarkParams {
            n: 3,
            m: 2,
            k: 2,
            d: 2,
            seed: 19,
        };
        AdEvaluator::new(random_system::<f64>(&params)).unwrap()
    }

    #[test]
    fn endpoints_match_g_and_f() {
        let g = StartSystem::uniform(3, 3);
        let f = target();
        let mut h = Homotopy::with_random_gamma(g, f, 42);
        let x = random_point::<f64>(3, 7);
        // t = 0: H = gamma * G.
        let he = h.eval_at(&x, 0.0);
        let ge = h.g.evaluate(&x);
        for i in 0..3 {
            let want = h.gamma * ge.values[i];
            assert!((he.eval.values[i] - want).abs() < 1e-14);
        }
        // t = 1: H = F.
        let he = h.eval_at(&x, 1.0);
        let fe = h.f.evaluate(&x);
        for i in 0..3 {
            assert!((he.eval.values[i] - fe.values[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn dt_is_finite_difference_of_t() {
        let g = StartSystem::uniform(3, 3);
        let f = target();
        let mut h = Homotopy::with_random_gamma(g, f, 1);
        let x = random_point::<f64>(3, 3);
        let t = 0.4;
        let eps = 1e-7;
        let a = h.eval_at(&x, t - eps);
        let b = h.eval_at(&x, t + eps);
        let mid = h.eval_at(&x, t);
        for i in 0..3 {
            let fd = (b.eval.values[i] - a.eval.values[i]).scale(1.0 / (2.0 * eps));
            assert!(
                (fd - mid.dt[i]).abs() < 1e-6,
                "dH/dt mismatch at {i}: {fd} vs {}",
                mid.dt[i]
            );
        }
    }

    #[test]
    fn jacobian_blends_linearly() {
        let g = StartSystem::uniform(3, 2);
        let f = target();
        let mut h = Homotopy::new(g, f, C64::unit_from_angle(1.234));
        let x = random_point::<f64>(3, 11);
        let t = 0.6;
        let he = h.eval_at(&x, t);
        let ge = h.g.evaluate(&x);
        let fe = h.f.evaluate(&x);
        for i in 0..3 {
            for j in 0..3 {
                let want =
                    h.gamma.scale(1.0 - t) * ge.jacobian[(i, j)] + fe.jacobian[(i, j)].scale(t);
                assert!((he.eval.jacobian[(i, j)] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn at_adapter_matches_eval_at() {
        let g = StartSystem::uniform(3, 2);
        let f = target();
        let mut h = Homotopy::with_random_gamma(g, f, 5);
        let x = random_point::<f64>(3, 2);
        let direct = h.eval_at(&x, 0.3).eval;
        let via_adapter = h.at(0.3).evaluate(&x);
        assert_eq!(direct.values, via_adapter.values);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn dimension_mismatch_panics() {
        let g = StartSystem::uniform(2, 2);
        let f = target(); // dim 3
        let _ = Homotopy::new(g, f, C64::one());
    }
}
