//! Path-queue scheduling: full-occupancy multi-path tracking.
//!
//! [`crate::lockstep::track_lockstep`] drives a *shrinking front*: all
//! paths share one `t` and one step size, and every retired path leaves
//! its batch slot empty for the rest of the run — on a 10k-path run the
//! batch (and with it every device shard) drains toward idle. This
//! module replaces the front with a **queue**: a fixed number of slots
//! (sized to the evaluator's batch capacity) each track one path with
//! its *own* `t` and adaptive step size; whenever a slot finishes —
//! success or failure — it immediately **refills** from the pending
//! queue, so every batched round trip stays at full occupancy until the
//! queue drains.
//!
//! Scheduling is a performance transformation only: each slot replays
//! the *exact* control flow and arithmetic of the single-path tracker
//! ([`crate::tracker::track`] with [`crate::newton::newton`] as
//! corrector), one evaluation per scheduler round, so every path's
//! trajectory — and endpoint — is **bit-for-bit** the trajectory the
//! single-path tracker produces, independent of the slot count, the
//! batch composition, or how many devices the evaluator shards over.

use crate::fallible::{retry_round, FaultReport, Infallible, TryBatchEvaluator};
use crate::lockstep::{BatchHomotopy, LockstepPath};
use crate::lu::lu_decompose;
use crate::tracker::{TrackOutcome, TrackParams};
use polygpu_complex::{Complex, Real};
use polygpu_core::{BatchError, RecoveryPolicy};
use polygpu_obs::{MetaValue, MetricsRegistry, SpanKind, TraceSink};
use polygpu_polysys::{BatchSystemEvaluator, SystemEval};
use std::collections::VecDeque;
use std::fmt;

fn max_norm<R: Real>(v: &[Complex<R>]) -> f64 {
    v.iter().map(|z| z.abs().to_f64()).fold(0.0, f64::max)
}

/// Pending paths waiting for a slot: start points in submission order.
#[derive(Debug, Clone, Default)]
pub struct PathQueue<R> {
    pending: VecDeque<(usize, Vec<Complex<R>>)>,
}

impl<R: Real> PathQueue<R> {
    /// Queue `starts` in order; indices identify paths in the result.
    pub fn from_starts(starts: &[Vec<Complex<R>>]) -> Self {
        PathQueue {
            pending: starts.iter().cloned().enumerate().collect(),
        }
    }

    /// Next `(path index, start point)`, if any.
    pub fn pop(&mut self) -> Option<(usize, Vec<Complex<R>>)> {
        self.pending.pop_front()
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// How a multi-path scheduler sizes its slot front.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotPolicy {
    /// Size the front to the whole fleet. Schedulers with engine
    /// capabilities at hand (the `solve` layer) resolve this to
    /// `devices × per-device capacity`, clamped to the engine's batch
    /// capacity (which a row-sharded cluster caps at one device's
    /// worth — every device there sees every point), via
    /// [`polygpu_core::engine::EngineCaps::auto_slots`]; the raw
    /// [`track_queue`] driver, which only sees a batch evaluator, falls
    /// back to the evaluator's batch capacity.
    #[default]
    Auto,
    /// Exactly this many slots (clamped to the path count).
    Fixed(usize),
}

impl From<usize> for SlotPolicy {
    /// The legacy `slots: usize` encoding: `0` means [`SlotPolicy::Auto`],
    /// anything else a fixed front.
    fn from(slots: usize) -> Self {
        if slots == 0 {
            SlotPolicy::Auto
        } else {
            SlotPolicy::Fixed(slots)
        }
    }
}

impl SlotPolicy {
    /// The slot count this policy yields against a fallback capacity
    /// (`Auto`) and a path count (both arms clamp to it — more slots
    /// than paths can never be occupied).
    pub fn resolve(self, auto_capacity: usize, n_paths: usize) -> usize {
        match self {
            SlotPolicy::Auto => auto_capacity,
            SlotPolicy::Fixed(slots) => slots,
        }
        .max(1)
        .min(n_paths.max(1))
    }
}

/// Aggregate scheduling statistics of a multi-path run — shared by
/// every scheduler behind `solve()` (the queue fills all of it; the
/// per-path and lockstep schedulers report the fields that apply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Scheduler rounds (one batched evaluation of all occupied slots
    /// each).
    pub rounds: usize,
    /// Batched device round trips issued (`>= rounds` when the slot
    /// count exceeds the evaluator capacity and rounds chunk).
    pub batch_rounds: usize,
    /// Slots refilled from the queue after a path finished.
    pub refills: usize,
    /// Sum over rounds of occupied slots — the numerator of
    /// [`QueueStats::occupancy`].
    pub point_rounds: usize,
    /// Slots the scheduler ran with.
    pub slots: usize,
    pub steps_accepted: usize,
    pub steps_rejected: usize,
    /// Total corrector iterations summed over paths (identical to the
    /// sum over single-path [`crate::tracker::track`] runs).
    pub corrector_iterations: usize,
}

impl QueueStats {
    /// Mean slot occupancy over the run: `1.0` means every round ran a
    /// full batch. The shrinking-front tracker degrades toward `1/slots`
    /// as paths retire; the queue stays near `1.0` until it drains.
    pub fn occupancy(&self) -> f64 {
        if self.rounds == 0 || self.slots == 0 {
            0.0
        } else {
            self.point_rounds as f64 / (self.rounds * self.slots) as f64
        }
    }

    /// Fold this struct into a [`MetricsRegistry`] under `prefix`.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.rounds"), self.rounds as u64);
        reg.counter(&format!("{prefix}.batch_rounds"), self.batch_rounds as u64);
        reg.counter(&format!("{prefix}.refills"), self.refills as u64);
        reg.counter(
            &format!("{prefix}.steps_accepted"),
            self.steps_accepted as u64,
        );
        reg.counter(
            &format!("{prefix}.steps_rejected"),
            self.steps_rejected as u64,
        );
        reg.counter(
            &format!("{prefix}.corrector_iterations"),
            self.corrector_iterations as u64,
        );
        reg.gauge(&format!("{prefix}.occupancy"), self.occupancy());
    }
}

impl fmt::Display for QueueStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  rounds                {:>12}", self.rounds)?;
        writeln!(f, "  batch rounds          {:>12}", self.batch_rounds)?;
        writeln!(f, "  slots                 {:>12}", self.slots)?;
        writeln!(f, "  refills               {:>12}", self.refills)?;
        writeln!(f, "  steps accepted        {:>12}", self.steps_accepted)?;
        writeln!(f, "  steps rejected        {:>12}", self.steps_rejected)?;
        writeln!(
            f,
            "  corrector iterations  {:>12}",
            self.corrector_iterations
        )?;
        write!(f, "  occupancy             {:>12.3}", self.occupancy())
    }
}

/// Result of a path-queue run.
#[derive(Debug, Clone)]
pub struct QueueResult<R> {
    /// Per-path endpoints, in start order.
    pub paths: Vec<LockstepPath<R>>,
    /// Aggregate scheduling statistics.
    pub stats: QueueStats,
}

impl<R: Real> QueueResult<R> {
    pub fn successes(&self) -> usize {
        self.paths.iter().filter(|p| p.success()).count()
    }

    /// Mean slot occupancy over the run (see [`QueueStats::occupancy`]).
    pub fn occupancy(&self) -> f64 {
        self.stats.occupancy()
    }
}

/// What a slot does with its next evaluation.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    /// Euler predictor at `(x, t)`.
    Predict,
    /// Newton corrector iteration `iter` at `(y, t_new)`.
    Correct { iter: usize },
    /// The corrector's final residual check after a step-tolerance
    /// stop (mirrors `newton`'s extra evaluation), with the iteration
    /// count it will report.
    FinalCheck { iterations: usize },
    /// The corrector ran out of iterations with the last update
    /// applied; one more evaluation (no update) so the attempt's
    /// residual describes the final iterate, as `newton` does on its
    /// MaxIters exit.
    MaxItersCheck,
}

struct Slot<R> {
    path: usize,
    /// Last accepted point.
    x: Vec<Complex<R>>,
    /// Corrector iterate (valid in `Correct`/`FinalCheck`).
    y: Vec<Complex<R>>,
    t: f64,
    dt: f64,
    t_new: f64,
    dt_clamped: f64,
    /// Completed predictor-corrector attempts.
    attempts: usize,
    phase: Phase,
}

impl<R: Real> Slot<R> {
    fn start(path: usize, x0: Vec<Complex<R>>, params: &TrackParams) -> Self {
        Slot {
            path,
            x: x0,
            y: Vec::new(),
            t: 0.0,
            dt: params.initial_dt,
            t_new: 0.0,
            dt_clamped: 0.0,
            attempts: 0,
            phase: Phase::Predict,
        }
    }

    /// The point and `t` of this slot's next evaluation.
    fn request(&self) -> (&Vec<Complex<R>>, f64) {
        match self.phase {
            Phase::Predict => (&self.x, self.t),
            Phase::Correct { .. } | Phase::FinalCheck { .. } | Phase::MaxItersCheck => {
                (&self.y, self.t_new)
            }
        }
    }
}

/// A finished path, to be recorded and its slot refilled.
struct Finished<R> {
    path: usize,
    outcome: TrackOutcome,
    x: Vec<Complex<R>>,
    t: f64,
}

/// Track every start through `h` with a queue-fed slot front sized by
/// `slots` — a [`SlotPolicy`] or, for compatibility with the original
/// signature, a `usize` (`0` converts to [`SlotPolicy::Auto`], which
/// at this layer sizes the front to the evaluator capacity; the
/// engine-aware `solve()` layer resolves `Auto` to
/// `devices × per-device capacity` instead). The front is always
/// clamped to the number of starts.
///
/// Per path, control flow and arithmetic replicate
/// [`crate::tracker::track`] exactly — each scheduler round performs
/// precisely one evaluation per occupied slot (a predictor, one Newton
/// corrector iteration, or the corrector's final residual check), all
/// gathered into one batched evaluation — so with a bit-exact batch
/// evaluator the endpoints equal the single-path tracker's bit for bit,
/// for **any** slot count and **any** device sharding underneath.
pub fn track_queue<R: Real, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    slots: impl Into<SlotPolicy>,
) -> QueueResult<R>
where
    EG: BatchSystemEvaluator<R>,
    EF: BatchSystemEvaluator<R>,
{
    let mut fh = BatchHomotopy {
        g: Infallible(&mut h.g),
        f: Infallible(&mut h.f),
        gamma: h.gamma,
    };
    let (r, _) = track_queue_recovering(&mut fh, starts, params, slots, &RecoveryPolicy::none())
        .expect("infallible evaluators cannot fault; fault-injecting engines go through track_queue_recovering");
    r
}

/// [`track_queue`] over fallible evaluators: each scheduler round's
/// batched evaluation retries under `recovery` with modeled backoff.
/// Slot state — each slot's `(t, dt, x)` and phase — is committed only
/// after the round's evaluations return, so the front *is* the
/// checkpoint: a retry replays only the faulted round (same chunk
/// boundaries, same arithmetic), and a recovered run's endpoints are
/// **bit-identical** to the fault-free run; only the engine's modeled
/// wall clock pays for the recovery. An unrecoverable fault surfaces
/// as a typed [`BatchError`] — never a panic, never a wrong endpoint.
pub fn track_queue_recovering<R: Real, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    slots: impl Into<SlotPolicy>,
    recovery: &RecoveryPolicy,
) -> Result<(QueueResult<R>, FaultReport), BatchError>
where
    EG: TryBatchEvaluator<R>,
    EF: TryBatchEvaluator<R>,
{
    track_queue_recovering_traced(h, starts, params, slots, recovery, &TraceSink::noop())
}

/// [`track_queue_recovering`] with scheduler-round spans: each round
/// emits a [`SpanKind::Round`] on the sink's track, timestamped by the
/// target evaluator's modeled wall clock plus the accumulated backoff
/// (the scheduler's own modeled timeline), with retry/backoff spans
/// when a round recovered from a fault. A no-op sink makes this exactly
/// [`track_queue_recovering`].
pub fn track_queue_recovering_traced<R: Real, EG, EF>(
    h: &mut BatchHomotopy<R, EG, EF>,
    starts: &[Vec<Complex<R>>],
    params: TrackParams,
    slots: impl Into<SlotPolicy>,
    recovery: &RecoveryPolicy,
    trace: &TraceSink,
) -> Result<(QueueResult<R>, FaultReport), BatchError>
where
    EG: TryBatchEvaluator<R>,
    EF: TryBatchEvaluator<R>,
{
    let mut fault = FaultReport::default();
    let n_paths = starts.len();
    let cap = h.max_batch().max(1);
    let slots = slots.into().resolve(cap, n_paths);
    let mut queue = PathQueue::from_starts(starts);
    let mut front: Vec<Option<Slot<R>>> = (0..slots)
        .map(|_| queue.pop().map(|(i, x0)| Slot::start(i, x0, &params)))
        .collect();
    let mut results: Vec<Option<LockstepPath<R>>> = (0..n_paths).map(|_| None).collect();

    let mut rounds = 0usize;
    let mut batch_rounds = 0usize;
    let mut refills = 0usize;
    let mut point_rounds = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut corrector_iters = 0usize;

    loop {
        let occupied: Vec<usize> = (0..slots).filter(|&s| front[s].is_some()).collect();
        if occupied.is_empty() {
            break;
        }
        rounds += 1;
        point_rounds += occupied.len();

        // One evaluation per occupied slot, at that slot's own point
        // and t, batched (and chunked by the evaluator capacity).
        let mut points: Vec<Vec<Complex<R>>> = Vec::with_capacity(occupied.len());
        let mut ts: Vec<R> = Vec::with_capacity(occupied.len());
        for &s in &occupied {
            let (x, t) = front[s].as_ref().expect("occupied").request();
            points.push(x.clone());
            ts.push(R::from_f64(t));
        }
        // The scheduler's modeled clock: the target engine's wall plus
        // every backoff second charged so far.
        let wall0 = h.f.modeled_wall_seconds() + fault.backoff_seconds;
        let retried0 = fault.retried_rounds;
        let backoff0 = fault.backoff_seconds;
        let evals: Vec<(SystemEval<R>, Vec<Complex<R>>)> =
            retry_round(recovery, &mut fault, || {
                let mut evals = Vec::with_capacity(points.len());
                let mut base = 0usize;
                while base < points.len() {
                    let end = (base + cap).min(points.len());
                    batch_rounds += 1;
                    evals.extend(h.try_eval_batch_at_each(&points[base..end], &ts[base..end])?);
                    base = end;
                }
                Ok(evals)
            })?;
        if trace.enabled() {
            let retried = fault.retried_rounds - retried0;
            let backoff = fault.backoff_seconds - backoff0;
            if retried > 0 {
                trace.emit(
                    SpanKind::Retry,
                    wall0,
                    0.0,
                    3,
                    &[("attempts", MetaValue::U64(retried))],
                );
            }
            if backoff > 0.0 {
                trace.emit(SpanKind::Backoff, wall0, backoff, 3, &[]);
            }
            let wall1 = h.f.modeled_wall_seconds() + fault.backoff_seconds;
            trace.emit(
                SpanKind::Round,
                wall0,
                wall1 - wall0,
                2,
                &[
                    ("round", MetaValue::U64(rounds as u64 - 1)),
                    ("slots", MetaValue::U64(occupied.len() as u64)),
                ],
            );
        }

        let mut finished: Vec<Finished<R>> = Vec::new();
        for (&s, (eval, dt_vec)) in occupied.iter().zip(evals) {
            let slot = front[s].as_mut().expect("occupied");
            // The corrector's verdict for this attempt, if it ended.
            let mut corrector_done: Option<(bool, usize)> = None;
            match slot.phase {
                Phase::Predict => {
                    // Euler predictor: J_H dx = -dH/dt at (x, t); a
                    // singular Jacobian retires the path, as in `track`.
                    slot.dt_clamped = slot.dt.min(1.0 - slot.t);
                    slot.t_new = slot.t + slot.dt_clamped;
                    let rhs: Vec<Complex<R>> = dt_vec.iter().map(|v| -*v).collect();
                    match lu_decompose(eval.jacobian).and_then(|lu| lu.solve(&rhs)) {
                        Ok(dxdt) => {
                            slot.y = slot
                                .x
                                .iter()
                                .zip(&dxdt)
                                .map(|(xi, di)| *xi + di.scale(R::from_f64(slot.dt_clamped)))
                                .collect();
                            slot.phase = Phase::Correct { iter: 0 };
                        }
                        Err(_) => {
                            finished.push(Finished {
                                path: slot.path,
                                outcome: TrackOutcome::SingularJacobian {
                                    at_t: format!("{:.6}", slot.t),
                                },
                                x: std::mem::take(&mut slot.x),
                                t: slot.t,
                            });
                            front[s] = None;
                        }
                    }
                }
                Phase::Correct { iter } => {
                    // One `newton` iteration at (y, t_new).
                    let resid = max_norm(&eval.values);
                    if resid < params.corrector.residual_tol {
                        corrector_done = Some((true, iter));
                    } else {
                        let rhs: Vec<Complex<R>> = eval.values.iter().map(|v| -*v).collect();
                        match lu_decompose(eval.jacobian).and_then(|lu| lu.solve(&rhs)) {
                            Ok(dx) => {
                                for (yi, di) in slot.y.iter_mut().zip(&dx) {
                                    *yi += *di;
                                }
                                let last_step = max_norm(&dx);
                                if last_step < params.corrector.step_tol {
                                    slot.phase = Phase::FinalCheck {
                                        iterations: iter + 1,
                                    };
                                } else if iter + 1 >= params.corrector.max_iters {
                                    slot.phase = Phase::MaxItersCheck;
                                } else {
                                    slot.phase = Phase::Correct { iter: iter + 1 };
                                }
                            }
                            Err(_) => {
                                corrector_done = Some((false, iter));
                            }
                        }
                    }
                }
                Phase::FinalCheck { iterations } => {
                    // `newton`'s post-step-tolerance residual check.
                    let final_resid = max_norm(&eval.values);
                    corrector_done = Some((
                        final_resid
                            < params.corrector.residual_tol * params.corrector.step_tol_relax,
                        iterations,
                    ));
                }
                Phase::MaxItersCheck => {
                    // `newton`'s final evaluation on a MaxIters exit:
                    // the residual is recorded but never rescues the
                    // attempt.
                    corrector_done = Some((false, params.corrector.max_iters));
                }
            }

            if let Some((converged, iterations)) = corrector_done {
                corrector_iters += iterations;
                let slot = front[s].as_mut().expect("occupied");
                if converged {
                    std::mem::swap(&mut slot.x, &mut slot.y);
                    slot.t = slot.t_new;
                    accepted += 1;
                    if iterations <= params.easy_iters {
                        slot.dt = (slot.dt * params.grow).min(params.max_dt);
                    }
                } else {
                    rejected += 1;
                    slot.dt *= 0.5;
                }
                slot.attempts += 1;
                // `track`'s loop structure: step-underflow retires the
                // path; otherwise the success check runs at the top of
                // the next iteration — which exists only while the
                // attempt budget lasts.
                let outcome = if !converged && slot.dt < params.min_dt {
                    Some(TrackOutcome::StepUnderflow {
                        at_t: format!("{:.6}", slot.t),
                    })
                } else if slot.t >= 1.0 {
                    Some(if slot.attempts < params.max_steps {
                        TrackOutcome::Success
                    } else {
                        TrackOutcome::StepLimit
                    })
                } else if slot.attempts >= params.max_steps {
                    Some(TrackOutcome::StepLimit)
                } else {
                    slot.phase = Phase::Predict;
                    None
                };
                if let Some(outcome) = outcome {
                    finished.push(Finished {
                        path: slot.path,
                        outcome,
                        x: std::mem::take(&mut slot.x),
                        t: slot.t,
                    });
                    front[s] = None;
                }
            }
        }

        // Record finished paths and refill their slots immediately, so
        // the next round runs at full occupancy again.
        for f in finished {
            results[f.path] = Some(LockstepPath {
                outcome: f.outcome,
                x: f.x,
                t: f.t,
            });
        }
        for slot in front.iter_mut() {
            if slot.is_none() {
                if let Some((i, x0)) = queue.pop() {
                    *slot = Some(Slot::start(i, x0, &params));
                    refills += 1;
                }
            }
        }
    }

    Ok((
        QueueResult {
            paths: results
                .into_iter()
                .map(|p| p.expect("every queued path finishes"))
                .collect(),
            stats: QueueStats {
                rounds,
                batch_rounds,
                refills,
                point_rounds,
                slots,
                steps_accepted: accepted,
                steps_rejected: rejected,
                corrector_iterations: corrector_iters,
            },
        },
        fault,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homotopy::Homotopy;
    use crate::start::StartSystem;
    use crate::tracker::{track, TrackParams};
    use polygpu_complex::C64;
    use polygpu_polysys::{random_system, AdEvaluator, BenchmarkParams};

    fn fixture(
        seed: u64,
        n_paths: u128,
    ) -> (polygpu_polysys::System<f64>, StartSystem, Vec<Vec<C64>>) {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let starts: Vec<Vec<C64>> = (0..n_paths).map(|i| start.solution_by_index(i)).collect();
        (sys, start, starts)
    }

    /// The defining property: for every slot count, each path's
    /// endpoint, outcome and final t are **bit-for-bit** what the
    /// single-path tracker produces, and the aggregate step counts are
    /// the sums over the single-path runs.
    #[test]
    fn queue_is_bitwise_identical_to_per_path_tracking() {
        let (sys, start, starts) = fixture(3, 4);
        let params = TrackParams::default();

        // Reference: one `track` run per path.
        let mut want = Vec::new();
        let (mut sum_acc, mut sum_rej, mut sum_corr) = (0usize, 0usize, 0usize);
        for x0 in &starts {
            let f = AdEvaluator::new(sys.clone()).unwrap();
            let mut h = Homotopy::with_random_gamma(start.clone(), f, 7);
            let r = track(&mut h, x0, params);
            sum_acc += r.steps_accepted;
            sum_rej += r.steps_rejected;
            sum_corr += r.corrector_iterations;
            want.push(r);
        }

        for slots in [1usize, 2, 3, 4, 7] {
            let mut h = BatchHomotopy::with_random_gamma(
                start.clone(),
                AdEvaluator::new(sys.clone()).unwrap(),
                7,
            );
            let r = track_queue(&mut h, &starts, params, slots);
            assert_eq!(r.paths.len(), starts.len());
            for (i, (got, w)) in r.paths.iter().zip(&want).enumerate() {
                assert_eq!(got.outcome, w.outcome, "outcome, path {i}, slots {slots}");
                assert_eq!(got.x, w.end().x, "endpoint, path {i}, slots {slots}");
                assert_eq!(got.t, w.end().t, "final t, path {i}, slots {slots}");
            }
            assert_eq!(r.stats.steps_accepted, sum_acc, "slots {slots}");
            assert_eq!(r.stats.steps_rejected, sum_rej, "slots {slots}");
            assert_eq!(r.stats.corrector_iterations, sum_corr, "slots {slots}");
        }
    }

    /// Refilling keeps the front full: with more paths than slots, the
    /// queue refills every freed slot and mean occupancy stays high.
    #[test]
    fn queue_refills_and_stays_occupied() {
        let (sys, start, starts) = fixture(3, 8);
        let slots = 2;
        let mut h =
            BatchHomotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys).unwrap(), 7);
        let r = track_queue(&mut h, &starts, TrackParams::default(), slots);
        assert_eq!(r.stats.slots, slots);
        assert_eq!(
            r.stats.refills,
            starts.len() - slots,
            "every path beyond the initial front is a refill"
        );
        // Only the drain tail (queue empty, slots finishing at
        // different times) runs below full occupancy.
        assert!(
            r.occupancy() > 0.8,
            "queue scheduling must keep slots busy: occupancy {:.3}",
            r.occupancy()
        );
        assert_eq!(r.successes() + (r.paths.len() - r.successes()), 8);
        assert!(r.stats.batch_rounds >= r.stats.rounds);
    }

    /// `slots = 0` sizes the front to the evaluator capacity; capacity
    /// smaller than the front chunks the round into several device
    /// trips without changing any result.
    #[test]
    fn default_slots_and_chunking_match() {
        let (sys, start, starts) = fixture(11, 4);
        let params = TrackParams::default();
        let mut h_all = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            5,
        );
        let all = track_queue(&mut h_all, &starts, params, SlotPolicy::Auto);
        assert_eq!(
            all.stats.slots,
            starts.len(),
            "capacity-sized front clamps to paths"
        );

        let mut h_small =
            BatchHomotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys).unwrap(), 5);
        let small = track_queue(&mut h_small, &starts, params, 3);
        for (a, b) in all.paths.iter().zip(&small.paths) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    /// Impossible tolerances underflow the step and retire every path,
    /// mirroring the single-path tracker's outcome.
    #[test]
    fn impossible_tolerance_underflows() {
        let (sys, start, starts) = fixture(3, 2);
        let params = TrackParams {
            corrector: crate::newton::NewtonParams {
                residual_tol: 1e-300,
                step_tol: 1e-300,
                max_iters: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut h = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            11,
        );
        let r = track_queue(&mut h, &starts, params, 2);
        assert_eq!(r.successes(), 0);
        assert!(r.stats.steps_rejected > 0);
        for (i, (p, x0)) in r.paths.iter().zip(&starts).enumerate() {
            let f = AdEvaluator::new(sys.clone()).unwrap();
            let mut h1 = Homotopy::with_random_gamma(start.clone(), f, 11);
            let w = track(&mut h1, x0, params);
            assert_eq!(p.outcome, w.outcome, "path {i}");
        }
    }

    /// Satellite: ratio helpers must be total on empty runs.
    #[test]
    fn empty_queue_stats_ratios_are_total() {
        let s = QueueStats::default();
        assert_eq!(s.occupancy(), 0.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn empty_queue_is_a_no_op() {
        let (sys, start, _) = fixture(3, 2);
        let mut h = BatchHomotopy::with_random_gamma(start, AdEvaluator::new(sys).unwrap(), 7);
        let r = track_queue(&mut h, &[], TrackParams::default(), 4);
        assert!(r.paths.is_empty());
        assert_eq!(r.stats.rounds, 0);
        assert_eq!(r.occupancy(), 0.0);
    }
}
