//! Adaptive predictor–corrector path tracking.
//!
//! Tracks one solution path of `H(x, t) = 0` from `t = 0` to `t = 1`:
//! an Euler predictor along `dx/dt = −J_H⁻¹ ∂H/∂t`, a Newton corrector
//! at the new `t`, and step-size control that halves on rejection and
//! grows on easy acceptances — the classical scheme the paper's
//! evaluation engine is built to accelerate.

use crate::homotopy::Homotopy;
use crate::lu::lu_decompose;
use crate::newton::{newton, NewtonParams, NewtonResult};
use polygpu_complex::{Complex, Real};
use polygpu_core::CorrectorMode;
use polygpu_polysys::SystemEvaluator;

/// Step-size and corrector controls.
#[derive(Debug, Clone, Copy)]
pub struct TrackParams {
    pub initial_dt: f64,
    pub min_dt: f64,
    pub max_dt: f64,
    /// Grow factor applied after an easy acceptance (corrector needed
    /// at most [`TrackParams::easy_iters`] iterations).
    pub grow: f64,
    pub easy_iters: usize,
    pub corrector: NewtonParams,
    /// Where the corrector's linear solves run. [`CorrectorMode::Host`]
    /// downloads values and Jacobians every iteration and solves on
    /// the host; [`CorrectorMode::DeviceResident`] runs the fused
    /// evaluate → factor → solve → update loop on the engine and
    /// downloads only a per-point flag/residual vector. Endpoints are
    /// bit-identical either way; only the modeled transfer traffic
    /// differs. Ignored by hosts that have no engine to keep iterates
    /// resident on (the scalar [`track`] corrector).
    pub corrector_mode: CorrectorMode,
    /// Overall cap on predictor-corrector steps (accepted + rejected).
    pub max_steps: usize,
}

impl Default for TrackParams {
    fn default() -> Self {
        TrackParams {
            initial_dt: 0.05,
            min_dt: 1e-8,
            max_dt: 0.2,
            grow: 1.5,
            easy_iters: 3,
            corrector: NewtonParams {
                residual_tol: 1e-10,
                step_tol: 1e-12,
                max_iters: 6,
                ..NewtonParams::default()
            },
            corrector_mode: CorrectorMode::Host,
            max_steps: 10_000,
        }
    }
}

/// One accepted point on the path.
#[derive(Debug, Clone)]
pub struct PathPoint<R> {
    pub t: f64,
    pub x: Vec<Complex<R>>,
}

/// Why tracking stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackOutcome {
    /// Reached `t = 1`.
    Success,
    /// Step size underflowed `min_dt`.
    StepUnderflow { at_t: String },
    /// Predictor hit a singular Jacobian.
    SingularJacobian { at_t: String },
    /// `max_steps` exhausted.
    StepLimit,
}

/// Full tracking record.
#[derive(Debug, Clone)]
pub struct TrackResult<R> {
    pub outcome: TrackOutcome,
    /// Accepted points, starting with the start solution at `t = 0`.
    pub points: Vec<PathPoint<R>>,
    pub steps_accepted: usize,
    pub steps_rejected: usize,
    /// Total corrector iterations (each costs one evaluation of `H`
    /// and one linear solve — the quantities the paper accelerates).
    pub corrector_iterations: usize,
}

impl<R: Real> TrackResult<R> {
    pub fn success(&self) -> bool {
        self.outcome == TrackOutcome::Success
    }

    /// Final point (the approximate solution of `F` on success).
    pub fn end(&self) -> &PathPoint<R> {
        self.points.last().expect("tracker records the start point")
    }
}

/// Track one path of `h` starting from the start-system solution `x0`.
pub fn track<R: Real, EG, EF>(
    h: &mut Homotopy<R, EG, EF>,
    x0: &[Complex<R>],
    params: TrackParams,
) -> TrackResult<R>
where
    EG: SystemEvaluator<R>,
    EF: SystemEvaluator<R>,
{
    let mut points = vec![PathPoint {
        t: 0.0,
        x: x0.to_vec(),
    }];
    let mut x = x0.to_vec();
    let mut t = 0.0f64;
    let mut dt = params.initial_dt;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut corrector_iters = 0usize;

    for _ in 0..params.max_steps {
        if t >= 1.0 {
            return TrackResult {
                outcome: TrackOutcome::Success,
                points,
                steps_accepted: accepted,
                steps_rejected: rejected,
                corrector_iterations: corrector_iters,
            };
        }
        let dt_clamped = dt.min(1.0 - t);
        // Euler predictor: J_H dx = -dH/dt, x_pred = x + dx * dt.
        let he = h.eval_at(&x, R::from_f64(t));
        let rhs: Vec<Complex<R>> = he.dt.iter().map(|v| -*v).collect();
        let dxdt = match lu_decompose(he.eval.jacobian).and_then(|lu| lu.solve(&rhs)) {
            Ok(d) => d,
            Err(_) => {
                return TrackResult {
                    outcome: TrackOutcome::SingularJacobian {
                        at_t: format!("{t:.6}"),
                    },
                    points,
                    steps_accepted: accepted,
                    steps_rejected: rejected,
                    corrector_iterations: corrector_iters,
                }
            }
        };
        let x_pred: Vec<Complex<R>> = x
            .iter()
            .zip(&dxdt)
            .map(|(xi, di)| *xi + di.scale(R::from_f64(dt_clamped)))
            .collect();
        // Newton corrector at t + dt.
        let t_new = t + dt_clamped;
        let result: NewtonResult<R> = {
            let mut at = h.at(R::from_f64(t_new));
            newton(&mut at, &x_pred, params.corrector)
        };
        corrector_iters += result.iterations;
        if result.converged {
            x = result.x;
            t = t_new;
            points.push(PathPoint { t, x: x.clone() });
            accepted += 1;
            if result.iterations <= params.easy_iters {
                dt = (dt * params.grow).min(params.max_dt);
            }
        } else {
            rejected += 1;
            dt *= 0.5;
            if dt < params.min_dt {
                return TrackResult {
                    outcome: TrackOutcome::StepUnderflow {
                        at_t: format!("{t:.6}"),
                    },
                    points,
                    steps_accepted: accepted,
                    steps_rejected: rejected,
                    corrector_iterations: corrector_iters,
                };
            }
        }
    }
    TrackResult {
        outcome: TrackOutcome::StepLimit,
        points,
        steps_accepted: accepted,
        steps_rejected: rejected,
        corrector_iterations: corrector_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::start::StartSystem;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_system, AdEvaluator, BenchmarkParams, SystemEvaluator};

    /// Track all paths of a small random target from its total-degree
    /// start system and verify the endpoints satisfy F ~ 0.
    #[test]
    fn tracks_small_random_system_to_roots() {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 101,
        };
        let sys = random_system::<f64>(&params);
        let degrees: Vec<u32> = sys.polys().iter().map(|p| p.total_degree()).collect();
        let start = StartSystem::new(degrees);
        let mut successes = 0;
        let total = start.solution_count().min(8) as u128;
        for idx in 0..total {
            let x0: Vec<C64> = start.solution_by_index(idx);
            let f = AdEvaluator::new(sys.clone()).unwrap();
            let mut h = Homotopy::with_random_gamma(start.clone(), f, 2024);
            let r = track(&mut h, &x0, TrackParams::default());
            if r.success() {
                successes += 1;
                // Verify the endpoint on the target system.
                let mut check = AdEvaluator::new(sys.clone()).unwrap();
                let resid = check.evaluate(&r.end().x).residual_norm();
                assert!(resid < 1e-8, "path {idx}: endpoint residual {resid:e}");
                assert!((r.end().t - 1.0).abs() < 1e-12);
            }
        }
        // Random dense-coefficient targets: expect most paths to finish.
        assert!(
            successes >= total / 2,
            "only {successes}/{total} paths finished"
        );
    }

    #[test]
    fn start_point_recorded_and_monotone_t() {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 1,
            d: 2,
            seed: 8,
        };
        let sys = random_system::<f64>(&params);
        let degrees: Vec<u32> = sys.polys().iter().map(|p| p.total_degree()).collect();
        let start = StartSystem::new(degrees);
        let x0: Vec<C64> = start.solution_by_index(0);
        let f = AdEvaluator::new(sys).unwrap();
        let mut h = Homotopy::with_random_gamma(start, f, 7);
        let r = track(&mut h, &x0, TrackParams::default());
        assert_eq!(r.points[0].t, 0.0);
        for w in r.points.windows(2) {
            assert!(w[1].t > w[0].t, "t must increase along the path");
        }
    }

    #[test]
    fn impossible_corrector_tolerance_underflows_step() {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 3,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let x0: Vec<C64> = start.solution_by_index(1);
        let f = AdEvaluator::new(sys).unwrap();
        let mut h = Homotopy::with_random_gamma(start, f, 11);
        let r = track(
            &mut h,
            &x0,
            TrackParams {
                corrector: NewtonParams {
                    residual_tol: 1e-300, // unreachable
                    step_tol: 1e-300,
                    max_iters: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert!(matches!(r.outcome, TrackOutcome::StepUnderflow { .. }));
        assert!(r.steps_rejected > 0);
    }

    #[test]
    fn counts_evaluations_via_corrector_iterations() {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed: 29,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 3);
        let x0: Vec<C64> = start.solution_by_index(2);
        let f = AdEvaluator::new(sys).unwrap();
        let mut h = Homotopy::with_random_gamma(start, f, 5);
        let r = track(&mut h, &x0, TrackParams::default());
        if r.success() {
            assert!(
                r.corrector_iterations >= r.steps_accepted,
                "each accepted step needs at least one corrector evaluation"
            );
        }
    }
}
