//! "Quality up": trading parallel speedup for extended precision.
//!
//! The paper's framing (§1): "given p processors (or cores) how much
//! extra precision can we afford in roughly the same time as a
//! sequential run?" The authors measured a cost factor around 8 for
//! double-double arithmetic [PASCO 2010], so a parallel evaluator with
//! speedup ≥ 8 runs double-double paths in single-double sequential
//! time.
//!
//! This module provides the small model used by the `quality_up`
//! example and the E5 experiment: given a measured (or modeled) speedup
//! and a measured arithmetic cost factor, which precisions come "for
//! free"?

/// Precisions in the QD ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    Double,
    DoubleDouble,
    QuadDouble,
}

impl Precision {
    pub fn name(self) -> &'static str {
        match self {
            Precision::Double => "double",
            Precision::DoubleDouble => "double-double",
            Precision::QuadDouble => "quad-double",
        }
    }

    /// Significand bits of the format.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Double => 53,
            Precision::DoubleDouble => 106,
            Precision::QuadDouble => 212,
        }
    }
}

/// Quality-up verdict for one precision.
#[derive(Debug, Clone, Copy)]
pub struct QualityUp {
    pub precision: Precision,
    /// Arithmetic cost factor of the precision relative to double.
    pub cost_factor: f64,
    /// Parallel speedup available to offset it.
    pub speedup: f64,
    /// Time of a parallel extended-precision run relative to a
    /// sequential double run (`cost_factor / speedup`).
    pub relative_time: f64,
}

impl QualityUp {
    /// Does the parallel extended run finish within `slack` times the
    /// sequential double run? The paper's "roughly the same time" is
    /// `slack ≈ 1`.
    pub fn achieved(&self, slack: f64) -> bool {
        self.relative_time <= slack
    }
}

/// Evaluate the quality-up question for the precision ladder, given a
/// parallel speedup and per-precision cost factors (measure them with
/// the `dd_overhead` benchmark; the paper's companion work reports ~8
/// for double-double).
pub fn quality_up_ladder(speedup: f64, dd_cost: f64, qd_cost: f64) -> Vec<QualityUp> {
    vec![
        QualityUp {
            precision: Precision::Double,
            cost_factor: 1.0,
            speedup,
            relative_time: 1.0 / speedup,
        },
        QualityUp {
            precision: Precision::DoubleDouble,
            cost_factor: dd_cost,
            speedup,
            relative_time: dd_cost / speedup,
        },
        QualityUp {
            precision: Precision::QuadDouble,
            cost_factor: qd_cost,
            speedup,
            relative_time: qd_cost / speedup,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_numbers_give_dd_for_free() {
        // Speedup ~10 (Table 1 middle), dd cost ~8: dd is quality-up.
        let ladder = quality_up_ladder(10.44, 8.0, 60.0);
        assert!(ladder[1].achieved(1.0), "dd should fit: {:?}", ladder[1]);
        assert!(!ladder[2].achieved(1.0), "qd should not fit at 10x");
    }

    #[test]
    fn ladder_is_monotone_in_cost() {
        let ladder = quality_up_ladder(14.0, 8.0, 60.0);
        assert!(ladder[0].relative_time < ladder[1].relative_time);
        assert!(ladder[1].relative_time < ladder[2].relative_time);
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(Precision::Double.bits(), 53);
        assert_eq!(Precision::DoubleDouble.bits(), 106);
        assert_eq!(Precision::QuadDouble.bits(), 212);
        assert_eq!(Precision::DoubleDouble.name(), "double-double");
    }
}
